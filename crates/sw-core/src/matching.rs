//! The Myers-Miller *matching procedure* (Formula 4 of the paper) and
//! CUDAlign 2.0's *goal-based* variant (Section IV-C1).
//!
//! Given forward vectors `CC`/`DD` along a split row and reverse vectors
//! `RR`/`SS` along the same row, the midpoint `j*` maximizes
//!
//! ```text
//! max { CC(j) + RR(j),  DD(j) + SS(j) + G_open }
//! ```
//!
//! (indexing here is by the ordinary forward column index; the `+ G_open`
//! term refunds the gap-open penalty charged twice when one vertical gap
//! run crosses the split row).
//!
//! The goal-based variant exploits that CUDAlign already *knows* the score
//! the maximum must reach (the goal score from the previous crosspoint), so
//! scanning can stop at the first column that attains it — the basis of the
//! orthogonal-execution saving.

use crate::scoring::{Score, Scoring};
use crate::transcript::EdgeState;

/// A matched crosspoint on a split row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchPoint {
    /// Column index (forward convention, `0..=n`).
    pub j: usize,
    /// Total score through this point (`CC+RR` or `DD+SS+G_open`).
    pub total: Score,
    /// Score of the *forward* part up to the split row (CC(j) or DD(j));
    /// this becomes the crosspoint's `score` field in the pipeline.
    pub forward_score: Score,
    /// `Diagonal` when the path crosses the row in the `H` state,
    /// `GapS1` when it crosses inside a vertical gap run.
    pub state: EdgeState,
}

/// Classic Myers-Miller matching: scan every column and return the maximum.
///
/// Tie-breaking is deterministic: the `H`-state match is preferred over the
/// gap-state match at the same column, and smaller `j` wins between
/// columns. All four slices must have equal length `n + 1`.
pub fn match_argmax(
    cc: &[Score],
    dd: &[Score],
    rr: &[Score],
    ss: &[Score],
    scoring: &Scoring,
) -> MatchPoint {
    assert_eq!(cc.len(), rr.len());
    assert_eq!(dd.len(), ss.len());
    assert_eq!(cc.len(), dd.len());
    assert!(!cc.is_empty());
    let gopen = scoring.gap_open();
    let mut best: Option<MatchPoint> = None;
    for j in 0..cc.len() {
        let h_total = cc[j] + rr[j];
        let g_total = dd[j] + ss[j] + gopen;
        let cand = if h_total >= g_total {
            MatchPoint { j, total: h_total, forward_score: cc[j], state: EdgeState::Diagonal }
        } else {
            MatchPoint { j, total: g_total, forward_score: dd[j], state: EdgeState::GapS1 }
        };
        if best.is_none_or(|b| cand.total > b.total) {
            best = Some(cand);
        }
    }
    best.expect("non-empty vectors")
}

/// Goal-based matching: return the first column (scanning from `from_j`
/// in the direction given by `rightward`) whose combined score reaches
/// `goal`, or `None` when no column attains it.
///
/// Reaching the goal is guaranteed when `goal` is the optimal score of the
/// partition (the maximum over columns equals the optimal score and the
/// combined score can never exceed it); `None` therefore indicates the
/// optimal path does not cross this row segment.
#[allow(clippy::too_many_arguments)] // a DP matching kernel: slices + scan parameters
pub fn match_goal(
    cc: &[Score],
    dd: &[Score],
    rr: &[Score],
    ss: &[Score],
    scoring: &Scoring,
    goal: Score,
    from_j: usize,
    rightward: bool,
) -> Option<MatchPoint> {
    assert_eq!(cc.len(), rr.len());
    assert_eq!(dd.len(), ss.len());
    assert_eq!(cc.len(), dd.len());
    let gopen = scoring.gap_open();
    let n1 = cc.len();
    let idx: Box<dyn Iterator<Item = usize>> =
        if rightward { Box::new(from_j..n1) } else { Box::new((0..=from_j.min(n1 - 1)).rev()) };
    for j in idx {
        let h_total = cc[j] + rr[j];
        if h_total == goal {
            return Some(MatchPoint {
                j,
                total: h_total,
                forward_score: cc[j],
                state: EdgeState::Diagonal,
            });
        }
        let g_total = dd[j] + ss[j] + gopen;
        if g_total == goal {
            return Some(MatchPoint {
                j,
                total: g_total,
                forward_score: dd[j],
                state: EdgeState::GapS1,
            });
        }
        debug_assert!(
            h_total <= goal && g_total <= goal,
            "combined score {h_total}/{g_total} exceeds goal {goal}: goal is not the optimum"
        );
    }
    None
}

/// Incremental goal matcher for orthogonal execution: columns of the
/// reverse half become available one at a time (right-to-left in Stage 4,
/// block-by-block in Stages 2-3), and the scan stops at the first hit.
#[derive(Debug)]
pub struct GoalMatcher<'a> {
    cc: &'a [Score],
    dd: &'a [Score],
    gopen: Score,
    goal: Score,
    /// Columns already examined without a hit.
    pub examined: usize,
}

impl<'a> GoalMatcher<'a> {
    /// New matcher over forward vectors `cc`/`dd` with the known `goal`.
    pub fn new(cc: &'a [Score], dd: &'a [Score], scoring: &Scoring, goal: Score) -> Self {
        assert_eq!(cc.len(), dd.len());
        GoalMatcher { cc, dd, gopen: scoring.gap_open(), goal, examined: 0 }
    }

    /// Offer the reverse values `(rr_j, ss_j)` for column `j`; returns the
    /// matched crosspoint if the goal is attained there.
    pub fn offer(&mut self, j: usize, rr_j: Score, ss_j: Score) -> Option<MatchPoint> {
        self.examined += 1;
        let h_total = self.cc[j] + rr_j;
        if h_total == self.goal {
            return Some(MatchPoint {
                j,
                total: h_total,
                forward_score: self.cc[j],
                state: EdgeState::Diagonal,
            });
        }
        let g_total = self.dd[j] + ss_j + self.gopen;
        if g_total == self.goal {
            return Some(MatchPoint {
                j,
                total: g_total,
                forward_score: self.dd[j],
                state: EdgeState::GapS1,
            });
        }
        debug_assert!(
            h_total <= self.goal && g_total <= self.goal,
            "combined score exceeds goal: goal is not the optimum"
        );
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::nw_global_typed;
    use crate::linear::{forward_vectors, reverse_vectors};
    use crate::scoring::NEG_INF;
    use crate::transcript::EdgeState as ES;

    const SC: Scoring = Scoring::paper();

    /// Full MM matching of a concrete partition; checks the matched total
    /// equals the true global score.
    fn check_matching(a: &[u8], b: &[u8]) -> MatchPoint {
        let i_star = a.len() / 2;
        let (cc, dd) = forward_vectors(&a[..i_star], b, &SC, ES::Diagonal);
        let (rr, ss) = reverse_vectors(&a[i_star..], b, &SC, ES::Diagonal);
        let mp = match_argmax(&cc, &dd, &rr, &ss, &SC);
        let (truth, _) = nw_global_typed(a, b, &SC, ES::Diagonal, ES::Diagonal);
        assert_eq!(mp.total, truth, "matched total != optimal global score");
        mp
    }

    #[test]
    fn argmax_equals_global_score_identical() {
        let mp = check_matching(b"ACGTACGT", b"ACGTACGT");
        assert_eq!(mp.state, ES::Diagonal);
        assert_eq!(mp.j, 4);
    }

    #[test]
    fn argmax_equals_global_score_with_indels() {
        check_matching(b"ACGTAAGGTTACGT", b"ACGTGGTTACGT");
        check_matching(b"ACGT", b"ACGTAAGGTTAC");
        check_matching(b"TTTTTTTT", b"ACGT");
    }

    #[test]
    fn gap_crossing_detected() {
        // A long vertical run must cross the middle row of a tall matrix.
        let a = b"AACCCCCCCCAA"; // 8 C's inserted relative to b
        let b = b"AAAA";
        let mp = check_matching(a, b);
        assert_eq!(mp.state, ES::GapS1, "split row falls inside the gap run");
    }

    #[test]
    fn goal_based_finds_same_total_as_argmax() {
        let a = b"GGATCCGATTACAGGATC";
        let b = b"GGATCGATTTACAGGTC";
        let i_star = a.len() / 2;
        let (cc, dd) = forward_vectors(&a[..i_star], b, &SC, ES::Diagonal);
        let (rr, ss) = reverse_vectors(&a[i_star..], b, &SC, ES::Diagonal);
        let mp = match_argmax(&cc, &dd, &rr, &ss, &SC);
        let goal = mp.total;
        let right = match_goal(&cc, &dd, &rr, &ss, &SC, goal, b.len(), false).unwrap();
        assert_eq!(right.total, goal);
        let left = match_goal(&cc, &dd, &rr, &ss, &SC, goal, 0, true).unwrap();
        assert_eq!(left.total, goal);
    }

    #[test]
    fn goal_not_reached_returns_none() {
        let cc = vec![0, 1];
        let dd = vec![NEG_INF, NEG_INF];
        let rr = vec![0, 0];
        let ss = vec![NEG_INF, NEG_INF];
        // goal larger than any attainable total
        assert!(match_goal(&cc, &dd, &rr, &ss, &SC, 10, 0, true).is_none());
    }

    #[test]
    fn incremental_matcher_stops_early() {
        let a = b"ACGTACGTACGTACGT";
        let b = b"ACGTACGTACGTACGT";
        let i_star = a.len() / 2;
        let (cc, dd) = forward_vectors(&a[..i_star], b, &SC, ES::Diagonal);
        let (rr, ss) = reverse_vectors(&a[i_star..], b, &SC, ES::Diagonal);
        let goal = match_argmax(&cc, &dd, &rr, &ss, &SC).total;
        let mut m = GoalMatcher::new(&cc, &dd, &SC, goal);
        let mut hit = None;
        for j in (0..=b.len()).rev() {
            if let Some(mp) = m.offer(j, rr[j], ss[j]) {
                hit = Some(mp);
                break;
            }
        }
        let hit = hit.unwrap();
        assert_eq!(hit.total, goal);
        // The perfect-diagonal match lies in the middle: scanning from the
        // right must stop before examining every column.
        assert!(m.examined <= b.len() / 2 + 2, "examined {} columns", m.examined);
    }

    #[test]
    fn tie_prefers_diagonal_state() {
        let cc = vec![5];
        let rr = vec![5];
        let dd = vec![7 - SC.gap_open()];
        let ss = vec![3];
        // h_total = 10, g_total = 7 - 3 + 3 + 3 = 10 -> tie, Diagonal wins.
        let mp = match_argmax(&cc, &dd, &rr, &ss, &SC);
        assert_eq!(mp.state, ES::Diagonal);
    }
}
