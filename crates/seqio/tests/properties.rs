//! Property tests for sequence I/O and generation.

use proptest::prelude::*;
use seqio::fasta;
use seqio::generate::{apply_block_ops, mutate, reverse_complement, BlockOp, HomologyParams};
use sw_core::sequence::ALPHABET;
use sw_core::Sequence;

fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"ACGTN".to_vec()), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FASTA write -> read is the identity on records.
    #[test]
    fn fasta_roundtrip(seqs in proptest::collection::vec(dna(300), 1..4)) {
        let records: Vec<Sequence> = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| Sequence::new(format!("rec{i}"), s.clone()).unwrap())
            .collect();
        let mut bytes = Vec::new();
        fasta::write_fasta(&mut bytes, &records).unwrap();
        let back = fasta::read_fasta(&bytes[..]).unwrap();
        prop_assert_eq!(back.len(), records.len());
        for (orig, parsed) in records.iter().zip(&back) {
            prop_assert_eq!(orig.bases(), parsed.bases());
            prop_assert_eq!(orig.name(), parsed.name());
        }
    }

    /// Mutation output stays within the alphabet and near the input size.
    #[test]
    fn mutate_stays_valid(seed in any::<u64>(), base in dna(500), snp in 0.0f64..0.5, indel in 0.0f64..0.05) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = HomologyParams { snp_rate: snp, indel_rate: indel, indel_mean_len: 5.0, insert_prob: 0.5 };
        let out = mutate(&mut rng, &base, &p);
        prop_assert!(out.iter().all(|b| ALPHABET.contains(b)));
        prop_assert!(out.len() <= 2 * base.len() + 200);
    }

    /// Reverse complement is an involution that preserves length.
    #[test]
    fn revcomp_involution(s in dna(400)) {
        let rc = reverse_complement(&s);
        prop_assert_eq!(rc.len(), s.len());
        prop_assert_eq!(reverse_complement(&rc), s);
    }

    /// Block operations never produce out-of-alphabet bases and respect
    /// simple length accounting.
    #[test]
    fn block_ops_preserve_alphabet(s in dna(300), start in 0usize..400, len in 0usize..200, to in 0usize..400) {
        for op in [
            BlockOp::Duplicate { start, len },
            BlockOp::Delete { start, len },
            BlockOp::Translocate { start, len, to },
            BlockOp::Invert { start, len },
        ] {
            let out = apply_block_ops(&s, &[op]);
            prop_assert!(out.iter().all(|b| ALPHABET.contains(b)));
            match op {
                BlockOp::Duplicate { .. } => prop_assert!(out.len() >= s.len()),
                BlockOp::Delete { .. } => prop_assert!(out.len() <= s.len()),
                _ => prop_assert_eq!(out.len(), s.len()),
            }
        }
    }
}
