//! Offline stand-in for the `rand` crate.
//!
//! The workspace pins its dependencies to in-repo path crates so that the
//! build works with no network access and no registry cache. This crate
//! implements exactly the subset of the `rand 0.8` API that the workspace
//! uses — `rngs::StdRng`, [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open integer ranges, and [`Rng::gen_bool`]
//! — with the same calling conventions, so the real crate can be swapped
//! back in without touching any call site.
//!
//! The generator is SplitMix64 (Steele et al., "Fast splittable
//! pseudorandom number generators"). It is not cryptographic, but it is
//! statistically solid enough for the sequence synthesis and property
//! tests here: seqio's statistical tests (SNP-rate and base-composition
//! windows over tens of kilobases) pass against it.

use std::ops::Range;

/// A seedable random number generator. Mirrors `rand::SeedableRng`,
/// restricted to the one constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Identical seeds produce
    /// identical streams on every platform.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension trait with the sampling helpers the workspace uses.
/// Mirrors `rand::Rng`.
pub trait Rng {
    /// Next raw 64-bit value from the stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open integer range `lo..hi`.
    ///
    /// # Panics
    /// Panics if the range is empty, matching `rand`'s behaviour.
    fn gen_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]: {p}");
        // 53 uniform mantissa bits, same construction as rand's f64 sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy {
    /// Sample uniformly from `range` using `rng`.
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end - range.start) as u64;
                // Debiased multiply-shift (Lemire). `span` is < 2^64 here
                // because the workspace never samples the full u64 domain.
                let threshold = span.wrapping_neg() % span;
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128) * (span as u128);
                    if (m as u64) >= threshold {
                        return range.start + ((m >> 64) as u64) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                let off = <u64 as UniformInt>::sample_range(rng, 0..span);
                ((range.start as i64) + off as i64) as $t
            }
        }
    )*};
}

impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    ///
    /// Unlike the real `StdRng` (which documents no cross-version stream
    /// stability anyway), the stream here is fixed forever: tests that
    /// assert on seeded output stay reproducible.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = rng.gen_range(0usize..4);
            assert!(v < 4);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_range_signed() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_rate_is_sane() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..=2_800).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(3usize..3);
    }
}
