// lint-fixture path=crates/cudalign/src/fixture.rs rule=* expect=0
//! A fixture that exercises every rule's *negative* space at once: no
//! rule may fire here.

/// Typed errors instead of panics.
#[derive(Debug)]
#[non_exhaustive]
pub enum CleanError {
    Missing,
}

pub fn decode(v: Option<u32>) -> Result<u32, CleanError> {
    v.ok_or(CleanError::Missing)
}

pub fn strings_and_comments() {
    // panic! .unwrap() std::fs thread::spawn Instant unsafe — comments are fine
    let s = "panic! .unwrap() std::fs thread::spawn Instant unsafe";
    let r = r#"panic! "quoted" .expect( "#;
    let c = '\'';
    let b = b'"';
    let _ = (s, r, c, b);
}

pub fn lifetimes_survive_masking<'a>(x: &'a str) -> &'a str {
    let _never_a_char_literal: &'static str = x;
    x
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        super::decode(Some(1)).unwrap();
    }
}
