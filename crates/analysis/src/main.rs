//! `cargo run -p analysis` — lint the workspace against the invariant
//! registry and exit non-zero on any violation.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: cargo run -p analysis [-- [--list-rules] [--format text|json] [ROOT]]\n\
         \n\
         Lints every crate source tree under ROOT (default: the enclosing\n\
         cargo workspace) against the repo invariant registry. `--format json`\n\
         prints one machine-readable report object instead of text. Exit codes:\n\
         0 = clean, 1 = violations found, 2 = usage or I/O error."
    );
    std::process::exit(2);
}

/// Find the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root_arg: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => list_rules = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && root_arg.is_none() => {
                root_arg = Some(PathBuf::from(other));
            }
            _ => usage(),
        }
    }

    if list_rules {
        for rule in analysis::rules() {
            println!("{:<24} {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = match root_arg.or_else(|| find_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("analysis: no cargo workspace found above {}", cwd.display());
            return ExitCode::from(2);
        }
    };

    match analysis::lint_workspace(&root) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json());
                return if report.findings.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                };
            }
            for finding in &report.findings {
                println!("{finding}");
            }
            println!(
                "analysis: {} file(s), {} violation(s), {} justified allow(s)",
                report.files,
                report.findings.len(),
                report.suppressed
            );
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("analysis: I/O error while scanning {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
