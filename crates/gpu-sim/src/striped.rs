//! Lane-striped, auto-vectorizable `i16` tile kernel.
//!
//! The scalar kernel in [`crate::kernel`] updates one `i32` cell at a time.
//! This module is the CPU analogue of the paper's internal-diagonal kernel,
//! organised like Farrar's striped SIMD layout (the scheme SSW uses): the
//! tile's rows are cut into [`LANES`] contiguous chunks and lane `l` of a
//! vector owns one row of chunk `l`, so vector `s` holds rows
//! `{l * seg + s}` for a band of `seg * LANES` rows. Columns of the tile
//! are streamed one at a time; all per-column state lives in fixed-size
//! `[i16; LANES]` arrays combined with saturating arithmetic and
//! `min`/`max` only — the exact shape LLVM's auto-vectorizer turns into
//! `psubsw` / `paddsw` / `pmaxsw` packed ops on any x86-64 baseline
//! target, with no nightly `std::simd` and no `unsafe`.
//!
//! # Why striped and not skewed
//!
//! A skewed (anti-diagonal) arrangement needs a one-lane shift of the
//! `E`/`H`/`H_diag` vectors on *every* step; on SSE2 those cross-vector
//! shuffles dominate the cell updates. In the striped layout the only
//! lane crossing is at segment position 0, i.e. **once per column**, and
//! the vertical (`F`) dependency that striping breaks is repaired by the
//! standard lazy-F pass. Each column is three sweeps over the `seg`
//! vectors of a band:
//!
//! 1. **Partial pass** — `H = max(diag + subst, E, F_partial)` where
//!    `F_partial` propagates only inside each lane's row chunk (seeded
//!    from the band-top border in lane 0, rail elsewhere).
//! 2. **Lazy-F fixpoint** — the carry `max(F - g_ext, H - g_first)` from
//!    each chunk's last row is shifted one lane and folded in until no
//!    element improves. Early exit is sound because the partial pass
//!    guarantees `F[s+1] >= F[s] - g_ext`; the `H`-opened term never
//!    needs re-propagation because `gap_first >= gap_ext` (checked by
//!    [`eligible`]) makes `F - g_ext` dominate `H - g_first` whenever `H`
//!    was itself raised to `F`.
//! 3. **Finalize** — `H = max(H, F)`, the next column's
//!    `E = max(E - g_ext, H - g_first)`, overflow trackers, and the
//!    local-best / watch trackers.
//!
//! # Query profile
//!
//! Pass 1's substitution term is a per-band *query profile*: for every
//! distinct database symbol, the band's `subst(a[r], c)` scores are
//! precomputed in striped order, so the hot loop does one indexed vector
//! load instead of a per-cell `subst` call. (The scalar kernel uses the
//! row-major [`QueryProfile`] the same way.) Profiles live in the
//! engine-owned [`ProfileCache`], keyed by the band's query bytes, so
//! tiles sharing a band row reuse one build instead of rebuilding per
//! tile — see the cache docs for the keying and invalidation rules.
//!
//! # Narrow-score overflow protocol
//!
//! Scores are rebased to `bias` (the largest finite `H` on the tile's
//! borders) and carried as saturating `i16`. Every finalized `H` feeds a
//! running lane-wise maximum and every finalized `E`/`F` a running
//! minimum; if either ever leaves the safe window `[i16::MIN + 4·P_MAX,
//! i16::MAX - 4·P_MAX]`, the tile *overflowed*: the kernel returns `None`
//! without touching the `i32` buses and the dispatcher re-runs the whole
//! tile on the scalar kernel. Inside the window no saturating op can clip
//! (each recurrence moves a checked value by at most `2·P_MAX`), so the
//! `i16` arithmetic is an exact shifted image of the `i32` recurrence and
//! committed tiles are bit-identical to the scalar kernel. Rail-valued
//! partial-`F` lanes are below the window and can only *lose* a `max`
//! against checked values, so they never leak into a committed result:
//! every lane's final `F` is a real chain value and is min-tracked.
//!
//! Unreachable (`NEG_INF`) gap states on the borders are *tightened*
//! before conversion: `F ← max(F, H - (G_first - G_ext))` yields the same
//! `max(F - G_ext, H - G_first)` on the first computed row for every
//! `F` at or below that bound, so the all-`NEG_INF` `F` row produced by
//! [`crate::kernel::local_borders`]/[`crate::kernel::global_borders`] does
//! not force a fallback. Unreachable *`H`* borders (reverse-origin gap
//! seeds) cannot be tightened — those tiles take the scalar path.
//!
//! The kernel covers the leading `height - height % LANES` rows over the
//! full tile width; the dispatcher finishes the remaining bottom sliver
//! (at most `LANES - 1` rows) with the scalar kernel, stitched through
//! the updated horizontal bus exactly like a vertically split tile pair.

use crate::kernel::{CellHE, CellHF};
use crate::striped8::{LANES8, V8};
use sw_core::full::better_endpoint;
use sw_core::scoring::{Score, Scoring, NEG_INF};

/// Vector width: 16 `i16` lanes = two 128-bit vectors on baseline x86-64,
/// one 256-bit vector with AVX2.
pub const LANES: usize = 16;

/// Largest scoring-parameter magnitude the striped kernel accepts. One
/// recurrence step moves a value by at most `2 * P_MAX`, which sizes the
/// saturation margin below.
pub const P_MAX: Score = 1024;

/// Rail margin: no intermediate of a chain rooted at an in-window value
/// can reach `i16::MIN`/`i16::MAX`, so saturating ops behave exactly.
const MARGIN: i32 = 4 * P_MAX;
const WIN_LO: i32 = i16::MIN as i32 + MARGIN;
const WIN_HI: i32 = i16::MAX as i32 - MARGIN;

/// Sentinel for unreachable partial-`F` lanes: pinned at the saturation
/// rail, below the window, so it loses every `max` against real values.
const RAIL: i16 = i16::MIN;

/// Rows per band: bounds the striped working set (four state arrays plus
/// the profile) to the L1/L2 cache while columns stream across the band.
/// Must be a multiple of [`LANES`].
///
/// Unit-test builds shrink this (and [`JCHUNK`]) so small tiles cross
/// several band/chunk boundaries; the production values are exercised by
/// the deterministic boundary test in `tests/properties.rs`.
#[cfg(not(test))]
pub(crate) const BAND: usize = 1024;
#[cfg(test)]
pub(crate) const BAND: usize = 32;

/// Column-chunk width for the i16-indexed local-best/watch trackers;
/// trackers are reduced and reset per chunk so a column index always
/// fits an `i16`. Test builds shrink it — see [`BAND`].
#[cfg(not(test))]
pub(crate) const JCHUNK: usize = 32_000;
#[cfg(test)]
pub(crate) const JCHUNK: usize = 64;

/// One striped vector: lane `l` holds a row of chunk `l`.
pub(crate) type V = [i16; LANES];

/// Can `compute_striped_columns` handle this tile shape and scoring?
///
/// The dispatcher in [`crate::kernel::compute_tile`] consults this before
/// attempting the striped path; ineligible tiles go straight to the scalar
/// kernel (`KernelPath::Scalar`). `gap_first >= gap_ext` is required for
/// the lazy-F early exit to be exact (see the module docs).
pub fn eligible(height: usize, width: usize, scoring: &Scoring) -> bool {
    let fits = |v: Score| (-P_MAX..=P_MAX).contains(&v);
    height >= LANES
        && width >= LANES
        && fits(scoring.match_score)
        && fits(scoring.mismatch_score)
        && fits(scoring.gap_first)
        && fits(scoring.gap_ext)
        && scoring.gap_first >= scoring.gap_ext
}

/// Result of the striped portion of a tile: the first `rows` rows
/// (`rows` is the largest multiple of [`LANES`] ≤ the tile height) over
/// the full width. The dispatcher finishes the `height % LANES` bottom
/// sliver on the scalar kernel.
pub(crate) struct StripedColumns {
    /// Rows computed and committed to the buses.
    pub rows: usize,
    /// Best cell of the striped rows (local mode), absolute coords.
    pub best: Option<(Score, usize, usize)>,
    /// First watched-score hit (scan order) in the striped rows.
    pub watch_hit: Option<(usize, usize)>,
    /// `H` at `(rows - 1, width - 1)` — the corner for a block below-right
    /// when the tile has no scalar sliver.
    pub corner_out: Score,
    /// The *original* left-border `H` at row `rows - 1`: the corner the
    /// scalar sliver starting at row `rows` must be seeded with.
    pub rem_corner: Score,
}

#[inline(always)]
fn lane_shift(v: V, insert: i16) -> V {
    let mut out = [insert; LANES];
    out[1..].copy_from_slice(&v[..LANES - 1]);
    out
}

/// The cross-chunk lazy-F carry: what flows into lane `l`, row 0 from
/// lane `l - 1`'s last row, given that row's stored `F` and partial `H`.
/// Lane 0 receives nothing (rail).
#[inline(always)]
fn lane_carry(fl: V, hl: V, ge16: i16, gf16: i16) -> V {
    let fl_sh = lane_shift(fl, RAIL);
    let hl_sh = lane_shift(hl, RAIL);
    let mut carry = [RAIL; LANES];
    for l in 0..LANES {
        let hf = hl_sh[l].max(fl_sh[l]);
        carry[l] = fl_sh[l].saturating_sub(ge16).max(hf.saturating_sub(gf16));
    }
    carry
}

/// Run the striped kernel over the leading `height - height % LANES` rows.
///
/// On success the affected bus segments are overwritten exactly as the
/// scalar kernel would have (bit-identical), and the remaining sliver is
/// the caller's job. On overflow returns `None` with `top`/`left`
/// untouched, so the caller can re-run the scalar kernel on pristine
/// borders.
#[allow(clippy::too_many_arguments)]
// mirror of the compute_tile signature
// Indexed `for s in 0..seg` / `for l in 0..LANES` loops over plain slices
// are the shape LLVM reliably turns into packed i16 ops here; the
// iterator forms clippy prefers have been observed to scalarize the lane
// loops (cmov chains instead of pmaxsw), so keep the index style.
#[allow(clippy::needless_range_loop)]
pub(crate) fn compute_striped_columns<const LOCAL: bool, const WATCH: bool>(
    a_tile: &[u8],
    b_tile: &[u8],
    row_offset: usize,
    col_offset: usize,
    scoring: &Scoring,
    watch: Option<Score>,
    corner: Score,
    top: &mut [CellHF],
    left: &mut [CellHE],
    cache: &mut ProfileCache,
) -> Option<StripedColumns> {
    let height = a_tile.len();
    let width = b_tile.len();
    let rows = height - height % LANES;
    debug_assert!(rows >= LANES && width >= LANES);
    debug_assert!(top.len() >= width && left.len() == height);

    // Rebase everything to the largest finite border H: upward drift within
    // a tile is bounded by min(height, width) * match, downward drift by the
    // gap run across the tile, and both must stay inside the i16 window.
    let mut bias = Score::MIN;
    for v in std::iter::once(corner)
        .chain(top[..width].iter().map(|c| c.h))
        .chain(left[..rows].iter().map(|c| c.h))
    {
        if v > NEG_INF / 2 {
            bias = bias.max(v);
        }
    }
    if bias == Score::MIN || bias.unsigned_abs() > (i32::MAX / 2) as u32 {
        return None;
    }
    let bias64 = bias as i64;
    // Local mode clamps H at absolute zero, which sits at `-bias` in
    // rebased space; once the borders carry scores past the window, 0 and
    // the border values no longer fit one i16 range together — genuine
    // narrow-score overflow, handled by the scalar fallback.
    let zero_rel = -bias64;
    if LOCAL && !(WIN_LO as i64..=WIN_HI as i64).contains(&zero_rel) {
        return None;
    }
    let zero16 = if LOCAL { zero_rel as i16 } else { 0 };
    let (gf, ge) = (scoring.gap_first, scoring.gap_ext);

    let rel_h = |v: Score| -> Option<i16> {
        let r = v as i64 - bias64;
        if (WIN_LO as i64..=WIN_HI as i64).contains(&r) {
            Some(r as i16)
        } else {
            None
        }
    };
    // Gap-state borders may be unreachable; raise them to the highest value
    // that still produces the same `max(G - ge, H - gf)` on the first
    // computed cell. The raised value sits within 2*P_MAX of its (checked)
    // H, so it is representable; values above the window are real overflow.
    // The first computed cell derives `tight - ge` from this border (the
    // tightening makes it dominate `H - gf` there) and that value is
    // min-tracked, so a border whose derived gap state already starts
    // below the window would be guaranteed to fail the final overflow
    // check — reject it up front so the tile goes straight to the scalar
    // kernel instead of computing the whole striped tile and discarding it.
    let rel_gap = |g: Score, h16: i16| -> Option<i16> {
        let tight = (g as i64 - bias64).max(h16 as i64 - (gf - ge) as i64);
        if tight > WIN_HI as i64 || tight - (ge as i64) < WIN_LO as i64 {
            None
        } else {
            Some(tight as i16)
        }
    };

    let mut th = vec![0i16; width];
    let mut tf = vec![0i16; width];
    for j in 0..width {
        let h16 = rel_h(top[j].h)?;
        th[j] = h16;
        tf[j] = rel_gap(top[j].f, h16)?;
    }
    let mut lh = vec![0i16; rows];
    let mut le = vec![0i16; rows];
    for i in 0..rows {
        let h16 = rel_h(left[i].h)?;
        lh[i] = h16;
        le[i] = rel_gap(left[i].e, h16)?;
    }
    let corner16 = rel_h(corner)?;
    let rem_corner = left[rows - 1].h;

    let gf16 = gf as i16;
    let ge16 = ge as i16;
    // A watched score outside the window can never equal an in-window H;
    // i16::MIN is below WIN_LO, so it cannot match in a committed tile
    // either (sub-window values force an overflow return).
    let watch16: i16 = match watch {
        Some(wv) => {
            let r = wv as i64 - bias64;
            if (WIN_LO as i64..=WIN_HI as i64).contains(&r) {
                r as i16
            } else {
                i16::MIN
            }
        }
        None => i16::MIN,
    };

    let mut mn = [i16::MAX; LANES];
    let mut mx = [i16::MIN; LANES];
    let mut best: Option<(Score, usize, usize)> = None;
    let mut watch_hit: Option<(usize, usize)> = None;

    let mut band_corner = corner16;
    let mut base = 0usize;
    while base < rows {
        let band_h = (rows - base).min(BAND);
        let seg = band_h / LANES;
        let a_band = &a_tile[base..base + band_h];

        // Striped query profile, from the engine-owned cache:
        // prof[k*seg + s][l] = subst(a_band[l*seg + s], c) for slot[c] == k.
        let (slot, prof) = cache.profile16(a_band, b_tile, scoring);

        // Band state, striped from the vertical-bus scratch. E is
        // pre-advanced one column (E at column 0 is a real cell value, so
        // it is min-tracked here); H loads are the previous column's H.
        let mut hload: Vec<V> = vec![[0; LANES]; seg];
        let mut hstore: Vec<V> = vec![[0; LANES]; seg];
        let mut ecur: Vec<V> = vec![[0; LANES]; seg];
        let mut fcur: Vec<V> = vec![[RAIL; LANES]; seg];
        for s in 0..seg {
            for l in 0..LANES {
                let r = base + l * seg + s;
                let h = lh[r];
                hload[s][l] = h;
                let e0 = (le[r] as i32 - ge).max(h as i32 - gf);
                ecur[s][l] = e0 as i16;
                mn[l] = mn[l].min(e0 as i16);
            }
        }

        let mut bh_: Vec<V> = vec![[zero16; LANES]; if LOCAL { seg } else { 0 }];
        let mut bj_: Vec<V> = vec![[-1; LANES]; if LOCAL { seg } else { 0 }];
        let mut wj_: Vec<V> = vec![[-1; LANES]; if WATCH { seg } else { 0 }];

        let jchunk = if LOCAL || WATCH { JCHUNK } else { width };
        // Lane-0 diagonal seed: the *pre-update* top-border H of the
        // previous column. Must be carried across chunk boundaries — by
        // the time a chunk ends, `th` already holds this band's bottom
        // row, so it cannot be re-read from the bus.
        let mut prev_top = band_corner;
        let mut cbase = 0usize;
        while cbase < width {
            let clen = (width - cbase).min(jchunk);
            if LOCAL {
                bh_.iter_mut().for_each(|v| *v = [zero16; LANES]);
                bj_.iter_mut().for_each(|v| *v = [-1; LANES]);
            }
            if WATCH {
                wj_.iter_mut().for_each(|v| *v = [-1; LANES]);
            }
            for jc in 0..clen {
                let j = cbase + jc;
                let k = slot[b_tile[j] as usize] as usize;
                let pr = &prof[k * seg..(k + 1) * seg];
                let cur_top = th[j];
                // Band-top F seed for lane 0 (row `base`); the window plus
                // MARGIN keeps this saturating form exact.
                let f0 = tf[j].saturating_sub(ge16).max(th[j].saturating_sub(gf16));

                // Pass 1: H with lane-chunk-partial F; store the partial
                // F *used* at each segment position.
                let mut v_f = [RAIL; LANES];
                v_f[0] = f0;
                let mut v_diag = lane_shift(hload[seg - 1], prev_top);
                for s in 0..seg {
                    let p = pr[s];
                    let e = ecur[s];
                    let mut h = [0i16; LANES];
                    for l in 0..LANES {
                        let mut x = v_diag[l].saturating_add(p[l]).max(e[l]).max(v_f[l]);
                        if LOCAL {
                            x = x.max(zero16);
                        }
                        h[l] = x;
                    }
                    v_diag = hload[s];
                    hstore[s] = h;
                    fcur[s] = v_f;
                    let mut f = [0i16; LANES];
                    for l in 0..LANES {
                        f[l] = v_f[l].saturating_sub(ge16).max(h[l].saturating_sub(gf16));
                    }
                    v_f = f;
                }

                // Pass 2: lazy-F across lane-chunk boundaries. The first
                // sweep always runs in full — pass 1 leaves rail lanes in
                // every stored F vector and the carry beats a rail — so it
                // is unconditional.
                let mut carry = lane_carry(fcur[seg - 1], hstore[seg - 1], ge16, gf16);
                for s in 0..seg {
                    let f = fcur[s];
                    let mut nf = [0i16; LANES];
                    for l in 0..LANES {
                        nf[l] = f[l].max(carry[l]);
                    }
                    fcur[s] = nf;
                    for l in 0..LANES {
                        carry[l] = nf[l].saturating_sub(ge16);
                    }
                }
                // Fixpoint tail for F chains crossing several chunk
                // boundaries. One vector comparison decides convergence:
                // the partial-F invariant F[s+1] >= F[s] - ge survives
                // every sweep, so a carry that cannot improve row 0
                // cannot improve any later row either.
                loop {
                    let carry0 = lane_carry(fcur[seg - 1], hstore[seg - 1], ge16, gf16);
                    let f0 = fcur[0];
                    let mut any = 0u16;
                    for l in 0..LANES {
                        any |= (carry0[l] > f0[l]) as u16;
                    }
                    if any == 0 {
                        break;
                    }
                    let mut carry = carry0;
                    for s in 0..seg {
                        let f = fcur[s];
                        let mut improves = 0u16;
                        for l in 0..LANES {
                            improves |= (carry[l] > f[l]) as u16;
                        }
                        if improves == 0 {
                            break;
                        }
                        let mut nf = [0i16; LANES];
                        for l in 0..LANES {
                            nf[l] = f[l].max(carry[l]);
                        }
                        fcur[s] = nf;
                        for l in 0..LANES {
                            carry[l] = nf[l].saturating_sub(ge16);
                        }
                    }
                }

                // Pass 3: finalize H, next-column E, trackers.
                let jc16 = jc as i16;
                let last_col = j + 1 == width;
                for s in 0..seg {
                    let f = fcur[s];
                    let hp = hstore[s];
                    let mut h = [0i16; LANES];
                    for l in 0..LANES {
                        h[l] = hp[l].max(f[l]);
                    }
                    hstore[s] = h;
                    if !last_col {
                        let e = ecur[s];
                        let mut en = [0i16; LANES];
                        for l in 0..LANES {
                            en[l] = e[l].saturating_sub(ge16).max(h[l].saturating_sub(gf16));
                        }
                        ecur[s] = en;
                        for l in 0..LANES {
                            mn[l] = mn[l].min(en[l].min(f[l]));
                            mx[l] = mx[l].max(h[l]);
                        }
                    } else {
                        for l in 0..LANES {
                            mn[l] = mn[l].min(f[l]);
                            mx[l] = mx[l].max(h[l]);
                        }
                    }
                    if LOCAL {
                        let bh = &mut bh_[s];
                        let bj = &mut bj_[s];
                        for l in 0..LANES {
                            let better = h[l] > bh[l];
                            bh[l] = if better { h[l] } else { bh[l] };
                            bj[l] = if better { jc16 } else { bj[l] };
                        }
                    }
                    if WATCH {
                        let wj = &mut wj_[s];
                        for l in 0..LANES {
                            let hit = h[l] == watch16 && wj[l] < 0;
                            wj[l] = if hit { jc16 } else { wj[l] };
                        }
                    }
                }
                th[j] = hstore[seg - 1][LANES - 1];
                tf[j] = fcur[seg - 1][LANES - 1];
                prev_top = cur_top;
                std::mem::swap(&mut hload, &mut hstore);
            }

            // Per-chunk reductions. `bj_` keeps each row's *first* column
            // achieving its chunk maximum; better_endpoint is a total
            // order, so folding row candidates in any order matches the
            // scalar scan.
            if LOCAL {
                for s in 0..seg {
                    for l in 0..LANES {
                        if bh_[s][l] > zero16 {
                            let cand = (
                                bias + bh_[s][l] as Score,
                                row_offset + base + l * seg + s,
                                col_offset + cbase + bj_[s][l] as usize,
                            );
                            if best.is_none_or(|b| better_endpoint(cand, b)) {
                                best = Some(cand);
                            }
                        }
                    }
                }
            }
            if WATCH {
                for s in 0..seg {
                    for l in 0..LANES {
                        if wj_[s][l] >= 0 {
                            let cand = (
                                row_offset + base + l * seg + s,
                                col_offset + cbase + wj_[s][l] as usize,
                            );
                            if watch_hit.is_none_or(|cur| cand < cur) {
                                watch_hit = Some(cand);
                            }
                        }
                    }
                }
            }
            cbase += clen;
        }

        // The next band's lane-0 diagonal seed is this band's original
        // left-border H at its last row — capture before de-striping.
        let next_corner = lh[base + band_h - 1];
        for s in 0..seg {
            for l in 0..LANES {
                let r = base + l * seg + s;
                lh[r] = hload[s][l];
                le[r] = ecur[s][l];
            }
        }
        band_corner = next_corner;
        base += band_h;
    }

    // Overflow check: any stored value outside the window means some
    // saturating op may have clipped — discard, the dispatcher re-runs the
    // tile on the scalar kernel. (H >= E and H >= F at every cell, so the
    // max only needs H and the min only needs E/F.)
    let mut lo_seen = i16::MAX;
    let mut hi_seen = i16::MIN;
    for l in 0..LANES {
        lo_seen = lo_seen.min(mn[l]);
        hi_seen = hi_seen.max(mx[l]);
    }
    if (lo_seen as i32) < WIN_LO || (hi_seen as i32) > WIN_HI {
        return None;
    }

    // Commit: rebase back to i32 and overwrite the buses exactly as the
    // scalar kernel would have.
    for j in 0..width {
        top[j] = CellHF { h: bias + th[j] as Score, f: bias + tf[j] as Score };
    }
    for i in 0..rows {
        left[i] = CellHE { h: bias + lh[i] as Score, e: bias + le[i] as Score };
    }

    Some(StripedColumns { rows, best, watch_hit, corner_out: top[width - 1].h, rem_corner })
}

/// Per-symbol substitution score rows, built once per tile and shared by
/// every row of the strip with the same query symbol.
///
/// The scalar kernel replaces its per-cell `scoring.subst(ai, bj)` call
/// with one indexed load from the profile row. The striped kernel builds
/// the same tables in striped order per band (see the module docs).
pub struct QueryProfile {
    /// Symbol → row slot; `u16::MAX` marks symbols absent from the tile.
    slot: [u16; 256],
    rows: Vec<Score>,
    width: usize,
}

impl QueryProfile {
    /// Precompute one score row per distinct symbol of `a_tile` against
    /// `b_tile`. Cost `O(distinct * width)`, amortized over the tile's
    /// rows.
    pub fn build(a_tile: &[u8], b_tile: &[u8], scoring: &Scoring) -> Self {
        let mut slot = [u16::MAX; 256];
        let mut rows: Vec<Score> = Vec::new();
        let mut count = 0u16;
        for &sym in a_tile {
            if slot[sym as usize] == u16::MAX {
                slot[sym as usize] = count;
                count += 1;
                rows.extend(b_tile.iter().map(|&bj| scoring.subst(sym, bj)));
            }
        }
        QueryProfile { slot, rows, width: b_tile.len() }
    }

    /// The score row for `sym`: `row(sym)[j] == scoring.subst(sym, b[j])`.
    ///
    /// `sym` must occur in the `a_tile` the profile was built from.
    #[inline(always)]
    pub fn row(&self, sym: u8) -> &[Score] {
        let s = self.slot[sym as usize] as usize;
        &self.rows[s * self.width..(s + 1) * self.width]
    }
}

/// Entries the profile cache keeps before evicting least-recently-used
/// bands. Tile schedules touch at most a handful of distinct query bands
/// before returning to one (a strip runner sweeps one band row-major; the
/// barrier engine interleaves the bands of one diagonal), so a small cap
/// bounds memory while still catching every reuse pattern we schedule.
const CACHE_CAP: usize = 8;

/// One cached query band: the owned `(scoring, band)` pair is the key
/// (compared fieldwise/bytewise, so the entry is self-validating and
/// needs no invalidation protocol), plus the lazily materialized striped
/// profile rows in both lane widths.
struct CacheEntry {
    scoring: Scoring,
    band: Vec<u8>,
    /// Symbol → i16 profile block index `k` (`u16::MAX` = not yet
    /// materialized); block `k` spans `rows16[k*seg..(k+1)*seg]` with
    /// `seg = band.len() / LANES`.
    slot16: [u16; 256],
    rows16: Vec<V>,
    /// Same for the i8×32 profile, with `seg = band.len() / LANES8`.
    slot8: [u16; 256],
    rows8: Vec<V8>,
}

impl CacheEntry {
    fn new(band: &[u8], scoring: &Scoring) -> Self {
        CacheEntry {
            scoring: *scoring,
            band: band.to_vec(),
            slot16: [u16::MAX; 256],
            rows16: Vec::new(),
            slot8: [u16::MAX; 256],
            rows8: Vec::new(),
        }
    }
}

/// Query-profile cache, keyed by the band's query bytes.
///
/// Both striped kernels spend `O(distinct_syms * band_rows)` per band
/// rebuilding the striped substitution profile before streaming columns.
/// Tiles of the same band row (strip runners walk row-major; stage-2/3
/// re-runs revisit stage-1 bands) share identical query bands, so the
/// engine owns one of these caches and threads it through
/// [`crate::kernel::compute_tile_cached`]: a hit skips the rebuild and
/// reuses the resident rows. Entries hold *both* the i8 and i16 variants,
/// each materialized lazily per database symbol on first use, so an
/// i8→i16 escalation of the same tile pays the band lookup once per
/// width, not a rebuild of what the other width already derived.
///
/// A lookup is a **hit** when the `(scoring, band)` entry already exists
/// (even if this call materializes rows for new database symbols) and a
/// **miss** when the entry had to be created. [`Scoring`] is part of the
/// key — scores are baked into the rows, so entries built under different
/// scorings are distinct, and interleaved tenants with different scorings
/// coexist instead of ping-ponging the cache to 100 % misses.
#[derive(Default)]
pub struct ProfileCache {
    entries: Vec<CacheEntry>,
    hits: u64,
    misses: u64,
}

impl ProfileCache {
    /// An empty cache. Cheap: nothing is allocated until the first lookup.
    pub fn new() -> Self {
        Self::default()
    }

    /// Band lookups that found a resident entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Band lookups that had to build a fresh entry.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Find-or-create the entry for `band`, leaving it at index 0
    /// (move-to-front LRU), and count the lookup.
    fn touch(&mut self, band: &[u8], scoring: &Scoring) {
        if let Some(i) = self.entries.iter().position(|e| e.scoring == *scoring && e.band == band) {
            self.hits += 1;
            if i != 0 {
                let e = self.entries.remove(i);
                self.entries.insert(0, e);
            }
        } else {
            self.misses += 1;
            self.entries.insert(0, CacheEntry::new(band, scoring));
            self.entries.truncate(CACHE_CAP);
        }
    }

    /// The i16 striped profile for `band`: returns `(slot, rows)` with
    /// `rows[slot[c]*seg + s][l] == subst(band[l*seg + s], c)` for every
    /// symbol `c` occurring in `b_tile`, where `seg = band.len() / LANES`.
    pub(crate) fn profile16(
        &mut self,
        band: &[u8],
        b_tile: &[u8],
        scoring: &Scoring,
    ) -> (&[u16; 256], &[V]) {
        debug_assert!(!band.is_empty() && band.len().is_multiple_of(LANES));
        self.touch(band, scoring);
        let e = &mut self.entries[0];
        let seg = e.band.len() / LANES;
        for &c in b_tile {
            if e.slot16[c as usize] == u16::MAX {
                e.slot16[c as usize] = (e.rows16.len() / seg) as u16;
                for s in 0..seg {
                    let mut v = [0i16; LANES];
                    for (l, x) in v.iter_mut().enumerate() {
                        *x = scoring.subst(e.band[l * seg + s], c) as i16;
                    }
                    e.rows16.push(v);
                }
            }
        }
        let e = &self.entries[0];
        (&e.slot16, &e.rows16)
    }

    /// The i8×32 striped profile for `band`; same contract as
    /// [`ProfileCache::profile16`] with `seg = band.len() / LANES8`.
    pub(crate) fn profile8(
        &mut self,
        band: &[u8],
        b_tile: &[u8],
        scoring: &Scoring,
    ) -> (&[u16; 256], &[V8]) {
        debug_assert!(!band.is_empty() && band.len().is_multiple_of(LANES8));
        self.touch(band, scoring);
        let e = &mut self.entries[0];
        let seg = e.band.len() / LANES8;
        for &c in b_tile {
            if e.slot8[c as usize] == u16::MAX {
                e.slot8[c as usize] = (e.rows8.len() / seg) as u16;
                for s in 0..seg {
                    let mut v = [0i8; LANES8];
                    for (l, x) in v.iter_mut().enumerate() {
                        *x = scoring.subst(e.band[l * seg + s], c) as i8;
                    }
                    e.rows8.push(v);
                }
            }
        }
        let e = &self.entries[0];
        (&e.slot8, &e.rows8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_rows_match_subst() {
        let sc = Scoring::paper();
        let a = b"ACGTACGTNN";
        let b = b"TTGACGTAC";
        let p = QueryProfile::build(a, b, &sc);
        for &ai in a.iter() {
            let row = p.row(ai);
            assert_eq!(row.len(), b.len());
            for (j, &bj) in b.iter().enumerate() {
                assert_eq!(row[j], sc.subst(ai, bj));
            }
        }
    }

    #[test]
    fn interleaved_scorings_share_the_cache_without_thrash() {
        // Two tenants with different scorings alternate lookups of the
        // same band: after each tenant's first (miss) lookup, every
        // subsequent lookup must hit, and each must get rows built from
        // its *own* scoring (no cross-tenant contamination).
        let sc_a = Scoring::paper();
        let sc_b = Scoring { match_score: sc_a.match_score + 1, ..sc_a };
        let band: Vec<u8> = (0..LANES).map(|i| b"ACGT"[i % 4]).collect();
        let b_tile = b"ACGT";
        let mut cache = ProfileCache::new();
        for round in 0..4 {
            for sc in [&sc_a, &sc_b] {
                let seg = band.len() / LANES;
                let (slot, rows) = cache.profile16(&band, b_tile, sc);
                for &c in b_tile.iter() {
                    let k = slot[c as usize] as usize;
                    for s in 0..seg {
                        for (l, &x) in rows[k * seg + s].iter().enumerate() {
                            assert_eq!(x, sc.subst(band[l * seg + s], c) as i16);
                        }
                    }
                }
                let _ = round;
            }
        }
        assert_eq!(cache.misses(), 2, "one build per (scoring, band)");
        assert_eq!(cache.hits(), 6, "every interleaved revisit must hit");
    }

    #[test]
    fn eligibility_gates_shape_and_scoring() {
        let sc = Scoring::paper();
        assert!(eligible(LANES, LANES, &sc));
        assert!(!eligible(LANES - 1, LANES, &sc));
        assert!(!eligible(LANES, LANES - 1, &sc));
        let wide = Scoring { match_score: P_MAX + 1, ..sc };
        assert!(!eligible(LANES, LANES, &wide));
        // Lazy-F exactness needs gap_first >= gap_ext.
        let inverted = Scoring { gap_first: 1, gap_ext: 3, ..sc };
        assert!(!eligible(LANES, LANES, &inverted));
    }
}
