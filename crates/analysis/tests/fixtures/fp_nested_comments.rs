// lint-fixture path=crates/gpu-sim/src/wavefront.rs rule=* expect=0
/* Outer block comment full of banned content:
   thread::spawn(|| {}), x.unwrap(), Instant::now()
   /* nested block: std::fs::File::open, panic!("boom"), OpenOptions::new() */
   still inside the outer comment after the nested close: SystemTime::now()
*/
pub fn quiet() -> u32 {
    7
}
