//! Persistent worker-pool executor.
//!
//! The engine used to spawn OS threads on *every* external diagonal (and
//! stages 3–5 did the same on every partition batch). That is exactly the
//! workload-balance overhead a persistent-kernel GPU design avoids: the
//! paper's performance rests on keeping every SM busy across millions of
//! diagonals with nothing but a cheap in-device barrier between them. This
//! module is the CPU analogue — a [`WorkerPool`] created once per pipeline
//! run, whose threads live for the whole run and receive per-diagonal work
//! through a queue/condvar handoff instead of `thread::spawn`.
//!
//! # Scoped execution
//!
//! Wavefront tasks borrow non-`'static` data (disjoint `&mut` segments of
//! the horizontal/vertical buses), so the pool exposes a crossbeam-style
//! scoped API: [`WorkerPool::scope`] hands the closure a [`Scope`] whose
//! [`Scope::spawn`] accepts `FnOnce() + Send + 'env` jobs. `scope` does
//! not return until every spawned job has either run to completion or been
//! dropped, which is the invariant that makes the internal lifetime
//! erasure sound (see the `SAFETY` note in [`Scope::spawn`]).
//!
//! The calling thread is itself one lane of the pool: while waiting for a
//! scope to drain it pops queued jobs and runs them inline. A pool with
//! one lane therefore executes everything on the caller, in spawn order —
//! pooled execution with `workers = 1` is *observationally identical* to
//! the old serial path, which is what the equivalence test suite pins.
//!
//! # Panics
//!
//! A panicking job no longer aborts the process (the old behaviour was
//! `.expect("wavefront worker panicked")` around a crossbeam scope).
//! Panics are caught in the worker, the first panic's message is recorded,
//! the scope's remaining jobs are cancelled (dropped unrun), and
//! [`WorkerPool::scope`] returns [`ExecError::WorkerPanic`]. The pool
//! itself is not poisoned: worker threads survive and the next scope runs
//! normally, so a pipeline can report a clean `PipelineError` and be
//! retried on the same pool.

use crate::ctrl::{CancelCause, CancelToken};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Failure surfaced by [`WorkerPool::scope`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// A job panicked; the payload is the panic message of the first
    /// panicking job (later jobs in the same scope were cancelled).
    WorkerPanic(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Counters accumulated over a pool's lifetime.
///
/// `busy_ratio` is the mean, over all scopes (handoffs), of
/// `occupied lanes / total lanes` — the CPU analogue of the engine's
/// block-level SM occupancy, aggregated at the scheduler instead of the
/// grid layout.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PoolStats {
    /// Concurrent execution slots, including the calling thread.
    pub lanes: usize,
    /// Number of `scope` calls — one per diagonal/batch handoff.
    pub scopes: u64,
    /// Jobs spawned across all scopes.
    pub tasks: u64,
    /// Jobs the calling thread ran inline while waiting for a scope.
    pub inline_tasks: u64,
    /// Jobs spawned with [`Scope::spawn_pinned`] — long-lived cooperative
    /// runners that only worker threads may execute.
    pub pinned_tasks: u64,
    /// Mean occupied-lane fraction per scope, in `[0, 1]`.
    pub busy_ratio: f64,
    /// Raw cumulative numerator behind `busy_ratio`: the sum over all
    /// scopes of `1000 * occupied lanes / total lanes`. Exposed so callers
    /// computing per-run deltas between two snapshots can subtract exact
    /// integers instead of un-averaging `busy_ratio` (which loses precision
    /// and races when several pipelines share one pool).
    pub busy_permille: u64,
    /// Jobs dropped without running: removed by [`Scope::cancel_queued`]
    /// or skipped after a sibling's panic. Cancelled jobs never count as
    /// occupied lanes in `busy_ratio`/`busy_permille`, so a run torn down
    /// mid-strip does not inflate a shared pool's utilization.
    pub cancelled_tasks: u64,
}

/// A lifetime-erased job plus the scope it belongs to.
struct QueuedJob {
    scope: Arc<ScopeState>,
    job: Box<dyn FnOnce() + Send + 'static>,
    /// Pinned jobs are cooperative long-lived runners (strip-lease mode):
    /// only dedicated worker threads may execute them, never a
    /// scope-draining caller, which must stay free to coordinate them.
    pinned: bool,
    /// Scope-FIFO sequence number, stamped at spawn. The queue preserves
    /// it, so the race detector can tag every bus event with the exact
    /// position of its job in the pool's total spawn order.
    #[cfg(feature = "race-check")]
    seq: u64,
}

/// Event-tagging context for the race detector (feature `race-check`):
/// which pool lane the calling thread is, and the FIFO sequence number of
/// the job it is currently executing. Lane 0 is every non-pool thread
/// (including scope callers draining inline); worker threads register
/// their 1-based lane index at startup.
#[cfg(feature = "race-check")]
pub mod trace {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(crate) static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        pub(crate) static LANE: Cell<usize> = const { Cell::new(0) };
        pub(crate) static CURRENT_SEQ: Cell<u64> = const { Cell::new(u64::MAX) };
    }

    /// Allocate the next scope-FIFO sequence number.
    pub(crate) fn next_seq() -> u64 {
        NEXT_SEQ.fetch_add(1, Ordering::Relaxed)
    }

    /// `(lane, seq)` of the pool job the calling thread is executing;
    /// `seq` is `u64::MAX` outside any job (e.g. the engine's commit
    /// loop on the caller thread).
    pub fn current() -> (usize, u64) {
        (LANE.with(Cell::get), CURRENT_SEQ.with(Cell::get))
    }
}

/// Book-keeping for one `scope` call.
struct ScopeState {
    /// Jobs spawned but not yet finished (or cancelled).
    pending: Mutex<usize>,
    /// Signalled when `pending` reaches zero.
    done: Condvar,
    /// First panic message; later panics in the same scope are dropped.
    panic: Mutex<Option<String>>,
    /// Fast-path flag: once set, queued jobs of this scope are cancelled.
    panicked: AtomicBool,
    /// Jobs spawned into this scope (for the busy-lane statistic).
    spawned: AtomicU64,
    /// Jobs of this scope dropped without running (cancelled or skipped
    /// after a sibling panic) — subtracted from `spawned` when the scope
    /// settles its busy-lane contribution.
    cancelled: AtomicU64,
}

/// Lock `m`, recovering from poisoning. Job panics are caught by
/// `run_item` and surfaced as [`ExecError::WorkerPanic`], so a poisoned
/// pool mutex carries no extra information — the counters and queue it
/// guards are valid and must stay usable for the scopes that follow.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ScopeState {
    fn new() -> Arc<Self> {
        Arc::new(ScopeState {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
            panicked: AtomicBool::new(false),
            spawned: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
        })
    }

    /// Mark one job finished (run, cancelled, or panicked).
    fn finish_one(&self) {
        let mut pending = lock_unpoisoned(&self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<QueuedJob>>,
    /// Signalled when the queue gains work or the pool shuts down.
    available: Condvar,
    shutdown: AtomicBool,
    scopes: AtomicU64,
    tasks: AtomicU64,
    inline_tasks: AtomicU64,
    pinned_tasks: AtomicU64,
    /// Sum over scopes of `1000 * occupied_lanes / lanes`.
    busy_millis: AtomicU64,
    /// Jobs dropped without running, across all scopes.
    cancelled_tasks: AtomicU64,
}

impl PoolShared {
    /// Pop the oldest *non-pinned* queued job. Scope-draining callers use
    /// this: a pinned runner executed inline would occupy the very thread
    /// that must keep coordinating it (see [`Scope::spawn_pinned`]).
    fn try_pop_unpinned(&self) -> Option<QueuedJob> {
        let mut queue = lock_unpoisoned(&self.queue);
        let idx = queue.iter().position(|item| !item.pinned)?;
        queue.remove(idx)
    }

    /// Execute (or cancel) one job and settle its scope accounting.
    fn run_item(&self, item: QueuedJob, inline: bool) {
        #[cfg(feature = "race-check")]
        trace::CURRENT_SEQ.with(|s| s.set(item.seq));
        #[cfg(feature = "race-check")]
        let QueuedJob { scope, job, pinned: _, seq: _ } = item;
        #[cfg(not(feature = "race-check"))]
        let QueuedJob { scope, job, pinned: _ } = item;
        if scope.panicked.load(Ordering::Acquire) {
            // A sibling already failed: cancel by dropping the closure
            // (releasing its borrows) without running it.
            drop(job);
            scope.cancelled.fetch_add(1, Ordering::Relaxed);
            self.cancelled_tasks.fetch_add(1, Ordering::Relaxed);
            scope.finish_one();
            return;
        }
        if inline {
            self.inline_tasks.fetch_add(1, Ordering::Relaxed);
        }
        let outcome = catch_unwind(AssertUnwindSafe(move || {
            fault::fire_if_armed();
            job();
        }));
        #[cfg(feature = "race-check")]
        trace::CURRENT_SEQ.with(|s| s.set(u64::MAX));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>")
                .to_owned();
            let mut first = lock_unpoisoned(&scope.panic);
            if first.is_none() {
                *first = Some(msg);
            }
            scope.panicked.store(true, Ordering::Release);
        }
        scope.finish_one();
    }

    /// Long-lived worker body: pop and run until shutdown.
    fn worker_loop(&self) {
        loop {
            let item = {
                let mut queue = lock_unpoisoned(&self.queue);
                loop {
                    if let Some(item) = queue.pop_front() {
                        break item;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    queue = self.available.wait(queue).unwrap_or_else(|e| e.into_inner());
                }
            };
            self.run_item(item, false);
        }
    }
}

/// Spawn handle passed to the closure of [`WorkerPool::scope`].
///
/// `'env` is the lifetime of the environment jobs may borrow; it outlives
/// the `scope` call, and `scope` blocks until all jobs are settled, so the
/// borrows never dangle.
pub struct Scope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, like `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Queue `job` for execution on the pool. Jobs run in FIFO spawn
    /// order across lanes (the order guarantee stage pipelines such as
    /// [`crate::multi`] rely on for deadlock freedom).
    pub fn spawn<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.spawn_impl(job, false);
    }

    /// Like [`Scope::spawn`], but the job may only be executed by a
    /// dedicated pool *worker thread* — the scope-draining caller skips
    /// it. This is the strip-lease mode of the pool: the wavefront strip
    /// scheduler spawns one long-lived runner per lease, and the caller
    /// thread must stay available to deliver results and coordinate
    /// hand-offs instead of disappearing into a runner loop.
    ///
    /// A pinned job that never gets a worker thread stays queued; callers
    /// using pinned jobs must be able to finish their algorithm without
    /// them and call [`Scope::cancel_queued`] before returning from the
    /// scope body, or the scope cannot settle.
    pub fn spawn_pinned<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.spawn_impl(job, true);
    }

    fn spawn_impl<F>(&self, job: F, pinned: bool)
    where
        F: FnOnce() + Send + 'env,
    {
        {
            let mut pending = lock_unpoisoned(&self.state.pending);
            *pending += 1;
        }
        self.state.spawned.fetch_add(1, Ordering::Relaxed);
        self.pool.shared.tasks.fetch_add(1, Ordering::Relaxed);
        if pinned {
            self.pool.shared.pinned_tasks.fetch_add(1, Ordering::Relaxed);
        }
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(job);
        // SAFETY: the only consumer of this box is `PoolShared::run_item`,
        // which either calls or drops it, always before decrementing the
        // scope's `pending` count; `WorkerPool::scope` does not return (or
        // unwind) until `pending == 0`. Every borrow with lifetime `'env`
        // inside the closure therefore ends before `scope` returns, and
        // `'env` outlives the `scope` call by construction, so erasing the
        // lifetime to `'static` never lets a borrow dangle.
        let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
        {
            let mut queue = lock_unpoisoned(&self.pool.shared.queue);
            queue.push_back(QueuedJob {
                scope: Arc::clone(&self.state),
                job,
                pinned,
                #[cfg(feature = "race-check")]
                seq: trace::next_seq(),
            });
        }
        self.pool.shared.available.notify_one();
    }

    /// Remove this scope's not-yet-started jobs from the pool queue,
    /// dropping their closures (releasing the borrows) without running
    /// them. Callers that spawn pinned runner jobs invoke this once their
    /// algorithm is complete: a pinned job that never reached a worker
    /// thread would otherwise keep the scope's pending count above zero
    /// forever, because the caller's inline drain skips pinned work.
    pub fn cancel_queued(&self) {
        let removed: Vec<QueuedJob> = {
            let mut queue = lock_unpoisoned(&self.pool.shared.queue);
            let mut kept = VecDeque::with_capacity(queue.len());
            let mut removed = Vec::new();
            // lint: allow(cancel-coverage): drains the job queue under its lock; this IS the cancellation path
            while let Some(item) = queue.pop_front() {
                if Arc::ptr_eq(&item.scope, &self.state) {
                    removed.push(item);
                } else {
                    kept.push_back(item);
                }
            }
            *queue = kept;
            removed
        };
        // Settle outside the queue lock: dropping a closure runs arbitrary
        // destructors, and finish_one takes the scope's pending lock.
        for item in removed {
            drop(item.job);
            item.scope.cancelled.fetch_add(1, Ordering::Relaxed);
            self.pool.shared.cancelled_tasks.fetch_add(1, Ordering::Relaxed);
            item.scope.finish_one();
        }
    }

    /// True once any job of this scope has panicked (the scope will
    /// return [`ExecError::WorkerPanic`]). Cooperative long-lived jobs
    /// poll this so they stop waiting for a peer that died.
    pub fn panicked(&self) -> bool {
        self.state.panicked.load(Ordering::Acquire)
    }
}

/// A persistent pool of worker threads with a scoped spawn API.
///
/// Create one per pipeline run and thread it through every stage; see the
/// module docs for semantics.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
    lanes: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("lanes", &self.lanes).finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Build a pool with `workers` lanes; `0` means one lane per available
    /// CPU. The calling thread is one of the lanes, so `workers - 1`
    /// threads are spawned; `workers = 1` spawns none and runs everything
    /// inline on the caller.
    pub fn new(workers: usize) -> Self {
        let lanes = match workers {
            0 => std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
            w => w,
        };
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            scopes: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            inline_tasks: AtomicU64::new(0),
            pinned_tasks: AtomicU64::new(0),
            busy_millis: AtomicU64::new(0),
            cancelled_tasks: AtomicU64::new(0),
        });
        let mut threads = Vec::with_capacity(lanes.saturating_sub(1));
        // lint: allow(cancel-coverage): bounded spawn fan-out, one worker thread per lane
        for i in 1..lanes {
            let shared = Arc::clone(&shared);
            match std::thread::Builder::new().name(format!("gpu-sim-worker-{i}")).spawn(move || {
                #[cfg(feature = "race-check")]
                trace::LANE.with(|l| l.set(i));
                shared.worker_loop()
            }) {
                Ok(handle) => threads.push(handle),
                // Out of native threads: degrade to the lanes that did
                // start. The caller is always a lane of its own, so the
                // pool makes progress even with zero spawned workers.
                Err(_) => break,
            }
        }
        let lanes = threads.len() + 1;
        WorkerPool { shared, threads, lanes }
    }

    /// Concurrent execution slots, including the calling thread.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Run `body`, giving it a [`Scope`] to spawn borrowing jobs on the
    /// pool, and block until every spawned job has settled. While blocked,
    /// the calling thread drains the queue itself (it is a pool lane).
    ///
    /// Returns `body`'s value, or [`ExecError::WorkerPanic`] if any job
    /// panicked (in which case the scope's remaining jobs were cancelled).
    /// If `body` itself panics, the panic is re-raised — after the spawned
    /// jobs settle, so no borrow escapes.
    pub fn scope<'env, R>(&self, body: impl FnOnce(&Scope<'_, 'env>) -> R) -> Result<R, ExecError> {
        let state = ScopeState::new();
        let scope = Scope { pool: self, state: Arc::clone(&state), _env: PhantomData };
        self.shared.scopes.fetch_add(1, Ordering::Relaxed);

        let result = catch_unwind(AssertUnwindSafe(|| body(&scope)));

        // Participate: run queued jobs (ours or a sibling scope's) while
        // this scope still has pending work.
        // lint: allow(cancel-coverage): terminates when pending hits zero; cancellation drains pending via cancel_queued
        loop {
            if let Some(item) = self.shared.try_pop_unpinned() {
                self.shared.run_item(item, true);
                continue;
            }
            let pending = lock_unpoisoned(&state.pending);
            if *pending == 0 {
                break;
            }
            // The remaining jobs are held by worker threads; wait for the
            // count to drop, then re-check the queue (nested scopes may
            // have queued more work in the meantime).
            drop(state.done.wait(pending).unwrap_or_else(|e| e.into_inner()));
        }

        // Jobs dropped unrun (cancel_queued, panicked-sibling skips) never
        // occupied a lane; counting them would let a torn-down run inflate
        // a shared pool's busy ratio.
        let spawned = state.spawned.load(Ordering::Relaxed);
        let ran = spawned.saturating_sub(state.cancelled.load(Ordering::Relaxed));
        let busy = (ran as usize).min(self.lanes);
        self.shared.busy_millis.fetch_add((1000 * busy / self.lanes) as u64, Ordering::Relaxed);

        let body_value = match result {
            Ok(v) => v,
            Err(payload) => resume_unwind(payload),
        };
        let first_panic = lock_unpoisoned(&state.panic).take();
        match first_panic {
            Some(msg) => Err(ExecError::WorkerPanic(msg)),
            None => Ok(body_value),
        }
    }

    /// Snapshot the pool's utilization counters.
    pub fn stats(&self) -> PoolStats {
        let scopes = self.shared.scopes.load(Ordering::Relaxed);
        let busy_millis = self.shared.busy_millis.load(Ordering::Relaxed);
        PoolStats {
            lanes: self.lanes,
            scopes,
            tasks: self.shared.tasks.load(Ordering::Relaxed),
            inline_tasks: self.shared.inline_tasks.load(Ordering::Relaxed),
            pinned_tasks: self.shared.pinned_tasks.load(Ordering::Relaxed),
            busy_ratio: if scopes == 0 {
                0.0
            } else {
                busy_millis as f64 / (1000.0 * scopes as f64)
            },
            busy_permille: busy_millis,
            cancelled_tasks: self.shared.cancelled_tasks.load(Ordering::Relaxed),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        // lint: allow(cancel-coverage): joins a fixed set of workers after the shutdown flag is set above
        for handle in self.threads.drain(..) {
            // A worker that panicked outside `catch_unwind` cannot happen
            // (jobs are wrapped), but don't double-panic on join anyway.
            let _ = handle.join();
        }
    }
}

/// Time source for [`spawn_watchdog`]: returns the elapsed time on the
/// supervisor's injected clock. Kept as a closure (not `std::time`
/// directly) so tests drive deadlines and stall budgets with a manual
/// clock and production injects a monotonic one — no wall-clock reads in
/// the engine's hot paths either way.
pub type TimeSource = Arc<dyn Fn() -> Duration + Send + Sync>;

/// Handle of a supervision watchdog thread; stops and joins on drop.
pub struct Watchdog {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchdog").finish_non_exhaustive()
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        {
            let (flag, cv) = &*self.stop;
            *lock_unpoisoned(flag) = true;
            cv.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Spawn a watchdog that cancels `token` when the run's `deadline`
/// expires or when the token's heartbeat stops moving for a whole
/// `stall_budget` (both measured on the injected `now` time source,
/// relative to `now()` at spawn). The thread wakes every `poll` interval
/// on a condvar (so dropping the handle stops it promptly, without a
/// bare sleep) and exits as soon as the token is cancelled — by itself
/// or by anyone else.
///
/// Workers never read a clock: they only bump the token's heartbeat.
/// The watchdog is the single place where time meets the run, which is
/// what keeps deadlines testable under a manual clock.
pub fn spawn_watchdog(
    token: CancelToken,
    now: TimeSource,
    deadline: Option<Duration>,
    stall_budget: Option<Duration>,
    poll: Duration,
) -> Watchdog {
    let stop: Arc<(Mutex<bool>, Condvar)> = Arc::new((Mutex::new(false), Condvar::new()));
    let stop2 = Arc::clone(&stop);
    let start = now();
    let handle = std::thread::Builder::new()
        .name("cudalign-watchdog".into())
        .spawn(move || {
            let (flag, cv) = &*stop2;
            let mut last_beats = token.beats();
            let mut last_progress = start;
            loop {
                {
                    let stopped = lock_unpoisoned(flag);
                    if *stopped || token.is_cancelled() {
                        return;
                    }
                    // Park for one poll interval (or an early stop).
                    let _ = cv.wait_timeout(stopped, poll).unwrap_or_else(|e| e.into_inner());
                }
                if token.is_cancelled() {
                    return;
                }
                let t = (now)();
                if let Some(dl) = deadline {
                    if t.saturating_sub(start) >= dl {
                        token.cancel_at(
                            CancelCause::DeadlineExceeded { budget_ms: dl.as_millis() as u64 },
                            t.as_nanos() as u64,
                        );
                        return;
                    }
                }
                if let Some(budget) = stall_budget {
                    let beats = token.beats();
                    if beats != last_beats {
                        last_beats = beats;
                        last_progress = t;
                    } else if t.saturating_sub(last_progress) >= budget {
                        token.cancel_at(
                            CancelCause::Stalled { budget_ms: budget.as_millis() as u64 },
                            t.as_nanos() as u64,
                        );
                        return;
                    }
                }
            }
        })
        .ok();
    Watchdog { stop, handle }
}

/// A long-lived named service thread (a serve-queue runner, a metrics
/// flusher) spawned through the executor's sanctioned spawn point — the
/// `thread-isolation` lint bans `thread::spawn` everywhere else, so all
/// OS threads in the system are accounted for here.
pub struct ServiceThread {
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ServiceThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceThread").finish_non_exhaustive()
    }
}

impl ServiceThread {
    /// Block until the service body returns. The body is responsible for
    /// observing its own shutdown signal; joining does not request one.
    pub fn join(mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServiceThread {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Spawn a named long-lived service thread, or `None` when the OS is out
/// of native threads (callers degrade — e.g. a serve queue runs with the
/// runners that did start). Unlike pool lanes, the body is an arbitrary
/// long-running loop, not a borrowed job; it must watch a shutdown flag
/// of its own.
pub fn spawn_service(name: &str, body: impl FnOnce() + Send + 'static) -> Option<ServiceThread> {
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(body)
        .ok()
        .map(|handle| ServiceThread { handle: Some(handle) })
}

/// Test-only fault injection.
///
/// `cfg(test)` does not cross crates, so integration tests (the
/// `tests/tests/` crate) need a runtime hook to make "a kernel panics in a
/// worker" happen on demand. Arming is process-global; tests that use it
/// must serialize themselves (e.g. behind a shared mutex). Disarmed, the
/// cost is one relaxed atomic load per job.
#[doc(hidden)]
pub mod fault {
    use super::AtomicI64;
    use std::sync::atomic::Ordering;

    /// `< 0`: disarmed. `>= 0`: the job that decrements it to exactly
    /// zero panics.
    static BUDGET: AtomicI64 = AtomicI64::new(-1);

    /// Message carried by injected panics, for asserting provenance.
    pub const INJECTED_MSG: &str = "injected worker fault (gpu_sim::exec::fault)";

    /// Arm the hook: the `n`-th pool job executed from now (0-based)
    /// panics with [`INJECTED_MSG`].
    pub fn arm(n: u64) {
        BUDGET.store(n as i64, Ordering::SeqCst);
    }

    /// Disarm the hook.
    pub fn disarm() {
        BUDGET.store(-1, Ordering::SeqCst);
        #[cfg(feature = "race-check")]
        disarm_reorder();
    }

    /// `(r, c)` of a block the wavefront engine must run one external
    /// diagonal EARLY, encoded as `r * 2^32 + c + 1`; `0` = disarmed.
    #[cfg(feature = "race-check")]
    static REORDER: super::AtomicU64 = super::AtomicU64::new(0);

    /// Arm the reorder fault: the wavefront engine performs block
    /// `(r, c)`'s bus transactions one external diagonal early — before
    /// the barrier that should order its neighbours' writes first — so
    /// the race detector provably observes a violation. The phantom run
    /// touches only the detector's shadow state; engine output is
    /// unchanged. Requires `r > 0 && c > 0` (a border block has nothing
    /// to read early).
    #[cfg(feature = "race-check")]
    pub fn arm_reorder_block(r: usize, c: usize) {
        assert!(r > 0 && c > 0, "reorder fault needs an interior block");
        REORDER.store(((r as u64) << 32) | (c as u64 + 1), Ordering::SeqCst);
    }

    /// Disarm the reorder fault.
    #[cfg(feature = "race-check")]
    pub fn disarm_reorder() {
        REORDER.store(0, Ordering::SeqCst);
        EARLY_PUBLISH.store(0, Ordering::SeqCst);
    }

    /// `(r, c)` of a block whose bottom-right border hand-off the strip
    /// scheduler must model one publish EARLY; same encoding as the
    /// reorder fault; `0` = disarmed.
    #[cfg(feature = "race-check")]
    static EARLY_PUBLISH: super::AtomicU64 = super::AtomicU64::new(0);

    /// Arm the early-publish fault: when the strip engine is about to
    /// compute block `(r, c)`, it first replays its *right neighbour's*
    /// bus reads — as if `(r, c)`'s border flag had been published one
    /// block early, before the border was written. The phantom touches
    /// only the race detector's shadow state (engine output is
    /// unchanged); the detector must flag the neighbour's reads as
    /// wrong-producer. Requires `c + 1` to be a valid block column.
    #[cfg(feature = "race-check")]
    pub fn arm_early_publish(r: usize, c: usize) {
        EARLY_PUBLISH.store(((r as u64) << 32) | (c as u64 + 1), Ordering::SeqCst);
    }

    /// The armed early-publish target, if any.
    #[cfg(feature = "race-check")]
    pub(crate) fn early_publish_block() -> Option<(usize, usize)> {
        let v = EARLY_PUBLISH.load(Ordering::Relaxed);
        (v != 0).then(|| ((v >> 32) as usize, (v & 0xFFFF_FFFF) as usize - 1))
    }

    /// The armed reorder target, if any.
    #[cfg(feature = "race-check")]
    pub(crate) fn reorder_block() -> Option<(usize, usize)> {
        let v = REORDER.load(Ordering::Relaxed);
        (v != 0).then(|| ((v >> 32) as usize, (v & 0xFFFF_FFFF) as usize - 1))
    }

    /// One deterministic chaos schedule: which faults to arm, where to
    /// cancel, and what shape/worker class to run — expanded from a seed
    /// by [`chaos_plan`]. The harness (`tests/tests/chaos.rs`) maps each
    /// field onto the concrete hooks (`cudalign::storage::fault`, this
    /// module, `RunControl`); keeping the schedule here makes every CI
    /// failure reproducible from its seed alone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ChaosPlan {
        /// The seed this plan was expanded from.
        pub seed: u64,
        /// Worker-count class: one of {1, 2, 4, 8}.
        pub workers: usize,
        /// Shape class index (harness-defined sequence-pair shapes).
        pub shape: u8,
        /// Storage write fault: `(nth_write, kind, times)` where kind
        /// 0 = torn (keep `times` bytes), 1 = ENOSPC, 2 = transient
        /// (retryable, `times` occurrences).
        pub write_fault: Option<(u64, u8, u32)>,
        /// Corrupt the `nth` checksummed read.
        pub read_corrupt: Option<u64>,
        /// Kill stage 1 at this external diagonal (storage kill hook).
        pub kill_diagonal: Option<u64>,
        /// Cancel the run's token after this many stage-1 diagonals.
        pub cancel_after_diagonal: Option<u64>,
        /// Wall-clock deadline for the run, in milliseconds.
        pub deadline_ms: Option<u64>,
        /// Panic the `nth` pool job ([`arm`]).
        pub worker_panic: Option<u64>,
    }

    /// Expand `seed` into a [`ChaosPlan`] with a splittable LCG. Every
    /// field is a pure function of the seed; two fault families at most
    /// are armed per plan so each schedule's failure is attributable.
    pub fn chaos_plan(seed: u64) -> ChaosPlan {
        let mut x = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493) | 1;
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        let workers = [1usize, 2, 4, 8][(next() % 4) as usize];
        let shape = (next() % 6) as u8;
        // Pick up to two fault families (0..=5; 6..=7 = none) so compound
        // schedules exist but every run stays attributable.
        let mut write_fault = None;
        let mut read_corrupt = None;
        let mut kill_diagonal = None;
        let mut cancel_after_diagonal = None;
        let mut deadline_ms = None;
        let mut worker_panic = None;
        // lint: allow(cancel-coverage): bounded to two iterations; chaos-schedule fault picker, not a hot path
        for _ in 0..2 {
            match next() % 8 {
                0 => {
                    let kind = (next() % 3) as u8;
                    let times = if kind == 0 { next() % 40 } else { 1 + next() % 3 } as u32;
                    write_fault = Some((next() % 6, kind, times));
                }
                1 => read_corrupt = Some(next() % 4),
                2 => kill_diagonal = Some(next() % 64),
                3 => cancel_after_diagonal = Some(next() % 64),
                4 => deadline_ms = Some(1 + next() % 40),
                5 => worker_panic = Some(next() % 24),
                _ => {}
            }
        }
        ChaosPlan {
            seed,
            workers,
            shape,
            write_fault,
            read_corrupt,
            kill_diagonal,
            cancel_after_diagonal,
            deadline_ms,
            worker_panic,
        }
    }

    /// Called by the pool before each job.
    pub(crate) fn fire_if_armed() {
        if BUDGET.load(Ordering::Relaxed) < 0 {
            return;
        }
        if BUDGET.fetch_sub(1, Ordering::SeqCst) == 0 {
            // lint: allow(no-panics): the injected panic IS the fault this
            // hook exists to deliver; run_item catches it as WorkerPanic.
            panic!("{}", INJECTED_MSG);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Drop-counter capture: proves a job closure (and everything it
    /// borrowed) was destroyed, whether the job ran or was cancelled.
    struct Canary<'a>(&'a AtomicUsize);
    impl Drop for Canary<'_> {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Regression for the `SAFETY` note on [`Scope::spawn`]'s
    /// lifetime-erasing transmute: `scope()` must not return while any
    /// job — and with it any `'env` borrow — is still alive. Slow jobs
    /// keep workers busy past the body's exit; the canaries prove every
    /// closure (with its captures) was destroyed before `scope()`
    /// returned, and the post-scope `&mut` reuse of `data` is the
    /// borrow-checker's half of the argument (it would not compile if
    /// the `'env` borrows could escape the call).
    #[test]
    fn scope_borrows_end_before_scope_returns() {
        for workers in [1usize, 8] {
            let pool = WorkerPool::new(workers);
            let mut data = [0u64; 24];
            let dropped = AtomicUsize::new(0);
            pool.scope(|s| {
                for (i, slot) in data.iter_mut().enumerate() {
                    let canary = Canary(&dropped);
                    s.spawn(move || {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        *slot = i as u64 + 1;
                        drop(canary);
                    });
                }
            })
            .unwrap();
            assert_eq!(
                dropped.load(Ordering::SeqCst),
                data.len(),
                "{workers} lane(s): a job closure outlived scope()"
            );
            for (i, slot) in data.iter_mut().enumerate() {
                assert_eq!(*slot, i as u64 + 1, "{workers} lane(s): job {i} never ran");
                *slot = 0;
            }
        }
    }

    /// The cancel path must uphold the same invariant: jobs skipped after
    /// a sibling's panic are *dropped* (not leaked) before `scope()`
    /// returns, so captured borrows cannot dangle either way.
    #[test]
    fn cancelled_jobs_drop_their_captures_before_scope_returns() {
        let pool = WorkerPool::new(2);
        let dropped = AtomicUsize::new(0);
        let spawned = 16usize;
        let err = pool
            .scope(|s| {
                s.spawn(|| panic!("deliberate test panic"));
                for _ in 0..spawned {
                    let canary = Canary(&dropped);
                    s.spawn(move || drop(canary));
                }
            })
            .unwrap_err();
        assert!(matches!(err, ExecError::WorkerPanic(_)));
        assert_eq!(
            dropped.load(Ordering::SeqCst),
            spawned,
            "a cancelled job's captures were not dropped before scope() returned"
        );
    }

    #[test]
    fn scope_runs_all_jobs_with_borrows() {
        let pool = WorkerPool::new(4);
        let mut data = vec![0u64; 64];
        pool.scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move || *slot = i as u64 * 3);
            }
        })
        .unwrap();
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    }

    #[test]
    fn single_lane_pool_runs_inline_in_spawn_order() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.lanes(), 1);
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..16 {
                let order = &order;
                s.spawn(move || order.lock().unwrap().push(i));
            }
        })
        .unwrap();
        assert_eq!(*order.lock().unwrap(), (0..16).collect::<Vec<_>>());
        let stats = pool.stats();
        assert_eq!(stats.inline_tasks, 16, "one lane means the caller ran everything");
    }

    #[test]
    fn panic_is_captured_and_pool_survives() {
        let pool = WorkerPool::new(3);
        let ran_after = AtomicUsize::new(0);
        let err = pool
            .scope(|s| {
                s.spawn(|| panic!("deliberate test panic"));
                for _ in 0..8 {
                    s.spawn(|| {
                        ran_after.fetch_add(1, Ordering::Relaxed);
                    });
                }
            })
            .unwrap_err();
        assert_eq!(err, ExecError::WorkerPanic("deliberate test panic".into()));
        // Not poisoned: the next scope on the same pool works.
        let mut x = 0;
        pool.scope(|s| s.spawn(|| x = 7)).unwrap();
        assert_eq!(x, 7);
    }

    #[test]
    fn first_panic_wins_and_later_jobs_are_cancelled() {
        let pool = WorkerPool::new(1);
        let ran = AtomicUsize::new(0);
        let err = pool
            .scope(|s| {
                s.spawn(|| panic!("first"));
                s.spawn(|| {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
                s.spawn(|| panic!("second"));
            })
            .unwrap_err();
        assert_eq!(err, ExecError::WorkerPanic("first".into()));
        // With one lane the panic lands before the later jobs start, so
        // they are cancelled (dropped), not run.
        assert_eq!(ran.load(Ordering::Relaxed), 0);
    }

    /// On a 1-lane pool no worker thread exists, so a pinned job can
    /// never execute; the caller must be able to finish the scope anyway
    /// by cancelling the queued runners, and the closures (with their
    /// captured borrows) must still be dropped.
    #[test]
    fn pinned_jobs_wait_for_workers_and_cancel_cleanly() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.lanes(), 1);
        let dropped = AtomicUsize::new(0);
        let ran = AtomicUsize::new(0);
        let ran_ref = &ran;
        pool.scope(|s| {
            for _ in 0..4 {
                let canary = Canary(&dropped);
                s.spawn_pinned(move || {
                    drop(canary);
                    ran_ref.fetch_add(1, Ordering::SeqCst);
                });
            }
            s.cancel_queued();
        })
        .unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 0, "caller must never run pinned jobs inline");
        assert_eq!(dropped.load(Ordering::SeqCst), 4, "cancelled pinned closures must drop");
        assert_eq!(pool.stats().pinned_tasks, 4);
    }

    #[test]
    fn pinned_jobs_run_on_worker_threads() {
        let pool = WorkerPool::new(4);
        if pool.lanes() < 2 {
            return; // thread spawn degraded; nothing to assert
        }
        let ran = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn_pinned(|| {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 8);
        let stats = pool.stats();
        assert_eq!(stats.pinned_tasks, 8);
        assert_eq!(stats.inline_tasks, 0, "pinned jobs must not run inline on the caller");
    }

    #[test]
    fn zero_means_available_parallelism() {
        let pool = WorkerPool::new(0);
        assert!(pool.lanes() >= 1);
    }

    #[test]
    fn stats_track_scopes_and_tasks() {
        let pool = WorkerPool::new(2);
        for _ in 0..5 {
            pool.scope(|s| {
                s.spawn(|| {});
                s.spawn(|| {});
            })
            .unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.scopes, 5);
        assert_eq!(stats.tasks, 10);
        assert_eq!(stats.lanes, 2);
        assert!((stats.busy_ratio - 1.0).abs() < 1e-9, "2 tasks on 2 lanes is fully busy");
    }

    #[test]
    fn nested_scopes_complete() {
        let pool = WorkerPool::new(2);
        let total = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                outer.spawn(|| {
                    // A job that itself fans out on the same pool: the
                    // running lane participates, so this cannot deadlock
                    // even with every thread busy.
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    })
                    .unwrap();
                });
            }
        })
        .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn scope_returns_body_value() {
        let pool = WorkerPool::new(2);
        let v = pool.scope(|_| 42).unwrap();
        assert_eq!(v, 42);
    }

    /// Cancelled pinned jobs must not leak into the busy-lane statistic:
    /// a scope whose jobs were all dropped unrun contributes zero
    /// occupancy, and the drops are visible in `cancelled_tasks`.
    #[test]
    fn cancelled_jobs_do_not_count_as_busy() {
        let pool = WorkerPool::new(1);
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn_pinned(|| {});
            }
            s.cancel_queued();
        })
        .unwrap();
        let stats = pool.stats();
        assert_eq!(stats.cancelled_tasks, 4);
        assert_eq!(stats.pinned_tasks, 4, "spawn counter still records the spawns");
        assert_eq!(stats.busy_permille, 0, "dropped jobs never occupied a lane");
    }

    /// Jobs skipped after a sibling's panic count as cancelled and are
    /// excluded from occupancy too.
    #[test]
    fn panic_skipped_jobs_count_as_cancelled() {
        let pool = WorkerPool::new(1);
        let err = pool
            .scope(|s| {
                s.spawn(|| panic!("first"));
                s.spawn(|| {});
                s.spawn(|| {});
            })
            .unwrap_err();
        assert!(matches!(err, ExecError::WorkerPanic(_)));
        let stats = pool.stats();
        assert_eq!(stats.cancelled_tasks, 2);
        // Only the panicking job actually ran: 1 occupied lane of 1.
        assert_eq!(stats.busy_permille, 1000);
    }

    fn manual_time() -> (Arc<AtomicU64>, TimeSource) {
        let nanos = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&nanos);
        (nanos, Arc::new(move || Duration::from_nanos(n2.load(Ordering::SeqCst))))
    }

    fn wait_until(what: &str, cond: impl Fn() -> bool) {
        for _ in 0..4000 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("timed out waiting for {what}");
    }

    #[test]
    fn watchdog_fires_deadline_on_injected_clock() {
        let token = CancelToken::new();
        let (nanos, now) = manual_time();
        let _dog = spawn_watchdog(
            token.clone(),
            now,
            Some(Duration::from_millis(50)),
            None,
            Duration::from_millis(1),
        );
        // Below the deadline: stays alive even with no heartbeat.
        std::thread::sleep(Duration::from_millis(10));
        assert!(!token.is_cancelled());
        nanos.store(51_000_000, Ordering::SeqCst);
        wait_until("deadline cancel", || token.is_cancelled());
        assert_eq!(token.cause(), Some(CancelCause::DeadlineExceeded { budget_ms: 50 }));
    }

    #[test]
    fn watchdog_fires_stall_only_when_heartbeat_stops() {
        let token = CancelToken::new();
        let (nanos, now) = manual_time();
        let _dog = spawn_watchdog(
            token.clone(),
            now,
            None,
            Some(Duration::from_millis(20)),
            Duration::from_millis(1),
        );
        // Heartbeat advances with the clock: no stall.
        for step in 1..=5u64 {
            token.beat();
            nanos.store(step * 15_000_000, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(3));
        }
        assert!(!token.is_cancelled(), "moving heartbeat must not stall");
        // Clock advances past the budget with no further beats: stall.
        nanos.store(5 * 15_000_000 + 21_000_000, Ordering::SeqCst);
        wait_until("stall cancel", || token.is_cancelled());
        assert_eq!(token.cause(), Some(CancelCause::Stalled { budget_ms: 20 }));
    }

    #[test]
    fn watchdog_drop_stops_thread_and_external_cancel_wins() {
        let token = CancelToken::new();
        let (_nanos, now) = manual_time();
        let dog = spawn_watchdog(
            token.clone(),
            now,
            Some(Duration::from_secs(3600)),
            Some(Duration::from_secs(3600)),
            Duration::from_millis(1),
        );
        token.cancel(CancelCause::Requested);
        drop(dog); // must join promptly, not hang until a budget expires
        assert_eq!(token.cause(), Some(CancelCause::Requested));
    }

    #[test]
    fn chaos_plans_are_deterministic_and_varied() {
        for seed in 0..256u64 {
            assert_eq!(fault::chaos_plan(seed), fault::chaos_plan(seed));
        }
        let with_fault = (0..256u64)
            .map(fault::chaos_plan)
            .filter(|p| {
                p.write_fault.is_some()
                    || p.read_corrupt.is_some()
                    || p.kill_diagonal.is_some()
                    || p.cancel_after_diagonal.is_some()
                    || p.deadline_ms.is_some()
                    || p.worker_panic.is_some()
            })
            .count();
        assert!(with_fault > 64, "fault families should be common ({with_fault}/256)");
        let workers: std::collections::HashSet<usize> =
            (0..64u64).map(|s| fault::chaos_plan(s).workers).collect();
        assert_eq!(workers.len(), 4, "all worker classes appear");
    }
}
