// lint-fixture path=crates/cudalign/src/fixture.rs rule=no-panics expect=1
// The one live violation: an unwrap in library code.
pub fn decode(v: Option<u32>) -> u32 {
    v.unwrap()
}

// Near misses that must NOT fire: suffixed methods, strings, comments.
pub fn safe(v: Option<u32>) -> u32 {
    // .unwrap() in a comment is fine
    let s = "panic! and .expect(..) in a string are fine";
    let _ = s;
    v.unwrap_or_default()
}

// A justified allow is suppressed.
pub fn allowed(v: Option<u32>) -> u32 {
    // lint: allow(no-panics): fixture — justified suppression must not fire
    v.expect("justified")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        if false {
            panic!("exempt in tests");
        }
    }
}
