#![warn(missing_docs)]

//! # cudalign
//!
//! A Rust reproduction of **CUDAlign 2.0** (Sandes & de Melo, IPDPS 2011):
//! retrieving the full optimal Smith-Waterman alignment (affine gaps) of
//! huge DNA sequences in **linear space**, organized as the paper's six
//! stages:
//!
//! 1. [`stage1`] — forward SW over the whole matrix on the wavefront
//!    engine; finds the best score and its end point while flushing
//!    *special rows* to the [`sra`] (Special Rows Area).
//! 2. [`stage2`] — reverse pass from the end point with *goal-based
//!    matching* and *orthogonal execution*; produces crosspoints over the
//!    special rows, the alignment's start point, and special columns.
//! 3. [`stage3`] — forward pass inside each partition matching the stored
//!    special columns; more crosspoints.
//! 4. [`stage4`] — iterative Myers-Miller between successive crosspoints
//!    with *balanced splitting* and *orthogonal execution* until every
//!    partition fits the maximum partition size.
//! 5. [`stage5`] — exact alignment of each (tiny) partition and
//!    concatenation; compact binary representation ([`binary`]).
//! 6. [`stage6`] — reconstruction and visualization (text alignment, dot
//!    plot).
//!
//! The whole pipeline lives behind [`Pipeline`]; see `examples/` for
//! usage. Memory is `O(m + n)` plus the configured disk budget — the DP
//! matrix (up to `10^15` cells at paper scale) is never materialized.
//!
//! Every stage executes on one persistent [`WorkerPool`]
//! (`gpu_sim::exec`), created by [`Pipeline::new`] from
//! [`PipelineConfig::workers`] and shared across stages and runs: no OS
//! threads are spawned per diagonal or per partition batch, worker panics
//! surface as [`PipelineError::Worker`] instead of aborting the process,
//! and [`PipelineStats`] reports the pool's per-run utilization
//! (`pool_handoffs`, `pool_busy_ratio`).
//!
//! ```
//! use cudalign::{Pipeline, PipelineConfig};
//!
//! let cfg = PipelineConfig::for_tests();
//! let s0 = b"ACGTACGTACGTGACCA".to_vec();
//! let s1 = b"ACGTACGTCCGTGACCA".to_vec();
//! let result = Pipeline::new(cfg).align(&s0, &s1).unwrap();
//! assert!(result.best_score > 0);
//! result.transcript.validate(
//!     &s0[result.start.0..result.end.0],
//!     &s1[result.start.1..result.end.1],
//! ).unwrap();
//! ```

pub mod binary;
pub mod config;
pub mod crosspoint;
pub mod obs;
pub mod pipeline;
pub mod serve;
pub mod sra;
pub mod stage1;
pub mod stage2;
pub mod stage3;
pub mod stage4;
pub mod stage5;
pub mod stage6;
pub mod storage;
pub mod supervise;

pub use binary::BinaryAlignment;
pub use config::PipelineConfig;
pub use crosspoint::{Crosspoint, CrosspointChain, Partition};
pub use gpu_sim::{CancelCause, CancelToken, ExecError, PoolStats, WorkerPool};
pub use obs::{Event, Metrics, Obs, Progress, Recorder, TraceWriter};
pub use pipeline::{Pipeline, PipelineError, PipelineResult, PipelineStats, StageError};
pub use serve::{JobHandle, JobReport, JobRequest, ServeConfig, ServeError, ServeStats, Server};
pub use storage::StorageError;
pub use supervise::RunControl;
