//! Quickstart: align two short DNA sequences and print everything the
//! pipeline produces.
//!
//! ```text
//! cargo run -p cudalign --release --example quickstart
//! ```

use cudalign::{stage6, Pipeline, PipelineConfig};

fn main() {
    // Two toy sequences: a shared core with a deletion and a few SNPs,
    // surrounded by unrelated flanks (so the LOCAL alignment is a proper
    // substring alignment).
    let s0 = b"TTTTTTTTTTACGTACGTACGTGGAACCAGTTGACCAGTTTTTTTTTTTT".to_vec();
    let s1 = b"GGGGGGGGGGACGTACGTACGTGGACCAGTTTACCAGGGGGGGGGGGGGG".to_vec();

    let cfg = PipelineConfig::for_tests();
    let result = Pipeline::new(cfg).align(&s0, &s1).expect("pipeline failed");

    println!("best score : {}", result.best_score);
    println!("start      : {:?}", result.start);
    println!("end        : {:?}", result.end);
    println!("cigar      : {}", result.transcript.cigar());
    println!();
    println!("{}", stage6::render_text(&s0, &s1, &result.binary, 60));
    println!("{}", stage6::summary(&result.binary, &result.transcript));

    // The compact binary representation (what Stage 5 writes to disk).
    let bytes = result.binary.encode();
    println!("\nbinary representation: {} bytes (text above is much larger)", bytes.len());

    // Per-stage statistics.
    let st = &result.stats;
    println!("\nstage seconds: {:?}", st.stage_seconds);
    println!("crosspoints |L1..L4|: {:?}", st.crosspoints);
    println!("special rows: {}, special columns: {}", st.special_rows, st.special_columns);
}
