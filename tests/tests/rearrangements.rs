//! Robustness on rearranged genomes: local alignment must find the
//! largest collinear block when the homolog has been shuffled by
//! large-scale operations (a regime the paper's chromosome pair only
//! hints at — real cross-species comparisons are full of inversions and
//! translocations).

use cudalign::{Pipeline, PipelineConfig};
use integration_tests::lcg_dna;
use seqio::generate::{apply_block_ops, reverse_complement, BlockOp};
use sw_core::Scoring;

fn align(a: &[u8], b: &[u8]) -> cudalign::PipelineResult {
    Pipeline::new(PipelineConfig::for_tests()).align(a, b).unwrap()
}

#[test]
fn translocation_yields_largest_block() {
    // b = a with its first third moved to the end: the optimal local
    // alignment is the remaining collinear two-thirds.
    let a = lcg_dna(61, 900);
    let third = a.len() / 3;
    let b = apply_block_ops(&a, &[BlockOp::Translocate { start: 0, len: third, to: 600 }]);
    let res = align(&a, &b);
    let span = res.end.0 - res.start.0;
    assert!(
        span >= 2 * third - 10,
        "expected the collinear two-thirds ({} bp), got {span}",
        2 * third
    );
    // And it is a perfect match (no edits were applied inside blocks).
    assert_eq!(res.best_score as usize, res.transcript.len());
}

#[test]
fn inversion_breaks_collinearity() {
    // Inverting the middle block leaves two collinear flanks; the local
    // alignment picks one of them (the inverted block matches only on
    // the reverse complement strand, which plain SW does not see).
    let a = lcg_dna(62, 900);
    let b = apply_block_ops(&a, &[BlockOp::Invert { start: 300, len: 300 }]);
    let res = align(&a, &b);
    let span = res.end.0 - res.start.0;
    assert!((250..600).contains(&span), "expected one flank (~300 bp), got {span}");
    // Aligning against the reverse complement recovers the inverted block.
    let b_rc = reverse_complement(&b);
    let res_rc = align(&a, &b_rc);
    assert!(res_rc.best_score > 0);
}

#[test]
fn duplication_still_aligns_full_length() {
    // A tandem duplication inserts extra sequence; the alignment spans
    // the whole original by paying one gap run.
    let a = lcg_dna(63, 600);
    let b = apply_block_ops(&a, &[BlockOp::Duplicate { start: 200, len: 80 }]);
    let res = align(&a, &b);
    let sc = Scoring::paper();
    assert_eq!(res.best_score, a.len() as i32 - (sc.gap_first + 79 * sc.gap_ext));
    let stats = res.transcript.stats();
    assert_eq!(stats.gap_openings, 1);
    assert_eq!(stats.gap_extensions, 79);
    assert_eq!(stats.mismatches, 0);
}

#[test]
fn deletion_splits_decision_by_size() {
    // Small deletion: bridge with a gap. Huge deletion: better to align
    // only the larger remaining block.
    let a = lcg_dna(64, 800);
    let small = apply_block_ops(&a, &[BlockOp::Delete { start: 400, len: 20 }]);
    let res_small = align(&a, &small);
    assert!(res_small.transcript.stats().gap_extensions >= 19, "small deletion is bridged");

    let huge = apply_block_ops(&a, &[BlockOp::Delete { start: 300, len: 450 }]);
    let res_huge = align(&a, &huge);
    let span1 = res_huge.end.1 - res_huge.start.1;
    // Bridging 450 gaps costs 5 + 449*2 = 903 > 300-bp block score, so the
    // optimal alignment is a single block.
    assert!(span1 <= 310, "huge deletion must not be bridged, spanned {span1}");
}
