//! End-to-end serve-mode test: a mixed batch (sizes, priorities, one
//! pre-cancelled job, one duplicate fingerprint) through a single-runner
//! [`cudalign::Server`], checked against serial `align` runs. A single
//! runner makes the drain order — priority desc, then shortest-first —
//! fully deterministic, so the duplicate is guaranteed to run after its
//! original and hit the result cache. Every wait carries a backstop
//! timeout so a scheduling bug fails the test instead of hanging it.

use cudalign::obs::validate_trace;
use cudalign::{JobRequest, Pipeline, PipelineConfig, RunControl, ServeConfig, ServeError, Server};
use integration_tests::edited_pair;
use std::time::Duration;

/// Per-wait backstop: generous compared to the millisecond-scale jobs,
/// but finite so nothing can hang the suite.
const BACKSTOP: Duration = Duration::from_secs(120);

#[test]
fn serve_mixed_batch_matches_serial_align() {
    let mut scfg = ServeConfig::new(PipelineConfig::for_tests());
    scfg.runners = 1;
    scfg.queue_cap = 8;
    let server = Server::new(scfg).expect("server starts");

    let (a1, b1) = edited_pair(81, 300, 13);
    let (a2, b2) = edited_pair(82, 150, 11);
    let (a3, b3) = edited_pair(83, 450, 17);

    // Backpressure first, while the queue is deterministically empty: a
    // batch larger than the cap is rejected whole with the typed error.
    let oversized: Vec<JobRequest> =
        (0..9).map(|_| JobRequest::new(a2.clone(), b2.clone())).collect();
    let err = server.submit_batch(oversized).expect_err("9 jobs > cap 8");
    assert!(matches!(err, ServeError::QueueFull { capacity: 8 }), "{err:?}");

    // Mixed batch. With one runner the drain order is exactly:
    //   j0 (prio 3) -> j4 (prio 2, pre-cancelled, resolves unrun)
    //   -> j1 (prio 1, 150 bp) -> j2 (prio 1, 450 bp)
    //   -> j3 (prio 0, duplicate of j0 -> cache hit).
    let backstop = || RunControl::unlimited().with_deadline_ms(60_000);
    let cancelled = RunControl::unlimited();
    cancelled.cancel();
    let handles = server
        .submit_batch(vec![
            JobRequest::new(a1.clone(), b1.clone()).with_priority(3).with_control(backstop()),
            JobRequest::new(a2.clone(), b2.clone()).with_priority(1).with_control(backstop()),
            JobRequest::new(a3.clone(), b3.clone()).with_priority(1).with_control(backstop()),
            JobRequest::new(a1.clone(), b1.clone()).with_priority(0).with_control(backstop()),
            JobRequest::new(a2.clone(), b2.clone()).with_priority(2).with_control(cancelled),
        ])
        .expect("mixed batch fits");
    assert_eq!(handles.len(), 5);
    assert_eq!(
        handles[0].fingerprint(),
        handles[3].fingerprint(),
        "identical pairs share a content fingerprint"
    );
    assert_ne!(
        handles[0].fingerprint(),
        handles[1].fingerprint(),
        "different pairs must not alias"
    );

    let reports: Vec<_> = handles
        .iter()
        .map(|h| h.wait_timeout(BACKSTOP).expect("job resolved within the backstop"))
        .collect();

    // Completed jobs match a serial pipeline bit-for-bit.
    for (i, (a, b)) in [(0, (&a1, &b1)), (1, (&a2, &b2)), (2, (&a3, &b3))] {
        let got = reports[i].outcome.as_ref().expect("job completes");
        let want = Pipeline::new(PipelineConfig::for_tests()).align(a, b).expect("serial align");
        assert_eq!(got.best_score, want.best_score, "job {i} score drifted from serial");
        assert_eq!(got.start, want.start, "job {i} start drifted");
        assert_eq!(got.end, want.end, "job {i} end drifted");
        assert_eq!(got.transcript, want.transcript, "job {i} transcript drifted");
        assert!(!reports[i].cached, "job {i} ran fresh");
    }

    // The duplicate was served from the cache: same result, no rerun.
    let dup = &reports[3];
    assert!(dup.cached, "duplicate fingerprint must hit the cache");
    let dup_res = dup.outcome.as_ref().expect("cached result");
    let orig_res = reports[0].outcome.as_ref().expect("original result");
    assert_eq!(dup_res.best_score, orig_res.best_score);
    assert_eq!(dup_res.transcript, orig_res.transcript);
    assert_eq!(dup.outcome_kind(), "cached");

    // The pre-cancelled job resolved without running.
    let killed = &reports[4];
    let e = killed.outcome.as_ref().expect_err("cancelled job must not produce a result");
    assert_eq!(e.interruption_kind(), Some("cancelled"), "{e:?}");
    assert_eq!(killed.trace.lines().count(), 2, "job_submit + job_end only");

    // Every job's trace — full run, cached, and cancelled-while-queued —
    // passes the schema validator and frames exactly one job.
    for (i, r) in reports.iter().enumerate() {
        let check = validate_trace(&r.trace)
            .unwrap_or_else(|e| panic!("job {i} trace rejected: {e}\n{}", r.trace));
        assert_eq!(check.jobs, 1, "job {i} trace frames one job");
        assert!(
            r.trace.lines().next().unwrap_or("").contains("\"ev\":\"job_submit\""),
            "job {i} trace opens with job_submit"
        );
        assert!(
            r.trace.lines().last().unwrap_or("").contains("\"ev\":\"job_end\""),
            "job {i} trace closes with job_end"
        );
    }

    // Merged totals line up with what we just observed, and shutdown
    // (which also joins the runner) returns them.
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.rejected, 1, "the oversized batch was counted");
    assert!(stats.cells > 0);
}

/// CI hook: when `CUDALIGN_TRACE_FILE` points at a per-job trace
/// written by `cudalign serve --trace-dir`, validate it against the
/// schema checker and require the `job_submit`/`job_end` framing.
/// Skipped (trivially passing) when the variable is unset.
#[test]
fn validates_external_job_trace() {
    let Ok(path) = std::env::var("CUDALIGN_TRACE_FILE") else {
        return;
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("CUDALIGN_TRACE_FILE {path}: {e}"));
    let check = validate_trace(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert_eq!(check.jobs, 1, "{path}: a serve trace frames exactly one job");
    assert!(
        text.lines().last().unwrap_or("").contains("\"ev\":\"job_end\""),
        "{path}: trace must close with job_end"
    );
}

/// Cancelling one in-flight job among concurrent tenants neither
/// corrupts the others nor leaks: survivors match serial scores and the
/// cancelled job reports a typed interruption.
#[test]
fn serve_cancel_mid_run_leaves_other_tenants_intact() {
    let mut scfg = ServeConfig::new(PipelineConfig::for_tests());
    scfg.runners = 2;
    let server = Server::new(scfg).expect("server starts");

    let (a1, b1) = edited_pair(91, 500, 13);
    let (a2, b2) = edited_pair(92, 500, 17);
    // Deterministic mid-run teardown: the victim cancels itself at
    // stage-1 diagonal 1 via its own supervision handle.
    let victim_ctrl = RunControl::unlimited().with_cancel_after_diagonal(1);
    let handles = server
        .submit_batch(vec![
            JobRequest::new(a1.clone(), b1.clone()).with_control(victim_ctrl),
            JobRequest::new(a2.clone(), b2.clone())
                .with_control(RunControl::unlimited().with_deadline_ms(60_000)),
        ])
        .expect("batch fits");

    let victim = handles[0].wait_timeout(BACKSTOP).expect("victim resolves");
    let survivor = handles[1].wait_timeout(BACKSTOP).expect("survivor resolves");

    let e = victim.outcome.as_ref().expect_err("victim must be interrupted");
    assert_eq!(e.interruption_kind(), Some("cancelled"), "{e:?}");
    validate_trace(&victim.trace).expect("interrupted trace stays schema-valid");

    let got = survivor.outcome.as_ref().expect("survivor completes");
    let want = Pipeline::new(PipelineConfig::for_tests()).align(&a2, &b2).expect("serial");
    assert_eq!(got.best_score, want.best_score, "survivor must stay optimal");
    validate_trace(&survivor.trace).expect("survivor trace validates");

    let stats = server.shutdown();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.cancelled, 1);
}
