//! The crash-safe storage layer.
//!
//! Every byte of persistent state in the pipeline — special-row files,
//! special-column files and the combined Stage-1 checkpoint — goes through
//! this module. At paper scale, Stage 1 keeps the GPU busy for 18.5 hours
//! while streaming rows to a disk area: at that horizon a torn write, a
//! bit-flip or a full disk are not exceptional, they are expected, and
//! each must *degrade* the run (fewer special rows, larger partitions, a
//! lost snapshot) rather than corrupt the alignment.
//!
//! Three mechanisms deliver that:
//!
//! * **Framing.** Each file is `magic + job fingerprint + index + origin +
//!   length + CRC32(payload) + payload`. Readers verify all of it before a
//!   single cell is decoded, so a truncated, bit-flipped, misnamed or
//!   *stale* file (from a different sequence pair, scoring or grid) is
//!   detected and rejected as a typed [`StorageError`] — never fed into
//!   Stage 2's goal-based matching as plausible `H`/`F` values.
//! * **Atomicity.** Writes land in a `.tmp` sibling first and are
//!   `rename`d into place, so a crash mid-write leaves either the old
//!   file or a `.tmp` orphan (swept on the next run), never a half frame
//!   under the real name. Transient errors are retried with a short
//!   backoff; persistent ones surface as [`StorageError::Io`].
//! * **Fault injection.** The [`fault`] hook (mirroring
//!   `gpu_sim::exec::fault`) lets integration tests inject torn writes,
//!   `ENOSPC`, transient failures, corrupt reads and a simulated
//!   kill-at-diagonal into a real pipeline run, which is how the
//!   crash-recovery torture suite exercises every degradation path.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Magic prefix of a framed line file.
pub const FRAME_MAGIC: [u8; 8] = *b"CAL2SRF1";
/// Magic prefix of a checksummed checkpoint envelope.
pub const CKPT_MAGIC: [u8; 8] = *b"CAL2CKP1";
/// Bytes of a frame header: magic, fingerprint, index, origin, len, CRC.
pub const FRAME_HEADER_BYTES: usize = 8 + 8 + 8 + 8 + 8 + 4;
/// Bytes of a checkpoint envelope header: magic, fingerprint, len, CRC.
pub const CKPT_HEADER_BYTES: usize = 8 + 8 + 8 + 4;

/// Attempts per write (1 initial + retries) before giving up.
const WRITE_ATTEMPTS: u32 = 4;
/// Backoff before the first retry (doubled each time, capped).
const BACKOFF: Duration = Duration::from_millis(1);
/// Upper bound on the doubling base: however many attempts a future
/// retry budget allows, no single sleep exceeds this plus its jitter.
const BACKOFF_CAP: Duration = Duration::from_millis(16);

/// A storage failure, typed so callers can choose a reaction: `Io` means
/// the backend refused us (retry exhausted / disk full), `Corrupt` means
/// the bytes on disk are not what we wrote (drop the line and continue),
/// `ForeignFingerprint` means the file belongs to a *different job* and
/// adopting it would silently corrupt the alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StorageError {
    /// The operating system failed the operation after retries.
    Io {
        /// File the operation targeted.
        path: PathBuf,
        /// Operation name (`"write"`, `"rename"`, `"read"`, ...).
        op: &'static str,
        /// The underlying error text.
        msg: String,
    },
    /// The file exists but fails structural or checksum validation.
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// What check failed.
        reason: String,
    },
    /// The file carries a valid frame for a different job (other
    /// sequences, scoring or grid) — e.g. stale state from a crashed run
    /// with different inputs in the same directory.
    ForeignFingerprint {
        /// Offending file.
        path: PathBuf,
        /// Fingerprint of the current job.
        expected: u64,
        /// Fingerprint found in the file.
        found: u64,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io { path, op, msg } => {
                write!(f, "storage {op} failed on {}: {msg}", path.display())
            }
            StorageError::Corrupt { path, reason } => {
                write!(f, "corrupt storage file {}: {reason}", path.display())
            }
            StorageError::ForeignFingerprint { path, expected, found } => write!(
                f,
                "stale storage file {}: job fingerprint {found:#018x} != expected {expected:#018x}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StorageError {}

impl StorageError {
    fn io(path: &Path, op: &'static str, e: &io::Error) -> Self {
        StorageError::Io { path: path.to_path_buf(), op, msg: e.to_string() }
    }

    fn corrupt(path: &Path, reason: impl Into<String>) -> Self {
        StorageError::Corrupt { path: path.to_path_buf(), reason: reason.into() }
    }
}

/// Little-endian `u64` at byte offset `at`. Reads past the end are
/// zero-filled instead of panicking; every caller validates the buffer
/// length first, this just keeps header decoding panic-free.
fn le_u64(bytes: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    for (d, s) in b.iter_mut().zip(bytes.iter().skip(at)) {
        *d = *s;
    }
    u64::from_le_bytes(b)
}

/// Little-endian `u32` at byte offset `at`; see [`le_u64`].
fn le_u32(bytes: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    for (d, s) in b.iter_mut().zip(bytes.iter().skip(at)) {
        *d = *s;
    }
    u32::from_le_bytes(b)
}

// ---------------------------------------------------------------------------
// Filesystem access for the rest of the crate
// ---------------------------------------------------------------------------
//
// All persistent state flows through this module (the `fs-isolation` lint
// enforces it), so the few directory-level operations other modules need
// live here as thin, typed wrappers.

/// Create `dir` and any missing parents.
pub fn ensure_dir(dir: &Path) -> Result<(), StorageError> {
    std::fs::create_dir_all(dir).map_err(|e| StorageError::io(dir, "create_dir_all", &e))
}

/// Delete `path`, reporting whether a file was actually removed. Failures
/// (already gone, permissions) are swallowed: callers use this for sweeps
/// and cleanups where the only interesting outcome is the sweep count.
pub fn remove_file_quiet(path: &Path) -> bool {
    std::fs::remove_file(path).is_ok()
}

/// Paths of all entries in `dir`.
pub fn list_dir(dir: &Path) -> Result<Vec<PathBuf>, StorageError> {
    let rd = std::fs::read_dir(dir).map_err(|e| StorageError::io(dir, "read_dir", &e))?;
    let mut out = Vec::new();
    for entry in rd {
        out.push(entry.map_err(|e| StorageError::io(dir, "read_dir", &e))?.path());
    }
    Ok(out)
}

/// Size of `path` in bytes, or `None` if it cannot be stat'ed.
pub fn file_len(path: &Path) -> Option<u64> {
    std::fs::metadata(path).map(|m| m.len()).ok()
}

// ---------------------------------------------------------------------------
// CRC32 (ISO-HDLC, the zlib polynomial)
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32/ISO-HDLC of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_parts(&[bytes])
}

/// CRC-32/ISO-HDLC of the concatenation of `parts`, without materializing
/// it. Frames checksum header-fields-plus-payload this way.
fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// Job fingerprint
// ---------------------------------------------------------------------------

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Fingerprint of one alignment job: sequence lengths, scoring and both
/// grid shapes (everything that determines which `H`/`F`/`E` values a
/// special line may legally contain). Persistent files carry it in their
/// header; a reopen under any other job rejects them.
pub fn job_fingerprint(
    m: usize,
    n: usize,
    scoring: &sw_core::Scoring,
    grid1: &gpu_sim::GridSpec,
    grid23: &gpu_sim::GridSpec,
) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv(&mut h, &(m as u64).to_le_bytes());
    fnv(&mut h, &(n as u64).to_le_bytes());
    for v in [scoring.match_score, scoring.mismatch_score, scoring.gap_first, scoring.gap_ext] {
        fnv(&mut h, &v.to_le_bytes());
    }
    for g in [grid1, grid23] {
        for v in [g.blocks, g.threads, g.alpha] {
            fnv(&mut h, &(v as u64).to_le_bytes());
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Framed line files
// ---------------------------------------------------------------------------

/// Header of a framed line file (a special row or column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMeta {
    /// Job fingerprint the line belongs to.
    pub fingerprint: u64,
    /// Line index (DP row or column number).
    pub index: u64,
    /// First absolute coordinate covered by the payload.
    pub origin: u64,
    /// Number of 8-byte cells in the payload.
    pub len: u64,
}

fn encode_frame(meta: &FrameMeta, payload: &[u8]) -> Vec<u8> {
    debug_assert_eq!(payload.len() as u64, meta.len * crate::sra::CELL_BYTES);
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&meta.fingerprint.to_le_bytes());
    out.extend_from_slice(&meta.index.to_le_bytes());
    out.extend_from_slice(&meta.origin.to_le_bytes());
    out.extend_from_slice(&meta.len.to_le_bytes());
    // The CRC covers the header fields too, so a bit flip in the index
    // or origin cannot pair silently with an intact payload.
    out.extend_from_slice(&crc32_parts(&[&out, payload]).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Write a framed line file atomically (tmp sibling + rename), retrying
/// transient failures with backoff. Returns the number of retries used.
pub fn write_frame(path: &Path, meta: &FrameMeta, payload: &[u8]) -> Result<u32, StorageError> {
    write_with_retry(path, &encode_frame(meta, payload), meta.fingerprint)
}

/// Read and fully validate a framed line file: magic, fingerprint,
/// payload length and CRC. Returns the header and the raw payload; no
/// cell is decoded unless every check passed.
pub fn read_frame(path: &Path, expected_fp: u64) -> Result<(FrameMeta, Vec<u8>), StorageError> {
    let mut bytes = std::fs::read(path).map_err(|e| StorageError::io(path, "read", &e))?;
    fault::corrupt_if_armed(&mut bytes);
    if bytes.len() < FRAME_HEADER_BYTES {
        return Err(StorageError::corrupt(
            path,
            format!("truncated header ({} of {FRAME_HEADER_BYTES} bytes)", bytes.len()),
        ));
    }
    if bytes[..8] != FRAME_MAGIC {
        return Err(StorageError::corrupt(path, "bad magic"));
    }
    let meta = FrameMeta {
        fingerprint: le_u64(&bytes, 8),
        index: le_u64(&bytes, 16),
        origin: le_u64(&bytes, 24),
        len: le_u64(&bytes, 32),
    };
    if meta.fingerprint != expected_fp {
        return Err(StorageError::ForeignFingerprint {
            path: path.to_path_buf(),
            expected: expected_fp,
            found: meta.fingerprint,
        });
    }
    let want = meta.len.saturating_mul(crate::sra::CELL_BYTES);
    let have = (bytes.len() - FRAME_HEADER_BYTES) as u64;
    if have != want {
        return Err(StorageError::corrupt(
            path,
            format!("payload is {have} bytes, header promises {want}"),
        ));
    }
    let stored_crc = le_u32(&bytes, 40);
    let actual = crc32_parts(&[&bytes[..40], &bytes[FRAME_HEADER_BYTES..]]);
    let payload = bytes.split_off(FRAME_HEADER_BYTES);
    if actual != stored_crc {
        return Err(StorageError::corrupt(
            path,
            format!("checksum mismatch (stored {stored_crc:#010x}, computed {actual:#010x})"),
        ));
    }
    Ok((meta, payload))
}

// ---------------------------------------------------------------------------
// Checksummed checkpoint envelopes
// ---------------------------------------------------------------------------

/// Atomically write `payload` under a checksummed envelope (magic +
/// fingerprint + length + CRC). Used for the Stage-1 combined checkpoint,
/// whose inner format has structure but no integrity check of its own — a
/// bit-flipped bus value would otherwise decode cleanly and poison the
/// resumed wavefront. Returns the number of retries used.
pub fn write_checksummed(
    path: &Path,
    fingerprint: u64,
    payload: &[u8],
) -> Result<u32, StorageError> {
    let mut out = Vec::with_capacity(CKPT_HEADER_BYTES + payload.len());
    out.extend_from_slice(&CKPT_MAGIC);
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32_parts(&[&out, payload]).to_le_bytes());
    out.extend_from_slice(payload);
    write_with_retry(path, &out, fingerprint)
}

/// Read and validate a checksummed envelope written by
/// [`write_checksummed`], returning the payload.
pub fn read_checksummed(path: &Path, expected_fp: u64) -> Result<Vec<u8>, StorageError> {
    let mut bytes = std::fs::read(path).map_err(|e| StorageError::io(path, "read", &e))?;
    fault::corrupt_if_armed(&mut bytes);
    if bytes.len() < CKPT_HEADER_BYTES {
        return Err(StorageError::corrupt(path, "truncated envelope header"));
    }
    if bytes[..8] != CKPT_MAGIC {
        return Err(StorageError::corrupt(path, "bad envelope magic"));
    }
    let found = le_u64(&bytes, 8);
    if found != expected_fp {
        return Err(StorageError::ForeignFingerprint {
            path: path.to_path_buf(),
            expected: expected_fp,
            found,
        });
    }
    let len = le_u64(&bytes, 16);
    if (bytes.len() - CKPT_HEADER_BYTES) as u64 != len {
        return Err(StorageError::corrupt(path, "payload length mismatch"));
    }
    let stored_crc = le_u32(&bytes, 24);
    let actual = crc32_parts(&[&bytes[..24], &bytes[CKPT_HEADER_BYTES..]]);
    let payload = bytes.split_off(CKPT_HEADER_BYTES);
    if actual != stored_crc {
        return Err(StorageError::corrupt(path, "envelope checksum mismatch"));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Atomic write with bounded retry
// ---------------------------------------------------------------------------

/// The tmp sibling a path is staged under before the atomic rename.
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// A failed write attempt, tagged with whether retrying can help.
struct AttemptError {
    err: StorageError,
    transient: bool,
}

impl AttemptError {
    fn from_io(path: &Path, op: &'static str, e: &io::Error) -> Self {
        AttemptError { err: StorageError::io(path, op, e), transient: is_transient(e) }
    }
}

/// One staged write: fault hook, then tmp + rename.
fn attempt_write(path: &Path, tmp: &Path, frame: &[u8]) -> Result<(), AttemptError> {
    match fault::take_write_fault() {
        Some(fault::WriteFault::Torn { keep_bytes }) => {
            // Simulate hardware that acknowledged a write it only half
            // performed (e.g. power loss after a lying fsync): a truncated
            // frame lands under the *final* name and the caller is told it
            // succeeded. Readers must catch this via length/CRC checks.
            let keep = keep_bytes.min(frame.len());
            std::fs::write(path, &frame[..keep])
                .map_err(|e| AttemptError::from_io(path, "write", &e))?;
            Ok(())
        }
        Some(fault::WriteFault::Enospc) => Err(AttemptError {
            err: StorageError::Io {
                path: path.to_path_buf(),
                op: "write",
                msg: "injected: no space left on device".into(),
            },
            transient: false,
        }),
        Some(fault::WriteFault::Transient) => {
            Err(AttemptError::from_io(path, "write", &io::Error::from(io::ErrorKind::Interrupted)))
        }
        None => {
            std::fs::write(tmp, frame).map_err(|e| AttemptError::from_io(tmp, "write", &e))?;
            std::fs::rename(tmp, path).map_err(|e| AttemptError::from_io(path, "rename", &e))?;
            Ok(())
        }
    }
}

/// Deterministic backoff before retry `attempt` (0-based) of a write to
/// `path`: a doubling base capped at [`BACKOFF_CAP`], plus a jitter of up
/// to half the base seeded from the path, the attempt, and the caller's
/// `salt` (the job fingerprint) so concurrent strips flushing into one
/// directory — and concurrent *jobs* retrying the same shared path —
/// don't wake in lockstep and re-collide. A pure function of its inputs —
/// fault tests assert the exact schedule.
fn backoff_delay(path: &Path, attempt: u32, salt: u64) -> Duration {
    let base_us =
        ((BACKOFF.as_micros() as u64) << attempt.min(31)).min(BACKOFF_CAP.as_micros() as u64);
    // FNV-1a over the path bytes, folded with the salt and attempt number.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.to_string_lossy().as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    for b in salt.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = (h ^ u64::from(attempt)).wrapping_mul(0x0000_0100_0000_01b3);
    let jitter_us = if base_us == 0 { 0 } else { h % (base_us / 2 + 1) };
    Duration::from_micros(base_us + jitter_us)
}

/// Write `frame` to `path` atomically, retrying transient failures up to
/// [`WRITE_ATTEMPTS`] times with capped, jittered doubling backoff (see
/// [`backoff_delay`]). Sleeps route through [`fault::backoff_sleep`] so
/// fault tests observe the schedule without real wall-clock sleeps. On
/// final failure the tmp sibling is removed so no orphan survives a
/// *reported* error.
fn write_with_retry(path: &Path, frame: &[u8], salt: u64) -> Result<u32, StorageError> {
    let tmp = tmp_sibling(path);
    for attempt in 0..WRITE_ATTEMPTS {
        match attempt_write(path, &tmp, frame) {
            Ok(()) => return Ok(attempt),
            Err(AttemptError { err, transient }) => {
                if !transient || attempt + 1 == WRITE_ATTEMPTS {
                    let _ = std::fs::remove_file(&tmp);
                    return Err(err);
                }
                fault::backoff_sleep(backoff_delay(path, attempt, salt));
            }
        }
    }
    unreachable!("retry loop returns on the last attempt");
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Runtime fault-injection hooks, mirroring `gpu_sim::exec::fault`.
///
/// `cfg(test)` does not cross crates, so the crash-recovery torture tests
/// (the `tests/tests/` crate) need runtime switches to make disk failures
/// and mid-run kills happen on demand inside a real pipeline run. All
/// state is process-global; tests that arm anything must serialize behind
/// a shared mutex and disarm on exit. Disarmed, the cost per operation is
/// one mutex lock on writes and one relaxed atomic load elsewhere.
#[doc(hidden)]
pub mod fault {
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// What an armed write does when its countdown fires.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum WriteFault {
        /// Write only the first `keep_bytes` bytes under the final name
        /// and report success (a torn write the OS never surfaced).
        Torn {
            /// Bytes of the frame that actually reach the disk.
            keep_bytes: usize,
        },
        /// Fail with a non-transient "no space left on device" error.
        Enospc,
        /// Fail with a transient (retryable) error.
        Transient,
    }

    struct WritePlan {
        /// Write attempts left before the fault fires.
        countdown: u64,
        fault: WriteFault,
        /// How many consecutive attempts the fault affects (lets a
        /// transient plan outlast — or not — the retry budget).
        hits_left: u32,
    }

    static WRITE_PLAN: Mutex<Option<WritePlan>> = Mutex::new(None);

    /// The write plan, recovering from poisoning: a panicking test must
    /// not wedge every later storage write behind a poisoned lock.
    fn write_plan() -> std::sync::MutexGuard<'static, Option<WritePlan>> {
        WRITE_PLAN.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Replacement for the real backoff sleep. Tests that arm write
    /// faults install one to record the retry schedule (and skip the
    /// wall-clock wait); `None` means sleep for real.
    type SleepHook = Arc<dyn Fn(Duration) + Send + Sync>;
    static SLEEP_HOOK: Mutex<Option<SleepHook>> = Mutex::new(None);

    /// The sleep hook, recovering from poisoning like [`write_plan`].
    fn sleep_hook() -> std::sync::MutexGuard<'static, Option<SleepHook>> {
        SLEEP_HOOK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Install a replacement for the retry backoff sleep. Cleared by
    /// [`disarm_all`].
    pub fn set_sleep_hook(hook: impl Fn(Duration) + Send + Sync + 'static) {
        *sleep_hook() = Some(Arc::new(hook));
    }

    /// Sleep `d` before a write retry — through the installed hook when
    /// one is armed, else for real. The `std::thread::sleep` here is the
    /// single sanctioned backoff sleep in this crate (see the
    /// `sleep-injection` lint).
    pub(crate) fn backoff_sleep(d: Duration) {
        let hook = sleep_hook().clone();
        match hook {
            Some(h) => h(d),
            None => std::thread::sleep(d),
        }
    }

    /// `< 0`: disarmed. Otherwise the read that decrements it to exactly
    /// zero gets a bit flipped.
    static READ_CORRUPT: AtomicI64 = AtomicI64::new(-1);
    /// `< 0`: disarmed. Otherwise Stage 1 aborts (simulated process kill)
    /// at the first block whose external diagonal reaches this value.
    static STAGE1_KILL: AtomicI64 = AtomicI64::new(-1);

    /// Arm a write fault: the `nth` write attempt from now (0-based)
    /// applies `fault`, and so do the `times - 1` attempts after it.
    pub fn arm_write(nth: u64, fault: WriteFault, times: u32) {
        *write_plan() = Some(WritePlan { countdown: nth, fault, hits_left: times.max(1) });
    }

    /// Arm a corrupt read: the `nth` storage read from now (0-based) has
    /// one payload bit flipped before validation.
    pub fn arm_read_corrupt(nth: u64) {
        READ_CORRUPT.store(nth as i64, Ordering::SeqCst);
    }

    /// Arm a simulated kill: Stage 1 aborts with a typed error at the
    /// first block of external diagonal `>= diagonal`.
    pub fn arm_stage1_kill(diagonal: usize) {
        STAGE1_KILL.store(diagonal as i64, Ordering::SeqCst);
    }

    /// The armed kill diagonal, if any.
    pub fn stage1_kill() -> Option<usize> {
        let v = STAGE1_KILL.load(Ordering::Relaxed);
        (v >= 0).then_some(v as usize)
    }

    /// Serialize tests that arm faults (or perform disk I/O that an armed
    /// fault could affect). All fault state is process-global, so two
    /// concurrently running tests would otherwise steal each other's
    /// injections. Poisoning is ignored: a failed test must not cascade.
    pub fn test_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Disarm every hook.
    pub fn disarm_all() {
        *write_plan() = None;
        *sleep_hook() = None;
        READ_CORRUPT.store(-1, Ordering::SeqCst);
        STAGE1_KILL.store(-1, Ordering::SeqCst);
    }

    pub(crate) fn take_write_fault() -> Option<WriteFault> {
        let mut plan = write_plan();
        let p = plan.as_mut()?;
        if p.countdown > 0 {
            p.countdown -= 1;
            return None;
        }
        let fault = p.fault;
        p.hits_left -= 1;
        if p.hits_left == 0 {
            *plan = None;
        }
        Some(fault)
    }

    pub(crate) fn corrupt_if_armed(bytes: &mut [u8]) {
        if READ_CORRUPT.load(Ordering::Relaxed) < 0 {
            return;
        }
        if READ_CORRUPT.fetch_sub(1, Ordering::SeqCst) == 0 && !bytes.is_empty() {
            // Flip a bit past the header when possible so the corruption
            // lands in the payload (the CRC-guarded region).
            let at = if bytes.len() > super::FRAME_HEADER_BYTES {
                super::FRAME_HEADER_BYTES + (bytes.len() - super::FRAME_HEADER_BYTES) / 2
            } else {
                bytes.len() / 2
            };
            bytes[at] ^= 0x10;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cudalign-storage-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn frame_roundtrip_and_validation() {
        let _guard = fault::test_guard();
        let dir = tmpdir("frame");
        let path = dir.join("row-5-0.bin");
        let meta = FrameMeta { fingerprint: 0xABCD, index: 5, origin: 0, len: 2 };
        let payload = [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];
        assert_eq!(write_frame(&path, &meta, &payload).unwrap(), 0);
        assert!(!tmp_sibling(&path).exists(), "tmp sibling renamed away");
        let (got, body) = read_frame(&path, 0xABCD).unwrap();
        assert_eq!(got, meta);
        assert_eq!(body, payload);

        // Foreign fingerprint.
        match read_frame(&path, 0x1234) {
            Err(StorageError::ForeignFingerprint { expected, found, .. }) => {
                assert_eq!(expected, 0x1234);
                assert_eq!(found, 0xABCD);
            }
            other => panic!("expected ForeignFingerprint, got {other:?}"),
        }

        // Truncation at every byte boundary must be Corrupt or Io, never a panic.
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(
                matches!(read_frame(&path, 0xABCD), Err(StorageError::Corrupt { .. })),
                "cut at {cut} must be detected"
            );
        }

        // Single bit-flips anywhere in the frame are detected.
        for at in 0..full.len() {
            let mut bad = full.clone();
            bad[at] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            assert!(read_frame(&path, 0xABCD).is_err(), "bit flip at {at} must be detected");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_envelope_roundtrip() {
        let _guard = fault::test_guard();
        let dir = tmpdir("ckpt");
        let path = dir.join("stage1.ckpt");
        let payload = b"CKS1-some-inner-bytes".to_vec();
        write_checksummed(&path, 7, &payload).unwrap();
        assert_eq!(read_checksummed(&path, 7).unwrap(), payload);
        assert!(matches!(read_checksummed(&path, 8), Err(StorageError::ForeignFingerprint { .. })));
        let mut bad = std::fs::read(&path).unwrap();
        let last = bad.len() - 1;
        bad[last] ^= 0x80;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(read_checksummed(&path, 7), Err(StorageError::Corrupt { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_write_faults_are_retried() {
        let _guard = fault::test_guard();
        let dir = tmpdir("retry");
        let path = dir.join("row-1-0.bin");
        let meta = FrameMeta { fingerprint: 1, index: 1, origin: 0, len: 1 };
        fault::arm_write(0, fault::WriteFault::Transient, 2);
        fault::set_sleep_hook(|_| {});
        let retries = write_frame(&path, &meta, &[0u8; 8]).unwrap();
        fault::disarm_all();
        assert_eq!(retries, 2, "two transient failures then success");
        assert!(read_frame(&path, 1).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backoff_schedule_is_deterministic_capped_and_routed_through_hook() {
        let _guard = fault::test_guard();
        let dir = tmpdir("backoff");
        let path = dir.join("row-9-0.bin");
        let meta = FrameMeta { fingerprint: 9, index: 9, origin: 0, len: 1 };

        // Three transient failures exhaust every sleep the budget allows;
        // the hook records them instead of stalling on real wall-clock.
        let slept = std::sync::Arc::new(std::sync::Mutex::new(Vec::<Duration>::new()));
        let rec = std::sync::Arc::clone(&slept);
        fault::set_sleep_hook(move |d| rec.lock().unwrap().push(d));
        fault::arm_write(0, fault::WriteFault::Transient, 3);
        let retries = write_frame(&path, &meta, &[0u8; 8]).unwrap();
        fault::disarm_all();
        assert_eq!(retries, 3);

        let slept = slept.lock().unwrap().clone();
        let expect: Vec<Duration> =
            (0..3).map(|k| backoff_delay(&path, k, meta.fingerprint)).collect();
        assert_eq!(slept, expect, "recorded sleeps match the pure schedule");

        for (k, d) in expect.iter().enumerate() {
            let base = Duration::from_millis(1 << k).min(BACKOFF_CAP);
            assert!(*d >= base, "attempt {k}: jitter only adds");
            assert!(*d <= base + base / 2, "attempt {k}: jitter bounded by half the base");
        }
        // The doubling base saturates at the cap, jitter included.
        let worst = backoff_delay(&path, 40, meta.fingerprint);
        assert!(worst <= BACKOFF_CAP + BACKOFF_CAP / 2);
        assert!(worst >= BACKOFF_CAP);
        // Different paths decorrelate: at least one attempt differs.
        let other = dir.join("row-10-0.bin");
        assert!(
            (0..4).any(|k| backoff_delay(&path, k, 9) != backoff_delay(&other, k, 9)),
            "jitter must depend on the path"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn backoff_schedules_of_two_jobs_on_one_path_diverge() {
        // Two concurrent jobs (distinct fingerprints) retrying the *same*
        // shared path must not wake in lockstep: the fingerprint salt has
        // to decorrelate their jitter. Also pins the full-schedule case:
        // no attempt-by-attempt equality across every retry the budget
        // allows.
        let path = Path::new("shared/row-0-0.bin");
        let (fp_a, fp_b) = (0x1111_2222_3333_4444u64, 0x5555_6666_7777_8888u64);
        let a: Vec<Duration> = (0..WRITE_ATTEMPTS).map(|k| backoff_delay(path, k, fp_a)).collect();
        let b: Vec<Duration> = (0..WRITE_ATTEMPTS).map(|k| backoff_delay(path, k, fp_b)).collect();
        assert_ne!(a, b, "same path, different jobs: schedules must diverge");
        // Each job's schedule stays a pure function of its inputs.
        let again: Vec<Duration> =
            (0..WRITE_ATTEMPTS).map(|k| backoff_delay(path, k, fp_a)).collect();
        assert_eq!(a, again, "schedule is deterministic per job");
    }

    #[test]
    fn enospc_is_not_retried_and_leaves_no_tmp() {
        let _guard = fault::test_guard();
        let dir = tmpdir("enospc");
        let path = dir.join("row-2-0.bin");
        let meta = FrameMeta { fingerprint: 1, index: 2, origin: 0, len: 1 };
        fault::arm_write(0, fault::WriteFault::Enospc, 1);
        let err = write_frame(&path, &meta, &[0u8; 8]).unwrap_err();
        fault::disarm_all();
        assert!(matches!(err, StorageError::Io { .. }), "{err}");
        assert!(!path.exists());
        assert!(!tmp_sibling(&path).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_is_caught_by_the_reader() {
        let _guard = fault::test_guard();
        let dir = tmpdir("torn");
        let path = dir.join("row-3-0.bin");
        let meta = FrameMeta { fingerprint: 1, index: 3, origin: 0, len: 4 };
        fault::arm_write(0, fault::WriteFault::Torn { keep_bytes: 17 }, 1);
        // The write itself reports success — the lie torn writes tell.
        write_frame(&path, &meta, &[7u8; 32]).unwrap();
        fault::disarm_all();
        assert!(matches!(read_frame(&path, 1), Err(StorageError::Corrupt { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_read_corruption_is_caught() {
        let _guard = fault::test_guard();
        let dir = tmpdir("readflip");
        let path = dir.join("row-4-0.bin");
        let meta = FrameMeta { fingerprint: 1, index: 4, origin: 0, len: 4 };
        write_frame(&path, &meta, &[3u8; 32]).unwrap();
        fault::arm_read_corrupt(0);
        let err = read_frame(&path, 1).unwrap_err();
        fault::disarm_all();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
        // The file itself is intact; only the in-flight read was corrupted.
        assert!(read_frame(&path, 1).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_separates_jobs() {
        let sc = sw_core::Scoring::paper();
        let sc2 = sw_core::Scoring::new(2, -1, 4, 1);
        let g1 = gpu_sim::GridSpec { blocks: 4, threads: 4, alpha: 2 };
        let g2 = gpu_sim::GridSpec { blocks: 2, threads: 4, alpha: 2 };
        let base = job_fingerprint(100, 200, &sc, &g1, &g2);
        assert_eq!(base, job_fingerprint(100, 200, &sc, &g1, &g2), "deterministic");
        assert_ne!(base, job_fingerprint(101, 200, &sc, &g1, &g2), "length m");
        assert_ne!(base, job_fingerprint(100, 201, &sc, &g1, &g2), "length n");
        assert_ne!(base, job_fingerprint(100, 200, &sc2, &g1, &g2), "scoring");
        assert_ne!(base, job_fingerprint(100, 200, &sc, &g2, &g2), "grid");
    }
}
