// lint-fixture path=crates/gpu-sim/src/fixture.rs rule=no-panics expect=1
// An allow WITHOUT a justification does not suppress: the violation is
// reported, with a message pointing at the missing justification.
pub fn lazy(v: Option<u32>) -> u32 {
    // lint: allow(no-panics)
    v.unwrap()
}
