//! Linear-space DP: row-by-row Gotoh recurrences.
//!
//! [`RowDp`] advances a *global* (partition) DP one row at a time keeping
//! only the current row of `H` and `F` — exactly the state the Myers-Miller
//! matching procedure needs (`CC`/`DD` forward, `RR`/`SS` reverse). It also
//! serves as the sequential reference implementation the `gpu-sim`
//! wavefront engine is tested against.

use crate::scoring::{Score, Scoring, NEG_INF};
use crate::transcript::EdgeState;

/// Row-stepped global Gotoh DP over a partition.
///
/// Rows correspond to `S0` (one call to [`RowDp::step`] per character),
/// columns to `S1`. Row 0 is initialized at construction according to the
/// partition's start [`EdgeState`] (see `full::nw_global_typed` for the
/// edge-type semantics).
#[derive(Debug, Clone)]
pub struct RowDp {
    scoring: Scoring,
    h: Vec<Score>,
    f: Vec<Score>,
    e_last: Score,
    row: usize,
}

impl RowDp {
    /// Start a *forward* DP over `n + 1` columns from the given start edge
    /// state: `H₀ = 0` always (an incoming gap run may close at the
    /// crosspoint for free) and the matching gap state is seeded to `0`
    /// (extending the incoming run costs only `G_ext`, its opening having
    /// been charged in the upstream partition).
    pub fn new(n: usize, scoring: Scoring, start: EdgeState) -> Self {
        let e0 = if start == EdgeState::GapS0 { 0 } else { NEG_INF };
        let f0 = if start == EdgeState::GapS1 { 0 } else { NEG_INF };
        Self::with_origin(n, scoring, 0, e0, f0)
    }

    /// Start the DP of a *reversed* problem whose original problem must end
    /// in the given edge state.
    ///
    /// Forward accounting charges a gap-open at the (forward) start of each
    /// run. A run crossing the partition's *end* therefore has its opening
    /// charged inside the partition, so the reversed problem — which walks
    /// that run first — seeds the gap state with `-G_open` (the first
    /// reversed extension then totals `-G_first`, as required) and forbids
    /// `H` at the origin (the path *must* end with that gap).
    pub fn new_reverse(n: usize, scoring: Scoring, end: EdgeState) -> Self {
        match end {
            EdgeState::Diagonal => Self::with_origin(n, scoring, 0, NEG_INF, NEG_INF),
            EdgeState::GapS0 => {
                Self::with_origin(n, scoring, NEG_INF, -scoring.gap_open(), NEG_INF)
            }
            EdgeState::GapS1 => {
                Self::with_origin(n, scoring, NEG_INF, NEG_INF, -scoring.gap_open())
            }
        }
    }

    fn with_origin(n: usize, scoring: Scoring, h0: Score, e0: Score, f0: Score) -> Self {
        let mut h = vec![NEG_INF; n + 1];
        let mut f = vec![NEG_INF; n + 1];
        h[0] = h0;
        f[0] = f0;
        // Row 0: horizontal gap run from the origin.
        let mut e = e0;
        for j in 1..=n {
            e = (e - scoring.gap_ext).max(h[j - 1] - scoring.gap_first);
            h[j] = e;
        }
        RowDp { scoring, h, f, e_last: e, row: 0 }
    }

    /// Advance one row: `ai` is `S0[row]`, `b` the full column sequence.
    ///
    /// # Panics
    /// Panics if `b.len() + 1` differs from the column count.
    pub fn step(&mut self, ai: u8, b: &[u8]) {
        assert_eq!(b.len() + 1, self.h.len(), "column count mismatch");
        let sc = &self.scoring;
        let f0_prev = self.f[0];
        let h0_prev = self.h[0];
        // Column 0: vertical-only moves.
        self.f[0] = (f0_prev - sc.gap_ext).max(h0_prev - sc.gap_first);
        self.h[0] = self.f[0];

        let mut diag = h0_prev;
        let mut e = NEG_INF;
        for j in 1..=b.len() {
            e = (e - sc.gap_ext).max(self.h[j - 1] - sc.gap_first);
            let f = (self.f[j] - sc.gap_ext).max(self.h[j] - sc.gap_first);
            self.f[j] = f;
            let h = (diag + sc.subst(ai, b[j - 1])).max(e).max(f);
            diag = self.h[j];
            self.h[j] = h;
        }
        self.e_last = e;
        self.row += 1;
    }

    /// Current `H` row (index `j` in `0..=n`).
    pub fn h(&self) -> &[Score] {
        &self.h
    }

    /// Current `F` row (vertical-gap state).
    pub fn f(&self) -> &[Score] {
        &self.f
    }

    /// `E` value at the last column of the current row — the value the
    /// orthogonal Stage-4 reverse sweep needs: in the transposed view this
    /// is the original problem's `F` at the sweep frontier.
    pub fn e_last(&self) -> Score {
        self.e_last
    }

    /// Number of rows processed so far.
    pub fn row(&self) -> usize {
        self.row
    }

    /// Number of cell updates performed so far (excludes row 0).
    pub fn cells(&self) -> u64 {
        self.row as u64 * (self.h.len() as u64 - 1)
    }
}

/// Forward vectors of the Myers-Miller matching procedure: the `H` (`CC`)
/// and `F` (`DD`) values along the last row of `a` × `b`, starting from the
/// given edge state.
pub fn forward_vectors(
    a: &[u8],
    b: &[u8],
    scoring: &Scoring,
    start: EdgeState,
) -> (Vec<Score>, Vec<Score>) {
    let mut dp = RowDp::new(b.len(), *scoring, start);
    for &ai in a {
        dp.step(ai, b);
    }
    (dp.h, dp.f)
}

/// Reverse vectors (`RR`/`SS`): for every column `j` of the partition,
/// `rr[j]` is the best score of a path from node `(0, j)` of `a` × `b` to
/// the bottom-right corner ending in the given edge state, and `ss[j]` the
/// same for paths that *begin* with a vertical gap at `(0, j)`.
///
/// Both vectors have length `b.len() + 1` and are indexed by the ordinary
/// (forward) column index.
pub fn reverse_vectors(
    a: &[u8],
    b: &[u8],
    scoring: &Scoring,
    end: EdgeState,
) -> (Vec<Score>, Vec<Score>) {
    let a_rev: Vec<u8> = a.iter().rev().copied().collect();
    let b_rev: Vec<u8> = b.iter().rev().copied().collect();
    // Affine gap costs are reversal-invariant, so the reverse problem is a
    // forward problem over the reversed sequences; the origin seeding for
    // the end state is handled by `RowDp::new_reverse`.
    let mut dp = RowDp::new_reverse(b.len(), *scoring, end);
    for &ai in &a_rev {
        dp.step(ai, &b_rev);
    }
    let (h_rev, f_rev) = (dp.h, dp.f);
    let n = b.len();
    let mut rr = vec![0; n + 1];
    let mut ss = vec![0; n + 1];
    for j in 0..=n {
        rr[j] = h_rev[n - j];
        ss[j] = f_rev[n - j];
    }
    (rr, ss)
}

/// Global alignment score in linear space (no transcript) — used by tests
/// to cross-check the quadratic and divide-and-conquer implementations.
pub fn global_score(
    a: &[u8],
    b: &[u8],
    scoring: &Scoring,
    start: EdgeState,
    end: EdgeState,
) -> Score {
    let v = match end {
        EdgeState::Diagonal | EdgeState::GapS1 => {
            let (h, f) = forward_vectors(a, b, scoring, start);
            if end == EdgeState::Diagonal {
                h[b.len()]
            } else {
                f[b.len()]
            }
        }
        EdgeState::GapS0 => {
            // E is not tracked by RowDp; compute on the transposed problem,
            // where a horizontal gap becomes a vertical one.
            let (_h, f) = forward_vectors(b, a, scoring, start.transposed());
            f[a.len()]
        }
    };
    // Normalize unreachable states to the canonical sentinel.
    if v <= NEG_INF / 2 {
        NEG_INF
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::nw_global_typed;
    use crate::transcript::EdgeState as ES;

    const SC: Scoring = Scoring::paper();

    #[test]
    fn forward_matches_full_dp() {
        let a = b"ACGTACCGGT";
        let b = b"ACTTACGGGT";
        for start in [ES::Diagonal, ES::GapS0, ES::GapS1] {
            let (h, f) = forward_vectors(a, b, &SC, start);
            for end_j in [0usize, 3, b.len()] {
                let (score, _) = nw_global_typed(a, &b[..end_j], &SC, start, ES::Diagonal);
                assert_eq!(h[end_j], score, "H mismatch at j={end_j}, start={start:?}");
                let (score_f, _) = nw_global_typed(a, &b[..end_j], &SC, start, ES::GapS1);
                assert_eq!(f[end_j], score_f, "F mismatch at j={end_j}, start={start:?}");
            }
        }
    }

    #[test]
    fn reverse_matches_suffix_alignments() {
        let a = b"GATTACA";
        let b = b"GATCACAA";
        let (rr, ss) = reverse_vectors(a, b, &SC, ES::Diagonal);
        for j in 0..=b.len() {
            let (score, _) = nw_global_typed(a, &b[j..], &SC, ES::Diagonal, ES::Diagonal);
            assert_eq!(rr[j], score, "RR mismatch at j={j}");
            // SS: path begins with a vertical gap == reversed problem ends in F.
            let a_rev: Vec<u8> = a.iter().rev().copied().collect();
            let b_rev: Vec<u8> = b[j..].iter().rev().copied().collect();
            let (score_ss, _) = nw_global_typed(&a_rev, &b_rev, &SC, ES::Diagonal, ES::GapS1);
            assert_eq!(ss[j], score_ss, "SS mismatch at j={j}");
        }
    }

    #[test]
    fn row0_initialization_per_edge_state() {
        let dp = RowDp::new(3, SC, ES::Diagonal);
        assert_eq!(dp.h(), &[0, -5, -7, -9]);
        let dp_e = RowDp::new(3, SC, ES::GapS0);
        assert_eq!(dp_e.h(), &[0, -2, -4, -6]);
        let dp_f = RowDp::new(3, SC, ES::GapS1);
        assert_eq!(dp_f.f()[0], 0);
        assert_eq!(dp_f.h(), &[0, -5, -7, -9]);
    }

    #[test]
    fn column0_extends_seeded_gap() {
        let mut dp = RowDp::new(0, SC, ES::GapS1);
        dp.step(b'A', b"");
        assert_eq!(dp.h(), &[-2]);
        dp.step(b'C', b"");
        assert_eq!(dp.h(), &[-4]);
        assert_eq!(dp.row(), 2);
    }

    #[test]
    fn global_score_agrees_with_full_dp_all_edges() {
        let a = b"CCGTGAGA";
        let b = b"CCTTGAGG";
        for start in [ES::Diagonal, ES::GapS0, ES::GapS1] {
            for end in [ES::Diagonal, ES::GapS0, ES::GapS1] {
                let (full, _) = nw_global_typed(a, b, &SC, start, end);
                let lin = global_score(a, b, &SC, start, end);
                assert_eq!(lin, full, "start={start:?} end={end:?}");
            }
        }
    }

    #[test]
    fn cells_counter() {
        let mut dp = RowDp::new(10, SC, ES::Diagonal);
        assert_eq!(dp.cells(), 0);
        dp.step(b'A', b"ACGTACGTAC");
        dp.step(b'C', b"ACGTACGTAC");
        assert_eq!(dp.cells(), 20);
    }
}
