#![warn(missing_docs)]

//! # cudalign-cli
//!
//! The command-line face of the pipeline:
//!
//! ```text
//! cudalign align a.fasta b.fasta -o out.cal2 --stats
//! cudalign serve jobs.txt --runners 3 --trace-dir traces --stats
//! cudalign view  out.cal2 a.fasta b.fasta --width 80 --pgm plot.pgm
//! cudalign info  out.cal2
//! cudalign generate strain --len 20000 --seed 7 --out pair
//! cudalign dataset 5227Kx5229K --scale 1000 --out anthracis
//! ```
//!
//! All command logic lives in [`commands`] as testable functions; the
//! binary in `src/bin/cudalign.rs` only dispatches.

pub mod args;
pub mod commands;

pub use args::{parse, Command, ParseError};

/// Run a parsed command, returning the text to print.
pub fn run(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Align(a) => commands::align(&a),
        Command::Serve(s) => commands::serve(&s),
        Command::View(v) => commands::view(&v),
        Command::Info { path } => commands::info(&path),
        Command::Generate(g) => commands::generate(&g),
        Command::Dataset(d) => commands::dataset(&d),
        Command::Help => Ok(args::USAGE.to_string()),
    }
}
