//! Race-detector tests (compiled only with `--features race-check`).
//!
//! Three claims, per DESIGN.md "Enforced invariants":
//!
//! 1. Clean runs — parallel wavefront, resumed wavefront, multi-device
//!    pipeline — report *zero* violations: the scope-per-diagonal barrier
//!    really does order every cross-block bus hand-off.
//! 2. A seeded scheduling fault ([`exec::fault::arm_reorder_block`]) is
//!    provably caught: the detector reports `WrongProducer` for the
//!    reordered block while the engine's *output stays bit-identical*
//!    (the fault lives only in the detector's shadow state).
//! 3. The multi-device border channel's provenance tags round-trip.
//!
//! The violation sink is process-global, so every test serializes behind
//! one lock and drains the sink before running.

#![cfg(feature = "race-check")]

use gpu_sim::exec::fault;
use gpu_sim::race::{self, ViolationKind};
use gpu_sim::wavefront::{run_plain, RegionJob};
use gpu_sim::{multi, GridSpec, Mode};
use std::sync::{Mutex, MutexGuard};
use sw_core::scoring::Scoring;

/// Serializes tests (the violation sink is global) and recovers from
/// poisoning so one failed test doesn't cascade.
static LOCK: Mutex<()> = Mutex::new(());

fn isolated() -> MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::disarm();
    let _ = race::take_report();
    guard
}

fn dna(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            b"ACGT"[(x >> 33) as usize & 3]
        })
        .collect()
}

fn job<'a>(a: &'a [u8], b: &'a [u8], workers: usize) -> RegionJob<'a> {
    RegionJob {
        a,
        b,
        scoring: Scoring::paper(),
        mode: Mode::Local,
        grid: GridSpec { blocks: 4, threads: 4, alpha: 2 },
        workers,
        watch: None,
    }
}

#[test]
fn clean_parallel_run_reports_nothing() {
    let _g = isolated();
    let (a, b) = (dna(11, 96), dna(23, 96));
    for workers in [1, 4] {
        let res = run_plain(&job(&a, &b, workers));
        assert!(res.cells > 0);
        let report = race::take_report();
        assert!(
            report.is_empty(),
            "clean run with {workers} worker(s) reported violations:\n{}",
            report.iter().map(|v| format!("  {v}\n")).collect::<String>()
        );
    }
}

#[test]
fn seeded_reorder_fault_is_caught_and_output_unchanged() {
    let _g = isolated();
    let (a, b) = (dna(41, 96), dna(59, 96));
    let j = job(&a, &b, 4);

    let clean = run_plain(&j);
    assert!(race::take_report().is_empty(), "baseline run must be clean");

    // Run block (1,1) one external diagonal early — before the barrier
    // that seals its producers' writes.
    fault::arm_reorder_block(1, 1);
    let faulty = run_plain(&j);
    fault::disarm();
    let report = race::take_report();

    // The fault is confined to the detector's shadow state: the engine's
    // observable output must be bit-identical.
    assert_eq!(clean.best, faulty.best);
    assert_eq!(clean.cells, faulty.cells);
    assert_eq!(clean.hbus, faulty.hbus);
    assert_eq!(clean.vbus, faulty.vbus);

    // ... and the detector must have caught it: the early run reads bus
    // cells its scheduled producers have not written yet.
    assert!(!report.is_empty(), "seeded reorder fault went undetected");
    assert!(
        report.iter().any(|v| v.kind == ViolationKind::WrongProducer
            && v.r == 1
            && v.c == 1
            && v.diagonal == 2),
        "no WrongProducer violation at the reordered block (1,1)@d2:\n{}",
        report.iter().map(|v| format!("  {v}\n")).collect::<String>()
    );
    // Each phantom read of a not-yet-written cell names the border state
    // as the observed writer.
    assert!(report.iter().any(|v| v.detail.contains("border")));
}

#[test]
fn seeded_early_publish_fault_is_caught_and_output_unchanged() {
    let _g = isolated();
    let (a, b) = (dna(101, 96), dna(113, 96));
    // workers = 4 over 4 block columns: the strip scheduler runs with four
    // single-column strips and point-to-point publishes between them.
    let j = job(&a, &b, 4);

    let clean = run_plain(&j);
    assert!(race::take_report().is_empty(), "baseline strip run must be clean");

    // Publish block (2,1)'s border one block early: the fault replays the
    // right neighbour (2,2)'s bus reads at the moment (2,1) is *about* to
    // compute — i.e. before the border it consumes exists.
    fault::arm_early_publish(2, 1);
    let faulty = run_plain(&j);
    fault::disarm();
    let report = race::take_report();

    // The fault lives only in the detector's shadow state.
    assert_eq!(clean.best, faulty.best);
    assert_eq!(clean.cells, faulty.cells);
    assert_eq!(clean.hbus, faulty.hbus);
    assert_eq!(clean.vbus, faulty.vbus);

    // The neighbour's replayed reads see the wrong producer: its vertical
    // bus still holds (2,0)'s cells, not (2,1)'s.
    assert!(!report.is_empty(), "seeded early publish went undetected");
    assert!(
        report.iter().any(|v| v.kind == ViolationKind::WrongProducer
            && v.r == 2
            && v.c == 2
            && v.diagonal == 4),
        "no WrongProducer violation at the consumer (2,2)@d4:\n{}",
        report.iter().map(|v| format!("  {v}\n")).collect::<String>()
    );
    // ... and the strip hand-off shadow counter catches the publish
    // protocol itself: strip 1 has published zero rows when the replayed
    // consumer crosses its boundary.
    assert!(
        report
            .iter()
            .any(|v| v.kind == ViolationKind::UnorderedRead && v.detail.contains("strip hand-off")),
        "no strip hand-off UnorderedRead:\n{}",
        report.iter().map(|v| format!("  {v}\n")).collect::<String>()
    );
}

#[test]
fn second_run_after_fault_is_clean_again() {
    let _g = isolated();
    let (a, b) = (dna(41, 96), dna(59, 96));
    let j = job(&a, &b, 4);

    fault::arm_reorder_block(1, 1);
    let _ = run_plain(&j);
    fault::disarm();
    assert!(!race::take_report().is_empty());

    // Sessions are per-run: the next run starts from fresh shadow state.
    let _ = run_plain(&j);
    let report = race::take_report();
    assert!(
        report.is_empty(),
        "run after a disarmed fault reported violations:\n{}",
        report.iter().map(|v| format!("  {v}\n")).collect::<String>()
    );
}

#[test]
fn multi_device_clean_run_reports_nothing() {
    let _g = isolated();
    let (a, b) = (dna(77, 128), dna(91, 128));
    let j = job(&a, &b, 3);
    let single = run_plain(&j);
    let split = multi::run_split(&j, 3);
    assert_eq!(single.hbus, split.hbus);
    assert!(split.exchanged_cells > 0, "pipeline must actually exchange borders");
    let report = race::take_report();
    assert!(
        report.is_empty(),
        "multi-device clean run reported violations:\n{}",
        report.iter().map(|v| format!("  {v}\n")).collect::<String>()
    );
}

#[test]
fn channel_tag_mismatch_is_reported() {
    let _g = isolated();
    race::report_channel_tag(2, 7, 1, 7);
    let report = race::take_report();
    assert_eq!(report.len(), 1);
    assert_eq!(report[0].kind, ViolationKind::ChannelTag);
    assert!(report[0].detail.contains("device 1"));
    assert!(race::take_report().is_empty(), "take_report must drain the sink");
}
