#![warn(missing_docs)]

//! # cudalign-bench
//!
//! The benchmark harness that regenerates **every table and figure** of
//! the paper's evaluation (Section V). Each experiment lives in
//! [`tables`] and is runnable through the `repro` binary:
//!
//! ```text
//! cargo run -p cudalign-bench --release --bin repro -- table5
//! cargo run -p cudalign-bench --release --bin repro -- all
//! ```
//!
//! Scale: the paper's sequences (162 KBP - 47 MBP) are reproduced
//! synthetically at `1/REPRO_SCALE` of their real lengths (default
//! 1000). Measured numbers come from the CPU wavefront engine; paper-scale
//! projections use the calibrated GTX 285 device model
//! (`gpu_sim::DeviceModel`) driven by the measured cell/byte counts.

pub mod paper_data;
pub mod report;
pub mod runs;
pub mod tables;

/// The linear scale divisor (env `REPRO_SCALE`, default 1000).
pub fn repro_scale() -> usize {
    std::env::var("REPRO_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1000)
}

/// Workload seed (env `REPRO_SEED`, default 42).
pub fn repro_seed() -> u64 {
    std::env::var("REPRO_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}
