//! Pipeline configuration.

use gpu_sim::GridSpec;
use std::path::PathBuf;
use sw_core::Scoring;

/// Stage-1 checkpointing policy (crash recovery for long runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Directory holding `stage1.ckpt` (created on demand). With a
    /// [`SraBackend::Disk`] backend pointing at the same directory,
    /// completed special rows also survive the crash; with the memory
    /// backend a resumed run simply has fewer special rows, which the
    /// pipeline tolerates.
    pub dir: PathBuf,
    /// Snapshot every this many external diagonals.
    pub every_diagonals: usize,
}

/// Storage backend for the special rows/columns areas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SraBackend {
    /// Keep special rows/columns in RAM (tests, small runs).
    Memory,
    /// Persist them under the given directory, 8 bytes per cell, exactly
    /// like the paper's disk area. The directory is created on demand;
    /// files are removed when the area is dropped.
    Disk(PathBuf),
}

/// Configuration of a [`crate::Pipeline`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Scoring scheme (defaults to the paper's parameters).
    pub scoring: Scoring,
    /// Stage-1 execution configuration (`B_1`, `T_1`, `alpha`).
    pub grid1: GridSpec,
    /// Stage-2/3 execution configuration (`B_2 = B_3`, `T_2 = T_3`).
    pub grid23: GridSpec,
    /// Budget of the special rows area in bytes (`|SRA|`). Each special
    /// row costs `8 * (n + 1)` bytes.
    pub sra_bytes: u64,
    /// Budget for the special *columns* saved by Stage 2, in bytes.
    pub sca_bytes: u64,
    /// Storage backend for both areas.
    pub backend: SraBackend,
    /// Stage-4 stops splitting when both dimensions of every partition are
    /// at most this (the paper uses 16 for the chromosome comparison).
    pub max_partition_size: usize,
    /// Worker threads for the wavefront engine and the partition pools
    /// (`0` = all available cores).
    pub workers: usize,
    /// Enable orthogonal execution in Stage 4 (Table IX's `Time_2` vs
    /// `Time_1`). Stages 2-3 are inherently orthogonal.
    pub orthogonal_stage4: bool,
    /// Enable balanced splitting in Stage 4 (split the larger dimension
    /// instead of always the middle row — Figure 10).
    pub balanced_split: bool,
    /// Process Stage-3 partitions in parallel, one single-block engine
    /// launch per partition (the paper's future work, Section VI: "If
    /// only one thread block processes each partition, the minimum size
    /// requirement would not exist"). Off by default — the paper's
    /// evaluated configuration parallelizes inside each partition.
    pub parallel_partitions: bool,
    /// When set, Stage 1 writes engine snapshots to
    /// `<dir>/stage1.ckpt` and [`crate::Pipeline::align`] resumes from an
    /// existing, matching snapshot automatically. The file is removed
    /// when Stage 1 completes.
    pub checkpoint: Option<CheckpointPolicy>,
}

impl PipelineConfig {
    /// Paper-like defaults scaled to CPU execution: paper scoring, the
    /// GTX 285 grid shapes, 256 MiB SRA, 64 MiB SCA, memory backend,
    /// maximum partition size 16.
    pub fn default_cpu() -> Self {
        PipelineConfig {
            scoring: Scoring::paper(),
            grid1: GridSpec::stage1_gtx285(),
            grid23: GridSpec::stage23_gtx285(),
            sra_bytes: 256 << 20,
            sca_bytes: 64 << 20,
            backend: SraBackend::Memory,
            max_partition_size: 16,
            workers: 0,
            orthogonal_stage4: true,
            balanced_split: true,
            parallel_partitions: false,
            checkpoint: None,
        }
    }

    /// A small configuration for unit tests: tiny blocks so even short
    /// sequences exercise multi-block wavefronts and several special rows.
    pub fn for_tests() -> Self {
        PipelineConfig {
            scoring: Scoring::paper(),
            grid1: GridSpec { blocks: 4, threads: 4, alpha: 2 },
            grid23: GridSpec { blocks: 2, threads: 4, alpha: 2 },
            sra_bytes: 64 << 10,
            sca_bytes: 64 << 10,
            backend: SraBackend::Memory,
            max_partition_size: 16,
            workers: 2,
            orthogonal_stage4: true,
            balanced_split: true,
            parallel_partitions: false,
            checkpoint: None,
        }
    }

    /// Fingerprint of the job this configuration defines for an `m x n`
    /// comparison (see [`crate::storage::job_fingerprint`]). Stamped into
    /// every persistent file so state from a different sequence pair,
    /// scoring or grid is rejected on resume.
    pub fn job_fingerprint(&self, m: usize, n: usize) -> u64 {
        crate::storage::job_fingerprint(m, n, &self.scoring, &self.grid1, &self.grid23)
    }

    /// Set the SRA budget (builder style).
    pub fn with_sra_bytes(mut self, bytes: u64) -> Self {
        self.sra_bytes = bytes;
        self
    }

    /// Set the worker count (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the maximum partition size (builder style).
    pub fn with_max_partition_size(mut self, size: usize) -> Self {
        self.max_partition_size = size.max(1);
        self
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::default_cpu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_use_paper_scoring_and_grids() {
        let c = PipelineConfig::default();
        assert_eq!(c.scoring, Scoring::paper());
        assert_eq!(c.grid1.blocks, 240);
        assert_eq!(c.grid23.blocks, 60);
        assert_eq!(c.max_partition_size, 16);
        assert!(c.orthogonal_stage4);
        assert!(c.balanced_split);
    }

    #[test]
    fn builders() {
        let c = PipelineConfig::for_tests()
            .with_sra_bytes(1234)
            .with_workers(3)
            .with_max_partition_size(0);
        assert_eq!(c.sra_bytes, 1234);
        assert_eq!(c.workers, 3);
        assert_eq!(c.max_partition_size, 1, "floored at 1");
    }
}
