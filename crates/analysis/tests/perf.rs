//! Analyzer performance budget: the full-workspace lint must stay cheap
//! enough that the tier-1 `workspace_is_lint_clean` test never dominates
//! a test run. Each file is lexed exactly once and all rules share the
//! resulting token model, so the whole sweep should finish in well under
//! a second; the budget below leaves a wide margin for slow CI runners.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analysis sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_lint_fits_the_budget() {
    const BUDGET: Duration = Duration::from_secs(10);
    let start = Instant::now();
    let report = analysis::lint_workspace(&workspace_root()).expect("workspace readable");
    let elapsed = start.elapsed();
    assert!(
        report.files > 30,
        "budget test should sweep the real workspace, saw only {} file(s)",
        report.files
    );
    assert!(
        elapsed < BUDGET,
        "workspace lint took {elapsed:?} for {} file(s); budget is {BUDGET:?} — \
         a rule is probably re-reading or re-lexing files instead of sharing \
         the per-file token model",
        report.files
    );
}
