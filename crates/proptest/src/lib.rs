//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the dependencies it needs as minimal in-repo
//! crates. This one implements the subset of proptest's API that the
//! workspace's property tests use, with identical call-site syntax:
//!
//! - the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! - the [`Strategy`] trait with `prop_map`, ranges, tuples,
//!   [`collection::vec`], [`sample::select`], and [`any`],
//! - [`ProptestConfig::with_cases`] and [`TestCaseError`].
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports the per-case seed instead; a
//!   rerun reproduces it because case generation is fully deterministic
//!   (seeded from the test's module path and name, optionally XORed with
//!   `PROPTEST_SEED` from the environment).
//! - **No persistence.** `.proptest-regressions` files are ignored.
//!
//! Swapping the real crate back in requires no call-site changes.

use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Deterministic SplitMix64 stream driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build a generator from a 64-bit seed.
    pub fn from_seed(state: u64) -> Self {
        TestRng { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via debiased multiply-shift.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below(0)");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = (self.next_u64() as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How a test case ends without passing. Mirrors `proptest::test_runner::TestCaseError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed; the runner panics with this message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is retried with new ones.
    Reject(String),
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (filtered-out) case with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required for the test to succeed.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of values for property tests. Mirrors `proptest::strategy::Strategy`,
/// reduced to generation (no value tree, no shrinking).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_unsigned {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}

impl_range_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_range_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64) + rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_range_signed!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy {self:?}");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical "anything" strategy. Mirrors `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($T:ident),+) => {
        impl<$($T: Arbitrary),+> Arbitrary for ($($T,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($T::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`. Mirrors `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies. Mirrors `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a half-open range or an exact size.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range {r:?}");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Sampling strategies. Mirrors `proptest::sample`.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }

    /// Pick uniformly from `items`.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "sample::select on empty collection");
        Select { items }
    }
}

/// Drives the cases of one property test. Mirrors `proptest::test_runner::TestRunner`.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
    name: &'static str,
}

impl TestRunner {
    /// Build a runner whose base seed is derived from `name` (FNV-1a),
    /// optionally XORed with `PROPTEST_SEED` from the environment.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Some(extra) = std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse::<u64>().ok())
        {
            seed ^= extra;
        }
        TestRunner { config, rng: TestRng::from_seed(seed), name }
    }

    /// Run `case` until `config.cases` cases pass, panicking on the first
    /// failure (with the per-case seed, which makes the failure
    /// reproducible) or when `prop_assume!` rejects too many inputs.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let cases = self.config.cases;
        let max_rejects = (cases as u64).saturating_mul(16).max(256);
        let mut rejects = 0u64;
        let mut passed = 0u32;
        while passed < cases {
            let case_seed = self.rng.next_u64();
            let mut case_rng = TestRng::from_seed(case_seed);
            match catch_unwind(AssertUnwindSafe(|| case(&mut case_rng))) {
                Ok(Ok(())) => passed += 1,
                Ok(Err(TestCaseError::Reject(why))) => {
                    rejects += 1;
                    if rejects > max_rejects {
                        panic!(
                            "{}: gave up after {rejects} prop_assume! rejections \
                             ({passed}/{cases} cases passed); last: {why}",
                            self.name
                        );
                    }
                }
                Ok(Err(TestCaseError::Fail(msg))) => panic!(
                    "{} failed after {passed} passing cases (case seed {case_seed:#018x}): {msg}",
                    self.name
                ),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("<non-string panic payload>");
                    panic!(
                        "{} panicked after {passed} passing cases (case seed {case_seed:#018x}): {msg}",
                        self.name
                    );
                }
            }
        }
    }
}

/// The usual imports for property tests. Mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Define property tests.
///
/// Matches proptest's syntax: an optional `#![proptest_config(expr)]`
/// header followed by `fn name(pat in strategy, ...) { body }` items,
/// each carrying its own attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { @cfg(<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            runner.run(|__proptest_rng| {
                $(let $pat = $crate::Strategy::new_value(&($strat), __proptest_rng);)+
                let __proptest_body: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __proptest_body
            });
        }
    )*};
}

/// Assert a condition inside a property test, failing the case (not the
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed at {}:{}: {} = {:?}, {} = {:?}",
                file!(), line!(), stringify!($left), __l, stringify!($right), __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed at {}:{}: {:?} != {:?}: {}",
                file!(), line!(), __l, __r, format!($($fmt)+)
            )));
        }
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne! failed at {}:{}: both sides = {:?}",
                file!(), line!(), __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne! failed at {}:{}: both sides = {:?}: {}",
                file!(), line!(), __l, format!($($fmt)+)
            )));
        }
    }};
}

/// Reject the current inputs (retried with fresh ones, not counted as a
/// passing case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "prop_assume!(",
                stringify!($cond),
                ")"
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_seed(1);
        for _ in 0..500 {
            let v = Strategy::new_value(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let s = Strategy::new_value(&(-50i32..50), &mut rng);
            assert!((-50..50).contains(&s));
            let f = Strategy::new_value(&(0.0f64..0.5), &mut rng);
            assert!((0.0..0.5).contains(&f));
        }
    }

    #[test]
    fn vec_and_select_compose() {
        let mut rng = crate::TestRng::from_seed(2);
        let strat = crate::collection::vec(crate::sample::select(b"ACGT".to_vec()), 0..16);
        for _ in 0..200 {
            let v = Strategy::new_value(&strat, &mut rng);
            assert!(v.len() < 16);
            assert!(v.iter().all(|b| b"ACGT".contains(b)));
        }
        let exact = crate::collection::vec(0u8..4, 3);
        assert_eq!(Strategy::new_value(&exact, &mut rng).len(), 3);
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        let mut seen = Vec::new();
        for _ in 0..2 {
            let mut runner = crate::TestRunner::new(ProptestConfig::with_cases(5), "det-check");
            let mut vals = Vec::new();
            runner.run(|rng| {
                vals.push(rng.next_u64());
                Ok(())
            });
            seen.push(vals);
        }
        assert_eq!(seen[0], seen[1]);
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic_with_seed() {
        let mut runner = crate::TestRunner::new(ProptestConfig::with_cases(8), "fail-check");
        runner.run(|_| Err(TestCaseError::fail("boom")));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(v in crate::collection::vec(0u8..10, 1..20), (x, _y) in (0usize..5, 0u8..3)) {
            prop_assume!(!v.is_empty());
            prop_assert!(x < 5, "x = {}", x);
            prop_assert_eq!(v.len(), v.iter().copied().map(usize::from).count());
            prop_assert_ne!(v.len(), 0);
        }

        #[test]
        fn mapped_strategies_work(s in (1i32..4, -4i32..0).prop_map(|(a, b)| a - b)) {
            prop_assert!((2..=7).contains(&s));
        }
    }
}
