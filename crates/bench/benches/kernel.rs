//! Microbenchmarks of the DP kernels: cell-update throughput (the MCUPS
//! that all paper-scale projections build on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::kernel::{compute_tile, compute_tile_scalar, global_borders, GlobalOrigin};
use gpu_sim::wavefront::{run_plain, run_pooled, NoObserver, RegionJob};
use gpu_sim::{GridSpec, Mode, WorkerPool};
use sw_core::linear::RowDp;
use sw_core::scoring::Scoring;
use sw_core::transcript::EdgeState;

fn dna(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            b"ACGT"[(x >> 33) as usize & 3]
        })
        .collect()
}

fn bench_rowdp(c: &mut Criterion) {
    let mut g = c.benchmark_group("rowdp");
    let n = 4096usize;
    let a = dna(1, 1024);
    let b = dna(2, n);
    g.throughput(Throughput::Elements((a.len() * n) as u64));
    g.bench_function("forward_1024x4096", |bench| {
        bench.iter(|| {
            let mut dp = RowDp::new(n, Scoring::paper(), EdgeState::Diagonal);
            for &ch in &a {
                dp.step(ch, &b);
            }
            dp.h()[n]
        })
    });
    g.finish();
}

/// Tile throughput on the default (striped) path and the scalar reference,
/// same shapes and seeds as `src/bin/mcups.rs`, so criterion's statistics
/// back up the speedups recorded in BENCH_kernel.json.
fn bench_tile(c: &mut Criterion) {
    let mut g = c.benchmark_group("tile");
    for &(h, w) in &[(256usize, 256usize), (256, 4096)] {
        let a = dna(3, h);
        let b = dna(4, w);
        g.throughput(Throughput::Elements((h * w) as u64));
        for scalar in [false, true] {
            let path = if scalar { "scalar" } else { "striped" };
            g.bench_with_input(
                BenchmarkId::new(format!("global_{path}"), format!("{h}x{w}")),
                &(h, w),
                |bench, _| {
                    bench.iter(|| {
                        let (mut top, mut left, corner) = global_borders(
                            h,
                            w,
                            &Scoring::paper(),
                            GlobalOrigin::forward(EdgeState::Diagonal),
                        );
                        let run = if scalar { compute_tile_scalar } else { compute_tile };
                        run(
                            &a,
                            &b,
                            1,
                            1,
                            &Scoring::paper(),
                            false,
                            None,
                            corner,
                            &mut top,
                            &mut left,
                        )
                        .corner_out
                    })
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("local_{path}"), format!("{h}x{w}")),
                &(h, w),
                |bench, _| {
                    bench.iter(|| {
                        let (mut top, mut left, corner) = gpu_sim::kernel::local_borders(h, w);
                        let run = if scalar { compute_tile_scalar } else { compute_tile };
                        run(
                            &a,
                            &b,
                            1,
                            1,
                            &Scoring::paper(),
                            true,
                            None,
                            corner,
                            &mut top,
                            &mut left,
                        )
                        .best
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_wavefront(c: &mut Criterion) {
    let mut g = c.benchmark_group("wavefront");
    g.sample_size(10);
    let a = dna(5, 4096);
    let b = dna(6, 4096);
    g.throughput(Throughput::Elements((a.len() * b.len()) as u64));
    for workers in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("local_4096x4096", workers), &workers, |bench, &w| {
            let job = RegionJob {
                a: &a,
                b: &b,
                scoring: Scoring::paper(),
                mode: Mode::Local,
                grid: GridSpec { blocks: 16, threads: 16, alpha: 4 },
                workers: w,
                watch: None,
            };
            bench.iter(|| run_plain(&job).best)
        });
    }
    g.finish();
}

/// The paper's phase division keeps the hot kernel free of bookkeeping;
/// this measures the monomorphized variants' relative cost.
fn bench_kernel_phases(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_phases");
    let (h, w) = (512usize, 1024usize);
    let a = dna(21, h);
    let b = dna(22, w);
    g.throughput(Throughput::Elements((h * w) as u64));
    let sc = Scoring::paper();
    g.bench_function("global_plain", |bench| {
        bench.iter(|| {
            let (mut top, mut left, corner) =
                global_borders(h, w, &sc, GlobalOrigin::forward(EdgeState::Diagonal));
            compute_tile(&a, &b, 1, 1, &sc, false, None, corner, &mut top, &mut left).corner_out
        })
    });
    g.bench_function("global_watching", |bench| {
        bench.iter(|| {
            let (mut top, mut left, corner) =
                global_borders(h, w, &sc, GlobalOrigin::forward(EdgeState::Diagonal));
            compute_tile(&a, &b, 1, 1, &sc, false, Some(i32::MAX / 8), corner, &mut top, &mut left)
                .corner_out
        })
    });
    g.bench_function("local_tracking", |bench| {
        bench.iter(|| {
            let (mut top, mut left, corner) = gpu_sim::kernel::local_borders(h, w);
            compute_tile(&a, &b, 1, 1, &sc, true, None, corner, &mut top, &mut left).best
        })
    });
    g.finish();
}

/// Scheduler overhead: many tiny diagonals are the executor's worst case
/// (one barrier per diagonal, almost no DP work per job).
///
/// The `launch/*` rows run a real wavefront over a 512x512 matrix cut
/// into 64x64 blocks of 8x8 cells (127 external diagonals), either on a
/// persistent [`WorkerPool`] (`pooled`) or standing a fresh pool up per
/// launch (`fresh_pool`).
///
/// The `handoff/*` rows isolate what the executor replaced: the
/// pre-executor engine stood worker threads up once *per diagonal*, so
/// `per_diagonal_spawn` creates a fresh pool for each of 127 barrier
/// scopes while `pooled` hands the same scopes to long-lived workers.
/// Pooled must not be slower than the spawning variant.
fn bench_scheduler_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(10);
    let a = dna(7, 512);
    let b = dna(8, 512);
    let grid = GridSpec { blocks: 64, threads: 8, alpha: 1 };
    let diagonals = 2 * 64 - 1;
    g.throughput(Throughput::Elements((a.len() * b.len()) as u64));
    for workers in [2usize, 4] {
        let job = RegionJob {
            a: &a,
            b: &b,
            scoring: Scoring::paper(),
            mode: Mode::Local,
            grid,
            workers,
            watch: None,
        };
        g.bench_with_input(BenchmarkId::new("launch/pooled", workers), &workers, |bench, &w| {
            let pool = WorkerPool::new(w);
            bench.iter(|| run_pooled(&pool, &job, &mut NoObserver).unwrap().best)
        });
        g.bench_with_input(
            BenchmarkId::new("launch/fresh_pool", workers),
            &workers,
            |bench, &w| {
                bench.iter(|| {
                    let pool = WorkerPool::new(w);
                    run_pooled(&pool, &job, &mut NoObserver).unwrap().best
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("handoff/pooled", workers), &workers, |bench, &w| {
            let pool = WorkerPool::new(w);
            bench.iter(|| {
                let mut acc = 0u64;
                for d in 0..diagonals {
                    let shards: Vec<u64> = (0..w as u64).map(|k| d + k).collect();
                    let mut outs = vec![0u64; shards.len()];
                    pool.scope(|s| {
                        for (shard, out) in shards.iter().zip(outs.iter_mut()) {
                            s.spawn(move || *out = shard.wrapping_mul(0x9E3779B97F4A7C15));
                        }
                    })
                    .unwrap();
                    acc = acc.wrapping_add(outs.iter().sum::<u64>());
                }
                acc
            })
        });
        g.bench_with_input(
            BenchmarkId::new("handoff/per_diagonal_spawn", workers),
            &workers,
            |bench, &w| {
                bench.iter(|| {
                    let mut acc = 0u64;
                    for d in 0..diagonals {
                        let pool = WorkerPool::new(w);
                        let shards: Vec<u64> = (0..w as u64).map(|k| d + k).collect();
                        let mut outs = vec![0u64; shards.len()];
                        pool.scope(|s| {
                            for (shard, out) in shards.iter().zip(outs.iter_mut()) {
                                s.spawn(move || *out = shard.wrapping_mul(0x9E3779B97F4A7C15));
                            }
                        })
                        .unwrap();
                        acc = acc.wrapping_add(outs.iter().sum::<u64>());
                    }
                    acc
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_rowdp,
    bench_tile,
    bench_wavefront,
    bench_kernel_phases,
    bench_scheduler_overhead
);
criterion_main!(benches);
