//! The six-stage pipeline orchestrator.

use crate::binary::BinaryAlignment;
use crate::config::PipelineConfig;
use crate::crosspoint::CrosspointChain;
use crate::obs::{Event, Metrics, Obs};
use crate::sra::{LineStore, StoreStats};
use crate::stage4::IterationStats;
use crate::storage::{self, StorageError};
use crate::supervise::RunControl;
use crate::{stage1, stage2, stage3, stage4, stage5};
use gpu_sim::{ExecError, PoolStats, WorkerPool};
use std::sync::Arc;
use sw_core::scoring::Score;
use sw_core::transcript::Transcript;

/// Failure of one pipeline stage.
///
/// Every stage entry point returns this; the pipeline maps it onto
/// [`PipelineError`]. The split matters because the two variants demand
/// different reactions: a [`StageError::Logic`] means the stage's own
/// invariants failed (goal not found, chain validation), while a
/// [`StageError::Worker`] means a job panicked on the shared
/// [`WorkerPool`] — the pool itself survives and the run can be retried.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StageError {
    /// A stage invariant failed (a bug or corrupted store).
    Logic(String),
    /// A worker-pool job panicked; the payload is the panic message.
    Worker(String),
    /// The storage layer failed in a way the stage could not degrade
    /// around (see [`StorageError`]).
    Storage(StorageError),
    /// The stage was interrupted mid-run (a simulated crash from
    /// `storage::fault::arm_stage1_kill`, or an observer abort). The
    /// partial result is *not* usable — resuming from the last checkpoint
    /// is the only correct continuation.
    Interrupted {
        /// External diagonal the wavefront had reached.
        diagonal: usize,
    },
    /// The run was cancelled on request (API call, CLI flag, signal).
    /// With checkpointing on, the engine flushed a boundary snapshot
    /// before unwinding — resume continues from `diagonal`.
    Cancelled {
        /// External diagonal the run can resume from (0 outside stage 1).
        diagonal: usize,
    },
    /// The run's wall-clock deadline expired (watchdog-driven).
    DeadlineExceeded {
        /// External diagonal the run can resume from (0 outside stage 1).
        diagonal: usize,
        /// The deadline budget that expired, in milliseconds.
        budget_ms: u64,
    },
    /// The stall watchdog saw no forward progress within its budget.
    Stalled {
        /// External diagonal the run can resume from (0 outside stage 1).
        diagonal: usize,
        /// The stall budget that was exceeded, in milliseconds.
        budget_ms: u64,
    },
}

impl StageError {
    /// Is this an interruption (cancel / deadline / stall / simulated
    /// kill) rather than a genuine failure? Interrupted runs are fully
    /// resumable; nothing is wrong with the pipeline itself.
    pub fn is_interruption(&self) -> bool {
        matches!(
            self,
            StageError::Interrupted { .. }
                | StageError::Cancelled { .. }
                | StageError::DeadlineExceeded { .. }
                | StageError::Stalled { .. }
        )
    }
}

impl std::fmt::Display for StageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageError::Logic(s) => write!(f, "{s}"),
            StageError::Worker(s) => write!(f, "worker panicked: {s}"),
            StageError::Storage(e) => write!(f, "{e}"),
            StageError::Interrupted { diagonal } => {
                write!(f, "stage interrupted at external diagonal {diagonal}")
            }
            StageError::Cancelled { diagonal } => {
                write!(f, "stage cancelled at external diagonal {diagonal}")
            }
            StageError::DeadlineExceeded { diagonal, budget_ms } => {
                write!(
                    f,
                    "stage exceeded its {budget_ms} ms deadline at external diagonal {diagonal}"
                )
            }
            StageError::Stalled { diagonal, budget_ms } => {
                write!(
                    f,
                    "stage stalled (no progress within {budget_ms} ms) at external diagonal {diagonal}"
                )
            }
        }
    }
}

impl std::error::Error for StageError {}

impl From<String> for StageError {
    fn from(s: String) -> Self {
        StageError::Logic(s)
    }
}

impl From<crate::crosspoint::ChainError> for StageError {
    fn from(e: crate::crosspoint::ChainError) -> Self {
        StageError::Logic(format!("invalid crosspoint chain: {e}"))
    }
}

impl From<ExecError> for StageError {
    fn from(e: ExecError) -> Self {
        match e {
            ExecError::WorkerPanic(msg) => StageError::Worker(msg),
            // `ExecError` is `#[non_exhaustive]`: any executor failure mode
            // added later surfaces as a stage-invariant error rather than a
            // compile break here.
            other => StageError::Logic(format!("executor error: {other}")),
        }
    }
}

impl From<StorageError> for StageError {
    fn from(e: StorageError) -> Self {
        StageError::Storage(e)
    }
}

/// Pipeline failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PipelineError {
    /// An internal invariant failed (a bug or corrupted store).
    Internal(String),
    /// Storage backend failure.
    Io(String),
    /// A worker-pool job panicked. The pool is not poisoned: the same
    /// [`Pipeline`] may be retried.
    Worker(String),
    /// The run was interrupted mid-stage (simulated crash / observer
    /// abort). With checkpointing enabled, calling
    /// [`Pipeline::align`] again resumes from the last snapshot;
    /// special rows already on a disk backend are reopened.
    Interrupted {
        /// External diagonal the wavefront had reached.
        diagonal: usize,
    },
    /// The run was cancelled on request via [`crate::supervise::RunControl`].
    /// The engine flushed a boundary checkpoint before unwinding (when
    /// checkpointing is on), so rerunning resumes from `diagonal`.
    Cancelled {
        /// External diagonal the run can resume from (0 outside stage 1).
        diagonal: usize,
    },
    /// The run's wall-clock deadline expired.
    DeadlineExceeded {
        /// External diagonal the run can resume from (0 outside stage 1).
        diagonal: usize,
        /// The deadline budget that expired, in milliseconds.
        budget_ms: u64,
    },
    /// The stall watchdog saw no forward progress within its budget.
    Stalled {
        /// External diagonal the run can resume from (0 outside stage 1).
        diagonal: usize,
        /// The stall budget that was exceeded, in milliseconds.
        budget_ms: u64,
    },
}

impl PipelineError {
    /// Is this an interruption (cancel / deadline / stall / simulated
    /// kill) rather than a genuine failure? Interrupted runs are fully
    /// resumable: rerunning the same pipeline continues (or restarts)
    /// correctly and yields a byte-identical result.
    pub fn is_interruption(&self) -> bool {
        matches!(
            self,
            PipelineError::Interrupted { .. }
                | PipelineError::Cancelled { .. }
                | PipelineError::DeadlineExceeded { .. }
                | PipelineError::Stalled { .. }
        )
    }

    /// The trace's interrupt `kind` discriminator for supervised
    /// interruptions (`None` for ordinary failures and for the legacy
    /// simulated-kill [`PipelineError::Interrupted`], which predates the
    /// supervision layer and keeps its quiet trace).
    pub fn interruption_kind(&self) -> Option<&'static str> {
        match self {
            PipelineError::Cancelled { .. } => Some("cancelled"),
            PipelineError::DeadlineExceeded { .. } => Some("deadline"),
            PipelineError::Stalled { .. } => Some("stalled"),
            _ => None,
        }
    }

    /// The external diagonal a resumed run continues from, for
    /// interruption errors.
    pub fn resume_diagonal(&self) -> Option<usize> {
        match self {
            PipelineError::Interrupted { diagonal }
            | PipelineError::Cancelled { diagonal }
            | PipelineError::DeadlineExceeded { diagonal, .. }
            | PipelineError::Stalled { diagonal, .. } => Some(*diagonal),
            _ => None,
        }
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Internal(s) => write!(f, "pipeline error: {s}"),
            PipelineError::Io(s) => write!(f, "pipeline I/O error: {s}"),
            PipelineError::Worker(s) => write!(f, "pipeline worker panicked: {s}"),
            PipelineError::Interrupted { diagonal } => {
                write!(
                    f,
                    "pipeline interrupted at external diagonal {diagonal} (resume to continue)"
                )
            }
            PipelineError::Cancelled { diagonal } => {
                write!(f, "pipeline cancelled at external diagonal {diagonal} (resume to continue)")
            }
            PipelineError::DeadlineExceeded { diagonal, budget_ms } => {
                write!(
                    f,
                    "pipeline exceeded its {budget_ms} ms deadline at external diagonal {diagonal} (resume to continue)"
                )
            }
            PipelineError::Stalled { diagonal, budget_ms } => {
                write!(
                    f,
                    "pipeline stalled (no progress within {budget_ms} ms) at external diagonal {diagonal} (resume to continue)"
                )
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<StageError> for PipelineError {
    fn from(e: StageError) -> Self {
        match e {
            StageError::Logic(s) => PipelineError::Internal(s),
            StageError::Worker(s) => PipelineError::Worker(s),
            StageError::Storage(e) => PipelineError::Io(e.to_string()),
            StageError::Interrupted { diagonal } => PipelineError::Interrupted { diagonal },
            StageError::Cancelled { diagonal } => PipelineError::Cancelled { diagonal },
            StageError::DeadlineExceeded { diagonal, budget_ms } => {
                PipelineError::DeadlineExceeded { diagonal, budget_ms }
            }
            StageError::Stalled { diagonal, budget_ms } => {
                PipelineError::Stalled { diagonal, budget_ms }
            }
        }
    }
}

/// Everything the paper's Tables V, VII and VIII report about one run.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Wall-clock seconds per stage (index 0 = Stage 1, ... 4 = Stage 5).
    pub stage_seconds: [f64; 5],
    /// DP cells processed by Stages 1-4 (`Cells_k`).
    pub stage_cells: [u64; 4],
    /// Stage-5 cells (bounded by partition size x chain length).
    pub stage5_cells: u64,
    /// Crosspoints after Stages 1-4 (`|L_k|`).
    pub crosspoints: [usize; 4],
    /// Completed special rows.
    pub special_rows: usize,
    /// Stage-1 flush interval in block rows.
    pub flush_interval_blocks: usize,
    /// Bytes written to the SRA by Stage 1.
    pub sra_bytes_used: u64,
    /// Special columns kept for Stage 3.
    pub special_columns: usize,
    /// Bytes of special columns kept.
    pub sca_bytes_used: u64,
    /// Largest partition height after Stage 3 (`H_max`).
    pub h_max: usize,
    /// Largest partition width after Stage 3 (`W_max`).
    pub w_max: usize,
    /// Stage-2 strip launches.
    pub stage2_strips: usize,
    /// Per-iteration Stage-4 statistics (Table IX).
    pub stage4_iterations: Vec<IterationStats>,
    /// Estimated bus memory per GPU stage (`VRAM_k`, Stages 1-3).
    pub vram_bytes: [u64; 3],
    /// Effective block counts per GPU stage (`B_k` after the minimum-size
    /// requirement; Stage 1 for the full width, Stages 2-3 the minimum
    /// across strips/bands).
    pub effective_blocks: [usize; 3],
    /// Size of the binary alignment representation.
    pub binary_bytes: usize,
    /// External diagonal Stage 1 resumed from (0 = fresh run).
    pub resumed_from_diagonal: usize,
    /// DP cells a resumed Stage 1 did *not* recompute because the
    /// restored snapshot already covered them. `stage_cells[0]` counts
    /// only the recomputed cells, so throughput divides matching work by
    /// matching time; the full matrix is `stage_cells[0] + this`.
    pub resumed_cells_skipped: u64,
    /// Special rows lost to storage failures: unwritable after retries
    /// (Stage 1) or corrupt on read-back (Stage 2). The run stays
    /// correct — Stage 2 just does more work between surviving rows.
    pub dropped_special_rows: u64,
    /// Special columns lost to storage failures: unwritable (Stage 2) or
    /// corrupt/skipped on read-back (Stage 3) — partitions just grow.
    pub dropped_special_cols: u64,
    /// Stage-1 checkpoint snapshots that could not be written. Non-zero
    /// means resumability is degraded to the last successful snapshot.
    pub checkpoint_failures: u64,
    /// Transient storage write failures recovered by retry.
    pub storage_retries: u64,
    /// Persisted files rejected on reopen (truncated, bit-flipped,
    /// misnamed, foreign job fingerprint).
    pub storage_rejected_files: u64,
    /// Orphaned/stale files swept from the storage directory.
    pub storage_swept_files: u64,
    /// Worker-pool lanes available to this run (including the caller).
    pub pool_lanes: usize,
    /// Queue/condvar handoffs this run performed (one per wavefront
    /// diagonal or partition batch handed to the pool).
    pub pool_handoffs: u64,
    /// Jobs this run spawned on the pool.
    pub pool_tasks: u64,
    /// Mean occupied-lane fraction per handoff, in `[0, 1]`.
    pub pool_busy_ratio: f64,
    /// Tiles that committed on the 32-lane saturating-`i8` rung of the
    /// precision ladder (Stages 1-3, the engine-driven stages).
    pub kernel_striped8_tiles: u64,
    /// Tiles that attempted the `i8` rung, overflowed its window, and
    /// committed on the 16-lane `i16` rung instead.
    pub kernel_striped8_fb16_tiles: u64,
    /// Tiles that went straight to the `i16` rung (the `i8` rung was
    /// ineligible for the tile's shape or scoring).
    pub kernel_striped16_tiles: u64,
    /// Tiles that exhausted the vector rungs and re-ran on the scalar
    /// `i32` kernel after `i16` overflow.
    pub kernel_fallback_tiles: u64,
    /// Query-profile cache hits across the engine-driven stages.
    pub kernel_profile_hits: u64,
    /// Query-profile cache misses (profile bands built) across the
    /// engine-driven stages.
    pub kernel_profile_misses: u64,
    /// Supervised interruptions (cancel / deadline / stall) recorded on
    /// this run's metrics registry. Non-zero only when the caller reuses
    /// one [`Obs`] across an interrupted run and its resume — the
    /// resumed run's stats then carry the interruption history.
    pub interruptions: u64,
    /// Milliseconds from the last cancel signal to the run unwinding
    /// (time-to-cancel latency on the supervisor's clock).
    pub cancel_latency_ms: f64,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
}

impl PipelineStats {
    /// Total cells across all stages.
    pub fn total_cells(&self) -> u64 {
        self.stage_cells.iter().sum::<u64>() + self.stage5_cells
    }

    /// Million cell updates per second over the whole run — the paper's
    /// headline MCUPS metric, derived from total cells and wall-clock.
    ///
    /// `None` when `total_seconds` is zero, negative or non-finite (a
    /// degenerate run, e.g. under a coarse or manual clock): dividing
    /// anyway used to hand `inf`/NaN to `--stats` output.
    pub fn mcups(&self) -> Option<f64> {
        if self.total_seconds > 0.0 && self.total_seconds.is_finite() {
            Some(self.total_cells() as f64 / self.total_seconds / 1e6)
        } else {
            None
        }
    }
}

/// Result of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The optimal local score (0 = no positive-scoring alignment; all
    /// other fields are then empty/zero).
    pub best_score: Score,
    /// Alignment start node.
    pub start: (usize, usize),
    /// Alignment end node.
    pub end: (usize, usize),
    /// The full optimal alignment.
    pub transcript: Transcript,
    /// Compact binary form (Stage 5 output).
    pub binary: BinaryAlignment,
    /// The final crosspoint chain.
    pub chain: CrosspointChain,
    /// Run statistics.
    pub stats: PipelineStats,
}

/// The CUDAlign 2.0 pipeline.
///
/// Owns the persistent [`WorkerPool`] every stage executes on: the pool is
/// created once from [`PipelineConfig::workers`] and its threads live as
/// long as the pipeline, so repeated [`Pipeline::align`] calls (and all
/// six stages within one call) share the same lanes instead of respawning
/// OS threads per diagonal. Cloning a pipeline shares the pool.
#[derive(Debug, Clone)]
pub struct Pipeline {
    cfg: PipelineConfig,
    pool: Arc<WorkerPool>,
}

impl Pipeline {
    /// Create a pipeline with the given configuration. Spawns the worker
    /// pool (`cfg.workers` lanes; `0` = one per available CPU).
    pub fn new(cfg: PipelineConfig) -> Self {
        let pool = Arc::new(WorkerPool::new(cfg.workers));
        Pipeline { cfg, pool }
    }

    /// Create a pipeline executing on an existing shared pool.
    ///
    /// `cfg.workers` still caps the parallelism each stage *uses* (the
    /// effective width is `min(pool lanes, cfg.workers)`), but no new
    /// threads are spawned.
    pub fn with_pool(cfg: PipelineConfig, pool: Arc<WorkerPool>) -> Self {
        Pipeline { cfg, pool }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// The worker pool stages execute on.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Align `s0` against `s1`, returning the full optimal local
    /// alignment in linear memory.
    pub fn align(&self, s0: &[u8], s1: &[u8]) -> Result<PipelineResult, PipelineError> {
        self.align_observed(s0, s1, &mut Obs::new())
    }

    /// [`Pipeline::align`] with an observability handle.
    ///
    /// The run is bracketed by [`Event::RunBegin`]/[`Event::RunEnd`]; each
    /// stage (1..=6, where 6 is the packing/bookkeeping epilogue) gets a
    /// [`Event::StageBegin`]/[`Event::StageEnd`] span, and the stages
    /// stream their own progress events in between. Every wall-clock read
    /// goes through the handle's injected [`crate::obs::Clock`], so a
    /// caller driving a [`crate::obs::ManualClock`] gets deterministic
    /// timings. Scalar counters accumulate in the [`Obs::metrics`]
    /// registry — the single source of truth that [`PipelineStats`],
    /// `--stats` and the NDJSON trace all read; a [`Event::Metrics`] dump
    /// is emitted just before `RunEnd`.
    pub fn align_observed(
        &self,
        s0: &[u8],
        s1: &[u8],
        obs: &mut Obs<'_>,
    ) -> Result<PipelineResult, PipelineError> {
        self.align_with_control(s0, s1, obs, &RunControl::unlimited())
    }

    /// [`Pipeline::align_observed`] under a supervision policy.
    ///
    /// The [`RunControl`]'s cancel token is threaded through all six
    /// stages and the wavefront engine; its deadline/stall budgets are
    /// enforced by a watchdog thread spawned for the duration of this
    /// call (and joined before it returns — a supervised run never leaks
    /// a thread). An interruption surfaces as a typed
    /// [`PipelineError::Cancelled`] / [`PipelineError::DeadlineExceeded`]
    /// / [`PipelineError::Stalled`] — never a partial score — after
    /// emitting an [`Event::Interrupt`] record (plus an
    /// [`Event::StallDiag`] snapshot when the strip scheduler was torn
    /// down) and bumping the `supervise.*` metrics. With checkpointing
    /// configured, the engine flushes a boundary snapshot before
    /// unwinding, so rerunning the pipeline resumes from the reported
    /// diagonal and produces a byte-identical result.
    pub fn align_supervised(
        &self,
        s0: &[u8],
        s1: &[u8],
        obs: &mut Obs<'_>,
        ctrl: &RunControl,
    ) -> Result<PipelineResult, PipelineError> {
        let _watchdog = ctrl.spawn_watchdog();
        self.align_with_control(s0, s1, obs, ctrl)
    }

    fn align_with_control(
        &self,
        s0: &[u8],
        s1: &[u8],
        obs: &mut Obs<'_>,
        ctrl: &RunControl,
    ) -> Result<PipelineResult, PipelineError> {
        let cfg = &self.cfg;
        let pool = &*self.pool;
        let pool_before = pool.stats();
        let t_total = obs.now();
        let mut stats = PipelineStats::default();
        let fingerprint = cfg.job_fingerprint(s0.len(), s1.len());

        // With a checkpoint policy, a matching snapshot from a previous
        // (crashed) run resumes Stage 1 mid-matrix; completed special rows
        // are reopened when the backend is disk-based and in-flight row
        // segments are restored from the combined snapshot. A checkpoint
        // that fails validation (truncated, bit-flipped, foreign job) is
        // discarded and the run starts fresh — always correct, never
        // resumed-from-garbage.
        let resume =
            cfg.checkpoint.as_ref().and_then(|ck| stage1::load_checkpoint(&ck.dir, fingerprint));
        let resuming = resume.is_some();
        let (resume_state, resume_partials) = match resume {
            Some((st, p)) => (Some(st), Some(p)),
            None => (None, None),
        };
        obs.emit(Event::RunBegin {
            m: s0.len(),
            n: s1.len(),
            total_diagonals: cfg.grid1.layout(s0.len(), s1.len()).diagonals(),
            resumed_from_diagonal: resume_state.as_ref().map_or(0, |st| st.next_diagonal),
        });

        // A run cancelled before it starts (e.g. a queued serve job whose
        // deadline fired while it waited) unwinds here, *after* the
        // run-open record above: even an immediately-interrupted trace
        // carries run_begin + interrupt rather than being empty, and the
        // caller never pays for stores it won't use.
        if let Err(e) = ctrl.check(resume_state.as_ref().map_or(0, |st| st.next_diagonal)) {
            return Err(note_interruption(obs, ctrl, 1, e));
        }

        let mut rows: LineStore<gpu_sim::CellHF> = if resuming {
            LineStore::reopen(&cfg.backend, cfg.sra_bytes, "special-row", fingerprint)
                .map_err(|e| PipelineError::Io(e.to_string()))?
        } else {
            LineStore::new(&cfg.backend, cfg.sra_bytes, "special-row", fingerprint)
                .map_err(|e| PipelineError::Io(e.to_string()))?
        };
        if cfg.checkpoint.is_some() {
            // An interrupted run must leave the row files on disk for the
            // resumed run to reopen; Drop would otherwise delete them on
            // the error path. Completed runs clean up explicitly below.
            rows.persist_on_drop(true);
        }
        if let Some(p) = resume_partials {
            if !rows.restore_partials(&p) {
                return Err(PipelineError::Io("corrupt stage-1 checkpoint partials".into()));
            }
        }
        let mut cols: LineStore<gpu_sim::CellHE> =
            LineStore::new(&cfg.backend, cfg.sca_bytes, "special-col", fingerprint)
                .map_err(|e| PipelineError::Io(e.to_string()))?;

        // Stage 1: best score, end point, special rows.
        obs.emit(Event::StageBegin { stage: 1 });
        let t = obs.now();
        let s1r = match &cfg.checkpoint {
            None => {
                let r = stage1::run_supervised(s0, s1, cfg, pool, &mut rows, None, None, obs, ctrl);
                r.map_err(|e| note_interruption(obs, ctrl, 1, e))?
            }
            Some(ck) => {
                storage::ensure_dir(&ck.dir).map_err(|e| PipelineError::Io(e.to_string()))?;
                let r = stage1::run_supervised(
                    s0,
                    s1,
                    cfg,
                    pool,
                    &mut rows,
                    resume_state,
                    Some((ck.dir.as_path(), ck.every_diagonals)),
                    obs,
                    ctrl,
                );
                let r = r.map_err(|e| note_interruption(obs, ctrl, 1, e))?;
                storage::remove_file_quiet(&ck.dir.join("stage1.ckpt"));
                r
            }
        };
        // The engine's cell counter is cumulative across resumes; the work
        // this run performed excludes cells the restored snapshot already
        // covered. Throughput must divide matching work by matching time,
        // so only recomputed cells enter `stage1.cells` — the skipped
        // remainder is reported separately.
        let stage1_cells = s1r.cells.saturating_sub(s1r.resumed_cells);
        let seconds = obs.now().saturating_sub(t).as_secs_f64();
        record_kernel(obs, 1, &s1r.paths, s1r.profile_hits, s1r.profile_misses);
        obs.emit(Event::StageEnd { stage: 1, seconds, cells: stage1_cells });
        obs.metrics.set_gauge("stage1.seconds", seconds);
        obs.metrics.inc("stage1.cells", stage1_cells);
        obs.metrics.inc("stage1.resumed_cells_skipped", s1r.resumed_cells);
        obs.metrics.set("stage1.resumed_from_diagonal", s1r.resumed_from_diagonal as u64);
        obs.metrics.inc("sra.special_rows", s1r.special_rows.len() as u64);
        obs.metrics.inc("sra.bytes_used", s1r.flushed_bytes);
        obs.metrics.inc("storage.checkpoint_failures", s1r.checkpoint_failures);
        stats.crosspoints[0] = 1;
        stats.flush_interval_blocks = s1r.flush_interval_blocks;
        stats.vram_bytes[0] = s1r.vram_bytes;
        stats.effective_blocks[0] = cfg.grid1.effective_blocks(s1.len());

        if s1r.best_score <= 0 {
            record_store_stats(&mut obs.metrics, rows.stats(), cols.stats());
            rows.clear();
            record_pool_delta(&mut obs.metrics, &pool_before, &pool.stats());
            let total = obs.now().saturating_sub(t_total).as_secs_f64();
            obs.metrics.set_gauge("total.seconds", total);
            fill_scalar_stats(&mut stats, &obs.metrics);
            let dump = obs.metrics.to_event();
            obs.emit(dump);
            obs.emit(Event::RunEnd { seconds: total, best_score: 0 });
            return Ok(PipelineResult {
                best_score: 0,
                start: (0, 0),
                end: (0, 0),
                transcript: Transcript::new(),
                binary: BinaryAlignment {
                    start: (0, 0),
                    end: (0, 0),
                    score: 0,
                    gaps_s0: Vec::new(),
                    gaps_s1: Vec::new(),
                },
                chain: CrosspointChain::default(),
                stats,
            });
        }

        // Stage 2: partial traceback over special rows. Rows whose disk
        // file turns out corrupt are dropped here (and counted): the
        // matching procedure simply spans a larger area.
        obs.emit(Event::StageBegin { stage: 2 });
        let t = obs.now();
        let s2r = stage2::run_supervised(
            s0,
            s1,
            cfg,
            pool,
            s1r.best_score,
            s1r.end,
            &mut rows,
            &mut cols,
            obs,
            ctrl,
        );
        let s2r = s2r.map_err(|e| note_interruption(obs, ctrl, 2, e))?;
        let seconds = obs.now().saturating_sub(t).as_secs_f64();
        record_kernel(obs, 2, &s2r.paths, s2r.profile_hits, s2r.profile_misses);
        obs.emit(Event::StageEnd { stage: 2, seconds, cells: s2r.cells });
        obs.metrics.set_gauge("stage2.seconds", seconds);
        obs.metrics.inc("stage2.cells", s2r.cells);
        obs.metrics.inc("stage2.strips", s2r.strips as u64);
        obs.metrics.inc("sca.special_columns", s2r.special_columns.len() as u64);
        obs.metrics.inc("sca.bytes_used", s2r.col_flushed_bytes);
        obs.metrics.inc("storage.dropped_rows", s2r.dropped_rows);
        stats.crosspoints[1] = s2r.chain.len();
        stats.vram_bytes[1] = s2r.vram_bytes;
        stats.effective_blocks[1] = s2r.min_blocks;

        // Stage 3: split partitions on special columns (corrupt columns
        // are skipped and counted; their partitions stay coarse).
        obs.emit(Event::StageBegin { stage: 3 });
        let t = obs.now();
        let s3r = stage3::run_supervised(s0, s1, cfg, pool, &s2r.chain, &cols, obs, ctrl);
        let s3r = s3r.map_err(|e| note_interruption(obs, ctrl, 3, e))?;
        let seconds = obs.now().saturating_sub(t).as_secs_f64();
        record_kernel(obs, 3, &s3r.paths, s3r.profile_hits, s3r.profile_misses);
        obs.emit(Event::StageEnd { stage: 3, seconds, cells: s3r.cells });
        obs.metrics.set_gauge("stage3.seconds", seconds);
        obs.metrics.inc("stage3.cells", s3r.cells);
        obs.metrics.inc("storage.dropped_cols", s3r.skipped_columns);
        stats.crosspoints[2] = s3r.chain.len();
        stats.h_max = s3r.chain.h_max();
        stats.w_max = s3r.chain.w_max();
        stats.vram_bytes[2] = s3r.vram_bytes;
        stats.effective_blocks[2] = s3r.min_blocks;

        // Stage 4: Myers-Miller until partitions fit.
        obs.emit(Event::StageBegin { stage: 4 });
        let t = obs.now();
        let s4r = stage4::run_supervised(s0, s1, cfg, pool, &s3r.chain, obs, ctrl);
        let s4r = s4r.map_err(|e| note_interruption(obs, ctrl, 4, e))?;
        let seconds = obs.now().saturating_sub(t).as_secs_f64();
        obs.emit(Event::StageEnd { stage: 4, seconds, cells: s4r.cells });
        obs.metrics.set_gauge("stage4.seconds", seconds);
        obs.metrics.inc("stage4.cells", s4r.cells);
        stats.crosspoints[3] = s4r.chain.len();
        stats.stage4_iterations = s4r.iterations.clone();

        // Stage 5: solve and concatenate.
        obs.emit(Event::StageBegin { stage: 5 });
        let t = obs.now();
        let s5r = stage5::run_supervised(s0, s1, cfg, pool, &s4r.chain, obs, ctrl);
        let s5r = s5r.map_err(|e| note_interruption(obs, ctrl, 5, e))?;
        let seconds = obs.now().saturating_sub(t).as_secs_f64();
        obs.emit(Event::StageEnd { stage: 5, seconds, cells: s5r.cells });
        obs.metrics.set_gauge("stage5.seconds", seconds);
        obs.metrics.inc("stage5.cells", s5r.cells);

        // Stage 6: pack the binary representation and close the books
        // (store health, pool utilization, final metrics dump).
        obs.emit(Event::StageBegin { stage: 6 });
        let t = obs.now();
        obs.metrics.set("binary.bytes", s5r.binary.encode().len() as u64);
        record_store_stats(&mut obs.metrics, rows.stats(), cols.stats());
        // Success: nothing left to resume, so the persisted row files can
        // go regardless of persist_on_drop.
        rows.clear();
        record_pool_delta(&mut obs.metrics, &pool_before, &pool.stats());
        let seconds = obs.now().saturating_sub(t).as_secs_f64();
        obs.metrics.set_gauge("stage6.seconds", seconds);
        obs.emit(Event::StageEnd { stage: 6, seconds, cells: 0 });
        let total = obs.now().saturating_sub(t_total).as_secs_f64();
        obs.metrics.set_gauge("total.seconds", total);
        fill_scalar_stats(&mut stats, &obs.metrics);
        let dump = obs.metrics.to_event();
        obs.emit(dump);
        obs.emit(Event::RunEnd { seconds: total, best_score: i64::from(s1r.best_score) });

        let start = s5r.binary.start;
        let end = s5r.binary.end;
        debug_assert_eq!(end, s1r.end, "stage 5 must end at the stage-1 endpoint");

        Ok(PipelineResult {
            best_score: s1r.best_score,
            start,
            end,
            transcript: s5r.transcript,
            binary: s5r.binary,
            chain: s4r.chain,
            stats,
        })
    }
}

/// Record a stage failure's supervision footprint and convert it.
///
/// Ordinary failures (and the legacy simulated-kill `Interrupted`) pass
/// through untouched. Supervised interruptions — cancel, deadline, stall
/// — additionally bump the `supervise.*` metrics, emit an
/// [`Event::Interrupt`] record with the time-to-cancel latency, and
/// surface the strip scheduler's parked [`gpu_sim::StripDiag`] snapshot
/// (per-strip published/claimed counters) as an [`Event::StallDiag`]
/// record, so a stalled run's trace shows *where* it was stuck.
fn note_interruption(
    obs: &mut Obs<'_>,
    ctrl: &RunControl,
    stage: u8,
    e: StageError,
) -> PipelineError {
    let pe = PipelineError::from(e);
    if let Some(kind) = pe.interruption_kind() {
        let diagonal = pe.resume_diagonal().unwrap_or(0);
        let latency_ms = ctrl.cancel_latency_ms();
        obs.metrics.inc("supervise.interrupts", 1);
        obs.metrics.inc(
            match kind {
                "deadline" => "supervise.deadline",
                "stalled" => "supervise.stalled",
                _ => "supervise.cancelled",
            },
            1,
        );
        obs.metrics.set_gauge("supervise.cancel_latency_ms", latency_ms);
        obs.emit(Event::Interrupt { stage, kind, diagonal, latency_ms });
        if let Some(d) = ctrl.token().take_strip_diag() {
            obs.emit(Event::StallDiag {
                stage,
                front: d.front,
                published: d.published,
                claims: d.claims,
                blocks: d.blocks,
            });
        }
    }
    pe
}

/// Fold the storage-health counters of the row and column stores into the
/// metrics registry (dropped lines are attributed per store, the rest
/// merged).
fn record_store_stats(m: &mut Metrics, rows: StoreStats, cols: StoreStats) {
    m.inc("storage.dropped_rows", rows.dropped_lines);
    m.inc("storage.dropped_cols", cols.dropped_lines);
    let merged = rows.merged(cols);
    m.inc("storage.retries", merged.write_retries);
    m.inc("storage.rejected_files", merged.rejected_files);
    m.inc("storage.swept_files", merged.swept_files);
}

/// Fold the difference between two pool snapshots into the metrics
/// registry.
///
/// The pool is shared across runs — and possibly across *concurrent*
/// pipelines — so its counters are cumulative; a run's utilization is the
/// delta between snapshots. The busy ratio is recovered from the exact
/// `busy_permille` accumulator rather than by un-averaging the rounded
/// `busy_ratio` mean (multiplying a mean back into a sum loses precision
/// and, when a concurrent pipeline's scopes land between the snapshots,
/// could produce ratios below zero or above one). A shared pool's window
/// still contains foreign scopes, so the value is the mean occupancy over
/// *all* scopes in the window — a blended attribution, but always within
/// `[0, 1]`, and exact when the pool is not shared.
fn record_pool_delta(m: &mut Metrics, before: &PoolStats, after: &PoolStats) {
    let handoffs = after.scopes.saturating_sub(before.scopes);
    m.set("pool.lanes", after.lanes as u64);
    m.set("pool.handoffs", handoffs);
    m.set("pool.tasks", after.tasks.saturating_sub(before.tasks));
    let ratio = if handoffs == 0 {
        0.0
    } else {
        let permille = after.busy_permille.saturating_sub(before.busy_permille);
        (permille as f64 / (1000.0 * handoffs as f64)).clamp(0.0, 1.0)
    };
    m.set_gauge("pool.busy_ratio", ratio);
}

/// Record one engine-driven stage's kernel counters: the precision-ladder
/// outcome event on the trace (inside the still-open stage span, so the
/// validator can tie it to its stage) and the run-cumulative metrics the
/// stats report and MCUPS bench read.
fn record_kernel(
    obs: &mut Obs<'_>,
    stage: u8,
    paths: &gpu_sim::kernel::PathCounts,
    profile_hits: u64,
    profile_misses: u64,
) {
    obs.emit(Event::Kernel {
        stage,
        striped8: paths.striped8,
        striped8_fb16: paths.striped8_fb16,
        striped16: paths.striped16,
        fallback: paths.fallback,
        profile_hits,
        profile_misses,
    });
    obs.metrics.inc("kernel.striped8_tiles", paths.striped8);
    obs.metrics.inc("kernel.striped8_fb16_tiles", paths.striped8_fb16);
    obs.metrics.inc("kernel.striped16_tiles", paths.striped16);
    obs.metrics.inc("kernel.fallback_tiles", paths.fallback);
    obs.metrics.inc("kernel.profile_hits", profile_hits);
    obs.metrics.inc("kernel.profile_misses", profile_misses);
}

/// Copy every scalar counter and gauge out of the metrics registry into
/// the [`PipelineStats`] report. The registry is the single source of
/// truth — `--stats`, the MCUPS bench and the NDJSON trace read the same
/// accumulators; this projection exists so existing consumers keep their
/// typed view. Structure-shaped fields (crosspoints, per-iteration lists,
/// grid geometry) are set directly by the pipeline and not duplicated
/// here.
fn fill_scalar_stats(stats: &mut PipelineStats, m: &Metrics) {
    stats.stage_seconds = [
        m.gauge("stage1.seconds"),
        m.gauge("stage2.seconds"),
        m.gauge("stage3.seconds"),
        m.gauge("stage4.seconds"),
        m.gauge("stage5.seconds"),
    ];
    stats.stage_cells = [
        m.get("stage1.cells"),
        m.get("stage2.cells"),
        m.get("stage3.cells"),
        m.get("stage4.cells"),
    ];
    stats.stage5_cells = m.get("stage5.cells");
    stats.resumed_cells_skipped = m.get("stage1.resumed_cells_skipped");
    stats.resumed_from_diagonal = m.get("stage1.resumed_from_diagonal") as usize;
    stats.special_rows = m.get("sra.special_rows") as usize;
    stats.sra_bytes_used = m.get("sra.bytes_used");
    stats.special_columns = m.get("sca.special_columns") as usize;
    stats.sca_bytes_used = m.get("sca.bytes_used");
    stats.stage2_strips = m.get("stage2.strips") as usize;
    stats.dropped_special_rows = m.get("storage.dropped_rows");
    stats.dropped_special_cols = m.get("storage.dropped_cols");
    stats.checkpoint_failures = m.get("storage.checkpoint_failures");
    stats.storage_retries = m.get("storage.retries");
    stats.storage_rejected_files = m.get("storage.rejected_files");
    stats.storage_swept_files = m.get("storage.swept_files");
    stats.pool_lanes = m.get("pool.lanes") as usize;
    stats.pool_handoffs = m.get("pool.handoffs");
    stats.pool_tasks = m.get("pool.tasks");
    stats.pool_busy_ratio = m.gauge("pool.busy_ratio");
    stats.kernel_striped8_tiles = m.get("kernel.striped8_tiles");
    stats.kernel_striped8_fb16_tiles = m.get("kernel.striped8_fb16_tiles");
    stats.kernel_striped16_tiles = m.get("kernel.striped16_tiles");
    stats.kernel_fallback_tiles = m.get("kernel.fallback_tiles");
    stats.kernel_profile_hits = m.get("kernel.profile_hits");
    stats.kernel_profile_misses = m.get("kernel.profile_misses");
    stats.binary_bytes = m.get("binary.bytes") as usize;
    stats.interruptions = m.get("supervise.interrupts");
    stats.cancel_latency_ms = m.gauge("supervise.cancel_latency_ms");
    stats.total_seconds = m.gauge("total.seconds");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SraBackend;
    use sw_core::full::sw_local_score;
    use sw_core::Scoring;

    fn lcg(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize & 3]
            })
            .collect()
    }

    fn related(seed: u64, len: usize) -> (Vec<u8>, Vec<u8>) {
        let a = lcg(seed, len);
        let mut b = a.clone();
        for i in (5..b.len()).step_by(29) {
            b[i] = b"ACGT"[(i / 29) % 4];
        }
        b.drain(len / 3..len / 3 + 6);
        let at = b.len() / 2;
        for (off, ch) in [b'T', b'T', b'G', b'G'].iter().enumerate() {
            b.insert(at + off, *ch);
        }
        (a, b)
    }

    fn check_full_run(a: &[u8], b: &[u8], cfg: PipelineConfig) -> PipelineResult {
        let res = Pipeline::new(cfg).align(a, b).unwrap();
        let (ref_score, ref_end) = sw_local_score(a, b, &Scoring::paper());
        assert_eq!(res.best_score, ref_score, "score mismatch");
        if ref_score > 0 {
            assert_eq!(res.end, ref_end, "endpoint mismatch");
            let sub_a = &a[res.start.0..res.end.0];
            let sub_b = &b[res.start.1..res.end.1];
            res.transcript.validate(sub_a, sub_b).unwrap();
            assert_eq!(
                res.transcript.score(sub_a, sub_b, &Scoring::paper()),
                ref_score,
                "transcript must rescore to the optimum"
            );
        }
        res
    }

    #[test]
    fn end_to_end_related_pair() {
        let (a, b) = related(1, 500);
        let res = check_full_run(&a, &b, PipelineConfig::for_tests());
        assert!(res.stats.special_rows > 0);
        assert!(res.stats.crosspoints[1] >= 2);
        assert!(res.stats.crosspoints[3] >= res.stats.crosspoints[2]);
        assert!(res.stats.total_cells() > 0);
    }

    #[test]
    fn end_to_end_identical() {
        let a = lcg(2, 300);
        let res = check_full_run(&a, &a, PipelineConfig::for_tests());
        assert_eq!(res.best_score, 300);
        assert_eq!(res.transcript.cigar(), "300=");
    }

    #[test]
    fn end_to_end_unrelated_small_alignment() {
        let a = lcg(3, 250);
        let b = lcg(77, 250);
        check_full_run(&a, &b, PipelineConfig::for_tests());
    }

    #[test]
    fn end_to_end_empty_and_degenerate() {
        let res = Pipeline::new(PipelineConfig::for_tests()).align(b"", b"").unwrap();
        assert_eq!(res.best_score, 0);
        assert!(res.transcript.is_empty());
        let res2 = Pipeline::new(PipelineConfig::for_tests()).align(b"ACGT", b"").unwrap();
        assert_eq!(res2.best_score, 0);
    }

    #[test]
    fn end_to_end_disk_backend() {
        let (a, b) = related(4, 300);
        let dir = std::env::temp_dir().join(format!("cudalign-e2e-{}", std::process::id()));
        let mut cfg = PipelineConfig::for_tests();
        cfg.backend = SraBackend::Disk(dir.clone());
        check_full_run(&a, &b, cfg);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sra_budget_tradeoff_smaller_budget_more_stage2_cells() {
        let (a, b) = related(5, 600);
        let mut cfg_big = PipelineConfig::for_tests();
        cfg_big.sra_bytes = 1 << 20;
        let big = check_full_run(&a, &b, cfg_big);
        let mut cfg_small = PipelineConfig::for_tests();
        cfg_small.sra_bytes = 8 * (b.len() as u64 + 1); // exactly one row
        let small = check_full_run(&a, &b, cfg_small);
        assert!(big.stats.special_rows > small.stats.special_rows);
        assert!(
            small.stats.stage_cells[1] >= big.stats.stage_cells[1],
            "fewer special rows must not shrink the stage-2 area (small {} vs big {})",
            small.stats.stage_cells[1],
            big.stats.stage_cells[1]
        );
    }

    #[test]
    fn long_gap_sequences() {
        // A large deletion creates a long vertical gap run crossing
        // several special rows.
        let a = lcg(6, 400);
        let mut b = a.clone();
        b.drain(120..280);
        check_full_run(&a, &b, PipelineConfig::for_tests());
    }

    /// Bug regression: a zero/degenerate duration must not divide.
    /// `mcups()` used to return `inf` (cells > 0, seconds == 0), which
    /// `--stats` printed verbatim.
    #[test]
    fn mcups_guards_zero_and_non_finite_durations() {
        let mut st = PipelineStats { stage_cells: [10_000_000, 0, 0, 0], ..Default::default() };
        assert_eq!(st.mcups(), None, "zero seconds must not divide");
        st.total_seconds = f64::INFINITY;
        assert_eq!(st.mcups(), None, "non-finite seconds must not divide");
        st.total_seconds = -1.0;
        assert_eq!(st.mcups(), None, "negative seconds must not divide");
        st.total_seconds = 2.0;
        assert_eq!(st.mcups(), Some(5.0), "10M cells / 2s = 5 MCUPS");
        let (a, b) = related(9, 200);
        let res = Pipeline::new(PipelineConfig::for_tests()).align(&a, &b).unwrap();
        let v = res.stats.mcups().expect("a real run has a positive duration");
        assert!(v.is_finite() && v > 0.0);
    }

    /// Bug regression: the per-run pool utilization delta is now derived
    /// from the exact `busy_permille` accumulator. The old derivation
    /// un-averaged the rounded `busy_ratio` mean and could leave the
    /// `[0, 1]` range when a concurrent pipeline's scopes landed between
    /// the two snapshots.
    #[test]
    fn pool_delta_uses_exact_permille_and_stays_in_range() {
        let before = PoolStats {
            lanes: 4,
            scopes: 10,
            tasks: 20,
            inline_tasks: 0,
            pinned_tasks: 0,
            cancelled_tasks: 0,
            busy_ratio: 0.5,
            busy_permille: 5_000,
        };
        let after = PoolStats {
            lanes: 4,
            scopes: 14,
            tasks: 31,
            inline_tasks: 0,
            pinned_tasks: 0,
            cancelled_tasks: 0,
            busy_ratio: 0.64,
            busy_permille: 9_000,
        };
        let mut m = Metrics::new();
        record_pool_delta(&mut m, &before, &after);
        assert_eq!(m.get("pool.lanes"), 4);
        assert_eq!(m.get("pool.handoffs"), 4);
        assert_eq!(m.get("pool.tasks"), 11);
        // 4000 permille over 4 scopes: fully busy, exactly 1.0.
        assert!((m.gauge("pool.busy_ratio") - 1.0).abs() < 1e-12);
        // Snapshots taken around a window another pipeline drained can
        // observe counters that went "backwards" relative to this run's
        // share; the deltas saturate and the ratio clamps instead of
        // going negative.
        let mut m2 = Metrics::new();
        record_pool_delta(&mut m2, &after, &before);
        assert_eq!(m2.get("pool.handoffs"), 0);
        assert_eq!(m2.gauge("pool.busy_ratio"), 0.0);
    }

    /// Two pipelines racing on one shared pool: each run's reported
    /// utilization is a blended attribution over the window (documented
    /// on `record_pool_delta`) but must always stay within `[0, 1]`.
    #[test]
    fn shared_pool_concurrent_runs_report_bounded_utilization() {
        let pool = Arc::new(WorkerPool::new(2));
        let (a, b) = related(11, 260);
        let (c, d) = related(12, 260);
        let p1 = Pipeline::with_pool(PipelineConfig::for_tests(), Arc::clone(&pool));
        let p2 = Pipeline::with_pool(PipelineConfig::for_tests(), Arc::clone(&pool));
        let (r1, r2) = std::thread::scope(|s| {
            let h1 = s.spawn(|| p1.align(&a, &b).unwrap());
            let h2 = s.spawn(|| p2.align(&c, &d).unwrap());
            (h1.join().unwrap(), h2.join().unwrap())
        });
        for st in [&r1.stats, &r2.stats] {
            assert!(st.pool_handoffs > 0, "each run performed handoffs");
            assert!(
                (0.0..=1.0).contains(&st.pool_busy_ratio),
                "busy ratio {} escaped [0, 1]",
                st.pool_busy_ratio
            );
        }
    }

    /// Satellite regression: two pipelines share one pool, one run is
    /// cancelled mid-flight. The survivor must still produce the optimal
    /// score, the cancelled run must return a typed interruption (not a
    /// partial score), and the shared pool's accounting must not leak —
    /// utilization stays within `[0, 1]` and later runs see a clean pool.
    #[test]
    fn shared_pool_one_run_cancelled_does_not_poison_the_other() {
        use crate::supervise::RunControl;
        let pool = Arc::new(WorkerPool::new(2));
        let (a, b) = related(21, 320);
        let (c, d) = related(22, 320);
        let p1 = Pipeline::with_pool(PipelineConfig::for_tests(), Arc::clone(&pool));
        let p2 = Pipeline::with_pool(PipelineConfig::for_tests(), Arc::clone(&pool));
        let ctrl = RunControl::unlimited().with_cancel_after_diagonal(2);
        let (r1, r2) = std::thread::scope(|s| {
            let ctrl = &ctrl;
            let h1 = s.spawn(move || {
                p1.align_supervised(&a, &b, &mut Obs::new(), ctrl)
                    .expect_err("cancelled run must not return a result")
            });
            let h2 = s.spawn(|| p2.align(&c, &d).unwrap());
            (h1.join().unwrap(), h2.join().unwrap())
        });
        assert!(r1.is_interruption(), "typed interruption, got {r1:?}");
        assert!(matches!(r1, PipelineError::Cancelled { .. }), "{r1:?}");
        let (ref_score, _) = sw_local_score(&c, &d, &Scoring::paper());
        assert_eq!(r2.best_score, ref_score, "survivor must stay optimal");
        assert!((0.0..=1.0).contains(&r2.stats.pool_busy_ratio));
        // The pool is reusable after the torn-down run: a fresh run on
        // the same pool completes and reports bounded utilization.
        let (e, f) = related(23, 260);
        let p3 = Pipeline::with_pool(PipelineConfig::for_tests(), Arc::clone(&pool));
        let r3 = p3.align(&e, &f).unwrap();
        let (ref3, _) = sw_local_score(&e, &f, &Scoring::paper());
        assert_eq!(r3.best_score, ref3);
        assert!((0.0..=1.0).contains(&r3.stats.pool_busy_ratio));
    }

    /// Satellite regression at N > 2: four supervised pipelines race on a
    /// two-lane pool and two of them are torn down mid-queue (their
    /// pinned strip runners die via `cancel_queued` at different
    /// diagonals). The shared accounting must not drift: every run's
    /// blended ratio stays in `[0, 1]`, the pool-level invariant
    /// `busy_permille <= 1000 * scopes` holds at quiescence (cancelled
    /// jobs never count as occupied lanes), survivors stay optimal, and
    /// the pool is clean for a follow-up run whose *delta* obeys the same
    /// invariant.
    #[test]
    fn shared_pool_n_way_teardown_does_not_drift_accounting() {
        use crate::supervise::RunControl;
        // The teardown is racy by nature: if every queued job was already
        // claimed by a worker when `cancel_queued` ran, nothing is dropped
        // unrun — legal, but not the scenario under test. Retry the batch
        // on a fresh pool (bounded) until the teardown actually drops
        // queued work; the accounting invariants must hold every attempt.
        let mut pool = Arc::new(WorkerPool::new(2));
        for attempt in 0..5u64 {
            let seed0 = 31 + 10 * attempt;
            let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..4).map(|i| related(seed0 + i, 300)).collect();
            let pipes: Vec<Pipeline> = (0..4)
                .map(|_| Pipeline::with_pool(PipelineConfig::for_tests(), Arc::clone(&pool)))
                .collect();
            // Runs 0 and 2 are cancelled mid-stage-1 at different
            // diagonals; runs 1 and 3 must survive untouched.
            let ctrls = [
                Some(RunControl::unlimited().with_cancel_after_diagonal(1)),
                None,
                Some(RunControl::unlimited().with_cancel_after_diagonal(3)),
                None,
            ];
            let results: Vec<Result<PipelineResult, PipelineError>> = std::thread::scope(|s| {
                let handles: Vec<_> = pipes
                    .iter()
                    .zip(&pairs)
                    .zip(&ctrls)
                    .map(|((p, (a, b)), ctrl)| {
                        s.spawn(move || match ctrl {
                            Some(c) => p.align_supervised(a, b, &mut Obs::new(), c),
                            None => p.align(a, b),
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

            for (i, r) in results.iter().enumerate() {
                match r {
                    Ok(res) => {
                        assert!(ctrls[i].is_none(), "run {i} should have been cancelled");
                        let (want, _) = sw_local_score(&pairs[i].0, &pairs[i].1, &Scoring::paper());
                        assert_eq!(res.best_score, want, "survivor {i} must stay optimal");
                        assert!(
                            (0.0..=1.0).contains(&res.stats.pool_busy_ratio),
                            "run {i} ratio {} escaped [0, 1]",
                            res.stats.pool_busy_ratio
                        );
                    }
                    Err(e) => {
                        assert!(ctrls[i].is_some(), "run {i} must not fail: {e}");
                        assert!(matches!(e, PipelineError::Cancelled { .. }), "run {i}: {e:?}");
                    }
                }
            }

            // Quiescent pool-level invariant: each scope contributes at
            // most 1000 permille, and torn-down scopes' cancelled jobs
            // contribute zero — any drift (double count, missed teardown
            // decrement) breaks one of these.
            let st = pool.stats();
            assert!(st.scopes > 0 && st.tasks > 0);
            assert!(
                st.busy_permille <= 1000 * st.scopes,
                "busy_permille {} exceeds 1000 * {} scopes",
                st.busy_permille,
                st.scopes
            );
            assert!((0.0..=1.0).contains(&st.busy_ratio), "pool ratio {}", st.busy_ratio);
            assert!(st.cancelled_tasks <= st.tasks, "cancelled cannot exceed spawned");
            if st.cancelled_tasks > 0 {
                break;
            }
            assert!(attempt < 4, "teardown never dropped a queued job in 5 attempts");
            pool = Arc::new(WorkerPool::new(2));
        }

        // Follow-up solo run on the same pool: its window's delta obeys
        // the same bound, so the blended attribution cannot go negative
        // or above full for later tenants either.
        let before = pool.stats();
        let (e, f) = related(39, 260);
        let p5 = Pipeline::with_pool(PipelineConfig::for_tests(), Arc::clone(&pool));
        let r5 = p5.align(&e, &f).unwrap();
        let (want5, _) = sw_local_score(&e, &f, &Scoring::paper());
        assert_eq!(r5.best_score, want5);
        let after = pool.stats();
        let dscopes = after.scopes - before.scopes;
        let dbusy = after.busy_permille - before.busy_permille;
        assert!(dscopes > 0);
        assert!(dbusy <= 1000 * dscopes, "delta busy {dbusy} exceeds 1000 * {dscopes}");
        assert!((0.0..=1.0).contains(&r5.stats.pool_busy_ratio));
    }

    /// The stats report and the metrics registry are the same numbers:
    /// the registry is the source of truth, `PipelineStats` a projection.
    #[test]
    fn stats_are_a_projection_of_the_metrics_registry() {
        let (a, b) = related(13, 300);
        let mut obs = Obs::new();
        let res =
            Pipeline::new(PipelineConfig::for_tests()).align_observed(&a, &b, &mut obs).unwrap();
        let st = &res.stats;
        assert_eq!(st.stage_cells[0], obs.metrics.get("stage1.cells"));
        assert_eq!(st.stage5_cells, obs.metrics.get("stage5.cells"));
        assert_eq!(st.special_rows as u64, obs.metrics.get("sra.special_rows"));
        assert_eq!(st.stage2_strips as u64, obs.metrics.get("stage2.strips"));
        assert_eq!(st.pool_handoffs, obs.metrics.get("pool.handoffs"));
        assert_eq!(st.binary_bytes as u64, obs.metrics.get("binary.bytes"));
        assert_eq!(st.total_seconds, obs.metrics.gauge("total.seconds"));
        assert_eq!(st.pool_busy_ratio, obs.metrics.gauge("pool.busy_ratio"));
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use crate::config::{CheckpointPolicy, SraBackend};
    use sw_core::full::sw_local_score;
    use sw_core::Scoring;

    fn lcg(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize & 3]
            })
            .collect()
    }

    /// A planted snapshot from a "crashed" run must be picked up
    /// automatically and removed after Stage 1 completes; the resumed run
    /// still produces the full optimal alignment.
    #[test]
    fn pipeline_resumes_from_planted_checkpoint() {
        let a = lcg(51, 400);
        let mut b = a.clone();
        for i in (5..b.len()).step_by(17) {
            b[i] = b"ACGT"[(i / 17) % 4];
        }
        let dir = std::env::temp_dir().join(format!("cudalign-pipe-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let mut cfg = PipelineConfig::for_tests();
        cfg.backend = SraBackend::Disk(dir.clone());
        cfg.checkpoint = Some(CheckpointPolicy { dir: dir.clone(), every_diagonals: 9 });

        // "Crashed" run: the observer writes combined snapshots itself;
        // the last one survives as stage1.ckpt alongside the row files.
        {
            let fp = cfg.job_fingerprint(a.len(), b.len());
            let mut rows = LineStore::new(&cfg.backend, cfg.sra_bytes, "special-row", fp).unwrap();
            let pool = WorkerPool::new(cfg.workers);
            let _ = stage1::run_resumable(
                &a,
                &b,
                &cfg,
                &pool,
                &mut rows,
                None,
                Some((dir.as_path(), 9)),
            );
            assert!(dir.join("stage1.ckpt").exists(), "snapshot persisted during the run");
            std::mem::forget(rows); // simulate the crash: files stay behind
        }

        let res = Pipeline::new(cfg).align(&a, &b).unwrap();
        let (ref_score, ref_end) = sw_local_score(&a, &b, &Scoring::paper());
        assert_eq!(res.best_score, ref_score);
        assert_eq!(res.end, ref_end);
        res.transcript.validate(&a[res.start.0..res.end.0], &b[res.start.1..res.end.1]).unwrap();
        assert!(
            !dir.join("stage1.ckpt").exists(),
            "snapshot must be cleared after a completed stage 1"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Bug regression: on a resumed run the throughput accounting must
    /// cover only the recomputed work. `stage_cells[0]` used to count the
    /// full matrix while `stage_seconds[0]` covered only the resumed
    /// tail, inflating MCUPS; the skipped cells are now reported
    /// separately in `resumed_cells_skipped`.
    #[test]
    fn resumed_run_counts_only_recomputed_cells() {
        let a = lcg(54, 400);
        let mut b = a.clone();
        for i in (5..b.len()).step_by(17) {
            b[i] = b"ACGT"[(i / 17) % 4];
        }
        let dir = std::env::temp_dir().join(format!("cudalign-resume-acct-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let mut cfg = PipelineConfig::for_tests();
        cfg.backend = SraBackend::Disk(dir.clone());
        cfg.checkpoint = Some(CheckpointPolicy { dir: dir.clone(), every_diagonals: 9 });

        {
            let fp = cfg.job_fingerprint(a.len(), b.len());
            let mut rows = LineStore::new(&cfg.backend, cfg.sra_bytes, "special-row", fp).unwrap();
            let pool = WorkerPool::new(cfg.workers);
            let _ = stage1::run_resumable(
                &a,
                &b,
                &cfg,
                &pool,
                &mut rows,
                None,
                Some((dir.as_path(), 9)),
            );
            std::mem::forget(rows); // simulate the crash
        }

        let res = Pipeline::new(cfg).align(&a, &b).unwrap();
        let st = &res.stats;
        assert!(st.resumed_from_diagonal > 0, "run must actually resume");
        assert!(st.resumed_cells_skipped > 0, "skipped work must be reported");
        assert_eq!(
            st.stage_cells[0] + st.resumed_cells_skipped,
            (a.len() as u64) * (b.len() as u64),
            "recomputed + skipped cells must cover the whole matrix exactly"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Without a planted snapshot the checkpoint policy is transparent.
    #[test]
    fn checkpointing_does_not_change_results() {
        let a = lcg(52, 300);
        let b = lcg(53, 300);
        let plain = Pipeline::new(PipelineConfig::for_tests()).align(&a, &b).unwrap();
        let dir = std::env::temp_dir().join(format!("cudalign-ckpt2-{}", std::process::id()));
        let mut cfg = PipelineConfig::for_tests();
        cfg.checkpoint = Some(CheckpointPolicy { dir: dir.clone(), every_diagonals: 5 });
        let ck = Pipeline::new(cfg).align(&a, &b).unwrap();
        assert_eq!(plain.best_score, ck.best_score);
        assert_eq!(plain.transcript.ops(), ck.transcript.ops());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
