//! The paper's headline experiment, scaled: align a synthetic
//! "chimpanzee chr22 x human chr21" pair (the human side carries a large
//! unrelated flank, as in the real comparison) and report the per-stage
//! behaviour of the pipeline.
//!
//! ```text
//! cargo run -p cudalign --release --example chromosome_pair [scale]
//! ```
//!
//! `scale` divides the real chromosome lengths (default 2000, i.e.
//! ~16 KBP x ~23 KBP). At scale 200 this becomes a 164 KBP x 235 KBP run —
//! still fine on a laptop thanks to linear memory.

use cudalign::{stage6, Pipeline, PipelineConfig};
use seqio::DatasetRegistry;
use std::time::Instant;

fn main() {
    let scale: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2000);
    let reg = DatasetRegistry::paper();
    let spec = reg.chromosome_pair();
    let (s0, s1) = spec.materialize(scale, 42);
    println!(
        "pair {} at scale 1/{scale}: {} bp x {} bp ({:.2e} cells)",
        spec.key,
        s0.len(),
        s1.len(),
        s0.len() as f64 * s1.len() as f64
    );

    let mut cfg = PipelineConfig::default_cpu();
    // SRA sized like the paper's 50 GB, scaled down quadratically.
    cfg.sra_bytes = ((50u64 << 30) / (scale as u64 * scale as u64)).max(64 << 10);
    cfg.sca_bytes = cfg.sra_bytes / 4;

    let t = Instant::now();
    let result = Pipeline::new(cfg).align(s0.bases(), s1.bases()).expect("pipeline failed");
    let dt = t.elapsed().as_secs_f64();

    let st = &result.stats;
    println!("\ntotal {dt:.2}s, {:.0} MCUPS", s0.len() as f64 * s1.len() as f64 / dt / 1e6);
    for (k, secs) in st.stage_seconds.iter().enumerate() {
        println!(
            "  stage {}: {secs:>8.3}s  cells {:>16}  |L|={}",
            k + 1,
            if k < 4 { st.stage_cells[k] } else { st.stage5_cells },
            if k < 4 { st.crosspoints[k].to_string() } else { "-".into() },
        );
    }
    println!("\n{}", stage6::summary(&result.binary, &result.transcript));
    let stats = result.transcript.stats();
    let total = stats.total_columns().max(1);
    println!(
        "matches {:.1}% | mismatches {:.1}% | gap columns {:.1}% (paper: 94.4 / 1.5 / 4.1)",
        100.0 * stats.matches as f64 / total as f64,
        100.0 * stats.mismatches as f64 / total as f64,
        100.0 * (stats.gap_openings + stats.gap_extensions) as f64 / total as f64,
    );
    println!("\ndot plot of the alignment path:");
    println!(
        "{}",
        stage6::dot_plot(s0.len(), s1.len(), &result.binary, &result.transcript, 20, 64)
    );
}
