#![warn(missing_docs)]

//! # analysis — workspace invariant linter
//!
//! CUDAlign's correctness rests on structural invariants that `rustc`
//! cannot see: all persistence flows through the checksummed
//! [`cudalign::storage`] layer, all parallelism through
//! [`gpu_sim::exec::WorkerPool`], library code reports failures as typed
//! errors instead of panicking, and every `unsafe` block justifies itself.
//! This crate is a source-level lint pass over the whole workspace — run
//! as `cargo run -p analysis` and as a tier-1 test — that turns those
//! conventions into machine-checked rules.
//!
//! The linter is deliberately std-only (the build environment has no
//! registry access, the same constraint that produced the vendored
//! `rand`/`proptest`/`criterion` stubs), so it works on a lexical scan:
//! comments, strings and char literals are masked out, `#[cfg(test)]`
//! regions are mapped, and each rule searches the remaining *code* text.
//! That is cruder than a full parse but exact enough for the token-shaped
//! invariants enforced here, and it keeps the pass fast (< 50 ms over the
//! workspace).
//!
//! ## Escape hatch
//!
//! A violating site can be suppressed with a per-site comment on the same
//! line or the line directly above:
//!
//! ```text
//! // lint: allow(no-panics): mutex poisoning is unrecoverable here
//! ```
//!
//! The justification after the rule name is mandatory — an `allow`
//! without one is itself reported.
//!
//! ## Rules
//!
//! See [`rules`] for the registry; DESIGN.md §"Enforced invariants"
//! documents each rule's rationale.

use std::fmt;
use std::path::{Path, PathBuf};

/// Identifier of the "no panics in library code" rule.
pub const NO_PANICS: &str = "no-panics";
/// Identifier of the "filesystem access only in storage.rs" rule.
pub const FS_ISOLATION: &str = "fs-isolation";
/// Identifier of the "thread spawning only in gpu_sim::exec" rule.
pub const THREAD_ISOLATION: &str = "thread-isolation";
/// Identifier of the "unsafe blocks need SAFETY comments" rule.
pub const SAFETY_COMMENT: &str = "safety-comment";
/// Identifier of the "no wall-clock reads in hot paths" rule.
pub const NO_WALLCLOCK: &str = "no-wallclock";
/// Identifier of the "public error enums are #[non_exhaustive]" rule.
pub const NON_EXHAUSTIVE_ERRORS: &str = "non-exhaustive-errors";
/// Identifier of the "wall-clock only via the injected obs::Clock" rule.
pub const CLOCK_INJECTION: &str = "clock-injection";
/// Identifier of the "no bare thread::sleep outside sanctioned backoff
/// helpers" rule.
pub const SLEEP_INJECTION: &str = "sleep-injection";

/// Static description of one rule in the registry.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule identifier, as used in `// lint: allow(<id>): ...`.
    pub id: &'static str,
    /// One-line summary of the enforced invariant.
    pub summary: &'static str,
}

/// The rule registry.
pub fn rules() -> &'static [RuleInfo] {
    &[
        RuleInfo {
            id: NO_PANICS,
            summary: "no unwrap()/expect()/panic! in cudalign/gpu-sim library code \
                      (tests and bins exempt)",
        },
        RuleInfo {
            id: FS_ISOLATION,
            summary: "no direct std::fs/File access in cudalign/gpu-sim outside storage.rs \
                      (all persistence goes through the checksummed storage layer)",
        },
        RuleInfo {
            id: THREAD_ISOLATION,
            summary: "no thread::spawn/scope/Builder outside gpu_sim::exec and the baselines \
                      crate (all parallelism goes through the WorkerPool)",
        },
        RuleInfo {
            id: SAFETY_COMMENT,
            summary: "every `unsafe` is directly preceded by a // SAFETY: comment",
        },
        RuleInfo {
            id: NO_WALLCLOCK,
            summary: "no Instant/SystemTime in gpu-sim kernel/wavefront/multi/exec hot paths \
                      (stats structs exempt)",
        },
        RuleInfo {
            id: NON_EXHAUSTIVE_ERRORS,
            summary: "public enums named *Error carry #[non_exhaustive]",
        },
        RuleInfo {
            id: CLOCK_INJECTION,
            summary: "no Instant/SystemTime in cudalign outside obs.rs: sample time through \
                      the injected obs::Clock so runs trace deterministically",
        },
        RuleInfo {
            id: SLEEP_INJECTION,
            summary: "no bare std::thread::sleep outside cudalign::storage and gpu_sim::exec \
                      (delays route through injectable hooks so tests never wait wall-clock)",
        },
    ]
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of the [`rules`] ids).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.msg)
    }
}

/// Outcome of a workspace lint pass.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All violations, in path/line order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Sites suppressed by a justified `// lint: allow(...)`.
    pub suppressed: usize,
}

// ---------------------------------------------------------------------------
// Lexical scan: mask comments/strings, map test regions.
// ---------------------------------------------------------------------------

/// A scanned source file: code with comments/strings blanked out (byte
/// offsets and line structure preserved), per-line comment text, and the
/// line regions belonging to `#[cfg(test)]` / `#[test]` items and
/// `struct *Stats` bodies.
struct Scan {
    rel_path: String,
    /// Per-line masked code (comments and literal contents replaced by
    /// spaces).
    code: Vec<String>,
    /// Per-line comment text (concatenation of every comment on the line,
    /// including the `//` markers).
    comments: Vec<String>,
    /// Lines inside `#[cfg(test)]`/`#[test]` items.
    test_region: Vec<bool>,
    /// Lines inside the body of a `struct <Name>Stats`.
    stats_region: Vec<bool>,
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

impl Scan {
    fn new(rel_path: &str, src: &str) -> Scan {
        let (code_joined, comments) = mask(src);
        let code: Vec<String> = code_joined.split('\n').map(str::to_owned).collect();
        let n = code.len();
        let mut comments_by_line = comments;
        comments_by_line.resize(n, String::new());
        let mut scan = Scan {
            rel_path: rel_path.to_owned(),
            code,
            comments: comments_by_line,
            test_region: vec![false; n],
            stats_region: vec![false; n],
        };
        scan.mark_attr_regions();
        scan.mark_stats_regions();
        scan
    }

    /// Mark the lines covered by `#[cfg(test)]`- or `#[test]`-attributed
    /// items (attribute line through the item's closing brace or `;`).
    fn mark_attr_regions(&mut self) {
        let joined = self.code.join("\n");
        let starts = line_starts(&joined);
        for l in 0..self.code.len() {
            let line = &self.code[l];
            let hit = ["#[cfg(test)]", "#[cfg(any(test", "#[test]"]
                .iter()
                .filter_map(|pat| line.find(pat).map(|p| p + pat.len()))
                .min();
            let Some(after_attr) = hit else { continue };
            // Scan from just past the attribute for the item's extent:
            // a braced body (mod/fn/impl) or a `;` (use/const) — whichever
            // comes first at the top level.
            let from = starts[l] + after_attr;
            let bytes = joined.as_bytes();
            let mut i = from;
            let mut end = None;
            while i < bytes.len() {
                match bytes[i] {
                    b'{' => {
                        end = matching_brace(bytes, i);
                        break;
                    }
                    b';' => {
                        end = Some(i);
                        break;
                    }
                    _ => i += 1,
                }
            }
            let end = end.unwrap_or(bytes.len().saturating_sub(1));
            let end_line = line_of(&starts, end);
            for t in self.test_region.iter_mut().take(end_line + 1).skip(l) {
                *t = true;
            }
        }
    }

    /// Mark the body lines of every `struct <Name>Stats` (the hot-path
    /// wall-clock rule exempts them: stats structs may *store* durations,
    /// they just must not be sampled inside the kernel loops).
    fn mark_stats_regions(&mut self) {
        let joined = self.code.join("\n");
        let starts = line_starts(&joined);
        let bytes = joined.as_bytes();
        let mut from = 0;
        while let Some(p) = joined[from..].find("struct ") {
            let at = from + p;
            from = at + 7;
            if at > 0 && is_ident(bytes[at - 1]) {
                continue;
            }
            let name: String = joined[at + 7..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !name.ends_with("Stats") {
                continue;
            }
            let Some(open_rel) = joined[at..].find('{') else { continue };
            // A `;` before the brace means a tuple/unit struct: no body.
            if joined[at..at + open_rel].contains(';') {
                continue;
            }
            let open = at + open_rel;
            let Some(close) = matching_brace(bytes, open) else { continue };
            let (l0, l1) = (line_of(&starts, open), line_of(&starts, close));
            for t in self.stats_region.iter_mut().take(l1 + 1).skip(l0) {
                *t = true;
            }
        }
    }

    /// Is the finding at `line` (0-based) suppressed by a justified
    /// `// lint: allow(<rule>): why`? The allow may sit on the same line,
    /// on the line directly above, or anywhere in the contiguous block of
    /// comment-only lines directly above (justifications wrap). Returns
    /// `Some(justified)` when an allow for this rule is present.
    fn allow_at(&self, line: usize, rule: &str) -> Option<bool> {
        let needle = format!("lint: allow({rule})");
        let check = |l: usize| -> Option<bool> {
            let p = self.comments[l].find(&needle)?;
            let rest = self.comments[l][p + needle.len()..]
                .trim_start_matches([':', ' ', '\u{2014}', '-', '\u{2013}']);
            Some(rest.chars().filter(|c| !c.is_whitespace()).count() >= 3)
        };
        let mut hit = check(line);
        let mut l = line;
        while hit != Some(true) && l > 0 {
            l -= 1;
            if let Some(j) = check(l) {
                hit = Some(hit.unwrap_or(false) || j);
            }
            // Only comment-only lines extend the search upward; a line
            // with code ends the justification block (it is still checked
            // itself, so a trailing-comment allow one line up works).
            if !self.code[l].trim().is_empty() || self.comments[l].is_empty() {
                break;
            }
        }
        hit
    }
}

/// Byte offsets at which each line of `s` starts.
fn line_starts(s: &str) -> Vec<usize> {
    let mut v = vec![0];
    for (i, b) in s.bytes().enumerate() {
        if b == b'\n' {
            v.push(i + 1);
        }
    }
    v
}

/// 0-based line containing byte offset `at`.
fn line_of(starts: &[usize], at: usize) -> usize {
    match starts.binary_search(&at) {
        Ok(l) => l,
        Err(l) => l - 1,
    }
}

/// Find the `}` matching the `{` at `open`; `None` if unbalanced.
fn matching_brace(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Blank out comments, string/char literals (and the *contents* of raw
/// strings) from `src`, preserving byte positions of everything else.
/// Returns the masked text plus the per-line comment text.
fn mask(src: &str) -> (String, Vec<String>) {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut comments: Vec<String> = vec![String::new()];
    let mut line = 0usize;
    let mut i = 0usize;

    let push_code = |out: &mut Vec<u8>, comments: &mut Vec<String>, line: &mut usize, c: u8| {
        out.push(c);
        if c == b'\n' {
            *line += 1;
            if comments.len() <= *line {
                comments.push(String::new());
            }
        }
    };
    let blank = |c: u8| if c == b'\n' { b'\n' } else { b' ' };

    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            comments[line].push_str(&src[start..i]);
            for &cc in &b[start..i] {
                push_code(&mut out, &mut comments, &mut line, blank(cc));
            }
            continue;
        }
        // Block comment (nested).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start = i;
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            // Attribute the whole comment's text to its starting line
            // (SAFETY block comments are recognised there), but keep the
            // masked newlines so positions survive.
            comments[line].push_str(&src[start..i]);
            for &cc in &b[start..i] {
                push_code(&mut out, &mut comments, &mut line, blank(cc));
            }
            continue;
        }
        // Raw (byte) string: r"..." / r#"..."# / br"..." etc.
        if (c == b'r' || c == b'b') && (i == 0 || !is_ident(b[i - 1])) {
            let mut j = i;
            if b[j] == b'b' && j + 1 < b.len() && b[j + 1] == b'r' {
                j += 1;
            }
            if b[j] == b'r' {
                let mut hashes = 0;
                let mut k = j + 1;
                while k < b.len() && b[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < b.len() && b[k] == b'"' {
                    // Find the terminator `"` + hashes `#`s.
                    let mut e = k + 1;
                    'scanraw: while e < b.len() {
                        if b[e] == b'"' {
                            let mut h = 0;
                            while h < hashes && e + 1 + h < b.len() && b[e + 1 + h] == b'#' {
                                h += 1;
                            }
                            if h == hashes {
                                e += 1 + hashes;
                                break 'scanraw;
                            }
                        }
                        e += 1;
                    }
                    for &cc in &b[i..e.min(b.len())] {
                        push_code(&mut out, &mut comments, &mut line, blank(cc));
                    }
                    i = e;
                    continue;
                }
            }
        }
        // Plain (byte) string.
        if c == b'"' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'"' && !prev_ident(b, i)) {
            let mut j = if c == b'b' { i + 2 } else { i + 1 };
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            for &cc in &b[i..j.min(b.len())] {
                push_code(&mut out, &mut comments, &mut line, blank(cc));
            }
            i = j;
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'\'' && !prev_ident(b, i)) {
            let q = if c == b'b' { i + 1 } else { i };
            let end = char_literal_end(b, q);
            if let Some(e) = end {
                for &cc in &b[i..e] {
                    push_code(&mut out, &mut comments, &mut line, blank(cc));
                }
                i = e;
                continue;
            }
            // A lifetime: pass through as code.
        }
        push_code(&mut out, &mut comments, &mut line, c);
        i += 1;
    }
    // `split('\n')` on the masked text yields line count = newlines + 1.
    let nlines = out.iter().filter(|&&c| c == b'\n').count() + 1;
    comments.resize(nlines, String::new());
    (String::from_utf8(out).expect("masking preserves UTF-8"), comments)
}

fn prev_ident(b: &[u8], i: usize) -> bool {
    i > 0 && is_ident(b[i - 1])
}

/// If position `q` (a `'`) starts a char literal, return the byte just
/// past its closing quote; `None` when it is a lifetime.
fn char_literal_end(b: &[u8], q: usize) -> Option<usize> {
    let first = *b.get(q + 1)?;
    if first == b'\\' {
        // Escape: '\n', '\'', '\u{...}', '\x41'.
        let mut j = q + 2;
        if b.get(j) == Some(&b'u') {
            while j < b.len() && b[j] != b'}' {
                j += 1;
            }
        } else if b.get(j) == Some(&b'x') {
            j += 2;
        }
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return if j < b.len() { Some(j + 1) } else { None };
    }
    if first == b'\'' {
        return None; // `''` is not a char literal.
    }
    // One (possibly multi-byte) character followed by a closing quote.
    let width = utf8_width(first);
    if b.get(q + 1 + width) == Some(&b'\'') {
        Some(q + 2 + width)
    } else {
        None // lifetime
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// Token search helpers.
// ---------------------------------------------------------------------------

/// Occurrences of `pat` in `line` whose preceding byte is not an
/// identifier character (and, when `no_prev_colon`, not a `:` either — to
/// avoid double-reporting `std::fs` as both `std::fs` and `fs::`).
fn token_positions(line: &str, pat: &str, no_prev_colon: bool) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    let lb = line.as_bytes();
    while let Some(p) = line[from..].find(pat) {
        let at = from + p;
        from = at + pat.len();
        if at > 0 {
            let prev = lb[at - 1];
            if is_ident(prev) || (no_prev_colon && prev == b':') {
                continue;
            }
        }
        out.push(at);
    }
    out
}

/// Does `line` call `.name()`-style method `name` (exact method name,
/// immediately applied)? Rejects `name_suffix` identifiers.
fn method_call(line: &str, name: &str) -> bool {
    let lb = line.as_bytes();
    let dotted = format!(".{name}");
    let mut from = 0;
    while let Some(p) = line[from..].find(&dotted) {
        let at = from + p;
        from = at + dotted.len();
        let after = at + dotted.len();
        if lb.get(after).is_some_and(|&c| is_ident(c)) {
            continue; // `.unwrap_or(...)`, `.expect_err(...)`
        }
        if lb.get(after) == Some(&b'(') {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Path scoping.
// ---------------------------------------------------------------------------

/// Crates vendored as minimal API mirrors of external registry crates;
/// they follow upstream's API shape, not this repo's conventions.
const VENDORED: &[&str] = &["crates/rand/", "crates/proptest/", "crates/criterion/"];

/// Files making up the gpu-sim compute hot path (the per-cell /
/// per-diagonal loops a wall-clock read would perturb and serialize).
const HOT_PATHS: &[&str] = &[
    "crates/gpu-sim/src/kernel.rs",
    "crates/gpu-sim/src/striped.rs",
    "crates/gpu-sim/src/wavefront.rs",
    "crates/gpu-sim/src/multi.rs",
    "crates/gpu-sim/src/exec.rs",
];

fn is_vendored(path: &str) -> bool {
    VENDORED.iter().any(|v| path.starts_with(v))
}

fn is_bin(path: &str) -> bool {
    path.contains("/src/bin/") || path.ends_with("/src/main.rs")
}

fn in_library_scope(path: &str) -> bool {
    (path.starts_with("crates/cudalign/src/") || path.starts_with("crates/gpu-sim/src/"))
        && !is_bin(path)
}

// ---------------------------------------------------------------------------
// The rules.
// ---------------------------------------------------------------------------

struct Ctx<'a> {
    scan: &'a Scan,
    findings: Vec<Finding>,
    suppressed: usize,
}

impl Ctx<'_> {
    /// Report a violation of `rule` at 0-based `line`, honouring the
    /// per-site allow hatch.
    fn report(&mut self, line: usize, rule: &'static str, msg: String) {
        match self.scan.allow_at(line, rule) {
            Some(true) => self.suppressed += 1,
            Some(false) => self.findings.push(Finding {
                path: self.scan.rel_path.clone(),
                line: line + 1,
                rule,
                msg: format!(
                    "{msg} — `lint: allow({rule})` found but the mandatory justification is \
                     missing (write `// lint: allow({rule}): <why>`)"
                ),
            }),
            None => self.findings.push(Finding {
                path: self.scan.rel_path.clone(),
                line: line + 1,
                rule,
                msg,
            }),
        }
    }
}

fn rule_no_panics(ctx: &mut Ctx<'_>) {
    if !in_library_scope(&ctx.scan.rel_path) {
        return;
    }
    for l in 0..ctx.scan.code.len() {
        if ctx.scan.test_region[l] {
            continue;
        }
        let line = ctx.scan.code[l].clone();
        for (what, hit) in [
            (".unwrap()", method_call(&line, "unwrap")),
            (".expect(..)", method_call(&line, "expect")),
            ("panic!", !token_positions(&line, "panic!", false).is_empty()),
        ] {
            if hit {
                ctx.report(
                    l,
                    NO_PANICS,
                    format!(
                        "`{what}` in library code: return a typed error \
                         (StageError/StorageError/ExecError) instead"
                    ),
                );
            }
        }
    }
}

fn rule_fs_isolation(ctx: &mut Ctx<'_>) {
    let path = &ctx.scan.rel_path;
    if !in_library_scope(path) || path.ends_with("/storage.rs") {
        return;
    }
    for l in 0..ctx.scan.code.len() {
        if ctx.scan.test_region[l] {
            continue;
        }
        let line = ctx.scan.code[l].clone();
        let hit = !token_positions(&line, "std::fs", false).is_empty()
            || !token_positions(&line, "fs::", true).is_empty()
            || !token_positions(&line, "File::", true).is_empty()
            || !token_positions(&line, "OpenOptions", true).is_empty();
        if hit {
            ctx.report(
                l,
                FS_ISOLATION,
                "direct filesystem access outside cudalign::storage: all persistence must go \
                 through the checksummed storage layer"
                    .into(),
            );
        }
    }
}

fn rule_thread_isolation(ctx: &mut Ctx<'_>) {
    let path = &ctx.scan.rel_path;
    if path == "crates/gpu-sim/src/exec.rs" || path.starts_with("crates/baselines/") {
        return;
    }
    if is_vendored(path) {
        return;
    }
    for l in 0..ctx.scan.code.len() {
        if ctx.scan.test_region[l] {
            continue;
        }
        let line = ctx.scan.code[l].clone();
        let hit = ["thread::spawn", "thread::scope", "thread::Builder"]
            .iter()
            .any(|pat| !token_positions(&line, pat, false).is_empty());
        if hit {
            ctx.report(
                l,
                THREAD_ISOLATION,
                "thread spawned outside gpu_sim::exec: all engine parallelism must go through \
                 the shared WorkerPool"
                    .into(),
            );
        }
    }
}

fn rule_safety_comment(ctx: &mut Ctx<'_>) {
    for l in 0..ctx.scan.code.len() {
        let line = ctx.scan.code[l].clone();
        if token_positions(&line, "unsafe", false)
            .iter()
            .all(|&at| line.as_bytes().get(at + 6).is_some_and(|&c| is_ident(c)))
        {
            continue;
        }
        // Accept SAFETY: on the same line or in the contiguous comment
        // block whose last line is directly above.
        let mut ok = ctx.scan.comments[l].contains("SAFETY:");
        let mut k = l;
        while !ok && k > 0 {
            k -= 1;
            let above_comment = &ctx.scan.comments[k];
            let above_code_empty = ctx.scan.code[k].trim().is_empty();
            if above_comment.is_empty() || !above_code_empty {
                break;
            }
            ok = above_comment.contains("SAFETY:");
        }
        if !ok {
            ctx.report(
                l,
                SAFETY_COMMENT,
                "`unsafe` without a `// SAFETY:` comment directly above: state the invariant \
                 that makes this sound"
                    .into(),
            );
        }
    }
}

fn rule_no_wallclock(ctx: &mut Ctx<'_>) {
    if !HOT_PATHS.contains(&ctx.scan.rel_path.as_str()) {
        return;
    }
    for l in 0..ctx.scan.code.len() {
        if ctx.scan.test_region[l] || ctx.scan.stats_region[l] {
            continue;
        }
        let line = ctx.scan.code[l].clone();
        let hit = ["Instant", "SystemTime"].iter().any(|pat| {
            token_positions(&line, pat, false)
                .iter()
                .any(|&at| !line.as_bytes().get(at + pat.len()).is_some_and(|&c| is_ident(c)))
        });
        if hit {
            ctx.report(
                l,
                NO_WALLCLOCK,
                "wall-clock read in a wavefront/kernel hot path: time only at stage \
                 boundaries (pipeline.rs) or in stats structs"
                    .into(),
            );
        }
    }
}

/// All cudalign library code must read time through the injected
/// [`obs::Clock`]: `obs.rs` owns the one `Instant` (inside `WallClock`),
/// everything else calls `Obs::now()`. This keeps traces replayable under
/// a manual clock and extends the hot-path no-wallclock rule to the whole
/// pipeline crate.
fn rule_clock_injection(ctx: &mut Ctx<'_>) {
    let path = ctx.scan.rel_path.as_str();
    if !path.starts_with("crates/cudalign/src/") || path.ends_with("/obs.rs") || is_bin(path) {
        return;
    }
    for l in 0..ctx.scan.code.len() {
        if ctx.scan.test_region[l] || ctx.scan.stats_region[l] {
            continue;
        }
        let line = ctx.scan.code[l].clone();
        let hit = ["Instant", "SystemTime"].iter().any(|pat| {
            token_positions(&line, pat, false)
                .iter()
                .any(|&at| !line.as_bytes().get(at + pat.len()).is_some_and(|&c| is_ident(c)))
        });
        if hit {
            ctx.report(
                l,
                CLOCK_INJECTION,
                "wall-clock read outside cudalign::obs: sample time through the injected \
                 obs::Clock (Obs::now) so traces stay deterministic"
                    .into(),
            );
        }
    }
}

/// A blocking sleep is a wall-clock dependency in disguise: it stalls a
/// worker lane for real time and makes fault/chaos tests slow and flaky.
/// The two sanctioned homes are `cudalign::storage` (whose backoff sleep
/// routes through the injectable `fault::backoff_sleep` hook) and
/// `gpu_sim::exec` (the watchdog's condvar waits and pool internals).
fn rule_sleep_injection(ctx: &mut Ctx<'_>) {
    let path = ctx.scan.rel_path.as_str();
    if path == "crates/cudalign/src/storage.rs"
        || path == "crates/gpu-sim/src/exec.rs"
        || is_vendored(path)
    {
        return;
    }
    for l in 0..ctx.scan.code.len() {
        if ctx.scan.test_region[l] {
            continue;
        }
        let line = ctx.scan.code[l].clone();
        if !token_positions(&line, "thread::sleep", false).is_empty() {
            ctx.report(
                l,
                SLEEP_INJECTION,
                "bare thread::sleep outside cudalign::storage / gpu_sim::exec: route the \
                 delay through storage::fault::backoff_sleep or a watchdog TimeSource so \
                 tests don't wait real wall-clock"
                    .into(),
            );
        }
    }
}

fn rule_non_exhaustive_errors(ctx: &mut Ctx<'_>) {
    if is_vendored(&ctx.scan.rel_path) {
        return;
    }
    for l in 0..ctx.scan.code.len() {
        if ctx.scan.test_region[l] {
            continue;
        }
        let line = ctx.scan.code[l].clone();
        let Some(at) = token_positions(&line, "pub enum ", false).first().copied() else {
            continue;
        };
        let name: String =
            line[at + 9..].chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
        if !name.ends_with("Error") {
            continue;
        }
        // Walk the attribute/comment block above the item.
        let mut has = false;
        let mut k = l;
        while k > 0 {
            k -= 1;
            let code = ctx.scan.code[k].trim().to_owned();
            if code.starts_with("#[") || code.starts_with("#![") {
                has |= code.contains("non_exhaustive");
                continue;
            }
            if code.is_empty() {
                // Doc comments and blank lines: keep walking.
                if ctx.scan.comments[k].is_empty() && k + 1 < ctx.scan.code.len() {
                    break;
                }
                continue;
            }
            break;
        }
        if !has {
            ctx.report(
                l,
                NON_EXHAUSTIVE_ERRORS,
                format!(
                    "public error enum `{name}` is not `#[non_exhaustive]`: downstream \
                     matches would break when a failure mode is added"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// Lint a single source buffer as if it lived at `rel_path` (workspace
/// relative, `/`-separated). Returns `(findings, suppressed)`.
pub fn lint_source(rel_path: &str, src: &str) -> (Vec<Finding>, usize) {
    let scan = Scan::new(rel_path, src);
    let mut ctx = Ctx { scan: &scan, findings: Vec::new(), suppressed: 0 };
    rule_no_panics(&mut ctx);
    rule_fs_isolation(&mut ctx);
    rule_thread_isolation(&mut ctx);
    rule_safety_comment(&mut ctx);
    rule_no_wallclock(&mut ctx);
    rule_clock_injection(&mut ctx);
    rule_sleep_injection(&mut ctx);
    rule_non_exhaustive_errors(&mut ctx);
    ctx.findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (ctx.findings, ctx.suppressed)
}

/// Collect the workspace's lintable sources: every `.rs` under
/// `crates/*/src` plus the integration-test support library under
/// `tests/src`. Test *targets* (`tests/tests`, `crates/*/tests`, benches,
/// examples) are whole-file test code and are not walked.
fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let mut src_dirs: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(&crates)? {
        let p = entry?.path();
        if p.is_dir() {
            src_dirs.push(p.join("src"));
        }
    }
    src_dirs.push(root.join("tests").join("src"));
    for dir in src_dirs {
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    for path in workspace_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&path)?;
        let (findings, suppressed) = lint_source(&rel, &src);
        report.files += 1;
        report.suppressed += suppressed;
        report.findings.extend(findings);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_strips_comments_strings_chars() {
        let src = "let a = \"panic!\"; // .unwrap()\nlet b = '\\n'; let c: &'static str = x;\n";
        let (masked, comments) = mask(src);
        assert!(!masked.contains("panic!"));
        assert!(!masked.contains(".unwrap()"));
        assert!(comments[0].contains(".unwrap()"));
        assert!(masked.contains("'static"), "lifetime must survive masking: {masked}");
    }

    #[test]
    fn method_call_rejects_suffixed_names() {
        assert!(method_call("x.unwrap()", "unwrap"));
        assert!(!method_call("x.unwrap_or(0)", "unwrap"));
        assert!(!method_call("x.unwrap_or_else(f)", "unwrap"));
        assert!(!method_call("x.expect_err(\"e\")", "expect"));
        assert!(method_call("x.expect(\"e\")", "expect"));
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
        let (findings, _) = lint_source("crates/cudalign/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn raw_strings_are_masked() {
        let src = "let s = r#\"thread::spawn panic! \"#;\n";
        let (findings, _) = lint_source("crates/cudalign/src/x.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn allow_requires_justification() {
        let with = "// lint: allow(no-panics): infallible by construction\nlet x = y.unwrap();\n";
        let (f, s) = lint_source("crates/cudalign/src/x.rs", with);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(s, 1);
        let without = "// lint: allow(no-panics)\nlet x = y.unwrap();\n";
        let (f, _) = lint_source("crates/cudalign/src/x.rs", without);
        assert_eq!(f.len(), 1);
        assert!(f[0].msg.contains("justification"), "{}", f[0].msg);
    }
}
