//! End-to-end property tests: the six-stage pipeline must reproduce the
//! quadratic-space reference on arbitrary inputs, for arbitrary grid
//! shapes and SRA budgets.

use cudalign::config::SraBackend;
use cudalign::sra::LineStore;
use cudalign::{storage, Pipeline, PipelineConfig};
use gpu_sim::{CellHF, GridSpec};
use proptest::prelude::*;
use sw_core::full::sw_local_score;
use sw_core::Scoring;

fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"ACGT".to_vec()), 0..max_len)
}

/// Pairs with planted structure so alignments are non-trivial.
fn related_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (dna(400), any::<u64>()).prop_map(|(a, seed)| {
        let mut b = a.clone();
        let mut x = seed | 1;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..6 {
            if b.len() < 4 {
                break;
            }
            let r = step();
            let pos = (r as usize >> 8) % b.len();
            match r % 3 {
                0 => b[pos] = b"ACGT"[(r as usize >> 40) & 3],
                1 => {
                    let del = (1 + (r >> 16) as usize % 20).min(b.len() - pos);
                    b.drain(pos..pos + del);
                }
                _ => {
                    for k in 0..(1 + (r >> 16) as usize % 12) {
                        b.insert(pos, b"ACGT"[(r as usize >> (2 * k)) & 3]);
                    }
                }
            }
        }
        (a, b)
    })
}

fn small_grids() -> impl Strategy<Value = GridSpec> {
    (1usize..6, 1usize..6, 1usize..4).prop_map(|(blocks, threads, alpha)| GridSpec {
        blocks,
        threads,
        alpha,
    })
}

fn check(a: &[u8], b: &[u8], cfg: PipelineConfig) -> Result<(), TestCaseError> {
    let res = Pipeline::new(cfg).align(a, b).unwrap();
    let (ref_score, ref_end) = sw_local_score(a, b, &Scoring::paper());
    prop_assert_eq!(res.best_score, ref_score);
    if ref_score > 0 {
        prop_assert_eq!(res.end, ref_end);
        let sub_a = &a[res.start.0..res.end.0];
        let sub_b = &b[res.start.1..res.end.1];
        res.transcript.validate(sub_a, sub_b).unwrap();
        prop_assert_eq!(res.transcript.score(sub_a, sub_b, &Scoring::paper()), ref_score);
        // The binary form reconstructs the same transcript.
        let t2 = res.binary.to_transcript(a, b);
        prop_assert_eq!(t2.ops(), res.transcript.ops());
        // The final chain telescopes.
        res.chain.validate().unwrap();
        let total: i32 = res.chain.partitions().map(|p| p.score()).sum();
        prop_assert_eq!(total, ref_score);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pipeline_equals_reference((a, b) in related_pair()) {
        check(&a, &b, PipelineConfig::for_tests())?;
    }

    #[test]
    fn pipeline_invariant_to_grid_shape((a, b) in related_pair(), g1 in small_grids(), g23 in small_grids()) {
        let mut cfg = PipelineConfig::for_tests();
        cfg.grid1 = g1;
        cfg.grid23 = g23;
        check(&a, &b, cfg)?;
    }

    #[test]
    fn pipeline_invariant_to_sra_budget((a, b) in related_pair(), rows_budget in 0u64..64, cols_budget in 0u64..64) {
        let mut cfg = PipelineConfig::for_tests();
        // Budgets in units of "rows": 0 means no special rows at all.
        cfg.sra_bytes = rows_budget * 8 * (b.len() as u64 + 1);
        cfg.sca_bytes = cols_budget * 8 * 64;
        check(&a, &b, cfg)?;
    }

    #[test]
    fn pipeline_invariant_to_stage4_flags((a, b) in related_pair(), orth in any::<bool>(), bal in any::<bool>(), max_part in 4usize..64) {
        let mut cfg = PipelineConfig::for_tests();
        cfg.orthogonal_stage4 = orth;
        cfg.balanced_split = bal;
        cfg.max_partition_size = max_part;
        check(&a, &b, cfg)?;
    }

    #[test]
    fn pipeline_on_unrelated_random(a in dna(300), b in dna(300)) {
        check(&a, &b, PipelineConfig::for_tests())?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Decoding arbitrary bytes must never panic — it either parses or
    /// reports a structured error (failure injection for Stage 6).
    #[test]
    fn binary_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = cudalign::BinaryAlignment::decode(&bytes);
    }

    /// Corrupting an encoded alignment must not panic the decoder; when
    /// it still parses, re-encoding is stable.
    #[test]
    fn binary_decode_survives_corruption((a, b) in related_pair(), flip in any::<(usize, u8)>()) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let res = Pipeline::new(PipelineConfig::for_tests()).align(&a, &b).unwrap();
        prop_assume!(res.best_score > 0);
        let mut bytes = res.binary.encode();
        let (pos, val) = flip;
        let k = pos % bytes.len();
        bytes[k] ^= val | 1;
        if let Ok(decoded) = cudalign::BinaryAlignment::decode(&bytes) {
            let re = decoded.encode();
            let back = cudalign::BinaryAlignment::decode(&re).unwrap();
            prop_assert_eq!(back, decoded);
        }
    }
}

/// A fresh directory per proptest case; cases run concurrently inside one
/// process, so the name carries a global counter besides the pid.
fn case_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static N: AtomicUsize = AtomicUsize::new(0);
    let d = std::env::temp_dir().join(format!(
        "cudalign-prop-store-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Damaging any single stored line file — truncating it anywhere,
    /// flipping any bit, restamping it with a foreign fingerprint, or
    /// renaming it to another line's slot — makes `reopen` reject and
    /// delete exactly that file, never panic, never serve wrong cells;
    /// every intact line survives byte-identical.
    #[test]
    fn reopen_survives_single_file_damage(
        n_lines in 2usize..6,
        line_len in 1usize..9,
        victim in 0usize..8,
        kind in 0u8..4,
        at in any::<usize>(),
    ) {
        const FP: u64 = 0xF00D;
        let dir = case_dir();
        let backend = SraBackend::Disk(dir.clone());
        let cell = |i: usize, k: usize| CellHF { h: (i * 100 + k) as i32, f: k as i32 - 3 };

        {
            let mut store: LineStore<CellHF> =
                LineStore::new(&backend, 1 << 20, "row", FP).unwrap();
            for i in 0..n_lines {
                let idx = (i + 1) * 3;
                prop_assert!(store.try_begin_line(idx, i, line_len));
                prop_assert!(store.put_segment(idx, i, (0..line_len).map(|k| cell(i, k))));
            }
            store.persist_on_drop(true);
        }

        let vi = victim % n_lines;
        let vidx = (vi + 1) * 3;
        let path = dir.join(format!("row-{vidx}-{vi}.bin"));
        let bytes = std::fs::read(&path).unwrap();
        match kind {
            0 => {
                // Truncate to any strictly shorter length (torn write).
                std::fs::write(&path, &bytes[..at % bytes.len()]).unwrap();
            }
            1 => {
                // Flip one bit anywhere — header fields included.
                let mut b = bytes;
                let pos = at % b.len();
                b[pos] ^= 1 << (at % 8);
                std::fs::write(&path, &b).unwrap();
            }
            2 => {
                // A fully valid frame from some other job.
                let meta = storage::FrameMeta {
                    fingerprint: FP + 1,
                    index: vidx as u64,
                    origin: vi as u64,
                    len: line_len as u64,
                };
                storage::write_frame(&path, &meta, &bytes[storage::FRAME_HEADER_BYTES..])
                    .unwrap();
            }
            _ => {
                // A valid frame under the wrong name ((i+1)*3 + 1 never
                // collides with another line's slot).
                std::fs::rename(&path, dir.join(format!("row-{}-{vi}.bin", vidx + 1)))
                    .unwrap();
            }
        }

        let reopened: LineStore<CellHF> =
            LineStore::reopen(&backend, 1 << 20, "row", FP).unwrap();
        prop_assert_eq!(reopened.stats().rejected_files, 1);
        prop_assert!(reopened.get(vidx).unwrap().is_none(), "damaged line never served");
        for i in (0..n_lines).filter(|&i| i != vi) {
            let idx = (i + 1) * 3;
            let (origin, cells) = reopened.get(idx).unwrap().unwrap();
            prop_assert_eq!(origin, i);
            prop_assert_eq!(cells.len(), line_len);
            for (k, c) in cells.iter().enumerate() {
                prop_assert_eq!(*c, cell(i, k));
            }
        }
        let survivors = std::fs::read_dir(&dir).unwrap().count();
        prop_assert_eq!(survivors, n_lines - 1, "rejected file deleted, intact kept");
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
