// lint-fixture path=crates/cudalign/src/docfix.rs rule=* expect=0
//! Banned patterns in doc comments must not fire: don't call
//! `.unwrap()` or `panic!()`, avoid `thread::spawn`, `Instant::now()`,
//! `std::fs::File` and `OpenOptions`, and never `thread::sleep`.
//! Even a doc-quoted `lint: allow(no-panics): example` is inert — the
//! escape hatch only reads plain comments.

/// Returns x. Not `x.unwrap()`; no `SystemTime::now()` involved.
/// Spawning via `thread::Builder` is likewise only mentioned here.
pub fn id(x: u32) -> u32 {
    x
}
