//! MCUPS trajectory of the DP kernel: scalar reference vs the `i16`
//! striped rung vs the full precision ladder (`i8` first attempt), on the
//! same shapes the criterion microbenches use.
//!
//! ```text
//! cargo run --release -p cudalign-bench --bin mcups [-- --quick] [--out PATH] [--check-scaling]
//!
//! --quick          shrink shapes and the per-case time budget (CI smoke)
//! --out PATH       where to write the JSON report (default BENCH_kernel.json)
//! --check-scaling  exit non-zero if (a) the workers=4 wavefront sweep point
//!                  is slower than workers=1 (skipped, with a note, on hosts
//!                  without at least 2 CPUs), or (b) the i8 ladder rung is
//!                  slower than the i16 rung on the local rowdp shape while
//!                  no i8 fallback occurred
//! ```
//!
//! Each case is timed by repeating the whole computation until a minimum
//! wall-clock budget is spent, so short cases amortize setup noise. The
//! report is newline-stable hand-rolled JSON (the workspace excludes
//! serde_json) with one entry per (bench, shape, path, workers) tuple.
//!
//! # Report schema (version 2)
//!
//! Top level: `schema` (integer, currently 2), `host_parallelism`,
//! `quick`, `entries`. Each entry carries `lanes` — the SIMD width of the
//! kernel path the case actually ran on (1 scalar, 16 for `i16`, 32 for
//! `i8`) — and wavefront entries add `profile_hits`/`profile_misses` from
//! the engine's query-profile cache. When the `--out` file already exists,
//! its entries are carried over unless this run re-measured the same
//! tuple; a pre-schema-2 file is refused (delete it and regenerate) so the
//! report never mixes entry layouts.

use gpu_sim::kernel::{
    compute_tile, compute_tile_i16, compute_tile_scalar, global_borders, local_borders,
    GlobalOrigin, KernelPath,
};
use gpu_sim::wavefront::{run_pooled, NoObserver, RegionJob};
use gpu_sim::{striped, GridSpec, Mode, WorkerPool};
use std::io::Write;
use std::time::Instant;
use sw_core::scoring::Scoring;
use sw_core::transcript::EdgeState;

/// Schema version of the JSON report. Bump when entry fields change.
const SCHEMA: u64 = 2;

fn dna(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            b"ACGT"[(x >> 33) as usize & 3]
        })
        .collect()
}

struct Entry {
    bench: &'static str,
    shape: String,
    /// Observed kernel-path label ("scalar", "striped8", "striped8_fb16",
    /// "striped16", "fallback").
    path: &'static str,
    lanes: usize,
    workers: usize,
    cells: u64,
    seconds: f64,
    mcups: f64,
    /// Query-profile cache traffic (wavefront entries only).
    profile: Option<(u64, u64)>,
}

/// Which rung of the ladder a tile case pins.
#[derive(Clone, Copy, PartialEq)]
enum TilePath {
    /// `compute_tile_scalar` — the `i32` reference loop.
    Scalar,
    /// `compute_tile_i16` — the ladder with the `i8` rung disabled.
    I16,
    /// `compute_tile` — the full ladder (`i8` first attempt).
    Auto,
}

/// Repeat `f` until `budget` seconds have elapsed (at least twice after
/// one warm-up call), and return (cells processed, seconds).
fn time_case(cells_per_iter: u64, budget: f64, mut f: impl FnMut() -> i32) -> (u64, f64) {
    let mut sink = f(); // warm-up, also keeps the work observable
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        sink = sink.wrapping_add(f());
        iters += 1;
        if iters >= 2 && start.elapsed().as_secs_f64() >= budget {
            break;
        }
    }
    std::hint::black_box(sink);
    (cells_per_iter * iters, start.elapsed().as_secs_f64())
}

fn tile_case(
    bench: &'static str,
    h: usize,
    w: usize,
    local: bool,
    path: TilePath,
    budget: f64,
    entries: &mut Vec<Entry>,
) {
    let a = dna(3, h);
    let b = dna(4, w);
    let sc = Scoring::paper();
    let mut seen_path = KernelPath::Scalar;
    let (cells, seconds) = time_case((h * w) as u64, budget, || {
        let (mut top, mut left, corner) = if local {
            local_borders(h, w)
        } else {
            global_borders(h, w, &sc, GlobalOrigin::forward(EdgeState::Diagonal))
        };
        let out = match path {
            TilePath::Scalar => {
                compute_tile_scalar(&a, &b, 1, 1, &sc, local, None, corner, &mut top, &mut left)
            }
            TilePath::I16 => {
                compute_tile_i16(&a, &b, 1, 1, &sc, local, None, corner, &mut top, &mut left)
            }
            TilePath::Auto => {
                compute_tile(&a, &b, 1, 1, &sc, local, None, corner, &mut top, &mut left)
            }
        };
        seen_path = out.path;
        out.corner_out.wrapping_add(out.best.map_or(0, |(s, _, _)| s))
    });
    match path {
        TilePath::I16 if seen_path != KernelPath::Striped16 => {
            eprintln!("mcups: warning: {bench} {h}x{w} i16 case ran on {seen_path:?}");
        }
        TilePath::Auto if seen_path == KernelPath::StripedFallback => {
            eprintln!("mcups: warning: {bench} {h}x{w} ladder case fell back to scalar");
        }
        _ => {}
    }
    let label = match path {
        TilePath::Scalar => "scalar",
        _ => seen_path.label(),
    };
    let mode = if local { "local" } else { "global" };
    entries.push(Entry {
        bench,
        shape: format!("{mode}_{h}x{w}"),
        path: label,
        lanes: if path == TilePath::Scalar { 1 } else { seen_path.lanes() },
        workers: 1,
        cells,
        seconds,
        mcups: cells as f64 / seconds / 1e6,
        profile: None,
    });
}

fn wavefront_case(m: usize, n: usize, workers: usize, budget: f64, entries: &mut Vec<Entry>) {
    let a = dna(5, m);
    let b = dna(6, n);
    let grid = GridSpec { blocks: 16, threads: 16, alpha: 4 };
    let layout = grid.layout(m, n);
    let (min_h, min_w) = layout.min_tile_dims();
    if min_h < striped::LANES || min_w < striped::LANES {
        eprintln!(
            "mcups: warning: wavefront {m}x{n} has {min_h}x{min_w} tiles; \
             some will take the scalar path"
        );
    }
    let pool = WorkerPool::new(workers);
    let job = RegionJob {
        a: &a,
        b: &b,
        scoring: Scoring::paper(),
        mode: Mode::Local,
        grid,
        workers,
        watch: None,
    };
    let mut paths = gpu_sim::kernel::PathCounts::default();
    let mut profile = (0u64, 0u64);
    let (cells, seconds) = time_case((m * n) as u64, budget, || {
        let res = run_pooled(&pool, &job, &mut NoObserver).expect("no worker panic");
        paths = res.paths;
        profile = (res.profile_hits, res.profile_misses);
        res.best.map_or(0, |(s, _, _)| s)
    });
    if paths.fallback > 0 {
        eprintln!("mcups: warning: wavefront run had {} scalar fallbacks", paths.fallback);
    }
    if paths.striped_total() == 0 {
        eprintln!("mcups: warning: wavefront run engaged no striped tiles");
    }
    // The dominant path label: i8 commits when most tiles ran it.
    let path = if paths.striped8 >= paths.striped8_fb16 + paths.striped16 {
        "striped8"
    } else {
        "striped16"
    };
    entries.push(Entry {
        bench: "wavefront",
        shape: format!("local_{m}x{n}"),
        path,
        lanes: if path == "striped8" { 32 } else { 16 },
        workers,
        cells,
        seconds,
        mcups: cells as f64 / seconds / 1e6,
        profile: Some(profile),
    });
}

/// CPUs the host exposes; scaling claims are only meaningful when > 1.
fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn entry_json(e: &Entry) -> String {
    let mut s = format!(
        "{{\"bench\": \"{}\", \"shape\": \"{}\", \"path\": \"{}\", \"lanes\": {}, \
         \"workers\": {}, \"cells\": {}, \"seconds\": {:.6}, \"mcups\": {:.1}",
        e.bench, e.shape, e.path, e.lanes, e.workers, e.cells, e.seconds, e.mcups,
    );
    if let Some((hits, misses)) = e.profile {
        s.push_str(&format!(", \"profile_hits\": {hits}, \"profile_misses\": {misses}"));
    }
    s.push('}');
    s
}

fn to_json(quick: bool, entries: &[Entry], carried: &[String]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": {SCHEMA},\n"));
    s.push_str(&format!("  \"host_parallelism\": {},\n", host_parallelism()));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"entries\": [\n");
    let total = entries.len() + carried.len();
    for (i, line) in entries.iter().map(entry_json).chain(carried.iter().cloned()).enumerate() {
        s.push_str(&format!("    {line}{}\n", if i + 1 < total { "," } else { "" }));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Pull a `"key": "value"` string field out of one raw entry line.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    Some(&rest[..rest.find('"')?])
}

/// Pull a `"key": 123` numeric field out of one raw entry line.
fn field_num<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let i = line.find(&pat)? + pat.len();
    let rest = &line[i..];
    let end = rest.find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-')?;
    Some(&rest[..end])
}

/// Identity of one measurement within the report.
fn entry_key(line: &str) -> Option<String> {
    Some(format!(
        "{}|{}|{}|{}",
        field_str(line, "bench")?,
        field_str(line, "shape")?,
        field_str(line, "path")?,
        field_num(line, "workers")?,
    ))
}

/// Read the existing report (if any) and return the raw entry lines this
/// run did not re-measure. A file with a different schema version is
/// refused outright: carrying its entries over would mix layouts.
fn carry_over(out_path: &str, fresh: &[Entry]) -> Vec<String> {
    let Ok(old) = std::fs::read_to_string(out_path) else {
        return Vec::new();
    };
    let schema_marker = format!("\"schema\": {SCHEMA}");
    if !old.contains(&schema_marker) {
        eprintln!(
            "mcups: {out_path} is not a schema-{SCHEMA} report; refusing to merge. \
             Delete it and rerun to regenerate from scratch."
        );
        std::process::exit(1);
    }
    let fresh_keys: Vec<String> =
        fresh.iter().map(|e| format!("{}|{}|{}|{}", e.bench, e.shape, e.path, e.workers)).collect();
    old.lines()
        .filter(|l| l.trim_start().starts_with("{\"bench\""))
        .filter_map(|l| {
            let line = l.trim().trim_end_matches(',').to_string();
            let key = entry_key(&line)?;
            (!fresh_keys.contains(&key)).then_some(line)
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: mcups [--quick] [--out PATH] [--check-scaling]");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let check_scaling = args.iter().any(|a| a == "--check-scaling");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernel.json".to_string());
    let budget = if quick { 0.05 } else { 0.5 };

    let mut entries = Vec::new();
    // The rowdp shapes from benches/kernel.rs: one tall tile. The global
    // variant's deep borders exceed the i8 window (the ladder escalates
    // immediately); the local variant is where the i8 rung commits.
    let (rh, rw) = if quick { (256, 1024) } else { (1024, 4096) };
    for local in [false, true] {
        tile_case("rowdp", rh, rw, local, TilePath::Scalar, budget, &mut entries);
        tile_case("rowdp", rh, rw, local, TilePath::I16, budget, &mut entries);
        tile_case("rowdp", rh, rw, local, TilePath::Auto, budget, &mut entries);
    }
    // The tile shapes from benches/kernel.rs, both modes, all three paths.
    let shapes: &[(usize, usize)] =
        if quick { &[(128, 128), (128, 512)] } else { &[(256, 256), (256, 4096)] };
    for &(h, w) in shapes {
        for local in [false, true] {
            tile_case("tile", h, w, local, TilePath::Scalar, budget, &mut entries);
            tile_case("tile", h, w, local, TilePath::I16, budget, &mut entries);
            tile_case("tile", h, w, local, TilePath::Auto, budget, &mut entries);
        }
    }
    // End-to-end wavefront engine (the ladder is the default), swept
    // across worker counts to expose the strip scheduler's scaling.
    let (wm, wn) = if quick { (1024, 1024) } else { (4096, 4096) };
    for workers in [1usize, 2, 4, 8] {
        wavefront_case(wm, wn, workers, budget, &mut entries);
    }

    println!(
        "{:<10} {:<18} {:<14} {:>5} {:>3} {:>12} {:>10}",
        "bench", "shape", "path", "lanes", "w", "cells", "MCUPS"
    );
    for e in &entries {
        println!(
            "{:<10} {:<18} {:<14} {:>5} {:>3} {:>12} {:>10.1}",
            e.bench, e.shape, e.path, e.lanes, e.workers, e.cells, e.mcups
        );
    }
    // Per-shape speedups over the scalar reference.
    for s in entries.iter().filter(|e| e.path == "scalar") {
        for v in entries.iter().filter(|e| {
            e.shape == s.shape && e.bench == s.bench && e.path != "scalar" && e.workers == s.workers
        }) {
            println!("speedup    {:<18} {:<14} {:>21.2}x", s.shape, v.path, v.mcups / s.mcups);
        }
    }

    let carried = carry_over(&out_path, &entries);
    if !carried.is_empty() {
        eprintln!("mcups: carrying over {} prior entr(y/ies) from {out_path}", carried.len());
    }
    let json = to_json(quick, &entries, &carried);
    let mut f = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("mcups: cannot create {out_path}: {e}"));
    f.write_all(json.as_bytes()).expect("write report");
    eprintln!("mcups: wrote {out_path}");

    if check_scaling {
        let mut failed = false;
        let wavefront_mcups = |w: usize| {
            entries
                .iter()
                .find(|e| e.bench == "wavefront" && e.workers == w)
                .map(|e| e.mcups)
                .unwrap_or_else(|| panic!("mcups: no wavefront entry for workers={w}"))
        };
        let (w1, w4) = (wavefront_mcups(1), wavefront_mcups(4));
        let cpus = host_parallelism();
        if cpus < 2 {
            eprintln!(
                "mcups: check-scaling: host has {cpus} CPU(s); \
                 w1={w1:.1} w4={w4:.1} MCUPS recorded, scaling gate skipped \
                 (nothing to scale on)"
            );
        } else if w4 < w1 {
            eprintln!(
                "mcups: check-scaling FAILED: wavefront workers=4 ({w4:.1} MCUPS) \
                 is slower than workers=1 ({w1:.1} MCUPS)"
            );
            failed = true;
        } else {
            eprintln!("mcups: check-scaling OK: w4/w1 = {:.2}x", w4 / w1);
        }
        // The i8 rung exists to beat i16; on the local rowdp shape (where
        // it commits without fallback) it must not be slower.
        let rowdp_shape = format!("local_{rh}x{rw}");
        let rung = |path: &str| {
            entries
                .iter()
                .find(|e| e.bench == "rowdp" && e.shape == rowdp_shape && e.path == path)
                .map(|e| e.mcups)
        };
        match (rung("striped8"), rung("striped16")) {
            (Some(v8), Some(v16)) if v8 < v16 => {
                eprintln!(
                    "mcups: check-scaling FAILED: i8 rung ({v8:.1} MCUPS) is slower \
                     than i16 ({v16:.1} MCUPS) on {rowdp_shape} with no fallback"
                );
                failed = true;
            }
            (Some(v8), Some(v16)) => {
                eprintln!("mcups: check-scaling OK: i8/i16 = {:.2}x on {rowdp_shape}", v8 / v16);
            }
            _ => {
                // The ladder escalated (no committed i8 entry): the gate
                // does not apply, per the no-fallback precondition.
                eprintln!(
                    "mcups: check-scaling: no committed i8 entry on {rowdp_shape}; \
                     i8-vs-i16 gate skipped"
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
