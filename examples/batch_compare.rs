//! Compare the pipeline against every baseline on the Table II registry
//! (scaled), verifying they all agree — a miniature of the paper's
//! evaluation loop.
//!
//! ```text
//! cargo run -p cudalign --release --example batch_compare [scale]
//! ```

use baselines::{mm_local_align, zalign};
use cudalign::{Pipeline, PipelineConfig};
use seqio::DatasetRegistry;
use std::time::Instant;
use sw_core::Scoring;

fn main() {
    let scale: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4000);
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let reg = DatasetRegistry::paper();
    println!(
        "{:>16} {:>10} {:>9} {:>12} {:>12} {:>12}",
        "pair",
        "score",
        "length",
        "pipeline(s)",
        "zalign1(s)",
        format!("zalign{cores}(s)")
    );
    for spec in reg.pairs() {
        let (s0, s1) = spec.materialize(scale, 42);
        let sc = Scoring::paper();

        let t = Instant::now();
        let res = Pipeline::new(PipelineConfig::default_cpu())
            .align(s0.bases(), s1.bases())
            .expect("pipeline failed");
        let t_pipe = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let z1 = zalign(s0.bases(), s1.bases(), &sc, 1);
        let t_z1 = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let zp = zalign(s0.bases(), s1.bases(), &sc, cores);
        let t_zp = t.elapsed().as_secs_f64();

        let mm = mm_local_align(s0.bases(), s1.bases(), &sc);

        assert_eq!(res.best_score, z1.score, "{}: pipeline vs zalign", spec.key);
        assert_eq!(res.best_score, zp.score);
        assert_eq!(res.best_score, mm.score);

        println!(
            "{:>16} {:>10} {:>9} {:>12.3} {:>12.3} {:>12.3}",
            spec.key,
            res.best_score,
            res.transcript.len(),
            t_pipe,
            t_z1,
            t_zp
        );
    }
    println!("\nall aligners agree on every optimal score.");
}
