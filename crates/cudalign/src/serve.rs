//! Batched many-alignment service mode: a bounded, prioritized job
//! queue over one shared [`WorkerPool`].
//!
//! The paper aligns one huge pair end-to-end; production traffic is
//! millions of small/medium jobs. A [`Server`] owns a fixed set of
//! runner threads (spawned through the executor's sanctioned
//! [`gpu_sim::exec::spawn_service`] spawn point), each driving its own
//! reentrant [`Pipeline`] over the *same* [`WorkerPool`], so N
//! concurrent jobs share the machine's lanes instead of oversubscribing
//! it with N pools.
//!
//! Design (DESIGN.md §14):
//!
//! - **Bounded admission.** [`Server::submit_batch`] is all-or-nothing:
//!   a batch that would push the queue past `queue_cap` is rejected with
//!   the typed [`ServeError::QueueFull`] — explicit backpressure, never
//!   unbounded buffering.
//! - **Length-sorted packing.** Runners drain by priority first, then
//!   *shortest job first* within a priority class. Submitting a batch
//!   therefore executes it length-sorted, which keeps the striped
//!   i8/i16 kernels' lanes full (the inter-task batching trick of the
//!   SSW library and AnySeq/GPU): similar-length jobs run back-to-back,
//!   and each job's bands fit the per-engine [`gpu_sim::ProfileCache`]
//!   (keyed by `(scoring, band)`, so interleaved tenants don't thrash).
//! - **Per-job supervision.** Every [`JobRequest`] carries its own
//!   [`RunControl`] (cancel / deadline / stall watchdog — the PR 7
//!   supervision layer verbatim); cancelling one job never perturbs
//!   another. A job cancelled while still queued is resolved without
//!   ever touching the pipeline.
//! - **Fingerprint result cache.** Results are cached in an LRU keyed
//!   by the *content* fingerprint (the storage layer's
//!   [`crate::storage::job_fingerprint`] — shape, scoring, grids —
//!   folded over both sequences), so a repeated query is near-free and
//!   two same-shape but different-content jobs never alias.
//! - **Per-job traces, merged-but-attributed stats.** Each job gets its
//!   own NDJSON trace: `job_submit` / `job_start` / `job_end` records
//!   bracketing the ordinary run records, all stamped by one
//!   server-wide injected [`Clock`] epoch. [`validate_trace`] accepts
//!   every stream this module emits, including the run-less traces of
//!   cached and queue-cancelled jobs. Attribution lives in each
//!   [`JobReport`] (its trace and its [`PipelineResult::stats`]);
//!   [`ServeStats`] merges the totals.
//!
//! Lock discipline: the queue (`jobs`), result cache (`cache`), totals
//! (`totals`) and each job's `report` mutex are single-lock protocols —
//! no code path holds two of them at once.
//!
//! [`validate_trace`]: crate::obs::validate_trace

use crate::config::PipelineConfig;
use crate::obs::{Clock, Event, Obs, Recorder as _, TraceWriter, WallClock};
use crate::pipeline::{Pipeline, PipelineError, PipelineResult};
use crate::supervise::RunControl;
use gpu_sim::exec::{spawn_service, ServiceThread};
use gpu_sim::WorkerPool;
use std::cmp::Reverse;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Default bound on queued (not yet running) jobs.
const DEFAULT_QUEUE_CAP: usize = 64;
/// Default number of runner threads (concurrent pipelines).
const DEFAULT_RUNNERS: usize = 2;
/// Default result-cache entries.
const DEFAULT_CACHE_CAP: usize = 32;

/// Lock `m`, recovering from poisoning: a panicking job is surfaced as a
/// `"failed"` outcome by its runner, so the queue/cache/totals state a
/// poisoned mutex guards is still consistent and must stay usable.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Configuration and requests
// ---------------------------------------------------------------------------

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Pipeline configuration shared by every job (scoring, grids,
    /// storage backend, `workers` = shared-pool lanes).
    pub pipeline: PipelineConfig,
    /// Maximum queued (admitted but not yet running) jobs; admission
    /// past this bound fails with [`ServeError::QueueFull`].
    pub queue_cap: usize,
    /// Runner threads, i.e. concurrent pipelines over the shared pool.
    pub runners: usize,
    /// Result-cache capacity in entries (0 disables the cache).
    pub cache_cap: usize,
}

impl ServeConfig {
    /// Defaults around the given pipeline configuration.
    pub fn new(pipeline: PipelineConfig) -> Self {
        ServeConfig {
            pipeline,
            queue_cap: DEFAULT_QUEUE_CAP,
            runners: DEFAULT_RUNNERS,
            cache_cap: DEFAULT_CACHE_CAP,
        }
    }
}

/// One alignment request: a sequence pair plus scheduling metadata.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Query sequence (the DP matrix's rows).
    pub s0: Vec<u8>,
    /// Database sequence (the DP matrix's columns).
    pub s1: Vec<u8>,
    /// Priority class: higher drains first.
    pub priority: u8,
    /// Per-job supervision handle (cancel / deadline / stall watchdog).
    pub ctrl: RunControl,
}

impl JobRequest {
    /// A default-priority, unsupervised request.
    pub fn new(s0: Vec<u8>, s1: Vec<u8>) -> Self {
        JobRequest { s0, s1, priority: 0, ctrl: RunControl::unlimited() }
    }

    /// Set the priority class.
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Attach a supervision handle (keep a clone to cancel the job).
    #[must_use]
    pub fn with_control(mut self, ctrl: RunControl) -> Self {
        self.ctrl = ctrl;
        self
    }
}

/// Service-layer failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The batch would overflow the admission queue; retry after some
    /// in-flight jobs drain (explicit backpressure).
    QueueFull {
        /// The configured queue bound that would have been exceeded.
        capacity: usize,
    },
    /// The server is shutting down and no longer admits jobs.
    ShuttingDown,
    /// No runner thread could be spawned; the server would never make
    /// progress.
    NoRunners,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "serve queue is full (capacity {capacity}); retry after jobs drain")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::NoRunners => write!(f, "no runner thread could be spawned"),
        }
    }
}

impl std::error::Error for ServeError {}

// ---------------------------------------------------------------------------
// Job lifecycle
// ---------------------------------------------------------------------------

/// Terminal record of one job, handed out by [`JobHandle::wait`].
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Serve-assigned job id (stable across the server's lifetime).
    pub id: u64,
    /// Content fingerprint the result cache keyed this job by.
    pub fingerprint: u64,
    /// The run's result, or the typed error that ended it. Per-job
    /// statistics ride inside [`PipelineResult::stats`] (attributed);
    /// [`ServeStats`] carries the merged totals.
    pub outcome: Result<PipelineResult, PipelineError>,
    /// Whether the result came from the fingerprint cache.
    pub cached: bool,
    /// The job's own NDJSON trace (`job_submit` … `job_end`), valid
    /// under [`crate::obs::validate_trace`].
    pub trace: String,
    /// Submit-to-terminal seconds on the server's clock.
    pub seconds: f64,
}

impl JobReport {
    /// The `job_end` outcome discriminator this report was traced with.
    pub fn outcome_kind(&self) -> &'static str {
        match &self.outcome {
            Ok(_) if self.cached => "cached",
            Ok(_) => "ok",
            Err(e) => e.interruption_kind().unwrap_or("failed"),
        }
    }
}

/// One admitted job: request data plus its completion slot.
struct JobSlot {
    id: u64,
    fingerprint: u64,
    m: usize,
    n: usize,
    priority: u8,
    /// Server-clock time at admission.
    submitted: Duration,
    /// Queue depth right after admission (this job included).
    queued_depth: usize,
    s0: Vec<u8>,
    s1: Vec<u8>,
    ctrl: RunControl,
    report: Mutex<Option<JobReport>>,
    done: Condvar,
}

impl JobSlot {
    fn resolve(&self, report: JobReport) {
        *lock_unpoisoned(&self.report) = Some(report);
        self.done.notify_all();
    }
}

/// Caller-side handle to an admitted job.
#[derive(Clone)]
pub struct JobHandle {
    slot: Arc<JobSlot>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle").field("id", &self.slot.id).finish_non_exhaustive()
    }
}

impl JobHandle {
    /// The serve-assigned job id.
    pub fn id(&self) -> u64 {
        self.slot.id
    }

    /// The content fingerprint the result cache keys this job by.
    pub fn fingerprint(&self) -> u64 {
        self.slot.fingerprint
    }

    /// The job's supervision handle (deadline/stall state, latency).
    pub fn control(&self) -> &RunControl {
        &self.slot.ctrl
    }

    /// Request cancellation. Queued jobs resolve without running;
    /// running jobs unwind at their next supervision check, leaving
    /// every other job untouched.
    pub fn cancel(&self) {
        self.slot.ctrl.cancel();
    }

    /// The report, if the job has already reached a terminal state.
    pub fn try_report(&self) -> Option<JobReport> {
        lock_unpoisoned(&self.slot.report).clone()
    }

    /// Block until the job reaches a terminal state.
    pub fn wait(&self) -> JobReport {
        // lint: allow(cancel-coverage): parked on the job's completion condvar; cancelling the job (via its RunControl) resolves the report and wakes this waiter
        loop {
            let g = lock_unpoisoned(&self.slot.report);
            let g =
                self.slot.done.wait_while(g, |r| r.is_none()).unwrap_or_else(|e| e.into_inner());
            if let Some(r) = g.as_ref() {
                return r.clone();
            }
        }
    }

    /// Block until the job reaches a terminal state or `timeout`
    /// elapses; `None` on timeout (the job keeps running).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobReport> {
        let g = lock_unpoisoned(&self.slot.report);
        let (g, _) = self
            .slot
            .done
            .wait_timeout_while(g, timeout, |r| r.is_none())
            .unwrap_or_else(|e| e.into_inner());
        g.clone()
    }
}

// ---------------------------------------------------------------------------
// Merged statistics
// ---------------------------------------------------------------------------

/// Server-wide totals, merged across every job. Per-job attribution is
/// in each [`JobReport`] (its trace and its [`PipelineResult::stats`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeStats {
    /// Jobs admitted to the queue.
    pub submitted: u64,
    /// Jobs that ran to a successful result (cache hits excluded).
    pub completed: u64,
    /// Jobs served from the fingerprint result cache.
    pub cache_hits: u64,
    /// Jobs ended by supervision (cancel / deadline / stall), whether
    /// queued or mid-run.
    pub cancelled: u64,
    /// Jobs that failed outright (storage, worker panic, internal).
    pub failed: u64,
    /// Batches rejected with [`ServeError::QueueFull`].
    pub rejected: u64,
    /// Highest queue depth ever observed at admission.
    pub queue_peak: usize,
    /// DP cells across all completed runs (merged).
    pub cells: u64,
    /// Pipeline wall seconds across all completed runs (merged; runs
    /// overlap, so this exceeds elapsed time under concurrency).
    pub run_seconds: f64,
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

/// Move-to-front LRU of completed results, keyed by content fingerprint.
struct ResultCache {
    cap: usize,
    entries: Vec<(u64, PipelineResult)>,
}

impl ResultCache {
    fn get(&mut self, key: u64) -> Option<PipelineResult> {
        let i = self.entries.iter().position(|(k, _)| *k == key)?;
        if i != 0 {
            let e = self.entries.remove(i);
            self.entries.insert(0, e);
        }
        Some(self.entries[0].1.clone())
    }

    fn put(&mut self, key: u64, value: PipelineResult) {
        if self.cap == 0 {
            return;
        }
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(i);
        }
        self.entries.insert(0, (key, value));
        self.entries.truncate(self.cap);
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(h, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// The result-cache key: the storage layer's shape/scoring/grid
/// fingerprint folded over the *content* of both sequences (with length
/// framing), so same-shape different-content jobs never alias.
fn content_fingerprint(job_fp: u64, s0: &[u8], s1: &[u8]) -> u64 {
    let h = fnv(FNV_OFFSET, &job_fp.to_le_bytes());
    let h = fnv(h, &(s0.len() as u64).to_le_bytes());
    let h = fnv(h, s0);
    let h = fnv(h, &(s1.len() as u64).to_le_bytes());
    fnv(h, s1)
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

struct JobQueue {
    waiting: Vec<Arc<JobSlot>>,
}

struct Shared {
    queue_cap: usize,
    clock: Arc<dyn Clock + Send + Sync>,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    jobs: Mutex<JobQueue>,
    work: Condvar,
    cache: Mutex<ResultCache>,
    totals: Mutex<ServeStats>,
}

/// Adapter giving each job's [`Obs`] the server's shared clock epoch,
/// so `job_submit` (stamped at admission) and the run records that
/// follow sit on one monotone timeline.
struct EpochClock(Arc<dyn Clock + Send + Sync>);

impl Clock for EpochClock {
    fn now(&self) -> Duration {
        self.0.now()
    }
}

/// A long-running alignment service over one shared [`WorkerPool`].
///
/// Dropping the server shuts it down: queued jobs resolve as cancelled,
/// in-flight jobs finish, runner threads join.
pub struct Server {
    shared: Arc<Shared>,
    pool: Arc<WorkerPool>,
    cfg: PipelineConfig,
    runners: Vec<ServiceThread>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("runners", &self.runners.len()).finish_non_exhaustive()
    }
}

impl Server {
    /// Start a server on a fresh pool, timed by a [`WallClock`].
    pub fn new(cfg: ServeConfig) -> Result<Server, ServeError> {
        let clock: Arc<dyn Clock + Send + Sync> = Arc::new(WallClock::new());
        Server::with_clock(cfg, clock)
    }

    /// Start a server with an injected clock epoch (tests drive a
    /// [`crate::obs::SharedClock`] for deterministic trace timestamps).
    pub fn with_clock(
        cfg: ServeConfig,
        clock: Arc<dyn Clock + Send + Sync>,
    ) -> Result<Server, ServeError> {
        let pool = Arc::new(WorkerPool::new(cfg.pipeline.workers));
        let shared = Arc::new(Shared {
            queue_cap: cfg.queue_cap,
            clock,
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            jobs: Mutex::new(JobQueue { waiting: Vec::new() }),
            work: Condvar::new(),
            cache: Mutex::new(ResultCache { cap: cfg.cache_cap, entries: Vec::new() }),
            totals: Mutex::new(ServeStats::default()),
        });
        let mut runners = Vec::with_capacity(cfg.runners.max(1));
        // lint: allow(cancel-coverage): bounded spawn fan-out, one service thread per runner
        for i in 0..cfg.runners.max(1) {
            let shared2 = Arc::clone(&shared);
            let pipe = Pipeline::with_pool(cfg.pipeline.clone(), Arc::clone(&pool));
            match spawn_service(&format!("cudalign-serve-{i}"), move || {
                runner_loop(&shared2, &pipe)
            }) {
                Some(t) => runners.push(t),
                // Out of native threads: degrade to the runners that did
                // start; zero runners would never make progress.
                None => break,
            }
        }
        if runners.is_empty() {
            return Err(ServeError::NoRunners);
        }
        Ok(Server { shared, pool, cfg: cfg.pipeline, runners })
    }

    /// The shared worker pool (for utilization snapshots).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Jobs admitted but not yet picked up by a runner.
    pub fn queue_depth(&self) -> usize {
        lock_unpoisoned(&self.shared.jobs).waiting.len()
    }

    /// Merged server totals (see [`ServeStats`]).
    pub fn stats(&self) -> ServeStats {
        lock_unpoisoned(&self.shared.totals).clone()
    }

    /// Admit one job. See [`Server::submit_batch`].
    pub fn submit(&self, req: JobRequest) -> Result<JobHandle, ServeError> {
        self.submit_batch(vec![req])?.into_iter().next().ok_or(ServeError::ShuttingDown)
    }

    /// Admit a batch of jobs, all-or-nothing: if the whole batch does
    /// not fit under `queue_cap`, *nothing* is admitted and the typed
    /// [`ServeError::QueueFull`] asks the caller to back off. Admitted
    /// jobs drain by (priority, shortest-first) — submitting a batch
    /// executes it length-sorted so the striped kernels' lanes stay
    /// full across many small jobs.
    pub fn submit_batch(&self, reqs: Vec<JobRequest>) -> Result<Vec<JobHandle>, ServeError> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let base_handles = {
            let mut q = lock_unpoisoned(&self.shared.jobs);
            // Re-check under the queue lock: `shutdown_impl` sets the
            // flag before draining, so a job admitted here is either
            // seen by that drain or rejected — never queued forever.
            if self.shared.shutdown.load(Ordering::Acquire) {
                return Err(ServeError::ShuttingDown);
            }
            if q.waiting.len() + reqs.len() > self.shared.queue_cap {
                lock_unpoisoned(&self.shared.totals).rejected += 1;
                return Err(ServeError::QueueFull { capacity: self.shared.queue_cap });
            }
            let mut handles = Vec::with_capacity(reqs.len());
            // lint: allow(cancel-coverage): bounded admission of one batch under the queue lock
            for req in reqs {
                let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;
                let job_fp = self.shared_job_fp(&req);
                let slot = Arc::new(JobSlot {
                    id,
                    fingerprint: job_fp,
                    m: req.s0.len(),
                    n: req.s1.len(),
                    priority: req.priority,
                    submitted: self.shared.clock.now(),
                    queued_depth: q.waiting.len() + 1,
                    s0: req.s0,
                    s1: req.s1,
                    ctrl: req.ctrl,
                    report: Mutex::new(None),
                    done: Condvar::new(),
                });
                q.waiting.push(Arc::clone(&slot));
                handles.push(JobHandle { slot });
            }
            let mut totals = lock_unpoisoned(&self.shared.totals);
            totals.submitted += handles.len() as u64;
            totals.queue_peak = totals.queue_peak.max(q.waiting.len());
            drop(totals);
            handles
        };
        self.shared.work.notify_all();
        Ok(base_handles)
    }

    /// The result-cache key for a request: the storage layer's
    /// shape/scoring/grid fingerprint (checkpoint identity, content-blind
    /// by design) folded over both sequences' bytes.
    fn shared_job_fp(&self, req: &JobRequest) -> u64 {
        let cfg_fp = self.cfg.job_fingerprint(req.s0.len(), req.s1.len());
        content_fingerprint(cfg_fp, &req.s0, &req.s1)
    }

    /// Graceful shutdown: stop admitting, resolve queued jobs as
    /// cancelled, let in-flight jobs finish, join the runners, and
    /// return the merged totals. Dropping the server does the same.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_impl();
        let stats = self.stats();
        self.runners.clear();
        stats
    }

    fn shutdown_impl(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        let drained = {
            let mut q = lock_unpoisoned(&self.shared.jobs);
            std::mem::take(&mut q.waiting)
        };
        self.shared.work.notify_all();
        for slot in drained {
            slot.ctrl.cancel();
            resolve_unrun(&self.shared, &slot);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
        // ServiceThread joins on drop.
    }
}

// ---------------------------------------------------------------------------
// Runner side
// ---------------------------------------------------------------------------

/// Pop the next job to run: highest priority first, then shortest
/// (by `max(m, n)`), then submission order.
fn pop_next(q: &mut Vec<Arc<JobSlot>>) -> Option<Arc<JobSlot>> {
    let i = q
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| (Reverse(s.priority), s.m.max(s.n), s.id))
        .map(|(i, _)| i)?;
    Some(q.remove(i))
}

fn runner_loop(shared: &Shared, pipe: &Pipeline) {
    loop {
        let next = {
            let q = lock_unpoisoned(&shared.jobs);
            let mut q = shared
                .work
                .wait_while(q, |q| q.waiting.is_empty() && !shared.shutdown.load(Ordering::Acquire))
                .unwrap_or_else(|e| e.into_inner());
            if shared.shutdown.load(Ordering::Acquire) {
                // Remaining queued jobs are resolved (as cancelled) by
                // `shutdown_impl`, not here.
                return;
            }
            pop_next(&mut q.waiting)
        };
        if let Some(slot) = next {
            run_job(shared, pipe, &slot);
        }
    }
}

/// Open the job's trace with its admission record.
fn open_trace(slot: &JobSlot) -> TraceWriter<Vec<u8>> {
    let mut tracer = TraceWriter::new(Vec::new());
    tracer.record(
        slot.submitted,
        &Event::JobSubmit {
            job: slot.id,
            fingerprint: slot.fingerprint,
            m: slot.m,
            n: slot.n,
            priority: slot.priority,
            queued: slot.queued_depth,
        },
    );
    tracer
}

/// Resolve a job that never ran (cancelled while queued, or at server
/// shutdown): its two-record trace — `job_submit`, `job_end` — is the
/// explicitly-interrupted empty stream the validator accepts.
fn resolve_unrun(shared: &Shared, slot: &JobSlot) {
    let tracer = open_trace(slot);
    let err = match slot.ctrl.check(0) {
        Err(e) => PipelineError::from(e),
        // Shutdown drains uncancelled jobs too; report them cancelled.
        Ok(()) => PipelineError::Cancelled { diagonal: 0 },
    };
    finish_job(shared, slot, tracer, Err(err), false);
}

fn run_job(shared: &Shared, pipe: &Pipeline, slot: &JobSlot) {
    // Cancelled (or past deadline) while queued: resolve without ever
    // touching the pipeline — one tenant's cancellation must not cost
    // the others a pool scope.
    if slot.ctrl.check(0).is_err() {
        resolve_unrun(shared, slot);
        return;
    }

    let mut tracer = open_trace(slot);
    if let Some(hit) = lock_unpoisoned(&shared.cache).get(slot.fingerprint) {
        tracer.record(shared.clock.now(), &Event::JobStart { job: slot.id, cached: true });
        finish_job(shared, slot, tracer, Ok(hit), true);
        return;
    }

    tracer.record(shared.clock.now(), &Event::JobStart { job: slot.id, cached: false });
    let result = {
        let mut obs = Obs::with_clock(Box::new(EpochClock(Arc::clone(&shared.clock))));
        obs.add_recorder(&mut tracer);
        pipe.align_supervised(&slot.s0, &slot.s1, &mut obs, &slot.ctrl)
    };
    if let Ok(r) = &result {
        lock_unpoisoned(&shared.cache).put(slot.fingerprint, r.clone());
    }
    finish_job(shared, slot, tracer, result, false);
}

/// Stamp the terminal `job_end`, fold the job into the merged totals,
/// and publish the report.
fn finish_job(
    shared: &Shared,
    slot: &JobSlot,
    mut tracer: TraceWriter<Vec<u8>>,
    outcome: Result<PipelineResult, PipelineError>,
    cached: bool,
) {
    let t_end = shared.clock.now();
    let seconds = t_end.saturating_sub(slot.submitted).as_secs_f64();
    let mut report = JobReport {
        id: slot.id,
        fingerprint: slot.fingerprint,
        outcome,
        cached,
        trace: String::new(),
        seconds,
    };
    tracer.record(t_end, &Event::JobEnd { job: slot.id, outcome: report.outcome_kind(), seconds });
    report.trace = match tracer.finish() {
        Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
        // Vec sinks cannot fail; keep the report even if one ever does.
        Err(_) => String::new(),
    };

    {
        let mut totals = lock_unpoisoned(&shared.totals);
        match &report.outcome {
            Ok(_) if cached => totals.cache_hits += 1,
            Ok(r) => {
                totals.completed += 1;
                totals.cells += r.stats.total_cells();
                totals.run_seconds += r.stats.total_seconds;
            }
            Err(e) if e.is_interruption() => totals.cancelled += 1,
            Err(_) => totals.failed += 1,
        }
    }
    slot.resolve(report);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::validate_trace;

    fn seq(seed: u64, len: usize) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(state >> 33) as usize % 4]
            })
            .collect()
    }

    fn tiny_server(queue_cap: usize, runners: usize) -> Server {
        let mut cfg = ServeConfig::new(PipelineConfig::for_tests());
        cfg.queue_cap = queue_cap;
        cfg.runners = runners;
        Server::new(cfg).expect("server starts")
    }

    /// Drain order: priority desc, then shortest `max(m, n)`, then id.
    #[test]
    fn queue_pops_by_priority_then_shortest_then_id() {
        fn slot(id: u64, priority: u8, m: usize, n: usize) -> Arc<JobSlot> {
            Arc::new(JobSlot {
                id,
                fingerprint: id,
                m,
                n,
                priority,
                submitted: Duration::ZERO,
                queued_depth: 1,
                s0: Vec::new(),
                s1: Vec::new(),
                ctrl: RunControl::unlimited(),
                report: Mutex::new(None),
                done: Condvar::new(),
            })
        }
        let mut q = vec![
            slot(1, 0, 500, 10),
            slot(2, 0, 40, 60),
            slot(3, 5, 900, 900),
            slot(4, 0, 60, 40),
            slot(5, 5, 100, 100),
        ];
        let order: Vec<u64> = std::iter::from_fn(|| pop_next(&mut q).map(|s| s.id)).collect();
        assert_eq!(order, vec![5, 3, 2, 4, 1], "priority desc, then shortest, then id");
    }

    /// The cache key covers sequence *content*, not just shape: two
    /// same-length pairs must not alias, and argument order matters.
    #[test]
    fn content_fingerprint_separates_same_shape_jobs() {
        let a = seq(1, 64);
        let b = seq(2, 64);
        let c = seq(3, 64);
        let base = content_fingerprint(7, &a, &b);
        assert_ne!(base, content_fingerprint(7, &a, &c), "content must be hashed");
        assert_ne!(base, content_fingerprint(7, &b, &a), "pair order must be hashed");
        assert_ne!(base, content_fingerprint(8, &a, &b), "config fingerprint folds in");
        assert_eq!(base, content_fingerprint(7, &a.clone(), &b.clone()), "deterministic");
    }

    /// Batch admission is all-or-nothing: a batch that does not fit under
    /// `queue_cap` is rejected whole with the typed backpressure error,
    /// and a fitting batch is still admitted afterwards.
    #[test]
    fn oversized_batch_is_rejected_whole() {
        let server = tiny_server(2, 1);
        let big: Vec<JobRequest> =
            (0..3).map(|i| JobRequest::new(seq(10 + i, 48), seq(20 + i, 48))).collect();
        let err = server.submit_batch(big).expect_err("3 > cap 2 must be rejected");
        assert_eq!(err, ServeError::QueueFull { capacity: 2 });
        assert_eq!(server.stats().rejected, 1);
        assert_eq!(server.stats().submitted, 0, "nothing from the batch was admitted");

        let ok: Vec<JobRequest> =
            (0..2).map(|i| JobRequest::new(seq(10 + i, 48), seq(20 + i, 48))).collect();
        let handles = server.submit_batch(ok).expect("fitting batch admits");
        let reports: Vec<JobReport> = handles.iter().map(JobHandle::wait).collect();
        assert!(reports.iter().all(|r| r.outcome.is_ok()), "both jobs complete");
        assert_eq!(server.stats().completed, 2);
    }

    /// A duplicate submission is served from the fingerprint cache: same
    /// scores, `cached` report flag, a run-less trace the validator
    /// accepts, and a cache-hit total.
    #[test]
    fn duplicate_job_is_served_from_the_result_cache() {
        let server = tiny_server(8, 1);
        let (a, b) = (seq(31, 180), seq(32, 180));
        let first = server.submit(JobRequest::new(a.clone(), b.clone())).expect("admit").wait();
        let second = server.submit(JobRequest::new(a.clone(), b.clone())).expect("admit").wait();

        let r1 = first.outcome.as_ref().expect("first run succeeds");
        let r2 = second.outcome.as_ref().expect("cached result returned");
        assert!(!first.cached && second.cached, "second submission hits the cache");
        assert_eq!(first.fingerprint, second.fingerprint);
        assert_eq!(r1.best_score, r2.best_score);
        assert_eq!(r1.transcript, r2.transcript);

        let expect = Pipeline::new(PipelineConfig::for_tests()).align(&a, &b).expect("serial");
        assert_eq!(r1.best_score, expect.best_score, "serve matches serial align");

        let check = validate_trace(&second.trace).expect("cached trace validates");
        assert_eq!(check.jobs, 1);
        assert_eq!(check.records, 3, "job_submit + cached job_start + job_end");
        assert!(second.trace.contains("\"outcome\":\"cached\""));
        assert_eq!(server.stats().cache_hits, 1);
        assert_eq!(server.stats().completed, 1, "only the first submission ran");
    }

    /// A job cancelled while still queued resolves as cancelled without a
    /// pipeline run; its two-record trace passes the validator (the
    /// explicitly-interrupted empty stream).
    #[test]
    fn pre_cancelled_job_resolves_without_running() {
        let server = tiny_server(8, 1);
        let ctrl = RunControl::unlimited();
        ctrl.cancel();
        let report = server
            .submit(JobRequest::new(seq(41, 64), seq(42, 64)).with_control(ctrl))
            .expect("cancelled jobs still admit")
            .wait();
        assert_eq!(
            report.outcome.as_ref().expect_err("must not run").interruption_kind(),
            Some("cancelled")
        );
        assert_eq!(report.outcome_kind(), "cancelled");
        let check = validate_trace(&report.trace).expect("run-less trace validates");
        assert_eq!(check.records, 2, "job_submit + job_end only");
        assert_eq!(server.stats().cancelled, 1);
        assert_eq!(server.stats().completed, 0);
    }

    /// Dropping (or shutting down) a server with queued jobs resolves
    /// them as cancelled instead of leaving waiters hung, and rejects
    /// later submissions with the typed shutdown error.
    #[test]
    fn shutdown_resolves_queued_jobs_and_rejects_new_ones() {
        let server = tiny_server(8, 1);
        // Hold the single runner on a real job, then pile up queued ones.
        let busy = server.submit(JobRequest::new(seq(51, 256), seq(52, 256))).expect("admit");
        let queued: Vec<JobHandle> = server
            .submit_batch(
                (0..3).map(|i| JobRequest::new(seq(60 + i, 96), seq(70 + i, 96))).collect(),
            )
            .expect("queued batch admits");
        let stats = server.shutdown();
        assert_eq!(stats.submitted, 4);

        let busy_report = busy.wait();
        // The in-flight job either finished or was never started before
        // the drain; both are terminal, nothing hangs.
        assert!(busy_report.outcome.is_ok() || busy_report.outcome_kind() == "cancelled");
        for h in &queued {
            let r = h.wait();
            if let Err(e) = &r.outcome {
                assert!(e.is_interruption(), "queued jobs resolve as interruptions: {e}");
            }
        }
    }
}
