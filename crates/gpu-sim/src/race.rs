//! Happens-before race detector for the wavefront engine.
//!
//! Compiled only with the `race-check` feature. The wavefront engine's
//! correctness rests on one ordering argument: blocks of external
//! diagonal `d` read bus cells written by blocks of diagonal `d - 1`, and
//! the [`crate::exec::WorkerPool::scope`] drain between diagonals is the
//! barrier that orders those writes before the reads. This module turns
//! the argument into a runtime check:
//!
//! * Every bus cell (horizontal `H`/`F` bus, vertical `H`/`E` bus, and
//!   the corner table) carries a *last-writer record* — which block (or
//!   border initialisation) wrote it, on which diagonal, from which pool
//!   lane, with which scope-FIFO sequence number (see `exec::trace`).
//! * When block `(r, c)` of diagonal `d` starts, the detector checks each
//!   cell it is about to read against the *expected producer* derived
//!   from the grid: the horizontal segment must have been written by
//!   `(r-1, c)` on diagonal `d-1` (or be border/restored state), the
//!   vertical segment by `(r, c-1)`, the corner by `(r-1, c-1)` two
//!   diagonals back. A mismatched identity is a [`ViolationKind::WrongProducer`];
//!   a matching identity whose *barrier epoch* does not precede the
//!   reader's is a [`ViolationKind::UnorderedRead`].
//! * Two blocks writing one cell within the same barrier interval is a
//!   [`ViolationKind::WriteOverlap`] (the segment-splitting invariant).
//! * The multi-device pipeline tags every border message with its
//!   `(device, chunk)` provenance; a receiver observing the wrong tag
//!   reports a [`ViolationKind::ChannelTag`].
//!
//! Striped-kernel writes need no special modelling: the lane-striped
//! kernel (see [`crate::striped`]) is an implementation detail *inside*
//! one `compute_tile` call. Whether a tile runs scalar, striped, or
//! striped-then-fallback, it still reads its whole bus segments before
//! the call and overwrites them whole by the time it returns, so the
//! per-segment `block_reads`/`block_writes` records around the call (the
//! granularity this detector tracks) describe striped execution exactly;
//! intra-tile lane state lives in kernel-local arrays no other block can
//! observe.
//!
//! Violations accumulate in a process-global sink drained by
//! [`take_report`]; tests that arm faults or assert on the report must
//! serialize behind a shared lock (see `tests/race.rs`). The detector
//! never alters engine behaviour — a run with violations still produces
//! its normal result, so a seeded fault can assert both "the output is
//! unchanged" and "the detector saw it".

use crate::exec;
use std::fmt;
use std::sync::Mutex;

/// What produced the current value of a bus cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Border initialisation, or state restored from a checkpoint.
    Border,
    /// Block `(r, c)` running on its scheduled external diagonal.
    Block {
        /// Block row.
        r: usize,
        /// Block column.
        c: usize,
        /// External diagonal the block ran on.
        diagonal: usize,
    },
    /// The fault-injected early run of a block (see
    /// [`exec::fault::arm_reorder_block`]): its writes are recorded here
    /// but never materialized in the real buses.
    Phantom {
        /// Block row.
        r: usize,
        /// Block column.
        c: usize,
        /// External diagonal the block *should* have run on.
        diagonal: usize,
    },
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Source::Border => write!(f, "border"),
            Source::Block { r, c, diagonal } => write!(f, "block ({r},{c})@d{diagonal}"),
            Source::Phantom { r, c, diagonal } => write!(f, "PHANTOM ({r},{c})@d{diagonal}"),
        }
    }
}

/// Classification of a detected ordering violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A cell's last writer is not the producer the grid schedule names.
    WrongProducer,
    /// The producing write's barrier epoch does not precede the read.
    UnorderedRead,
    /// Two blocks wrote one cell within the same barrier interval.
    WriteOverlap,
    /// A multi-device border message arrived with the wrong
    /// `(device, chunk)` provenance tag.
    ChannelTag,
}

/// One detected violation, with a human-readable account.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What rule was broken.
    pub kind: ViolationKind,
    /// Block row of the reader (or receiving device).
    pub r: usize,
    /// Block column of the reader (or chunk index).
    pub c: usize,
    /// External diagonal of the reader (0 for channel violations).
    pub diagonal: usize,
    /// Full account: cell, expected producer, observed record.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} at ({},{})@d{}: {}", self.kind, self.r, self.c, self.diagonal, self.detail)
    }
}

/// Process-global violation sink. Per-cell state is per-[`Session`]; only
/// confirmed violations cross sessions, so concurrent clean engines (e.g.
/// stage-3 partitions) share this without contention.
static SINK: Mutex<Vec<Violation>> = Mutex::new(Vec::new());

fn sink() -> std::sync::MutexGuard<'static, Vec<Violation>> {
    SINK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Drain and return every violation recorded since the last call.
pub fn take_report() -> Vec<Violation> {
    std::mem::take(&mut *sink())
}

/// Record a multi-device border tag mismatch (receiver expected the
/// border of `(expect_device, expect_chunk)`, got `(got_device, got_chunk)`).
pub fn report_channel_tag(
    expect_device: usize,
    expect_chunk: usize,
    got_device: usize,
    got_chunk: usize,
) {
    sink().push(Violation {
        kind: ViolationKind::ChannelTag,
        r: expect_device,
        c: expect_chunk,
        diagonal: 0,
        detail: format!(
            "border message tagged (device {got_device}, chunk {got_chunk}), \
             expected (device {expect_device}, chunk {expect_chunk})"
        ),
    });
}

/// Last-writer record of one bus cell.
#[derive(Debug, Clone, Copy)]
struct WriteRec {
    source: Source,
    /// Barrier epoch: `diagonal + 1` for block writes, the session's
    /// resume diagonal for border/restored cells. A read on diagonal `d`
    /// is ordered iff the record's epoch is `<= d`.
    epoch: usize,
    /// Pool lane that performed the write (diagnostic tag).
    lane: usize,
    /// Scope-FIFO sequence of the producing job (diagnostic tag).
    seq: u64,
}

struct Inner {
    /// Diagonal the engine started from (0 for a fresh run); everything
    /// on earlier diagonals is border/restored state.
    base: usize,
    /// Block grid shape, for corner-table indexing.
    block_rows: usize,
    block_cols: usize,
    /// Last writer per horizontal-bus cell (one per DP column).
    h: Vec<WriteRec>,
    /// Last writer per vertical-bus cell (one per DP row).
    v: Vec<WriteRec>,
    /// Last writer per corner cell, `(block_rows+1) x (block_cols+1)`.
    corners: Vec<WriteRec>,
    /// Column-strip plan boundaries when the strip scheduler drives this
    /// session (empty = diagonal-barrier mode).
    strip_bounds: Vec<usize>,
    /// Shadow of each strip's published-row counter. A read that crosses
    /// a strip boundary must be covered by the left strip's publish; the
    /// engine updates this shadow *before* the real counter, so a
    /// consumer the real protocol would admit is always covered here.
    strip_published: Vec<usize>,
}

/// Per-engine-run detector state. Create one per
/// `wavefront::run_resumable_pooled` invocation; blocks report their bus
/// reads and writes through it and violations land in the global sink.
pub struct Session {
    inner: Mutex<Inner>,
}

impl Session {
    /// A session for a grid of `block_rows x block_cols` blocks over an
    /// `m x n` DP matrix, starting (or resuming) at diagonal `base`.
    pub fn new(m: usize, n: usize, block_rows: usize, block_cols: usize, base: usize) -> Session {
        let border = WriteRec { source: Source::Border, epoch: base, lane: 0, seq: 0 };
        Session {
            inner: Mutex::new(Inner {
                base,
                block_rows,
                block_cols,
                h: vec![border; n],
                v: vec![border; m],
                corners: vec![border; (block_rows + 1) * (block_cols + 1)],
                strip_bounds: Vec::new(),
                strip_published: Vec::new(),
            }),
        }
    }

    /// Switch this session to the column-strip protocol: `bounds` are the
    /// plan's strip boundaries (length `strips + 1`), `published` the
    /// initial per-strip published-row counters (non-zero after a resume,
    /// where checkpointed rows count as already handed off).
    pub fn set_strip_plan(&self, bounds: &[usize], published: &[usize]) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.strip_bounds = bounds.to_vec();
        inner.strip_published = published.to_vec();
    }

    /// Shadow a strip publish: rows `0..rows` of strip `s` are now
    /// visible to the right neighbour. Monotone, like the real counter.
    pub fn strip_publish(&self, s: usize, rows: usize) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(p) = inner.strip_published.get_mut(s) {
            if rows > *p {
                *p = rows;
            }
        }
    }

    /// Check the reads block `(r, c)` of diagonal `d` performs before it
    /// computes: its horizontal segment (`len_h` cells from absolute
    /// column `h0`), vertical segment (`len_v` cells from absolute row
    /// `v0`) and corner.
    pub fn block_reads(
        &self,
        r: usize,
        c: usize,
        d: usize,
        (h0, len_h): (usize, usize),
        (v0, len_v): (usize, usize),
    ) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let base = inner.base;
        // The grid's scheduled producers. A first-row/column block reads
        // border state; so does any block whose producer ran before the
        // resume point (its writes were restored from the checkpoint).
        let expect_h = if r == 0 || d == base {
            Source::Border
        } else {
            Source::Block { r: r - 1, c, diagonal: d - 1 }
        };
        let expect_v = if c == 0 || d == base {
            Source::Border
        } else {
            Source::Block { r, c: c - 1, diagonal: d - 1 }
        };
        let expect_corner = if r == 0 || c == 0 || d < base + 2 {
            Source::Border
        } else {
            Source::Block { r: r - 1, c: c - 1, diagonal: d - 2 }
        };
        let mut pending = Vec::new();
        for (i, rec) in inner.h.iter().enumerate().skip(h0).take(len_h) {
            check_read(&mut pending, "hbus", i, rec, expect_h, r, c, d);
        }
        for (i, rec) in inner.v.iter().enumerate().skip(v0).take(len_v) {
            check_read(&mut pending, "vbus", i, rec, expect_v, r, c, d);
        }
        let ci = r * (inner.block_cols + 1) + c;
        if let Some(rec) = inner.corners.get(ci) {
            check_read(&mut pending, "corner", ci, rec, expect_corner, r, c, d);
        }
        // Strip protocol: a block on its strip's first column consumes the
        // left strip's border, which is only handed off once that strip
        // publishes rows covering `r + 1`. The shadow counter is updated
        // before the real one, so an uncovered read means the engine let a
        // consumer through before its producer's publish.
        if !inner.strip_bounds.is_empty() && c > 0 && d > base {
            let s = inner.strip_bounds.iter().skip(1).position(|&b| c < b).unwrap_or(0);
            if s > 0 && inner.strip_bounds[s] == c {
                let covered = inner.strip_published.get(s - 1).copied().unwrap_or(0);
                if covered < r + 1 {
                    pending.push(Violation {
                        kind: ViolationKind::UnorderedRead,
                        r,
                        c,
                        diagonal: d,
                        detail: format!(
                            "strip hand-off: block ({r},{c}) consumes the border of strip \
                             {} with only {covered} row(s) published (needs {})",
                            s - 1,
                            r + 1
                        ),
                    });
                }
            }
        }
        drop(inner);
        if !pending.is_empty() {
            sink().append(&mut pending);
        }
    }

    /// Record the writes block `(r, c)` of diagonal `d` commits: its
    /// horizontal and vertical segments and the corner below-right of it.
    /// `phantom` marks the fault-injected early run, whose writes exist
    /// only in the detector.
    pub fn block_writes(
        &self,
        r: usize,
        c: usize,
        d: usize,
        (h0, len_h): (usize, usize),
        (v0, len_v): (usize, usize),
        phantom: bool,
    ) {
        let (lane, seq) = exec::trace::current();
        let source = if phantom {
            Source::Phantom { r, c, diagonal: d }
        } else {
            Source::Block { r, c, diagonal: d }
        };
        let rec = WriteRec { source, epoch: d + 1, lane, seq };
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut pending = Vec::new();
        for i in h0..(h0 + len_h).min(inner.h.len()) {
            check_write(&mut pending, "hbus", i, &inner.h[i], &rec);
            inner.h[i] = rec;
        }
        for i in v0..(v0 + len_v).min(inner.v.len()) {
            check_write(&mut pending, "vbus", i, &inner.v[i], &rec);
            inner.v[i] = rec;
        }
        if r < inner.block_rows && c < inner.block_cols {
            let ci = (r + 1) * (inner.block_cols + 1) + (c + 1);
            check_write(&mut pending, "corner", ci, &inner.corners[ci], &rec);
            inner.corners[ci] = rec;
        }
        drop(inner);
        if !pending.is_empty() {
            sink().append(&mut pending);
        }
    }
}

/// The happens-before check for one cell read: last writer must be the
/// scheduled producer, and its barrier epoch must precede the reader's
/// diagonal (epoch `<= d` means the write was sealed by an earlier
/// scope drain — the FIFO pool's barrier).
#[allow(clippy::too_many_arguments)]
fn check_read(
    pending: &mut Vec<Violation>,
    bus: &str,
    idx: usize,
    rec: &WriteRec,
    expect: Source,
    r: usize,
    c: usize,
    d: usize,
) {
    if rec.source != expect {
        pending.push(Violation {
            kind: ViolationKind::WrongProducer,
            r,
            c,
            diagonal: d,
            detail: format!(
                "{bus}[{idx}] last written by {} (lane {}, seq {}), expected {}",
                rec.source, rec.lane, rec.seq, expect
            ),
        });
    } else if rec.epoch > d {
        pending.push(Violation {
            kind: ViolationKind::UnorderedRead,
            r,
            c,
            diagonal: d,
            detail: format!(
                "{bus}[{idx}] write by {} has epoch {} — not sealed by a barrier before \
                 diagonal {d}",
                rec.source, rec.epoch
            ),
        });
    }
}

/// The exclusivity check for one cell write: nobody else may have written
/// it within the same barrier interval (same epoch).
fn check_write(
    pending: &mut Vec<Violation>,
    bus: &str,
    idx: usize,
    old: &WriteRec,
    new: &WriteRec,
) {
    if old.epoch == new.epoch && old.source != Source::Border {
        pending.push(Violation {
            kind: ViolationKind::WriteOverlap,
            r: 0,
            c: 0,
            diagonal: new.epoch.saturating_sub(1),
            detail: format!(
                "{bus}[{idx}] written by both {} and {} within one barrier interval",
                old.source, new.source
            ),
        });
    }
}
