#![warn(missing_docs)]

//! # baselines
//!
//! Comparator implementations for the paper's evaluation:
//!
//! * [`quadratic`] — textbook Smith-Waterman with full traceback matrix
//!   (quadratic space). This is what GPU proposals like \[6\]/\[12\] in the
//!   paper's Table I do, and why they cannot align megabase sequences.
//! * [`mm_local`] — a sequential *linear-space* local aligner: forward
//!   scan for the end point, reverse scan for the start point, classic
//!   Myers-Miller for the alignment. The single-core CPU reference.
//! * [`fastlsa`] — FastLSA (Driga et al.): divide-and-conquer with `k`
//!   cached grid rows, trading memory for ~`1 + 1/k` recomputation
//!   instead of Myers-Miller's ~2x (Section III-A of the paper).
//! * [`mod@zalign`] — a Z-align-style multi-core CPU aligner (Boukerche et
//!   al., reference \[19\] of the paper), reproduced as a row-band *pipelined wavefront* over `p`
//!   workers with linear memory per worker. The paper's Table VI
//!   comparator: its runtime scales with core count, so the CUDAlign
//!   speedup shape (hundreds of times vs 1 core, ~15-20x vs a cluster)
//!   can be regenerated.

pub mod fastlsa;
pub mod mm_local;
pub mod quadratic;
pub mod zalign;

pub use fastlsa::{fastlsa_global, fastlsa_local, FastLsaResult};
pub use mm_local::mm_local_align;
pub use quadratic::quadratic_align;
pub use zalign::{zalign, ZalignResult};
