#![warn(missing_docs)]

//! # sw-core
//!
//! Sequence-alignment fundamentals shared by every other crate in the
//! CUDAlign 2.0 reproduction:
//!
//! * [`scoring`] — match/mismatch/affine-gap parameters (Gotoh model),
//! * [`sequence`] — validated DNA sequences and views,
//! * [`transcript`] — edit transcripts (alignments), their statistics and
//!   validity checks,
//! * [`full`] — quadratic-space Smith-Waterman / Needleman-Wunsch with
//!   traceback, including the *edge-typed* global variant used to solve
//!   partitions whose boundaries fall inside a gap run,
//! * [`linear`] — linear-space forward (`CC`/`DD`) and reverse (`RR`/`SS`)
//!   vector computations,
//! * [`semiglobal`] — overlap (semi-global) alignment, the third flavour
//!   of Section II's taxonomy,
//! * [`matching`] — the Myers-Miller matching procedure (Formula 4 of the
//!   paper) in both the classic *argmax* form and the *goal-based* form
//!   introduced by CUDAlign 2.0,
//! * [`mm`] — Myers-Miller divide-and-conquer global alignment in linear
//!   space (classic recursive form).
//!
//! Everything in this crate is sequential; the parallel execution engines
//! live in `gpu-sim` and `cudalign`.

pub mod full;
pub mod linear;
pub mod matching;
pub mod mm;
pub mod scoring;
pub mod semiglobal;
pub mod sequence;
pub mod transcript;

pub use scoring::{Score, Scoring, NEG_INF};
pub use sequence::Sequence;
pub use transcript::{AlignmentStats, EditOp, Transcript};
