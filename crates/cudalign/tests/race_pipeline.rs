//! Full-pipeline race-detector run (compiled only with `--features
//! race-check`): all six stages, with stage 1 driven by the column-strip
//! scheduler, must report *zero* violations — the strip publish protocol
//! provides the same happens-before edges the per-diagonal barrier did.

#![cfg(feature = "race-check")]

use cudalign::{Pipeline, PipelineConfig};
use gpu_sim::race;

fn dna(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            b"ACGT"[(x >> 33) as usize & 3]
        })
        .collect()
}

#[test]
fn clean_pipeline_with_strip_scheduler_reports_nothing() {
    let _ = race::take_report();
    let (a, b) = (dna(7, 300), dna(19, 280));
    let mut cfg = PipelineConfig::for_tests();
    // 4 workers over the 4-column test grid: stage 1 runs four
    // single-column strips with point-to-point border publishes.
    cfg.workers = 4;
    let res = Pipeline::new(cfg).align(&a, &b).expect("pipeline run");
    assert!(res.best_score > 0);
    res.transcript
        .validate(&a[res.start.0..res.end.0], &b[res.start.1..res.end.1])
        .expect("valid alignment");
    let report = race::take_report();
    assert!(
        report.is_empty(),
        "clean strip-scheduled pipeline reported violations:\n{}",
        report.iter().map(|v| format!("  {v}\n")).collect::<String>()
    );
}
