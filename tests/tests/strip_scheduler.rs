//! Work-stealing and starvation behaviour of the column-strip scheduler,
//! plus visibility of its protocol events in the `--trace` NDJSON.
//!
//! A deliberately ragged plan — one strip 8× wider than the rest — forces
//! the runner that drew the fat strip to fall behind while its peer
//! drains the remaining strips by whole-strip stealing. The run must
//! still be bit-identical to serial, nobody may starve, and every steal
//! must surface as a `strip_steal` record that `validate_trace` accepts.

use cudalign::obs::validate_trace;
use cudalign::{Obs, TraceWriter};
use gpu_sim::wavefront::{run_plain, run_pooled_with_plan, RegionJob};
use gpu_sim::{GridSpec, Mode, StripEvent, StripPlan, WorkerPool};
use std::ops::ControlFlow;
use sw_core::scoring::Scoring;

fn dna(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            b"ACGT"[(x >> 33) as usize & 3]
        })
        .collect()
}

/// 16 block columns, 2 workers, 9 strips: one 8-column strip plus eight
/// single-column strips.
fn ragged_setup(a: &[u8], b: &[u8]) -> (RegionJob<'static>, StripPlan) {
    // Leak the sequences: RegionJob borrows, and the tests build the job
    // once per run. (Test-only; a few hundred bytes.)
    let a: &'static [u8] = Box::leak(a.to_vec().into_boxed_slice());
    let b: &'static [u8] = Box::leak(b.to_vec().into_boxed_slice());
    let job = RegionJob {
        a,
        b,
        scoring: Scoring::paper(),
        mode: Mode::Local,
        grid: GridSpec { blocks: 16, threads: 2, alpha: 2 },
        workers: 2,
        watch: None,
    };
    let mut bounds = vec![0usize, 8];
    bounds.extend(9..=16);
    (job, StripPlan { bounds, batch_rows: 4 })
}

#[test]
fn ragged_plan_steals_whole_strips_without_starvation() {
    let (job, plan) = ragged_setup(&dna(3, 240), &dna(5, 320));
    let serial = run_plain(&RegionJob { workers: 1, ..job });

    let pool = WorkerPool::new(2);
    let res = run_pooled_with_plan(&pool, &job, &mut gpu_sim::NoObserver, &plan)
        .expect("no worker panic");

    // Bit-identical to serial despite the ragged schedule.
    assert_eq!(res.best, serial.best);
    assert_eq!(res.cells, serial.cells);
    assert_eq!(res.hbus, serial.hbus);
    assert_eq!(res.vbus, serial.vbus);

    let stats = res.strip.expect("strip stats present");
    let strips = plan.strips();
    assert_eq!(stats.strips, strips);
    let runners = stats.runner_blocks.len();
    assert_eq!(runners, 2, "two workers, two runners");

    // Every strip is claimed exactly once; each runner's home strip is
    // pre-claimed, every later claim is a steal, so a completed run
    // records exactly strips - runners steals.
    assert_eq!(
        stats.steals as usize,
        strips - runners,
        "every claim past the two home strips is a steal"
    );

    // Starvation floor: runner i owns strip i from launch and only its
    // claimant may compute a strip, so each runner computes at least its
    // whole home strip — runner 0 the fat 8-column strip, runner 1 a
    // single-column strip.
    let br = serial.layout.block_rows;
    let total: u64 = stats.runner_blocks.iter().sum();
    assert_eq!(total, (br * serial.layout.block_cols) as u64, "every block computed once");
    assert!(
        stats.runner_blocks[0] >= (8 * br) as u64,
        "runner 0 starved: {} blocks (< its {}-block home strip)",
        stats.runner_blocks[0],
        8 * br
    );
    assert!(
        stats.runner_blocks[1] >= br as u64,
        "runner 1 starved: {} blocks (< its {br}-block home strip)",
        stats.runner_blocks[1]
    );
    assert!(stats.batches_published > 0, "point-to-point publishes must have occurred");
}

/// Bridges engine strip events into the observability layer the way
/// stage 1 does, so the NDJSON they produce can be schema-checked.
struct TraceBridge<'s, 'o> {
    obs: &'s mut Obs<'o>,
}

impl gpu_sim::WavefrontObserver for TraceBridge<'_, '_> {
    fn on_block(
        &mut self,
        _: &gpu_sim::BlockCoords,
        _: &gpu_sim::TileOutcome,
        _: &[gpu_sim::CellHF],
        _: &[gpu_sim::CellHE],
    ) -> ControlFlow<()> {
        ControlFlow::Continue(())
    }

    fn on_strip_event(&mut self, event: &StripEvent) {
        match *event {
            StripEvent::Claimed { runner, strip, stolen } => {
                self.obs.emit(cudalign::obs::Event::StripSteal {
                    stage: 1,
                    worker: runner,
                    strip,
                    stolen,
                });
            }
            StripEvent::Published { runner, strip, rows_done, rows_total } => {
                self.obs.emit(cudalign::obs::Event::StripProgress {
                    stage: 1,
                    worker: runner,
                    strip,
                    rows_done,
                    rows_total,
                });
            }
        }
    }
}

#[test]
fn every_steal_is_visible_in_validated_trace_ndjson() {
    let (job, plan) = ragged_setup(&dna(7, 240), &dna(11, 320));
    let pool = WorkerPool::new(2);

    let mut tracer = TraceWriter::new(Vec::new());
    let stats = {
        let mut obs = Obs::new();
        obs.add_recorder(&mut tracer);
        obs.emit(cudalign::obs::Event::RunBegin {
            m: job.a.len(),
            n: job.b.len(),
            total_diagonals: 1,
            resumed_from_diagonal: 0,
        });
        obs.emit(cudalign::obs::Event::StageBegin { stage: 1 });
        let res = {
            let mut bridge = TraceBridge { obs: &mut obs };
            run_pooled_with_plan(&pool, &job, &mut bridge, &plan).expect("no worker panic")
        };
        let stats = res.strip.expect("strip stats present");
        obs.emit(cudalign::obs::Event::StageEnd { stage: 1, seconds: 0.0, cells: res.cells });
        obs.emit(cudalign::obs::Event::RunEnd { seconds: 0.0, best_score: 0 });
        stats
    };

    let text = String::from_utf8(tracer.finish().expect("trace writes succeed")).unwrap();
    let check = validate_trace(&text).expect("schema-valid trace");
    assert!(check.ended);

    // Every claim and every steal crossed into the NDJSON, and the
    // schema checker counted them.
    assert_eq!(check.strip_claims, stats.strips, "one claim record per strip");
    assert_eq!(check.strip_steals as u64, stats.steals, "one steal record per steal");
    assert_eq!(
        check.strip_progress as u64, stats.batches_published,
        "one progress record per published batch"
    );
    assert!(check.strip_steals > 0, "the ragged plan must actually steal");
}

/// The real pipeline path: a traced `for_tests` run (2 workers over a
/// 4-column grid) claims its two home strips and publishes batches, and
/// those records appear in the `--trace` NDJSON via `Stage1Observer`.
#[test]
fn pipeline_trace_carries_strip_scheduler_records() {
    use integration_tests::edited_pair;
    let (a, b) = edited_pair(83, 400, 15);
    let mut tracer = TraceWriter::new(Vec::new());
    {
        let mut obs = Obs::new();
        obs.add_recorder(&mut tracer);
        cudalign::Pipeline::new(cudalign::PipelineConfig::for_tests())
            .align_observed(&a, &b, &mut obs)
            .expect("pipeline run");
    }
    let text = String::from_utf8(tracer.finish().unwrap()).unwrap();
    let check = validate_trace(&text).expect("schema-valid trace");
    assert!(check.ended);
    assert!(
        check.strip_claims >= 2,
        "stage 1 with 2 workers must claim at least two strips, saw {}",
        check.strip_claims
    );
    assert!(check.strip_progress > 0, "stage 1 must publish strip batches");
}
