//! Sequential linear-space local alignment.
//!
//! The classic three-phase recipe (Myers-Miller applied to local
//! alignment): a forward linear-memory scan finds the best score and its
//! end point; a second scan over the *reversed* prefixes finds the start
//! point (the reversed problem's best end point); classic Myers-Miller
//! then aligns the delimited global subproblem. This is the one-core CPU
//! reference CUDAlign is compared against.

use sw_core::full::sw_local_score;
use sw_core::mm::{mm_align_with_stats, MmStats};
use sw_core::scoring::{Score, Scoring};
use sw_core::transcript::{EdgeState, Transcript};

/// Result of the linear-space local aligner.
#[derive(Debug, Clone)]
pub struct MmLocalResult {
    /// Optimal score (0 = empty alignment).
    pub score: Score,
    /// Start node.
    pub start: (usize, usize),
    /// End node.
    pub end: (usize, usize),
    /// The alignment.
    pub transcript: Transcript,
    /// DP cells processed across all three phases.
    pub cells: u64,
}

/// Find the start point of an optimal alignment ending at `end`: run the
/// forward scan on the reversed suffix-pair; the reversed problem's best
/// end point is the original start.
fn find_start(a: &[u8], b: &[u8], end: (usize, usize), scoring: &Scoring) -> (usize, usize) {
    let a_rev: Vec<u8> = a[..end.0].iter().rev().copied().collect();
    let b_rev: Vec<u8> = b[..end.1].iter().rev().copied().collect();
    let (_, rev_end) = sw_local_score(&a_rev, &b_rev, scoring);
    (end.0 - rev_end.0, end.1 - rev_end.1)
}

/// Align in linear space, sequentially.
pub fn mm_local_align(a: &[u8], b: &[u8], scoring: &Scoring) -> MmLocalResult {
    let (score, end) = sw_local_score(a, b, scoring);
    let mut cells = (a.len() * b.len()) as u64;
    if score <= 0 {
        return MmLocalResult {
            score: 0,
            start: (0, 0),
            end: (0, 0),
            transcript: Transcript::new(),
            cells,
        };
    }
    let start = find_start(a, b, end, scoring);
    cells += (end.0 * end.1) as u64;
    let mut stats = MmStats::default();
    let (g, transcript) = mm_align_with_stats(
        &a[start.0..end.0],
        &b[start.1..end.1],
        scoring,
        EdgeState::Diagonal,
        EdgeState::Diagonal,
        &mut stats,
    );
    cells += stats.total_cells();
    debug_assert_eq!(g, score, "global alignment of the delimited span must attain the optimum");
    MmLocalResult { score, start, end, transcript, cells }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_core::full::sw_local_aligned;

    fn lcg(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize & 3]
            })
            .collect()
    }

    #[test]
    fn matches_quadratic_reference() {
        let a = lcg(1, 300);
        let mut b = a.clone();
        b.drain(100..140);
        for i in (3..b.len()).step_by(31) {
            b[i] = b"ACGT"[(i / 31) % 4];
        }
        let r = mm_local_align(&a, &b, &Scoring::paper());
        let reference = sw_local_aligned(&a, &b, &Scoring::paper()).unwrap();
        assert_eq!(r.score, reference.score);
        assert_eq!(r.end, reference.end);
        r.transcript.validate(&a[r.start.0..r.end.0], &b[r.start.1..r.end.1]).unwrap();
        assert_eq!(
            r.transcript.score(&a[r.start.0..r.end.0], &b[r.start.1..r.end.1], &Scoring::paper()),
            r.score
        );
    }

    #[test]
    fn empty_and_unrelated() {
        let r = mm_local_align(b"", b"ACGT", &Scoring::paper());
        assert_eq!(r.score, 0);
        assert!(r.transcript.is_empty());
    }

    #[test]
    fn start_point_is_consistent() {
        let a = lcg(2, 150);
        let b = lcg(3, 150);
        let r = mm_local_align(&a, &b, &Scoring::paper());
        if r.score > 0 {
            assert!(r.start.0 <= r.end.0 && r.start.1 <= r.end.1);
            let g = sw_core::linear::global_score(
                &a[r.start.0..r.end.0],
                &b[r.start.1..r.end.1],
                &Scoring::paper(),
                EdgeState::Diagonal,
                EdgeState::Diagonal,
            );
            assert_eq!(g, r.score);
        }
    }
}
