//! The paper's published evaluation numbers, as data.
//!
//! These constants drive two things: the side-by-side "paper" columns in
//! the `repro` reports, and the model-validation tests that check the
//! GTX 285 device model reproduces the paper's measured runtimes from
//! first principles (cell counts and flushed bytes), without any
//! simulation.

/// One row of the paper's Tables II-V (per-pair numbers).
#[derive(Debug, Clone, Copy)]
pub struct PaperPairRow {
    /// Registry key.
    pub key: &'static str,
    /// DP matrix cells (Table III "Cells").
    pub cells: f64,
    /// Optimal score (Table III).
    pub score: i64,
    /// Optimal alignment length (Table III).
    pub length: u64,
    /// Gap columns (Table III).
    pub gaps: u64,
    /// Stage-1 time without flushing, seconds (Table IV).
    pub stage1_noflush_s: f64,
    /// SRA used (Table IV), bytes.
    pub sra_bytes: u64,
    /// Stage-1 time with flushing, seconds (Table IV).
    pub stage1_flush_s: f64,
    /// Stage-1 MCUPS with flushing (Table IV).
    pub stage1_flush_mcups: f64,
    /// Per-stage times in seconds (Table V): stages 1, 2, 3, 4, 5+6.
    pub stage_seconds: [f64; 5],
    /// Total time (Table V).
    pub total_s: f64,
}

/// Tables II-V of the paper.
pub const PAPER_PAIRS: &[PaperPairRow] = &[
    PaperPairRow {
        key: "162Kx172K",
        cells: 2.79e10,
        score: 18,
        length: 18,
        gaps: 0,
        stage1_noflush_s: 1.4,
        sra_bytes: 5 << 20,
        stage1_flush_s: 1.5,
        stage1_flush_mcups: 18678.0,
        stage_seconds: [1.5, 0.05, 0.05, 0.05, 0.05],
        total_s: 1.8,
    },
    PaperPairRow {
        key: "543Kx536K",
        cells: 2.91e11,
        score: 48,
        length: 92,
        gaps: 0,
        stage1_noflush_s: 12.9,
        sra_bytes: 50 << 20,
        stage1_flush_s: 13.6,
        stage1_flush_mcups: 21419.0,
        stage_seconds: [13.6, 0.05, 0.05, 0.05, 0.05],
        total_s: 13.9,
    },
    PaperPairRow {
        key: "1044Kx1073K",
        cells: 1.12e12,
        score: 88_353,
        length: 471_858,
        gaps: 14_021,
        stage1_noflush_s: 48.3,
        sra_bytes: 250 << 20,
        stage1_flush_s: 51.6,
        stage1_flush_mcups: 21706.0,
        stage_seconds: [51.6, 3.1, 1.0, 5.4, 0.1],
        total_s: 61.6,
    },
    PaperPairRow {
        key: "3147Kx3283K",
        cells: 1.03e13,
        score: 4_226,
        length: 14_554,
        gaps: 891,
        stage1_noflush_s: 436.0,
        sra_bytes: 1 << 30,
        stage1_flush_s: 448.0,
        stage1_flush_mcups: 23035.0,
        stage_seconds: [448.0, 0.1, 0.05, 0.3, 0.05],
        total_s: 449.0,
    },
    PaperPairRow {
        key: "5227Kx5229K",
        cells: 2.73e13,
        score: 5_220_960,
        length: 5_229_192,
        gaps: 2_430,
        stage1_noflush_s: 1147.0,
        sra_bytes: 3 << 30,
        stage1_flush_s: 1185.0,
        stage1_flush_mcups: 23068.0,
        stage_seconds: [1185.0, 65.9, 20.3, 47.6, 1.9],
        total_s: 1321.0,
    },
    PaperPairRow {
        key: "7146Kx5227K",
        cells: 3.74e13,
        score: 172,
        length: 565,
        gaps: 18,
        stage1_noflush_s: 1568.0,
        sra_bytes: 3 << 30,
        stage1_flush_s: 1604.0,
        stage1_flush_mcups: 23282.0,
        stage_seconds: [1604.0, 0.05, 0.05, 0.05, 0.05],
        total_s: 1605.0,
    },
    PaperPairRow {
        key: "23012Kx24544K",
        cells: 5.65e14,
        score: 9_063,
        length: 9_107,
        gaps: 6,
        stage1_noflush_s: 23_620.0,
        sra_bytes: 10 << 30,
        stage1_flush_s: 23_750.0,
        stage1_flush_mcups: 23780.0,
        stage_seconds: [23_750.0, 0.3, 0.05, 0.7, 0.05],
        total_s: 23_755.0,
    },
    PaperPairRow {
        key: "32799Kx46944K",
        cells: 1.54e15,
        score: 27_206_434,
        length: 33_583_457,
        gaps: 1_371_283,
        stage1_noflush_s: 64_507.0,
        sra_bytes: 50 << 30,
        stage1_flush_s: 65_153.0,
        stage1_flush_mcups: 23_632.0,
        stage_seconds: [65_153.0, 805.0, 236.0, 376.0, 9.0],
        total_s: 66_579.0,
    },
];

/// Look up a pair row by key.
pub fn paper_pair(key: &str) -> Option<&'static PaperPairRow> {
    PAPER_PAIRS.iter().find(|r| r.key == key)
}

/// One row of the paper's Table VII (chromosome SRA sweep; seconds).
#[derive(Debug, Clone, Copy)]
pub struct PaperSweepRow {
    /// SRA size in GB.
    pub sra_gb: u64,
    /// Stage times 1..6.
    pub stage_seconds: [f64; 6],
    /// Sum.
    pub sum_s: f64,
    /// Table VIII: crosspoints after stage 2 / stage 3.
    pub l2: usize,
    /// `|L3|`.
    pub l3: usize,
    /// Largest partition height after stage 3.
    pub h_max: usize,
    /// Largest partition width after stage 3.
    pub w_max: usize,
    /// Effective stage-3 blocks (Table VIII `B3`).
    pub b3: usize,
}

/// Tables VII + VIII of the paper (chromosome pair).
pub const PAPER_SRA_SWEEP: &[PaperSweepRow] = &[
    PaperSweepRow {
        sra_gb: 10,
        stage_seconds: [64_634.0, 1721.0, 126.0, 8211.0, 5.23, 5.17],
        sum_s: 74_702.0,
        l2: 30,
        l3: 603,
        h_max: 74_956,
        w_max: 56_320,
        b3: 60,
    },
    PaperSweepRow {
        sra_gb: 20,
        stage_seconds: [64_773.0, 1015.0, 111.0, 2098.0, 5.37, 5.23],
        sum_s: 68_008.0,
        l2: 58,
        l3: 2338,
        h_max: 28_347,
        w_max: 14_336,
        b3: 30,
    },
    PaperSweepRow {
        sra_gb: 30,
        stage_seconds: [64_887.0, 851.0, 144.0, 974.0, 5.18, 5.00],
        sum_s: 66_866.0,
        l2: 87,
        l3: 5014,
        h_max: 20_675,
        w_max: 6_656,
        b3: 26,
    },
    PaperSweepRow {
        sra_gb: 40,
        stage_seconds: [65_039.0, 818.0, 187.0, 525.0, 5.36, 5.52],
        sum_s: 66_580.0,
        l2: 115,
        l3: 9283,
        h_max: 17_607,
        w_max: 3_684,
        b3: 14,
    },
    PaperSweepRow {
        sra_gb: 50,
        stage_seconds: [65_153.0, 805.0, 236.0, 376.0, 4.35, 5.02],
        sum_s: 66_579.0,
        l2: 144,
        l3: 12_986,
        h_max: 16_583,
        w_max: 2_624,
        b3: 10,
    },
];

/// The paper's Table X: chromosome alignment composition.
pub struct PaperComposition {
    /// Matches and their fraction.
    pub matches: (u64, f64),
    /// Mismatches.
    pub mismatches: (u64, f64),
    /// Gap openings.
    pub gap_openings: (u64, f64),
    /// Gap extensions.
    pub gap_extensions: (u64, f64),
}

/// Table X.
pub const PAPER_COMPOSITION: PaperComposition = PaperComposition {
    matches: (31_696_101, 0.944),
    mismatches: (516_073, 0.015),
    gap_openings: (66_294, 0.002),
    gap_extensions: (1_304_989, 0.039),
};

/// Table IX: the orthogonal-execution gain the paper measured in Stage 4.
pub const PAPER_STAGE4_GAIN: f64 = 0.25;

/// Table VI: the paper's speedups over Z-align.
pub const PAPER_SPEEDUP_1CORE_MAX: f64 = 702.22;
/// Max speedup vs the 64-core cluster.
pub const PAPER_SPEEDUP_64CORE_MAX: f64 = 19.52;

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceModel;

    /// The device model must reproduce the paper's measured Stage-1
    /// runtimes from cell counts and flushed bytes alone — this is the
    /// calibration check behind every model column in the reports.
    #[test]
    fn model_reproduces_paper_stage1_times() {
        let device = DeviceModel::gtx285();
        for row in PAPER_PAIRS {
            // Sub-second launch overheads dominate the tiniest pair; the
            // asymptotic model is what matters for everything >= 10^11.
            let tolerance = if row.cells < 1e11 { 0.20 } else { 0.08 };
            // Without flushing: pure compute.
            let t = device.stage_seconds(row.cells as u64, 0);
            let err = (t - row.stage1_noflush_s).abs() / row.stage1_noflush_s;
            assert!(
                err < tolerance,
                "{}: model {t:.1}s vs paper {} ({:.0}% off)",
                row.key,
                row.stage1_noflush_s,
                err * 100.0
            );
            // With flushing: compute + 13 s/GB.
            let t = device.stage_seconds(row.cells as u64, row.sra_bytes);
            let err = (t - row.stage1_flush_s).abs() / row.stage1_flush_s;
            assert!(
                err < tolerance,
                "{}: flush model {t:.1}s vs paper {} ({:.0}% off)",
                row.key,
                row.stage1_flush_s,
                err * 100.0
            );
        }
    }

    /// The paper's own flush overhead is ~1% for large pairs; the model's
    /// flush term reproduces that ordering.
    #[test]
    fn flush_overhead_is_small_for_large_pairs() {
        let device = DeviceModel::gtx285();
        let big = paper_pair("32799Kx46944K").unwrap();
        let t0 = device.stage_seconds(big.cells as u64, 0);
        let t1 = device.stage_seconds(big.cells as u64, big.sra_bytes);
        let overhead = (t1 - t0) / t0;
        assert!(overhead < 0.02, "overhead {overhead:.3}");
    }

    /// Table III consistency inside the paper's own numbers: score equals
    /// the composition breakdown for the chromosome pair.
    #[test]
    fn paper_composition_is_self_consistent() {
        let c = &PAPER_COMPOSITION;
        let score = (c.matches.0 as i64) - c.mismatches.0 as i64 * 3
            + -(c.gap_openings.0 as i64) * 5
            + -(c.gap_extensions.0 as i64) * 2;
        let table3 = paper_pair("32799Kx46944K").unwrap().score;
        assert_eq!(score, table3, "Table X must rescore to Table III");
        let total = c.matches.0 + c.mismatches.0 + c.gap_openings.0 + c.gap_extensions.0;
        assert_eq!(total, paper_pair("32799Kx46944K").unwrap().length);
    }

    /// The paper's Stage-1 dominance claim, recomputed from its Table V.
    #[test]
    fn stage1_dominates_in_paper_numbers() {
        for row in PAPER_PAIRS {
            let frac = row.stage_seconds[0] / row.total_s;
            // (>= 0.83: the tiny pairs' totals include sequence I/O.)
            assert!(frac > 0.82, "{}: stage 1 fraction {frac:.2}", row.key);
        }
    }

    /// Table VIII monotonicity: more SRA, more crosspoints, smaller
    /// partitions, fewer stage-3 blocks.
    #[test]
    fn sra_sweep_is_monotone_in_paper_numbers() {
        for w in PAPER_SRA_SWEEP.windows(2) {
            assert!(w[1].l2 > w[0].l2);
            assert!(w[1].l3 > w[0].l3);
            assert!(w[1].h_max < w[0].h_max);
            assert!(w[1].w_max < w[0].w_max);
            assert!(w[1].b3 <= w[0].b3);
            // Stage 2 gets faster, stage 1 slower.
            assert!(w[1].stage_seconds[1] <= w[0].stage_seconds[1]);
            assert!(w[1].stage_seconds[0] >= w[0].stage_seconds[0]);
        }
    }
}
