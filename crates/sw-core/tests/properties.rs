//! Property-based tests for the alignment fundamentals.

use proptest::prelude::*;
use sw_core::full::{nw_global_aligned, nw_global_typed, sw_local_aligned, sw_local_score};
use sw_core::linear::{forward_vectors, global_score, reverse_vectors};
use sw_core::matching::match_argmax;
use sw_core::mm::mm_align;
use sw_core::scoring::Scoring;
use sw_core::transcript::EdgeState;

fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"ACGT".to_vec()), 0..max_len)
}

fn dna_nonempty(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"ACGT".to_vec()), 1..max_len)
}

fn edge() -> impl Strategy<Value = EdgeState> {
    proptest::sample::select(vec![EdgeState::Diagonal, EdgeState::GapS0, EdgeState::GapS1])
}

fn schemes() -> impl Strategy<Value = Scoring> {
    (1i32..4, -4i32..0, 0i32..6, 0i32..4)
        .prop_map(|(ma, mi, open, ext)| Scoring::new(ma, mi, open + ext, ext))
}

/// Related pair: `b` derived from `a` by point edits, so alignments have
/// interesting structure (long matches and gap runs).
fn related_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (dna_nonempty(200), any::<u64>()).prop_map(|(a, seed)| {
        let mut b = a.clone();
        let mut x = seed | 1;
        let mut rngstep = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        // a handful of random edits
        for _ in 0..4 {
            if b.is_empty() {
                break;
            }
            let r = rngstep();
            let pos = (r as usize >> 8) % b.len();
            match r % 3 {
                0 => b[pos] = b"ACGT"[(r as usize >> 40) & 3],
                1 => {
                    let del = (1 + (r >> 16) as usize % 8).min(b.len() - pos);
                    b.drain(pos..pos + del);
                }
                _ => {
                    let ins = 1 + ((r >> 16) as usize % 8);
                    for k in 0..ins {
                        b.insert(pos, b"ACGT"[(r as usize >> (2 * k)) & 3]);
                    }
                }
            }
        }
        (a, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Myers-Miller agrees with the quadratic DP on score, and its
    /// transcript is valid and rescores to the same value.
    #[test]
    fn mm_equals_nw(( a, b) in related_pair(), start in edge(), sc in schemes()) {
        let (s_nw, _) = nw_global_typed(&a, &b, &sc, start, EdgeState::Diagonal);
        let (s_mm, t) = mm_align(&a, &b, &sc, start, EdgeState::Diagonal);
        prop_assert_eq!(s_mm, s_nw);
        t.validate(&a, &b).unwrap();
        prop_assert_eq!(t.score_as_continuation(&a, &b, &sc, start), s_mm);
    }

    /// Typed end states also agree between MM and NW.
    #[test]
    fn mm_equals_nw_typed_end(a in dna_nonempty(120), b in dna_nonempty(120), end in edge()) {
        let sc = Scoring::paper();
        let (s_nw, _) = nw_global_typed(&a, &b, &sc, EdgeState::Diagonal, end);
        let (s_mm, t) = mm_align(&a, &b, &sc, EdgeState::Diagonal, end);
        prop_assert_eq!(s_mm, s_nw);
        t.validate(&a, &b).unwrap();
    }

    /// The linear-space global score equals the quadratic one for every
    /// combination of edge states.
    #[test]
    fn linear_equals_quadratic(a in dna(80), b in dna(80), start in edge(), end in edge(), sc in schemes()) {
        let (s_full, _) = nw_global_typed(&a, &b, &sc, start, end);
        let s_lin = global_score(&a, &b, &sc, start, end);
        prop_assert_eq!(s_lin, s_full);
    }

    /// Local alignment: full-matrix result is internally consistent and
    /// agrees with the linear score-only scan.
    #[test]
    fn local_consistency((a, b) in related_pair()) {
        let sc = Scoring::paper();
        let (score, end) = sw_local_score(&a, &b, &sc);
        if let Some(r) = sw_local_aligned(&a, &b, &sc) {
            prop_assert_eq!(r.score, score);
            prop_assert_eq!(r.end, end);
            let sub_a = &a[r.start.0..r.end.0];
            let sub_b = &b[r.start.1..r.end.1];
            r.transcript.validate(sub_a, sub_b).unwrap();
            prop_assert_eq!(r.transcript.score(sub_a, sub_b, &sc), r.score);
            prop_assert!(r.score > 0);
        } else {
            prop_assert_eq!(score, 0);
        }
    }

    /// A local alignment never scores below the best exact k-mer match,
    /// and never above the global alignment of its own substrings.
    #[test]
    fn local_dominates_global_of_substrings((a, b) in related_pair()) {
        let sc = Scoring::paper();
        if let Some(r) = sw_local_aligned(&a, &b, &sc) {
            let sub_a = &a[r.start.0..r.end.0];
            let sub_b = &b[r.start.1..r.end.1];
            let (g, _) = nw_global_aligned(sub_a, sub_b, &sc, EdgeState::Diagonal, EdgeState::Diagonal);
            prop_assert_eq!(g, r.score, "local transcript must be the optimal global alignment of its substrings");
        }
    }

    /// The matching procedure's maximum equals the true global score for
    /// every split row.
    #[test]
    fn matching_total_is_global_optimum(a in dna_nonempty(60), b in dna(60), split_frac in 0.0f64..1.0) {
        let sc = Scoring::paper();
        let i_star = ((a.len() as f64) * split_frac) as usize;
        let (cc, dd) = forward_vectors(&a[..i_star], &b, &sc, EdgeState::Diagonal);
        let (rr, ss) = reverse_vectors(&a[i_star..], &b, &sc, EdgeState::Diagonal);
        let mp = match_argmax(&cc, &dd, &rr, &ss, &sc);
        let (truth, _) = nw_global_typed(&a, &b, &sc, EdgeState::Diagonal, EdgeState::Diagonal);
        prop_assert_eq!(mp.total, truth);
        // And the split telescopes.
        let (s_top, _) = nw_global_typed(&a[..i_star], &b[..mp.j], &sc, EdgeState::Diagonal, mp.state);
        let (s_bot, _) = nw_global_typed(&a[i_star..], &b[mp.j..], &sc, mp.state, EdgeState::Diagonal);
        prop_assert_eq!(s_top + s_bot, truth);
    }

    /// Reversing both sequences leaves the global score unchanged
    /// (affine gap costs are reversal-invariant).
    #[test]
    fn global_score_reversal_invariant(a in dna(100), b in dna(100)) {
        let sc = Scoring::paper();
        let (s, _) = nw_global_typed(&a, &b, &sc, EdgeState::Diagonal, EdgeState::Diagonal);
        let ar: Vec<u8> = a.iter().rev().copied().collect();
        let br: Vec<u8> = b.iter().rev().copied().collect();
        let (s_rev, _) = nw_global_typed(&ar, &br, &sc, EdgeState::Diagonal, EdgeState::Diagonal);
        prop_assert_eq!(s, s_rev);
    }

    /// Transposing the problem (swapping sequences) preserves the global
    /// score when edge states are transposed accordingly.
    #[test]
    fn global_score_transpose_invariant(a in dna(100), b in dna(100), start in edge(), end in edge()) {
        let sc = Scoring::paper();
        let (s, _) = nw_global_typed(&a, &b, &sc, start, end);
        let (s_t, _) = nw_global_typed(&b, &a, &sc, start.transposed(), end.transposed());
        prop_assert_eq!(s, s_t);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Semi-global dominates global (free ends can only help) and its
    /// transcript rescoring is exact.
    #[test]
    fn semiglobal_dominates_global(a in dna(100), b in dna(100)) {
        use sw_core::semiglobal::semiglobal_align;
        prop_assume!(!a.is_empty() || !b.is_empty());
        let sc = Scoring::paper();
        let r = semiglobal_align(&a, &b, &sc).unwrap();
        let (g, _) = nw_global_typed(&a, &b, &sc, EdgeState::Diagonal, EdgeState::Diagonal);
        prop_assert!(r.score >= g, "semiglobal {} < global {g}", r.score);
        prop_assert!(r.score >= 0, "the empty overlap scores 0");
        let sub_a = &a[r.start.0..r.end.0];
        let sub_b = &b[r.start.1..r.end.1];
        r.transcript.validate(sub_a, sub_b).unwrap();
        prop_assert_eq!(r.transcript.score(sub_a, sub_b, &sc), r.score);
        // Endpoints touch the free borders.
        prop_assert!(r.start.0 == 0 || r.start.1 == 0);
        prop_assert!(r.end.0 == a.len() || r.end.1 == b.len());
    }

    /// Local dominates semi-global (it may clip both ends *and* interior
    /// borders are free everywhere).
    #[test]
    fn local_dominates_semiglobal(a in dna(100), b in dna(100)) {
        use sw_core::semiglobal::semiglobal_align;
        prop_assume!(!a.is_empty() || !b.is_empty());
        let sc = Scoring::paper();
        let r = semiglobal_align(&a, &b, &sc).unwrap();
        let (local, _) = sw_core::full::sw_local_score(&a, &b, &sc);
        prop_assert!(local >= r.score, "local {local} < semiglobal {}", r.score);
    }
}
