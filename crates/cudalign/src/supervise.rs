//! Run supervision: cooperative cancellation, deadlines and the stall
//! watchdog for the six-stage pipeline (DESIGN.md §12).
//!
//! A [`RunControl`] is the per-run supervision policy: one clonable
//! handle bundling a [`CancelToken`] with an optional wall-clock
//! deadline, an optional stall budget, and an optional
//! cancel-after-diagonal trigger (the CLI's `--cancel-after-diag`).
//! The pipeline threads the token through every stage and the wavefront
//! engine; the deadline and stall budget are enforced by a single
//! watchdog thread ([`gpu_sim::exec::spawn_watchdog`]) that observes the
//! token's heartbeat — hot paths never read a clock.
//!
//! Time flows through an injectable [`TimeSource`] so tests drive
//! supervision with [`crate::obs::SharedClock`] instead of real wall
//! time; production controls default to a [`WallClock`].
//!
//! An interruption always surfaces as a typed
//! [`StageError`]/[`crate::pipeline::PipelineError`] variant
//! (`Cancelled`, `DeadlineExceeded`, `Stalled`) — never a partial score
//! — and, when stage-1 checkpointing is on, the engine flushes a
//! boundary snapshot before unwinding so cancellation is always
//! resumable.

use crate::obs::{Clock, WallClock};
use crate::pipeline::StageError;
use gpu_sim::exec::{spawn_watchdog, TimeSource, Watchdog};
use gpu_sim::{CancelCause, CancelToken};
use std::sync::Arc;
use std::time::Duration;

/// How often the watchdog thread samples the clock and heartbeat. Far
/// below any sensible budget, far above scheduler noise.
const DEFAULT_POLL: Duration = Duration::from_millis(2);

/// A wall-clock time source for production controls ([`WallClock`] is
/// the one sanctioned `Instant` reader; see the `clock-injection` lint).
fn wall_time_source() -> TimeSource {
    let clk = WallClock::new();
    Arc::new(move || clk.now())
}

/// Per-run supervision policy: cancel token, optional deadline, optional
/// stall budget, optional cancel-after-diagonal trigger, and the time
/// source the watchdog reads.
///
/// Cheap to clone (the token is one `Arc`, the time source another); all
/// clones control the same run. [`RunControl::unlimited`] is the silent
/// default used by the non-supervised entry points.
#[derive(Clone)]
pub struct RunControl {
    token: CancelToken,
    deadline: Option<Duration>,
    stall_budget: Option<Duration>,
    poll: Duration,
    cancel_after_diagonal: Option<usize>,
    time: TimeSource,
}

impl Default for RunControl {
    fn default() -> Self {
        RunControl::unlimited()
    }
}

impl std::fmt::Debug for RunControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunControl")
            .field("token", &self.token)
            .field("deadline", &self.deadline)
            .field("stall_budget", &self.stall_budget)
            .field("cancel_after_diagonal", &self.cancel_after_diagonal)
            .finish_non_exhaustive()
    }
}

impl RunControl {
    /// No deadline, no stall budget, no trigger — cancellable only via
    /// [`RunControl::cancel`] on a clone.
    pub fn unlimited() -> Self {
        RunControl {
            token: CancelToken::new(),
            deadline: None,
            stall_budget: None,
            poll: DEFAULT_POLL,
            cancel_after_diagonal: None,
            time: wall_time_source(),
        }
    }

    /// Abort the run once `ms` milliseconds elapse on the time source.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(Duration::from_millis(ms));
        self
    }

    /// Abort the run when the heartbeat (blocks computed, rows published)
    /// stops moving for `ms` milliseconds.
    pub fn with_stall_budget_ms(mut self, ms: u64) -> Self {
        self.stall_budget = Some(Duration::from_millis(ms));
        self
    }

    /// Cancel the run once the stage-1 wavefront reaches external
    /// diagonal `d` (the CLI's `--cancel-after-diag`, and the chaos
    /// harness's deterministic cancel point).
    pub fn with_cancel_after_diagonal(mut self, d: usize) -> Self {
        self.cancel_after_diagonal = Some(d);
        self
    }

    /// Replace the watchdog's time source (default: a fresh [`WallClock`]).
    pub fn with_time_source(mut self, time: TimeSource) -> Self {
        self.time = time;
        self
    }

    /// [`RunControl::with_time_source`] from any owned `Send + Sync`
    /// [`Clock`] (e.g. a [`crate::obs::SharedClock`] clone).
    pub fn with_clock<C: Clock + Send + Sync + 'static>(self, clock: C) -> Self {
        self.with_time_source(Arc::new(move || clock.now()))
    }

    /// Override the watchdog's poll cadence (tests shrink it).
    pub fn with_poll(mut self, poll: Duration) -> Self {
        self.poll = poll;
        self
    }

    /// The cancel token stages and the engine poll.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// The configured cancel-after-diagonal trigger, if any.
    pub fn cancel_after_diagonal(&self) -> Option<usize> {
        self.cancel_after_diagonal
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The configured stall budget, if any.
    pub fn stall_budget(&self) -> Option<Duration> {
        self.stall_budget
    }

    /// Request cancellation, stamping the time source for latency
    /// accounting. Returns `false` when the run was already cancelled.
    pub fn cancel(&self) -> bool {
        self.token.cancel_at(CancelCause::Requested, (self.time)().as_nanos() as u64)
    }

    /// Has the run been cancelled (by any clone, the watchdog, or the
    /// trigger)?
    pub fn is_cancelled(&self) -> bool {
        self.token.is_cancelled()
    }

    /// The winning cancellation's cause, if any.
    pub fn cause(&self) -> Option<CancelCause> {
        self.token.cause()
    }

    /// Milliseconds elapsed on the time source since the cancel signal —
    /// the time-to-cancel latency once the run has unwound. Zero when
    /// the run is not cancelled or the signal carried no stamp.
    pub fn cancel_latency_ms(&self) -> f64 {
        match self.token.cancel_stamp_nanos() {
            Some(stamp) if stamp > 0 => {
                ((self.time)().as_nanos() as u64).saturating_sub(stamp) as f64 / 1e6
            }
            _ => 0.0,
        }
    }

    /// Start the deadline/stall watchdog thread, or `None` when neither
    /// budget is configured. Hold the returned guard for the run's
    /// duration; dropping it stops and joins the thread.
    pub fn spawn_watchdog(&self) -> Option<Watchdog> {
        if self.deadline.is_none() && self.stall_budget.is_none() {
            return None;
        }
        Some(spawn_watchdog(
            self.token.clone(),
            Arc::clone(&self.time),
            self.deadline,
            self.stall_budget,
            self.poll,
        ))
    }

    /// Cooperative cancellation point: `Ok(())` while the run may
    /// continue, or the typed [`StageError`] for the winning cause.
    /// `diagonal` is the resume point reported in the error (stages
    /// without a stage-1 diagonal pass 0 — their resume re-runs from the
    /// last stage-1 state).
    pub fn check(&self, diagonal: usize) -> Result<(), StageError> {
        if !self.token.is_cancelled() {
            return Ok(());
        }
        Err(match self.token.cause() {
            Some(CancelCause::DeadlineExceeded { budget_ms }) => {
                StageError::DeadlineExceeded { diagonal, budget_ms }
            }
            Some(CancelCause::Stalled { budget_ms }) => StageError::Stalled { diagonal, budget_ms },
            // `Requested`, a future cause, or (unreachable in practice) a
            // flag set without a recorded cause: plain cancellation.
            _ => StageError::Cancelled { diagonal },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::SharedClock;

    #[test]
    fn unlimited_control_never_spawns_a_watchdog_and_checks_pass() {
        let ctrl = RunControl::unlimited();
        assert!(ctrl.spawn_watchdog().is_none());
        assert!(ctrl.check(5).is_ok());
        assert!(!ctrl.is_cancelled());
        assert_eq!(ctrl.cancel_latency_ms(), 0.0);
    }

    #[test]
    fn cancel_maps_to_typed_cancelled_error_with_latency() {
        let clk = SharedClock::new();
        let ctrl = RunControl::unlimited().with_clock(clk.clone());
        clk.set(Duration::from_millis(10));
        assert!(ctrl.cancel());
        assert!(!ctrl.cancel(), "second cancel loses");
        clk.advance(Duration::from_millis(7));
        assert_eq!(ctrl.check(42), Err(StageError::Cancelled { diagonal: 42 }));
        assert!((ctrl.cancel_latency_ms() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn watchdog_causes_map_to_their_typed_errors() {
        let clk = SharedClock::new();
        let ctrl = RunControl::unlimited()
            .with_clock(clk.clone())
            .with_deadline_ms(20)
            .with_poll(Duration::from_millis(1));
        assert!(ctrl.deadline().is_some());
        {
            let _dog = ctrl.spawn_watchdog().expect("deadline configured");
            clk.advance(Duration::from_millis(25));
            while !ctrl.is_cancelled() {
                std::thread::yield_now();
            }
        }
        assert_eq!(ctrl.check(3), Err(StageError::DeadlineExceeded { diagonal: 3, budget_ms: 20 }));

        // Stall cause, injected directly (the watchdog's own detection
        // logic is covered in gpu_sim::exec).
        let ctrl2 = RunControl::unlimited();
        ctrl2.token().cancel(CancelCause::Stalled { budget_ms: 9 });
        assert_eq!(ctrl2.check(0), Err(StageError::Stalled { diagonal: 0, budget_ms: 9 }));
    }

    #[test]
    fn clones_share_the_token() {
        let ctrl = RunControl::unlimited().with_cancel_after_diagonal(8);
        let remote = ctrl.clone();
        assert_eq!(remote.cancel_after_diagonal(), Some(8));
        remote.cancel();
        assert!(ctrl.is_cancelled());
        assert_eq!(ctrl.cause(), Some(CancelCause::Requested));
    }
}
