//! The `cudalign` command-line tool. All logic lives in the library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cudalign_cli::parse(&args) {
        Ok(cmd) => match cudalign_cli::run(cmd) {
            Ok(output) => print!("{output}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cudalign_cli::args::USAGE);
            std::process::exit(2);
        }
    }
}
