//! Hand-rolled, std-only Rust lexer.
//!
//! Produces the token stream the lint rules run on. The goal is not a
//! full grammar — it is *exact classification* of the regions a lexical
//! matcher gets wrong: string/char/byte literals (including raw strings
//! with any number of `#` guards), nested block comments, doc comments,
//! and the `'a` lifetime vs `'a'` char-literal ambiguity. Everything the
//! rules search for (idents, paths, method calls, punctuation) survives
//! as typed tokens with line, brace-depth and paren-depth annotations,
//! so a banned pattern inside a string or comment can never trip a rule
//! again.

/// Classification of a literal token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LitKind {
    /// `"..."` or `b"..."`.
    Str,
    /// `r"..."`, `r#"..."#`, `br#"..."#` — any guard depth.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Numeric literal (integer or float, any base).
    Num,
}

/// Classification of a comment token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommentKind {
    /// `// ...`
    Line,
    /// `/* ... */` (nested pairs balanced).
    Block,
    /// `/// ...` or `//! ...`
    DocLine,
    /// `/** ... */` or `/*! ... */`
    DocBlock,
}

/// Token kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// `'a`, `'static`, `'_`.
    Lifetime,
    /// String/char/number literal; contents are opaque to the rules.
    Lit(LitKind),
    /// Single punctuation byte (`::` arrives as two `:` tokens).
    Punct(u8),
    /// Comment; kept in the stream for SAFETY/allow scanning but
    /// excluded from the code view the rules match against.
    Comment(CommentKind),
}

/// One token with its source position and nesting context.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Kind (see [`TokKind`]).
    pub kind: TokKind,
    /// Raw source text of the token (comments keep their markers).
    pub text: String,
    /// 0-based line of the token's first byte.
    pub line: usize,
    /// 0-based line of the token's last byte (multi-line comments,
    /// raw strings).
    pub end_line: usize,
    /// Brace (`{}`) nesting depth: the depth *inside* which the token
    /// sits. A `{` and its matching `}` share the same depth.
    pub depth: usize,
    /// Combined `(` / `[` nesting depth at the token, same convention.
    pub delim: usize,
}

impl Tok {
    /// Is this a non-doc comment (`//`, `/* */`)?
    pub fn is_plain_comment(&self) -> bool {
        matches!(self.kind, TokKind::Comment(CommentKind::Line | CommentKind::Block))
    }

    /// Is this any comment?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::Comment(_))
    }

    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Is this the punctuation byte `c`?
    pub fn is_punct(&self, c: u8) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Running lexer state: position, line, nesting depths.
struct Lexer<'s> {
    src: &'s [u8],
    i: usize,
    line: usize,
    depth: usize,
    delim: usize,
    toks: Vec<Tok>,
}

impl<'s> Lexer<'s> {
    fn bump_lines(&mut self, from: usize, to: usize) {
        self.line += self.src[from..to].iter().filter(|&&c| c == b'\n').count();
    }

    fn push(&mut self, kind: TokKind, start: usize, end: usize, start_line: usize) {
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.toks.push(Tok {
            kind,
            text,
            line: start_line,
            end_line: self.line,
            depth: self.depth,
            delim: self.delim,
        });
    }

    /// Lex a line comment starting at `self.i` (`//`, `///`, `//!`).
    fn line_comment(&mut self) {
        let start = self.i;
        let start_line = self.line;
        let b = self.src;
        // `////...` dividers count as plain comments, `///x` as doc.
        let kind = if b[start..].starts_with(b"//!")
            || (b[start..].starts_with(b"///") && !b[start..].starts_with(b"////"))
        {
            CommentKind::DocLine
        } else {
            CommentKind::Line
        };
        while self.i < b.len() && b[self.i] != b'\n' {
            self.i += 1;
        }
        self.push(TokKind::Comment(kind), start, self.i, start_line);
    }

    /// Lex a (nested) block comment starting at `self.i` (`/*`).
    fn block_comment(&mut self) {
        let start = self.i;
        let start_line = self.line;
        let b = self.src;
        let kind = if b[start..].starts_with(b"/*!")
            || (b[start..].starts_with(b"/**") && !b[start..].starts_with(b"/**/"))
        {
            CommentKind::DocBlock
        } else {
            CommentKind::Block
        };
        let mut depth = 1usize;
        self.i += 2;
        while self.i < b.len() && depth > 0 {
            if b[self.i..].starts_with(b"/*") {
                depth += 1;
                self.i += 2;
            } else if b[self.i..].starts_with(b"*/") {
                depth -= 1;
                self.i += 2;
            } else {
                self.i += 1;
            }
        }
        self.bump_lines(start, self.i);
        self.push(TokKind::Comment(kind), start, self.i, start_line);
    }

    /// Try to lex a raw string at `self.i` (`r"`, `r#`, `br"`, `br#`).
    /// Returns true when one was consumed.
    fn raw_string(&mut self) -> bool {
        let b = self.src;
        let start = self.i;
        let start_line = self.line;
        let mut j = self.i;
        if b[j] == b'b' {
            j += 1;
        }
        if j >= b.len() || b[j] != b'r' {
            return false;
        }
        j += 1;
        let mut hashes = 0usize;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j >= b.len() || b[j] != b'"' {
            return false;
        }
        j += 1;
        // Scan for `"` followed by `hashes` `#`s.
        loop {
            if j >= b.len() {
                break; // unterminated: consume to EOF
            }
            if b[j] == b'"' {
                let mut h = 0;
                while h < hashes && j + 1 + h < b.len() && b[j + 1 + h] == b'#' {
                    h += 1;
                }
                if h == hashes {
                    j += 1 + hashes;
                    break;
                }
            }
            j += 1;
        }
        self.bump_lines(start, j);
        self.i = j;
        self.push(TokKind::Lit(LitKind::RawStr), start, j, start_line);
        true
    }

    /// Lex a plain (byte) string literal starting at the opening `"`.
    fn string(&mut self, quote_at: usize) {
        let start = self.i;
        let start_line = self.line;
        let b = self.src;
        let mut j = quote_at + 1;
        while j < b.len() {
            match b[j] {
                b'\\' => j += 2,
                b'"' => {
                    j += 1;
                    break;
                }
                _ => j += 1,
            }
        }
        let j = j.min(b.len());
        self.bump_lines(start, j);
        self.i = j;
        self.push(TokKind::Lit(LitKind::Str), start, j, start_line);
    }

    /// At a `'` (offset `q`): either a char literal or a lifetime.
    /// Returns the byte just past a char literal, or `None` for a
    /// lifetime.
    fn char_literal_end(&self, q: usize) -> Option<usize> {
        let b = self.src;
        let first = *b.get(q + 1)?;
        if first == b'\\' {
            let mut j = q + 2;
            match b.get(j) {
                Some(b'u') => {
                    while j < b.len() && b[j] != b'}' {
                        j += 1;
                    }
                }
                Some(b'x') => j += 2,
                _ => {}
            }
            while j < b.len() && b[j] != b'\'' {
                j += 1;
            }
            return (j < b.len()).then_some(j + 1);
        }
        if first == b'\'' {
            return None; // `''` — malformed, treat as two puncts
        }
        let width = match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        };
        (b.get(q + 1 + width) == Some(&b'\'')).then_some(q + 2 + width)
    }
}

/// Tokenize `src`. Never fails: malformed input degrades to punct/ident
/// tokens rather than a lex error (the linter must not crash on the code
/// it polices).
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut lx = Lexer {
        src: b,
        i: 0,
        line: 0,
        depth: 0,
        delim: 0,
        toks: Vec::with_capacity(src.len() / 6),
    };
    while lx.i < b.len() {
        let c = b[lx.i];
        let start_line = lx.line;
        match c {
            b'\n' => {
                lx.line += 1;
                lx.i += 1;
            }
            c if c.is_ascii_whitespace() => lx.i += 1,
            b'/' if b.get(lx.i + 1) == Some(&b'/') => lx.line_comment(),
            b'/' if b.get(lx.i + 1) == Some(&b'*') => lx.block_comment(),
            b'r' | b'b'
                if (lx.i == 0 || !is_ident_cont(b[lx.i - 1])) && {
                    // Raw string (r" r# br" br#), byte string (b") or
                    // byte char (b') — all begin at an ident boundary.
                    let n1 = b.get(lx.i + 1).copied();
                    (c == b'r' && matches!(n1, Some(b'"') | Some(b'#')))
                        || (c == b'b' && matches!(n1, Some(b'"') | Some(b'\'') | Some(b'r')))
                } =>
            {
                if lx.raw_string() {
                    continue;
                }
                match b.get(lx.i + 1) {
                    Some(b'"') => {
                        let q = lx.i + 1;
                        lx.string(q);
                    }
                    Some(b'\'') => match lx.char_literal_end(lx.i + 1) {
                        Some(end) => {
                            lx.push(TokKind::Lit(LitKind::Char), lx.i, end, start_line);
                            lx.i = end;
                        }
                        None => {
                            // `b'x` without close: lex `b` as ident.
                            lx.push(TokKind::Ident, lx.i, lx.i + 1, start_line);
                            lx.i += 1;
                        }
                    },
                    // `br` not followed by a raw string: plain ident.
                    _ => {
                        let start = lx.i;
                        while lx.i < b.len() && is_ident_cont(b[lx.i]) {
                            lx.i += 1;
                        }
                        lx.push(TokKind::Ident, start, lx.i, start_line);
                    }
                }
            }
            b'"' => lx.string(lx.i),
            b'\'' => match lx.char_literal_end(lx.i) {
                Some(end) => {
                    lx.push(TokKind::Lit(LitKind::Char), lx.i, end, start_line);
                    lx.i = end;
                }
                None => {
                    // Lifetime: `'` + ident.
                    let start = lx.i;
                    let mut j = lx.i + 1;
                    while j < b.len() && is_ident_cont(b[j]) {
                        j += 1;
                    }
                    if j > lx.i + 1 {
                        lx.push(TokKind::Lifetime, start, j, start_line);
                        lx.i = j;
                    } else {
                        lx.push(TokKind::Punct(b'\''), start, j, start_line);
                        lx.i = j;
                    }
                }
            },
            c if is_ident_start(c) => {
                let start = lx.i;
                while lx.i < b.len() && is_ident_cont(b[lx.i]) {
                    lx.i += 1;
                }
                lx.push(TokKind::Ident, start, lx.i, start_line);
            }
            c if c.is_ascii_digit() => {
                let start = lx.i;
                while lx.i < b.len()
                    && (is_ident_cont(b[lx.i])
                        || (b[lx.i] == b'.'
                            && b.get(lx.i + 1).is_some_and(|d| d.is_ascii_digit())
                            && b.get(lx.i.wrapping_sub(1)) != Some(&b'.')))
                {
                    lx.i += 1;
                }
                lx.push(TokKind::Lit(LitKind::Num), start, lx.i, start_line);
            }
            _ => {
                match c {
                    b'{' => {
                        lx.push(TokKind::Punct(c), lx.i, lx.i + 1, start_line);
                        lx.depth += 1;
                    }
                    b'}' => {
                        lx.depth = lx.depth.saturating_sub(1);
                        lx.push(TokKind::Punct(c), lx.i, lx.i + 1, start_line);
                    }
                    b'(' | b'[' => {
                        lx.push(TokKind::Punct(c), lx.i, lx.i + 1, start_line);
                        lx.delim += 1;
                    }
                    b')' | b']' => {
                        lx.delim = lx.delim.saturating_sub(1);
                        lx.push(TokKind::Punct(c), lx.i, lx.i + 1, start_line);
                    }
                    _ => lx.push(TokKind::Punct(c), lx.i, lx.i + 1, start_line),
                }
                lx.i += 1;
            }
        }
    }
    lx.toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_comments_chars_are_classified() {
        let toks = kinds("let a = \"panic!\"; // .unwrap()\nlet b = '\\n';");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Lit(LitKind::Str) && t.contains("panic!")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Comment(CommentKind::Line) && t.contains(".unwrap()")));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Lit(LitKind::Char)));
        // No Ident token carries the banned text.
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "panic"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> &'static str { x }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).map(|(_, t)| t.clone()).collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
    }

    #[test]
    fn raw_strings_with_guards_are_opaque() {
        let toks = kinds("let s = br##\"thread::spawn \"# panic!\"##; call();");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lit(LitKind::RawStr) && t.contains("panic!")));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "call"));
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "spawn"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = kinds("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(toks.iter().filter(|(k, _)| matches!(k, TokKind::Comment(_))).count(), 1);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "f"));
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "inner"));
    }

    #[test]
    fn doc_comments_are_distinguished() {
        let toks = lex("/// outer doc\n//! inner doc\n// plain\n/** block doc */\n/* block */");
        let kinds: Vec<_> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Comment(CommentKind::DocLine),
                TokKind::Comment(CommentKind::DocLine),
                TokKind::Comment(CommentKind::Line),
                TokKind::Comment(CommentKind::DocBlock),
                TokKind::Comment(CommentKind::Block),
            ]
        );
    }

    #[test]
    fn byte_literals_with_quotes_inside() {
        let toks = kinds("let c = '\\''; let b = b'\"'; let s = b\"x\";");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Lit(LitKind::Char)).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Lit(LitKind::Str)).count(), 1);
    }

    #[test]
    fn depth_and_delim_are_tracked() {
        let toks = lex("fn f() { if x { g(&[1]); } }");
        let g = toks.iter().find(|t| t.is_ident("g")).unwrap();
        assert_eq!(g.depth, 2);
        assert_eq!(g.delim, 0);
        let one = toks.iter().find(|t| t.kind == TokKind::Lit(LitKind::Num)).unwrap();
        assert_eq!(one.delim, 2);
        let opens: Vec<_> = toks.iter().filter(|t| t.is_punct(b'{')).map(|t| t.depth).collect();
        let closes: Vec<_> = toks.iter().filter(|t| t.is_punct(b'}')).map(|t| t.depth).collect();
        assert_eq!(opens, vec![0, 1]);
        assert_eq!(closes, vec![1, 0]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = kinds("for i in 0..10 { let x = 1.5; }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lit(LitKind::Num))
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5"]);
    }
}
