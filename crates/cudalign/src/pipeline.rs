//! The six-stage pipeline orchestrator.

use crate::binary::BinaryAlignment;
use crate::config::PipelineConfig;
use crate::crosspoint::CrosspointChain;
use crate::sra::{LineStore, StoreStats};
use crate::stage4::IterationStats;
use crate::storage::{self, StorageError};
use crate::{stage1, stage2, stage3, stage4, stage5};
use gpu_sim::{ExecError, PoolStats, WorkerPool};
use std::sync::Arc;
use std::time::Instant;
use sw_core::scoring::Score;
use sw_core::transcript::Transcript;

/// Failure of one pipeline stage.
///
/// Every stage entry point returns this; the pipeline maps it onto
/// [`PipelineError`]. The split matters because the two variants demand
/// different reactions: a [`StageError::Logic`] means the stage's own
/// invariants failed (goal not found, chain validation), while a
/// [`StageError::Worker`] means a job panicked on the shared
/// [`WorkerPool`] — the pool itself survives and the run can be retried.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StageError {
    /// A stage invariant failed (a bug or corrupted store).
    Logic(String),
    /// A worker-pool job panicked; the payload is the panic message.
    Worker(String),
    /// The storage layer failed in a way the stage could not degrade
    /// around (see [`StorageError`]).
    Storage(StorageError),
    /// The stage was interrupted mid-run (a simulated crash from
    /// `storage::fault::arm_stage1_kill`, or an observer abort). The
    /// partial result is *not* usable — resuming from the last checkpoint
    /// is the only correct continuation.
    Interrupted {
        /// External diagonal the wavefront had reached.
        diagonal: usize,
    },
}

impl std::fmt::Display for StageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageError::Logic(s) => write!(f, "{s}"),
            StageError::Worker(s) => write!(f, "worker panicked: {s}"),
            StageError::Storage(e) => write!(f, "{e}"),
            StageError::Interrupted { diagonal } => {
                write!(f, "stage interrupted at external diagonal {diagonal}")
            }
        }
    }
}

impl std::error::Error for StageError {}

impl From<String> for StageError {
    fn from(s: String) -> Self {
        StageError::Logic(s)
    }
}

impl From<ExecError> for StageError {
    fn from(e: ExecError) -> Self {
        match e {
            ExecError::WorkerPanic(msg) => StageError::Worker(msg),
            // `ExecError` is `#[non_exhaustive]`: any executor failure mode
            // added later surfaces as a stage-invariant error rather than a
            // compile break here.
            other => StageError::Logic(format!("executor error: {other}")),
        }
    }
}

impl From<StorageError> for StageError {
    fn from(e: StorageError) -> Self {
        StageError::Storage(e)
    }
}

/// Pipeline failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PipelineError {
    /// An internal invariant failed (a bug or corrupted store).
    Internal(String),
    /// Storage backend failure.
    Io(String),
    /// A worker-pool job panicked. The pool is not poisoned: the same
    /// [`Pipeline`] may be retried.
    Worker(String),
    /// The run was interrupted mid-stage (simulated crash / observer
    /// abort). With checkpointing enabled, calling
    /// [`Pipeline::align`] again resumes from the last snapshot;
    /// special rows already on a disk backend are reopened.
    Interrupted {
        /// External diagonal the wavefront had reached.
        diagonal: usize,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Internal(s) => write!(f, "pipeline error: {s}"),
            PipelineError::Io(s) => write!(f, "pipeline I/O error: {s}"),
            PipelineError::Worker(s) => write!(f, "pipeline worker panicked: {s}"),
            PipelineError::Interrupted { diagonal } => {
                write!(
                    f,
                    "pipeline interrupted at external diagonal {diagonal} (resume to continue)"
                )
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<StageError> for PipelineError {
    fn from(e: StageError) -> Self {
        match e {
            StageError::Logic(s) => PipelineError::Internal(s),
            StageError::Worker(s) => PipelineError::Worker(s),
            StageError::Storage(e) => PipelineError::Io(e.to_string()),
            StageError::Interrupted { diagonal } => PipelineError::Interrupted { diagonal },
        }
    }
}

/// Everything the paper's Tables V, VII and VIII report about one run.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Wall-clock seconds per stage (index 0 = Stage 1, ... 4 = Stage 5).
    pub stage_seconds: [f64; 5],
    /// DP cells processed by Stages 1-4 (`Cells_k`).
    pub stage_cells: [u64; 4],
    /// Stage-5 cells (bounded by partition size x chain length).
    pub stage5_cells: u64,
    /// Crosspoints after Stages 1-4 (`|L_k|`).
    pub crosspoints: [usize; 4],
    /// Completed special rows.
    pub special_rows: usize,
    /// Stage-1 flush interval in block rows.
    pub flush_interval_blocks: usize,
    /// Bytes written to the SRA by Stage 1.
    pub sra_bytes_used: u64,
    /// Special columns kept for Stage 3.
    pub special_columns: usize,
    /// Bytes of special columns kept.
    pub sca_bytes_used: u64,
    /// Largest partition height after Stage 3 (`H_max`).
    pub h_max: usize,
    /// Largest partition width after Stage 3 (`W_max`).
    pub w_max: usize,
    /// Stage-2 strip launches.
    pub stage2_strips: usize,
    /// Per-iteration Stage-4 statistics (Table IX).
    pub stage4_iterations: Vec<IterationStats>,
    /// Estimated bus memory per GPU stage (`VRAM_k`, Stages 1-3).
    pub vram_bytes: [u64; 3],
    /// Effective block counts per GPU stage (`B_k` after the minimum-size
    /// requirement; Stage 1 for the full width, Stages 2-3 the minimum
    /// across strips/bands).
    pub effective_blocks: [usize; 3],
    /// Size of the binary alignment representation.
    pub binary_bytes: usize,
    /// External diagonal Stage 1 resumed from (0 = fresh run).
    pub resumed_from_diagonal: usize,
    /// Special rows lost to storage failures: unwritable after retries
    /// (Stage 1) or corrupt on read-back (Stage 2). The run stays
    /// correct — Stage 2 just does more work between surviving rows.
    pub dropped_special_rows: u64,
    /// Special columns lost to storage failures: unwritable (Stage 2) or
    /// corrupt/skipped on read-back (Stage 3) — partitions just grow.
    pub dropped_special_cols: u64,
    /// Stage-1 checkpoint snapshots that could not be written. Non-zero
    /// means resumability is degraded to the last successful snapshot.
    pub checkpoint_failures: u64,
    /// Transient storage write failures recovered by retry.
    pub storage_retries: u64,
    /// Persisted files rejected on reopen (truncated, bit-flipped,
    /// misnamed, foreign job fingerprint).
    pub storage_rejected_files: u64,
    /// Orphaned/stale files swept from the storage directory.
    pub storage_swept_files: u64,
    /// Worker-pool lanes available to this run (including the caller).
    pub pool_lanes: usize,
    /// Queue/condvar handoffs this run performed (one per wavefront
    /// diagonal or partition batch handed to the pool).
    pub pool_handoffs: u64,
    /// Jobs this run spawned on the pool.
    pub pool_tasks: u64,
    /// Mean occupied-lane fraction per handoff, in `[0, 1]`.
    pub pool_busy_ratio: f64,
    /// Tiles computed by the lane-striped vector kernel (Stages 1-3, the
    /// engine-driven stages).
    pub kernel_striped_tiles: u64,
    /// Tiles that attempted the striped kernel but re-ran on the scalar
    /// `i32` kernel after `i16` overflow.
    pub kernel_fallback_tiles: u64,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
}

impl PipelineStats {
    /// Total cells across all stages.
    pub fn total_cells(&self) -> u64 {
        self.stage_cells.iter().sum::<u64>() + self.stage5_cells
    }

    /// Million cell updates per second over the whole run — the paper's
    /// headline MCUPS metric, derived from total cells and wall-clock.
    pub fn mcups(&self) -> f64 {
        if self.total_seconds <= 0.0 {
            return 0.0;
        }
        self.total_cells() as f64 / self.total_seconds / 1e6
    }
}

/// Result of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// The optimal local score (0 = no positive-scoring alignment; all
    /// other fields are then empty/zero).
    pub best_score: Score,
    /// Alignment start node.
    pub start: (usize, usize),
    /// Alignment end node.
    pub end: (usize, usize),
    /// The full optimal alignment.
    pub transcript: Transcript,
    /// Compact binary form (Stage 5 output).
    pub binary: BinaryAlignment,
    /// The final crosspoint chain.
    pub chain: CrosspointChain,
    /// Run statistics.
    pub stats: PipelineStats,
}

/// The CUDAlign 2.0 pipeline.
///
/// Owns the persistent [`WorkerPool`] every stage executes on: the pool is
/// created once from [`PipelineConfig::workers`] and its threads live as
/// long as the pipeline, so repeated [`Pipeline::align`] calls (and all
/// six stages within one call) share the same lanes instead of respawning
/// OS threads per diagonal. Cloning a pipeline shares the pool.
#[derive(Debug, Clone)]
pub struct Pipeline {
    cfg: PipelineConfig,
    pool: Arc<WorkerPool>,
}

impl Pipeline {
    /// Create a pipeline with the given configuration. Spawns the worker
    /// pool (`cfg.workers` lanes; `0` = one per available CPU).
    pub fn new(cfg: PipelineConfig) -> Self {
        let pool = Arc::new(WorkerPool::new(cfg.workers));
        Pipeline { cfg, pool }
    }

    /// Create a pipeline executing on an existing shared pool.
    ///
    /// `cfg.workers` still caps the parallelism each stage *uses* (the
    /// effective width is `min(pool lanes, cfg.workers)`), but no new
    /// threads are spawned.
    pub fn with_pool(cfg: PipelineConfig, pool: Arc<WorkerPool>) -> Self {
        Pipeline { cfg, pool }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// The worker pool stages execute on.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Align `s0` against `s1`, returning the full optimal local
    /// alignment in linear memory.
    pub fn align(&self, s0: &[u8], s1: &[u8]) -> Result<PipelineResult, PipelineError> {
        let cfg = &self.cfg;
        let pool = &*self.pool;
        let pool_before = pool.stats();
        let t_total = Instant::now();
        let mut stats = PipelineStats::default();
        let fingerprint = cfg.job_fingerprint(s0.len(), s1.len());

        // With a checkpoint policy, a matching snapshot from a previous
        // (crashed) run resumes Stage 1 mid-matrix; completed special rows
        // are reopened when the backend is disk-based and in-flight row
        // segments are restored from the combined snapshot. A checkpoint
        // that fails validation (truncated, bit-flipped, foreign job) is
        // discarded and the run starts fresh — always correct, never
        // resumed-from-garbage.
        let resume =
            cfg.checkpoint.as_ref().and_then(|ck| stage1::load_checkpoint(&ck.dir, fingerprint));
        let resuming = resume.is_some();
        let (resume_state, resume_partials) = match resume {
            Some((st, p)) => (Some(st), Some(p)),
            None => (None, None),
        };

        let mut rows: LineStore<gpu_sim::CellHF> = if resuming {
            LineStore::reopen(&cfg.backend, cfg.sra_bytes, "special-row", fingerprint)
                .map_err(|e| PipelineError::Io(e.to_string()))?
        } else {
            LineStore::new(&cfg.backend, cfg.sra_bytes, "special-row", fingerprint)
                .map_err(|e| PipelineError::Io(e.to_string()))?
        };
        if cfg.checkpoint.is_some() {
            // An interrupted run must leave the row files on disk for the
            // resumed run to reopen; Drop would otherwise delete them on
            // the error path. Completed runs clean up explicitly below.
            rows.persist_on_drop(true);
        }
        if let Some(p) = resume_partials {
            if !rows.restore_partials(&p) {
                return Err(PipelineError::Io("corrupt stage-1 checkpoint partials".into()));
            }
        }
        let mut cols: LineStore<gpu_sim::CellHE> =
            LineStore::new(&cfg.backend, cfg.sca_bytes, "special-col", fingerprint)
                .map_err(|e| PipelineError::Io(e.to_string()))?;

        // Stage 1: best score, end point, special rows.
        let t = Instant::now();
        let s1r = match &cfg.checkpoint {
            None => stage1::run(s0, s1, cfg, pool, &mut rows)?,
            Some(ck) => {
                storage::ensure_dir(&ck.dir).map_err(|e| PipelineError::Io(e.to_string()))?;
                let r = stage1::run_resumable(
                    s0,
                    s1,
                    cfg,
                    pool,
                    &mut rows,
                    resume_state,
                    Some((ck.dir.as_path(), ck.every_diagonals)),
                )?;
                storage::remove_file_quiet(&ck.dir.join("stage1.ckpt"));
                r
            }
        };
        stats.stage_seconds[0] = t.elapsed().as_secs_f64();
        stats.stage_cells[0] = s1r.cells;
        stats.resumed_from_diagonal = s1r.resumed_from_diagonal;
        stats.crosspoints[0] = 1;
        stats.special_rows = s1r.special_rows.len();
        stats.flush_interval_blocks = s1r.flush_interval_blocks;
        stats.sra_bytes_used = s1r.flushed_bytes;
        stats.vram_bytes[0] = s1r.vram_bytes;
        stats.effective_blocks[0] = cfg.grid1.effective_blocks(s1.len());
        stats.checkpoint_failures = s1r.checkpoint_failures;
        stats.kernel_striped_tiles += s1r.striped_tiles;
        stats.kernel_fallback_tiles += s1r.fallback_tiles;

        if s1r.best_score <= 0 {
            record_store_stats(&mut stats, rows.stats(), cols.stats());
            rows.clear();
            record_pool_delta(&mut stats, &pool_before, &pool.stats());
            stats.total_seconds = t_total.elapsed().as_secs_f64();
            return Ok(PipelineResult {
                best_score: 0,
                start: (0, 0),
                end: (0, 0),
                transcript: Transcript::new(),
                binary: BinaryAlignment {
                    start: (0, 0),
                    end: (0, 0),
                    score: 0,
                    gaps_s0: Vec::new(),
                    gaps_s1: Vec::new(),
                },
                chain: CrosspointChain::default(),
                stats,
            });
        }

        // Stage 2: partial traceback over special rows. Rows whose disk
        // file turns out corrupt are dropped here (and counted): the
        // matching procedure simply spans a larger area.
        let t = Instant::now();
        let s2r = stage2::run(s0, s1, cfg, pool, s1r.best_score, s1r.end, &mut rows, &mut cols)?;
        stats.stage_seconds[1] = t.elapsed().as_secs_f64();
        stats.stage_cells[1] = s2r.cells;
        stats.crosspoints[1] = s2r.chain.len();
        stats.special_columns = s2r.special_columns.len();
        stats.sca_bytes_used = s2r.col_flushed_bytes;
        stats.stage2_strips = s2r.strips;
        stats.vram_bytes[1] = s2r.vram_bytes;
        stats.effective_blocks[1] = s2r.min_blocks;
        stats.dropped_special_rows += s2r.dropped_rows;
        stats.kernel_striped_tiles += s2r.striped_tiles;
        stats.kernel_fallback_tiles += s2r.fallback_tiles;

        // Stage 3: split partitions on special columns (corrupt columns
        // are skipped and counted; their partitions stay coarse).
        let t = Instant::now();
        let s3r = stage3::run(s0, s1, cfg, pool, &s2r.chain, &cols)?;
        stats.stage_seconds[2] = t.elapsed().as_secs_f64();
        stats.stage_cells[2] = s3r.cells;
        stats.crosspoints[2] = s3r.chain.len();
        stats.h_max = s3r.chain.h_max();
        stats.w_max = s3r.chain.w_max();
        stats.vram_bytes[2] = s3r.vram_bytes;
        stats.effective_blocks[2] = s3r.min_blocks;
        stats.dropped_special_cols += s3r.skipped_columns;
        stats.kernel_striped_tiles += s3r.striped_tiles;
        stats.kernel_fallback_tiles += s3r.fallback_tiles;

        // Stage 4: Myers-Miller until partitions fit.
        let t = Instant::now();
        let s4r = stage4::run(s0, s1, cfg, pool, &s3r.chain)?;
        stats.stage_seconds[3] = t.elapsed().as_secs_f64();
        stats.stage_cells[3] = s4r.cells;
        stats.crosspoints[3] = s4r.chain.len();
        stats.stage4_iterations = s4r.iterations.clone();

        // Stage 5: solve and concatenate.
        let t = Instant::now();
        let s5r = stage5::run(s0, s1, cfg, pool, &s4r.chain)?;
        stats.stage_seconds[4] = t.elapsed().as_secs_f64();
        stats.stage5_cells = s5r.cells;
        stats.binary_bytes = s5r.binary.encode().len();
        record_store_stats(&mut stats, rows.stats(), cols.stats());
        // Success: nothing left to resume, so the persisted row files can
        // go regardless of persist_on_drop.
        rows.clear();
        record_pool_delta(&mut stats, &pool_before, &pool.stats());
        stats.total_seconds = t_total.elapsed().as_secs_f64();

        let start = s5r.binary.start;
        let end = s5r.binary.end;
        debug_assert_eq!(end, s1r.end, "stage 5 must end at the stage-1 endpoint");

        Ok(PipelineResult {
            best_score: s1r.best_score,
            start,
            end,
            transcript: s5r.transcript,
            binary: s5r.binary,
            chain: s4r.chain,
            stats,
        })
    }
}

/// Fold the storage-health counters of the row and column stores into the
/// run's stats (dropped lines are attributed per store, the rest merged).
fn record_store_stats(stats: &mut PipelineStats, rows: StoreStats, cols: StoreStats) {
    stats.dropped_special_rows += rows.dropped_lines;
    stats.dropped_special_cols += cols.dropped_lines;
    let merged = rows.merged(cols);
    stats.storage_retries += merged.write_retries;
    stats.storage_rejected_files += merged.rejected_files;
    stats.storage_swept_files += merged.swept_files;
}

/// Fold the difference between two pool snapshots into per-run stats.
///
/// The pool is shared across runs (and possibly across cloned pipelines),
/// so its counters are cumulative; a run's utilization is the delta. The
/// busy ratio is a per-scope mean, so the delta is recovered from the
/// weighted sums.
fn record_pool_delta(stats: &mut PipelineStats, before: &PoolStats, after: &PoolStats) {
    stats.pool_lanes = after.lanes;
    stats.pool_handoffs = after.scopes.saturating_sub(before.scopes);
    stats.pool_tasks = after.tasks.saturating_sub(before.tasks);
    stats.pool_busy_ratio = if stats.pool_handoffs == 0 {
        0.0
    } else {
        let busy_after = after.busy_ratio * after.scopes as f64;
        let busy_before = before.busy_ratio * before.scopes as f64;
        (busy_after - busy_before) / stats.pool_handoffs as f64
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SraBackend;
    use sw_core::full::sw_local_score;
    use sw_core::Scoring;

    fn lcg(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize & 3]
            })
            .collect()
    }

    fn related(seed: u64, len: usize) -> (Vec<u8>, Vec<u8>) {
        let a = lcg(seed, len);
        let mut b = a.clone();
        for i in (5..b.len()).step_by(29) {
            b[i] = b"ACGT"[(i / 29) % 4];
        }
        b.drain(len / 3..len / 3 + 6);
        let at = b.len() / 2;
        for (off, ch) in [b'T', b'T', b'G', b'G'].iter().enumerate() {
            b.insert(at + off, *ch);
        }
        (a, b)
    }

    fn check_full_run(a: &[u8], b: &[u8], cfg: PipelineConfig) -> PipelineResult {
        let res = Pipeline::new(cfg).align(a, b).unwrap();
        let (ref_score, ref_end) = sw_local_score(a, b, &Scoring::paper());
        assert_eq!(res.best_score, ref_score, "score mismatch");
        if ref_score > 0 {
            assert_eq!(res.end, ref_end, "endpoint mismatch");
            let sub_a = &a[res.start.0..res.end.0];
            let sub_b = &b[res.start.1..res.end.1];
            res.transcript.validate(sub_a, sub_b).unwrap();
            assert_eq!(
                res.transcript.score(sub_a, sub_b, &Scoring::paper()),
                ref_score,
                "transcript must rescore to the optimum"
            );
        }
        res
    }

    #[test]
    fn end_to_end_related_pair() {
        let (a, b) = related(1, 500);
        let res = check_full_run(&a, &b, PipelineConfig::for_tests());
        assert!(res.stats.special_rows > 0);
        assert!(res.stats.crosspoints[1] >= 2);
        assert!(res.stats.crosspoints[3] >= res.stats.crosspoints[2]);
        assert!(res.stats.total_cells() > 0);
    }

    #[test]
    fn end_to_end_identical() {
        let a = lcg(2, 300);
        let res = check_full_run(&a, &a, PipelineConfig::for_tests());
        assert_eq!(res.best_score, 300);
        assert_eq!(res.transcript.cigar(), "300=");
    }

    #[test]
    fn end_to_end_unrelated_small_alignment() {
        let a = lcg(3, 250);
        let b = lcg(77, 250);
        check_full_run(&a, &b, PipelineConfig::for_tests());
    }

    #[test]
    fn end_to_end_empty_and_degenerate() {
        let res = Pipeline::new(PipelineConfig::for_tests()).align(b"", b"").unwrap();
        assert_eq!(res.best_score, 0);
        assert!(res.transcript.is_empty());
        let res2 = Pipeline::new(PipelineConfig::for_tests()).align(b"ACGT", b"").unwrap();
        assert_eq!(res2.best_score, 0);
    }

    #[test]
    fn end_to_end_disk_backend() {
        let (a, b) = related(4, 300);
        let dir = std::env::temp_dir().join(format!("cudalign-e2e-{}", std::process::id()));
        let mut cfg = PipelineConfig::for_tests();
        cfg.backend = SraBackend::Disk(dir.clone());
        check_full_run(&a, &b, cfg);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sra_budget_tradeoff_smaller_budget_more_stage2_cells() {
        let (a, b) = related(5, 600);
        let mut cfg_big = PipelineConfig::for_tests();
        cfg_big.sra_bytes = 1 << 20;
        let big = check_full_run(&a, &b, cfg_big);
        let mut cfg_small = PipelineConfig::for_tests();
        cfg_small.sra_bytes = 8 * (b.len() as u64 + 1); // exactly one row
        let small = check_full_run(&a, &b, cfg_small);
        assert!(big.stats.special_rows > small.stats.special_rows);
        assert!(
            small.stats.stage_cells[1] >= big.stats.stage_cells[1],
            "fewer special rows must not shrink the stage-2 area (small {} vs big {})",
            small.stats.stage_cells[1],
            big.stats.stage_cells[1]
        );
    }

    #[test]
    fn long_gap_sequences() {
        // A large deletion creates a long vertical gap run crossing
        // several special rows.
        let a = lcg(6, 400);
        let mut b = a.clone();
        b.drain(120..280);
        check_full_run(&a, &b, PipelineConfig::for_tests());
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use crate::config::{CheckpointPolicy, SraBackend};
    use sw_core::full::sw_local_score;
    use sw_core::Scoring;

    fn lcg(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize & 3]
            })
            .collect()
    }

    /// A planted snapshot from a "crashed" run must be picked up
    /// automatically and removed after Stage 1 completes; the resumed run
    /// still produces the full optimal alignment.
    #[test]
    fn pipeline_resumes_from_planted_checkpoint() {
        let a = lcg(51, 400);
        let mut b = a.clone();
        for i in (5..b.len()).step_by(17) {
            b[i] = b"ACGT"[(i / 17) % 4];
        }
        let dir = std::env::temp_dir().join(format!("cudalign-pipe-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let mut cfg = PipelineConfig::for_tests();
        cfg.backend = SraBackend::Disk(dir.clone());
        cfg.checkpoint = Some(CheckpointPolicy { dir: dir.clone(), every_diagonals: 9 });

        // "Crashed" run: the observer writes combined snapshots itself;
        // the last one survives as stage1.ckpt alongside the row files.
        {
            let fp = cfg.job_fingerprint(a.len(), b.len());
            let mut rows = LineStore::new(&cfg.backend, cfg.sra_bytes, "special-row", fp).unwrap();
            let pool = WorkerPool::new(cfg.workers);
            let _ = stage1::run_resumable(
                &a,
                &b,
                &cfg,
                &pool,
                &mut rows,
                None,
                Some((dir.as_path(), 9)),
            );
            assert!(dir.join("stage1.ckpt").exists(), "snapshot persisted during the run");
            std::mem::forget(rows); // simulate the crash: files stay behind
        }

        let res = Pipeline::new(cfg).align(&a, &b).unwrap();
        let (ref_score, ref_end) = sw_local_score(&a, &b, &Scoring::paper());
        assert_eq!(res.best_score, ref_score);
        assert_eq!(res.end, ref_end);
        res.transcript.validate(&a[res.start.0..res.end.0], &b[res.start.1..res.end.1]).unwrap();
        assert!(
            !dir.join("stage1.ckpt").exists(),
            "snapshot must be cleared after a completed stage 1"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Without a planted snapshot the checkpoint policy is transparent.
    #[test]
    fn checkpointing_does_not_change_results() {
        let a = lcg(52, 300);
        let b = lcg(53, 300);
        let plain = Pipeline::new(PipelineConfig::for_tests()).align(&a, &b).unwrap();
        let dir = std::env::temp_dir().join(format!("cudalign-ckpt2-{}", std::process::id()));
        let mut cfg = PipelineConfig::for_tests();
        cfg.checkpoint = Some(CheckpointPolicy { dir: dir.clone(), every_diagonals: 5 });
        let ck = Pipeline::new(cfg).align(&a, &b).unwrap();
        assert_eq!(plain.best_score, ck.best_score);
        assert_eq!(plain.transcript.ops(), ck.transcript.ops());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
