// lint-fixture path=crates/cudalign/src/pipeline.rs rule=clock-injection expect=1
// The one live violation: a direct wall-clock read in cudalign library
// code outside obs.rs, bypassing the injected obs::Clock.
pub fn timed_stage() -> std::time::Duration {
    let t0 = std::time::Instant::now();
    t0.elapsed()
}

// Must NOT fire: stats structs may *store* instants; only sampling them
// outside the injected clock is banned.
pub struct StageStats {
    pub started: Option<std::time::Instant>,
    pub cells: u64,
}

pub fn mentions_only() {
    // Instant in a comment is fine
    let s = "SystemTime in a string is fine";
    let _ = s;
}
