//! Semi-global alignment — the third flavour of Section II's taxonomy
//! ("composed of prefixes or suffixes of those sequences, where
//! leading/trailing gaps are ignored").
//!
//! This is the *overlap* formulation: leading gaps are free in either
//! sequence (the DP's first row and column are zero, without clamping the
//! interior) and trailing gaps are free in either sequence (the score is
//! the maximum over the last row and column). CUDAlign's Stage 2 is a
//! reverse semi-global pass of exactly this character; the standalone
//! implementation here completes the library's alignment taxonomy and
//! serves as an extra cross-check for the edge-handling machinery.

use crate::full::better_endpoint;
use crate::scoring::{Score, Scoring, NEG_INF};
use crate::transcript::{EditOp, Transcript};

/// Result of a semi-global (overlap) alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemiglobalAlignment {
    /// Alignment score (free leading/trailing gaps excluded).
    pub score: Score,
    /// Start node `(i, j)`: at least one coordinate is 0.
    pub start: (usize, usize),
    /// End node `(i, j)`: at least one coordinate is on the last row or
    /// column.
    pub end: (usize, usize),
    /// The scored portion of the alignment (between `start` and `end`).
    pub transcript: Transcript,
}

const H_SRC_MASK: u8 = 0b0011;
const H_START: u8 = 0;
const H_DIAG: u8 = 1;
const H_FROM_E: u8 = 2;
const H_FROM_F: u8 = 3;
const E_EXTEND: u8 = 0b0100;
const F_EXTEND: u8 = 0b1000;

/// Overlap-align `a` against `b`: the best-scoring path from the top or
/// left border to the bottom or right border.
///
/// Returns `None` when both sequences are empty.
pub fn semiglobal_align(a: &[u8], b: &[u8], scoring: &Scoring) -> Option<SemiglobalAlignment> {
    let (m, n) = (a.len(), b.len());
    if m == 0 && n == 0 {
        return None;
    }
    let row = n + 1;
    let mut dirs = vec![0u8; (m + 1) * row];

    let mut h_prev = vec![0 as Score; n + 1];
    let mut h_cur = vec![0 as Score; n + 1];
    let mut f = vec![NEG_INF; n + 1];

    // Best over the bottom row and right column. The border cells (m, 0)
    // and (0, n) are valid zero-score endpoints: an empty overlap.
    let mut best = (0 as Score, m, 0usize);
    if better_endpoint((0, 0, n), best) {
        best = (0, 0, n);
    }
    let consider = |h: Score, i: usize, j: usize, best: &mut (Score, usize, usize)| {
        if better_endpoint((h, i, j), *best) {
            *best = (h, i, j);
        }
    };
    if m == 0 || n == 0 {
        // Degenerate: the whole alignment is free gaps; score 0 at origin.
        return Some(SemiglobalAlignment {
            score: 0,
            start: (0, 0),
            end: (0, 0),
            transcript: Transcript::new(),
        });
    }

    for i in 1..=m {
        let ai = a[i - 1];
        let mut e = NEG_INF;
        h_cur[0] = 0; // free leading gaps in S1
        for j in 1..=n {
            let mut d = 0u8;
            let e_ext = e - scoring.gap_ext;
            let e_open = h_cur[j - 1] - scoring.gap_first;
            e = if e_ext >= e_open {
                d |= E_EXTEND;
                e_ext
            } else {
                e_open
            };
            let f_ext = f[j] - scoring.gap_ext;
            let f_open = h_prev[j] - scoring.gap_first;
            f[j] = if f_ext >= f_open {
                d |= F_EXTEND;
                f_ext
            } else {
                f_open
            };
            let diag = h_prev[j - 1] + scoring.subst(ai, b[j - 1]);
            let mut h = diag;
            let mut src = H_DIAG;
            if e > h {
                h = e;
                src = H_FROM_E;
            }
            if f[j] > h {
                h = f[j];
                src = H_FROM_F;
            }
            // The path may *start* here from the free border (row 0 or
            // column 0 neighbours are encoded by the borders themselves;
            // an explicit fresh start only matters for i==1 or j==1 where
            // diag comes from a zero border — already covered).
            d |= src;
            dirs[i * row + j] = d;
            h_cur[j] = h;
            if i == m || j == n {
                consider(h, i, j, &mut best);
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
    }

    let (score, ei, ej) = best;
    // Traceback until the free border (row 0 or column 0) is reached.
    let (mut i, mut j) = (ei, ej);
    let mut state = 0u8;
    let mut ops = Vec::new();
    loop {
        if (i == 0 || j == 0) && state == 0 {
            break;
        }
        let d = dirs[i * row + j];
        match state {
            0 => match d & H_SRC_MASK {
                H_DIAG => {
                    ops.push(EditOp::Match);
                    i -= 1;
                    j -= 1;
                }
                H_FROM_E => state = 1,
                H_FROM_F => state = 2,
                H_START => break,
                _ => unreachable!(),
            },
            1 => {
                ops.push(EditOp::GapS0);
                let extend = d & E_EXTEND != 0;
                j -= 1;
                state = if extend { 1 } else { 0 };
            }
            _ => {
                ops.push(EditOp::GapS1);
                let extend = d & F_EXTEND != 0;
                i -= 1;
                state = if extend { 2 } else { 0 };
            }
        }
    }
    ops.reverse();
    // Classify diagonals.
    let (si, sj) = (i, j);
    let (mut ci, mut cj) = (si, sj);
    for op in ops.iter_mut() {
        match op {
            EditOp::Match | EditOp::Mismatch => {
                *op = if a[ci] == b[cj] { EditOp::Match } else { EditOp::Mismatch };
                ci += 1;
                cj += 1;
            }
            EditOp::GapS0 => cj += 1,
            EditOp::GapS1 => ci += 1,
        }
    }
    Some(SemiglobalAlignment {
        score,
        start: (si, sj),
        end: (ei, ej),
        transcript: Transcript::from_ops(ops),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SC: Scoring = Scoring::paper();

    #[test]
    fn contained_query_aligns_fully() {
        // b is a substring of a: semi-global must align all of b with no
        // penalty for a's overhangs.
        let a = b"TTTTACGTACGTTTTT";
        let b = b"ACGTACGT";
        let r = semiglobal_align(a, b, &SC).unwrap();
        assert_eq!(r.score, 8);
        assert_eq!(r.start, (4, 0));
        assert_eq!(r.end, (12, 8));
        assert_eq!(r.transcript.cigar(), "8=");
    }

    #[test]
    fn overlap_suffix_prefix() {
        // Suffix of a overlaps prefix of b (the assembly use-case).
        let a = b"GGGGGACGTACGT";
        let b = b"ACGTACGTCCCCC";
        let r = semiglobal_align(a, b, &SC).unwrap();
        assert_eq!(r.score, 8);
        assert_eq!(r.start, (5, 0));
        assert_eq!(r.end, (13, 8));
    }

    #[test]
    fn semiglobal_at_least_local_for_contained_alignments() {
        // Any path from border to border is also scored by semi-global;
        // unlike SW it cannot clip interior negatives, so it is bounded
        // above by the local score plus free-end savings... here simply
        // sanity-check internal consistency on a mixed pair.
        let a = b"ACGTGGGGACGT";
        let b = b"ACGTACGT";
        let r = semiglobal_align(a, b, &SC).unwrap();
        let sub_a = &a[r.start.0..r.end.0];
        let sub_b = &b[r.start.1..r.end.1];
        r.transcript.validate(sub_a, sub_b).unwrap();
        assert_eq!(r.transcript.score(sub_a, sub_b, &SC), r.score);
    }

    #[test]
    fn start_and_end_touch_free_borders() {
        let a = b"CATTAGGACCA";
        let b = b"TTAGGA";
        let r = semiglobal_align(a, b, &SC).unwrap();
        assert!(r.start.0 == 0 || r.start.1 == 0);
        assert!(r.end.0 == a.len() || r.end.1 == b.len());
    }

    #[test]
    fn degenerate_inputs() {
        assert!(semiglobal_align(b"", b"", &SC).is_none());
        let r = semiglobal_align(b"ACGT", b"", &SC).unwrap();
        assert_eq!(r.score, 0);
        assert!(r.transcript.is_empty());
        let r2 = semiglobal_align(b"", b"ACGT", &SC).unwrap();
        assert_eq!(r2.score, 0);
    }

    #[test]
    fn unrelated_pair_prefers_empty_overlap() {
        // Fully unrelated single characters: the empty overlap (score 0,
        // both free-gapped) beats the mismatch (-3).
        let r = semiglobal_align(b"A", b"C", &SC).unwrap();
        assert_eq!(r.score, 0);
        assert!(r.transcript.is_empty());
        assert_eq!(r.start, r.end);
    }
}
