//! Pooled execution is observationally identical to serial execution.
//!
//! The persistent worker pool (`gpu_sim::exec::WorkerPool`) replaces the
//! per-diagonal thread spawns of the original engine. These properties
//! pin down the contract the pipeline relies on: for ANY grid geometry
//! and ANY pool width, a pooled launch produces exactly the same scores,
//! endpoints, buses and observer event stream (hence the same special
//! rows) as the single-threaded run.

use gpu_sim::wavefront::{run, run_pooled, RegionJob};
use gpu_sim::{BlockCoords, CellHE, CellHF, GridSpec, Mode, TileOutcome, WorkerPool};
use proptest::prelude::*;
use std::ops::ControlFlow;
use sw_core::scoring::Scoring;
use sw_core::transcript::EdgeState;

fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"ACGT".to_vec()), 0..max_len)
}

/// Sequences long enough that, with a small grid, every tile clears the
/// striped kernel's `LANES x LANES` eligibility floor.
fn dna_long() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"ACGT".to_vec()), 200..600)
}

/// Grids coarse enough that tiles stay at least `LANES` wide/tall for
/// `dna_long` inputs: `alpha * threads >= 16` keeps every full block at
/// least 16 rows high, and at most 4 column groups over >= 200 columns
/// keeps every tile at least 16 columns wide.
fn coarse_grids() -> impl Strategy<Value = GridSpec> {
    (2usize..5, 4usize..9, 4usize..7).prop_map(|(blocks, threads, alpha)| GridSpec {
        blocks,
        threads,
        alpha,
    })
}

fn grids() -> impl Strategy<Value = GridSpec> {
    (1usize..8, 1usize..8, 1usize..5).prop_map(|(blocks, threads, alpha)| GridSpec {
        blocks,
        threads,
        alpha,
    })
}

/// One observer event: block coordinates plus its bottom/right border
/// contents.
type BlockEvent = ((usize, usize), Vec<CellHF>, Vec<CellHE>);

/// Records the full observer event stream, one entry per block. Stage 1
/// assembles special rows from exactly these bottom borders, so equal
/// streams imply byte-equal special rows in the SRA.
#[derive(Default)]
struct Recorder {
    events: Vec<BlockEvent>,
}

impl gpu_sim::WavefrontObserver for Recorder {
    fn on_block(
        &mut self,
        block: &BlockCoords,
        _outcome: &TileOutcome,
        bottom: &[CellHF],
        right: &[CellHE],
    ) -> ControlFlow<()> {
        self.events.push(((block.r, block.c), bottom.to_vec(), right.to_vec()));
        ControlFlow::Continue(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Local mode (stage 1): same best score, same endpoint, same buses,
    /// same observer stream for pool widths 1, 2 and 8.
    #[test]
    fn pooled_local_equals_serial(a in dna(140), b in dna(140), grid in grids()) {
        let serial_job = RegionJob {
            a: &a, b: &b, scoring: Scoring::paper(), mode: Mode::Local,
            grid, workers: 1, watch: None,
        };
        let mut serial_obs = Recorder::default();
        let serial = run(&serial_job, &mut serial_obs);

        for lanes in [1usize, 2, 8] {
            let pool = WorkerPool::new(lanes);
            let job = RegionJob { workers: lanes, ..serial_job };
            let mut obs = Recorder::default();
            let res = run_pooled(&pool, &job, &mut obs).expect("no worker panic");
            prop_assert_eq!(res.best, serial.best, "best, lanes={}", lanes);
            prop_assert_eq!(res.cells, serial.cells, "cells, lanes={}", lanes);
            prop_assert_eq!(&res.hbus, &serial.hbus, "hbus, lanes={}", lanes);
            prop_assert_eq!(&res.vbus, &serial.vbus, "vbus, lanes={}", lanes);
            prop_assert_eq!(
                obs.events.len(), serial_obs.events.len(),
                "event count, lanes={}", lanes
            );
            prop_assert!(
                obs.events == serial_obs.events,
                "observer stream diverged with lanes={}", lanes
            );
        }
    }

    /// Global mode (stages 2-3 strips): identical frontier buses.
    #[test]
    fn pooled_global_equals_serial(
        a in dna(120), b in dna(120), grid in grids(),
        start in proptest::sample::select(vec![EdgeState::Diagonal, EdgeState::GapS0, EdgeState::GapS1]),
    ) {
        let serial_job = RegionJob {
            a: &a, b: &b, scoring: Scoring::paper(), mode: Mode::global(start),
            grid, workers: 1, watch: None,
        };
        let mut serial_obs = Recorder::default();
        let serial = run(&serial_job, &mut serial_obs);

        for lanes in [2usize, 8] {
            let pool = WorkerPool::new(lanes);
            let job = RegionJob { workers: lanes, ..serial_job };
            let mut obs = Recorder::default();
            let res = run_pooled(&pool, &job, &mut obs).expect("no worker panic");
            prop_assert_eq!(&res.hbus, &serial.hbus, "hbus, lanes={}", lanes);
            prop_assert_eq!(&res.vbus, &serial.vbus, "vbus, lanes={}", lanes);
            prop_assert!(obs.events == serial_obs.events, "stream, lanes={}", lanes);
        }
    }

    /// A single pool serves many launches of different shapes without its
    /// lane count or queue state leaking between runs: interleaving jobs
    /// on one shared pool gives the same results as fresh pools.
    #[test]
    fn shared_pool_reuse_is_stateless(a in dna(100), b in dna(100), g1 in grids(), g2 in grids()) {
        let pool = WorkerPool::new(4);
        let job1 = RegionJob {
            a: &a, b: &b, scoring: Scoring::paper(), mode: Mode::Local,
            grid: g1, workers: 0, watch: None,
        };
        let job2 = RegionJob { grid: g2, ..job1 };
        let first_1 = run_pooled(&pool, &job1, &mut gpu_sim::wavefront::NoObserver).unwrap();
        let first_2 = run_pooled(&pool, &job2, &mut gpu_sim::wavefront::NoObserver).unwrap();
        // Re-run in the opposite order on the same pool.
        let second_2 = run_pooled(&pool, &job2, &mut gpu_sim::wavefront::NoObserver).unwrap();
        let second_1 = run_pooled(&pool, &job1, &mut gpu_sim::wavefront::NoObserver).unwrap();
        prop_assert_eq!(first_1.best, second_1.best);
        prop_assert_eq!(first_1.hbus, second_1.hbus);
        prop_assert_eq!(first_2.best, second_2.best);
        prop_assert_eq!(first_2.hbus, second_2.hbus);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The vectorized (lane-striped) kernel is the default path, so the
    /// pooled-equivalence contract must hold while it is actually
    /// engaged. Sequences here are long and grids coarse, so every tile
    /// clears the striped eligibility floor; we assert that striped
    /// tiles really occurred, that the kernel-path counters are
    /// deterministic across pool widths, and that results are identical
    /// between a serial run and an 8-lane pool.
    #[test]
    fn pooled_equivalence_holds_with_striped_kernel(
        a in dna_long(), b in dna_long(), grid in coarse_grids(),
        local in any::<bool>(),
    ) {
        let mode = if local { Mode::Local } else { Mode::global(EdgeState::Diagonal) };
        let serial_job = RegionJob {
            a: &a, b: &b, scoring: Scoring::paper(), mode,
            grid, workers: 1, watch: None,
        };
        let mut serial_obs = Recorder::default();
        let serial = run(&serial_job, &mut serial_obs);
        prop_assert!(
            serial.striped_tiles > 0,
            "expected striped tiles with grid {:?} on {}x{}", grid, a.len(), b.len()
        );
        // The paper scoring on zero/Diagonal borders never leaves the
        // i16 window at these lengths, so nothing should fall back.
        prop_assert_eq!(serial.fallback_tiles, 0, "unexpected scalar fallback");

        for lanes in [1usize, 8] {
            let pool = WorkerPool::new(lanes);
            let job = RegionJob { workers: lanes, ..serial_job };
            let mut obs = Recorder::default();
            let res = run_pooled(&pool, &job, &mut obs).expect("no worker panic");
            prop_assert_eq!(res.best, serial.best, "best, lanes={}", lanes);
            prop_assert_eq!(res.cells, serial.cells, "cells, lanes={}", lanes);
            prop_assert_eq!(res.striped_tiles, serial.striped_tiles, "striped, lanes={}", lanes);
            prop_assert_eq!(res.fallback_tiles, serial.fallback_tiles, "fallback, lanes={}", lanes);
            prop_assert_eq!(&res.hbus, &serial.hbus, "hbus, lanes={}", lanes);
            prop_assert_eq!(&res.vbus, &serial.vbus, "vbus, lanes={}", lanes);
            prop_assert!(
                obs.events == serial_obs.events,
                "observer stream diverged with lanes={}", lanes
            );
        }
    }
}
