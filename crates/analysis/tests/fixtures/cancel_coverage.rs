// lint-fixture path=crates/cudalign/src/stage1.rs rule=cancel-coverage expect=1
// Supervised hot-path loops must reach a cancellation check: the
// uncovered loop fires; the polled and allowed loops do not.
pub fn uncovered(xs: &[u64]) -> u64 {
    let mut acc = 0;
    for &x in xs {
        acc += x;
    }
    acc
}

// Must NOT fire: polls the run control every iteration.
pub fn polled(xs: &[u64], ctrl: &RunControl) -> Result<u64, StageError> {
    let mut acc = 0;
    for &x in xs {
        ctrl.check(0)?;
        acc += x;
    }
    Ok(acc)
}

// Must NOT fire: the condition itself is the cancellation check.
pub fn condition_polled(ctrl: &RunControl) -> u64 {
    let mut acc = 0;
    while !ctrl.is_cancelled() {
        acc += 1;
    }
    acc
}

// Must NOT fire: justified allow on a provably bounded loop.
pub fn bounded() -> u64 {
    let mut acc = 0;
    // lint: allow(cancel-coverage): bounded to four iterations, no blocking work
    for i in 0..4 {
        acc += i;
    }
    acc
}
