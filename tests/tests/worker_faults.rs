//! Fault handling in the pooled executor: an aborting observer and a
//! panicking worker must both surface as clean, typed results — never a
//! process abort — and must leave the shared pool fully reusable.

use cudalign::{Pipeline, PipelineConfig, PipelineError};
use gpu_sim::exec::fault;
use gpu_sim::wavefront::{run_pooled, RegionJob};
use gpu_sim::{BlockCoords, CellHE, CellHF, GridSpec, Mode, TileOutcome, WorkerPool};
use integration_tests::edited_pair;
use std::ops::ControlFlow;
use std::sync::Mutex;
use sw_core::scoring::Scoring;

/// The fault hook is process-global state, so the tests in this file
/// must not interleave.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Disarms the hook even when the test body panics, so one failing test
/// cannot cascade into the others.
struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        fault::disarm();
    }
}

/// Observer that aborts the launch after `after` blocks — deliberately
/// not on a diagonal boundary, so the break lands mid-diagonal with
/// sibling jobs still queued on the pool.
struct BreakAfter {
    after: usize,
    seen: usize,
}

impl gpu_sim::WavefrontObserver for BreakAfter {
    fn on_block(
        &mut self,
        _block: &BlockCoords,
        _outcome: &TileOutcome,
        _bottom: &[CellHF],
        _right: &[CellHE],
    ) -> ControlFlow<()> {
        self.seen += 1;
        if self.seen > self.after {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }
}

fn job<'a>(a: &'a [u8], b: &'a [u8]) -> RegionJob<'a> {
    RegionJob {
        a,
        b,
        scoring: Scoring::paper(),
        mode: Mode::Local,
        grid: GridSpec { blocks: 4, threads: 4, alpha: 2 },
        workers: 4,
        watch: None,
    }
}

#[test]
fn observer_break_mid_diagonal_is_clean_and_pool_survives() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (a, b) = edited_pair(31, 400, 13);
    let pool = WorkerPool::new(4);

    let full =
        run_pooled(&pool, &job(&a, &b), &mut gpu_sim::wavefront::NoObserver).expect("clean run");
    assert!(!full.aborted);

    let mut obs = BreakAfter { after: 3, seen: 0 };
    let res = run_pooled(&pool, &job(&a, &b), &mut obs).expect("abort is not a panic");
    assert!(res.aborted, "observer break must mark the launch aborted");
    assert!(res.diagonals_run < full.diagonals_run, "launch must stop early");

    // The pool took no damage: the same launch completes afterwards with
    // the same result as before the abort.
    let again = run_pooled(&pool, &job(&a, &b), &mut gpu_sim::wavefront::NoObserver)
        .expect("pool reusable after abort");
    assert!(!again.aborted);
    assert_eq!(again.best, full.best);
    assert_eq!(again.hbus, full.hbus);
}

#[test]
fn injected_worker_panic_surfaces_as_pipeline_error() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _disarm = Disarm;
    let (a, b) = edited_pair(32, 500, 11);
    let mut cfg = PipelineConfig::for_tests();
    cfg.workers = 4;
    let pipeline = Pipeline::new(cfg);

    // Arm the hook a few jobs in, so the panic lands in a worker while
    // siblings of the same diagonal are in flight.
    fault::arm(5);
    let err = pipeline.align(&a, &b).expect_err("armed run must fail");
    match &err {
        PipelineError::Worker(msg) => {
            assert!(
                msg.contains(fault::INJECTED_MSG),
                "panic message must carry the injected marker, got: {msg}"
            );
        }
        other => panic!("expected PipelineError::Worker, got: {other}"),
    }

    // The pool is not poisoned: the SAME pipeline (same pool) succeeds
    // once the fault is disarmed.
    fault::disarm();
    let ok = pipeline.align(&a, &b).expect("pool must survive a worker panic");
    assert!(ok.best_score > 0);
    ok.transcript
        .validate(&a[ok.start.0..ok.end.0], &b[ok.start.1..ok.end.1])
        .expect("retry produces a valid alignment");
}

#[test]
fn panic_in_every_stage_entry_is_recoverable() {
    let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _disarm = Disarm;
    let (a, b) = edited_pair(33, 350, 9);
    let mut cfg = PipelineConfig::for_tests();
    cfg.workers = 4;
    let pipeline = Pipeline::new(cfg);

    // Sweep the arm point across the run so the injected panic hits pool
    // jobs belonging to different stages; each must fail cleanly and the
    // next (disarmed or later-armed) run must succeed or fail cleanly too.
    let reference = pipeline.align(&a, &b).expect("baseline");
    for arm_at in [0u64, 1, 17, 120] {
        fault::arm(arm_at);
        match pipeline.align(&a, &b) {
            Err(PipelineError::Worker(msg)) => {
                assert!(msg.contains(fault::INJECTED_MSG), "arm_at={arm_at}: {msg}");
            }
            Err(other) => panic!("arm_at={arm_at}: expected Worker error, got {other}"),
            // A large arm point may never fire inside this run; that
            // leaves the budget armed for the next iteration's earlier
            // jobs, so tolerate success only after disarming.
            Ok(res) => {
                assert_eq!(res.best_score, reference.best_score, "arm_at={arm_at}");
            }
        }
        fault::disarm();
        let retry = pipeline.align(&a, &b).expect("pool survives, arm_at={arm_at}");
        assert_eq!(retry.best_score, reference.best_score);
        assert_eq!(retry.binary.encode(), reference.binary.encode());
    }
}
