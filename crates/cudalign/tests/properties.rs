//! End-to-end property tests: the six-stage pipeline must reproduce the
//! quadratic-space reference on arbitrary inputs, for arbitrary grid
//! shapes and SRA budgets.

use cudalign::{Pipeline, PipelineConfig};
use gpu_sim::GridSpec;
use proptest::prelude::*;
use sw_core::full::sw_local_score;
use sw_core::Scoring;

fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"ACGT".to_vec()), 0..max_len)
}

/// Pairs with planted structure so alignments are non-trivial.
fn related_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (dna(400), any::<u64>()).prop_map(|(a, seed)| {
        let mut b = a.clone();
        let mut x = seed | 1;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..6 {
            if b.len() < 4 {
                break;
            }
            let r = step();
            let pos = (r as usize >> 8) % b.len();
            match r % 3 {
                0 => b[pos] = b"ACGT"[(r as usize >> 40) & 3],
                1 => {
                    let del = (1 + (r >> 16) as usize % 20).min(b.len() - pos);
                    b.drain(pos..pos + del);
                }
                _ => {
                    for k in 0..(1 + (r >> 16) as usize % 12) {
                        b.insert(pos, b"ACGT"[(r as usize >> (2 * k)) & 3]);
                    }
                }
            }
        }
        (a, b)
    })
}

fn small_grids() -> impl Strategy<Value = GridSpec> {
    (1usize..6, 1usize..6, 1usize..4)
        .prop_map(|(blocks, threads, alpha)| GridSpec { blocks, threads, alpha })
}

fn check(a: &[u8], b: &[u8], cfg: PipelineConfig) -> Result<(), TestCaseError> {
    let res = Pipeline::new(cfg).align(a, b).unwrap();
    let (ref_score, ref_end) = sw_local_score(a, b, &Scoring::paper());
    prop_assert_eq!(res.best_score, ref_score);
    if ref_score > 0 {
        prop_assert_eq!(res.end, ref_end);
        let sub_a = &a[res.start.0..res.end.0];
        let sub_b = &b[res.start.1..res.end.1];
        res.transcript.validate(sub_a, sub_b).unwrap();
        prop_assert_eq!(res.transcript.score(sub_a, sub_b, &Scoring::paper()), ref_score);
        // The binary form reconstructs the same transcript.
        let t2 = res.binary.to_transcript(a, b);
        prop_assert_eq!(t2.ops(), res.transcript.ops());
        // The final chain telescopes.
        res.chain.validate().unwrap();
        let total: i32 = res.chain.partitions().map(|p| p.score()).sum();
        prop_assert_eq!(total, ref_score);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pipeline_equals_reference((a, b) in related_pair()) {
        check(&a, &b, PipelineConfig::for_tests())?;
    }

    #[test]
    fn pipeline_invariant_to_grid_shape((a, b) in related_pair(), g1 in small_grids(), g23 in small_grids()) {
        let mut cfg = PipelineConfig::for_tests();
        cfg.grid1 = g1;
        cfg.grid23 = g23;
        check(&a, &b, cfg)?;
    }

    #[test]
    fn pipeline_invariant_to_sra_budget((a, b) in related_pair(), rows_budget in 0u64..64, cols_budget in 0u64..64) {
        let mut cfg = PipelineConfig::for_tests();
        // Budgets in units of "rows": 0 means no special rows at all.
        cfg.sra_bytes = rows_budget * 8 * (b.len() as u64 + 1);
        cfg.sca_bytes = cols_budget * 8 * 64;
        check(&a, &b, cfg)?;
    }

    #[test]
    fn pipeline_invariant_to_stage4_flags((a, b) in related_pair(), orth in any::<bool>(), bal in any::<bool>(), max_part in 4usize..64) {
        let mut cfg = PipelineConfig::for_tests();
        cfg.orthogonal_stage4 = orth;
        cfg.balanced_split = bal;
        cfg.max_partition_size = max_part;
        check(&a, &b, cfg)?;
    }

    #[test]
    fn pipeline_on_unrelated_random(a in dna(300), b in dna(300)) {
        check(&a, &b, PipelineConfig::for_tests())?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Decoding arbitrary bytes must never panic — it either parses or
    /// reports a structured error (failure injection for Stage 6).
    #[test]
    fn binary_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = cudalign::BinaryAlignment::decode(&bytes);
    }

    /// Corrupting an encoded alignment must not panic the decoder; when
    /// it still parses, re-encoding is stable.
    #[test]
    fn binary_decode_survives_corruption((a, b) in related_pair(), flip in any::<(usize, u8)>()) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let res = Pipeline::new(PipelineConfig::for_tests()).align(&a, &b).unwrap();
        prop_assume!(res.best_score > 0);
        let mut bytes = res.binary.encode();
        let (pos, val) = flip;
        let k = pos % bytes.len();
        bytes[k] ^= val | 1;
        if let Ok(decoded) = cudalign::BinaryAlignment::decode(&bytes) {
            let re = decoded.encode();
            let back = cudalign::BinaryAlignment::decode(&re).unwrap();
            prop_assert_eq!(back, decoded);
        }
    }
}
