//! Plain-text table rendering for the `repro` binary.

/// A printable table with a title and optional footnote.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
    /// Footnote printed below.
    pub note: String,
}

impl Report {
    /// New report with a title and headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Report {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            note: String::new(),
        }
    }

    /// Append a row (stringifies each cell).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len().max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:>width$}  ", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        if !self.note.is_empty() {
            out.push_str(&format!("note: {}\n", self.note));
        }
        out
    }

    /// Print to stdout; also appends JSON to `REPRO_JSON` when that env
    /// var names a file (one JSON object per report, newline-delimited).
    pub fn print(&self) {
        print!("{}", self.render());
        if let Ok(path) = std::env::var("REPRO_JSON") {
            use std::io::Write;
            if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
                let _ = writeln!(f, "{}", self.to_json());
            }
        }
    }

    /// Serialize as a JSON object (hand-rolled: the workspace's dependency
    /// policy excludes serde_json).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        let header: Vec<String> = self.header.iter().map(|h| esc(h)).collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.iter().map(|c| esc(c)).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        format!(
            "{{\"title\":{},\"header\":[{}],\"rows\":[{}],\"note\":{}}}",
            esc(&self.title),
            header.join(","),
            rows.join(","),
            esc(&self.note)
        )
    }
}

/// Seconds with sensible precision.
pub fn secs(s: f64) -> String {
    if s < 0.0005 {
        "<0.001".to_string()
    } else if s < 10.0 {
        format!("{s:.3}")
    } else {
        format!("{s:.1}")
    }
}

/// Big integers with thousands separators.
pub fn big(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Scientific notation like the paper's `1.54e+15`.
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    format!("{v:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut r = Report::new("T", &["a", "bbbb"]);
        r.row(&["1".into(), "2".into()]);
        r.row(&["333".into(), "4".into()]);
        let s = r.render();
        assert!(s.contains("== T =="));
        let lines: Vec<&str> = s.lines().collect();
        // lines: "", "== T ==", header, separator, rows...
        assert!(lines[2].contains('a'));
        assert!(lines[4].trim_start().starts_with('1'));
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(0.0001), "<0.001");
        assert_eq!(secs(1.23456), "1.235");
        assert_eq!(secs(123.456), "123.5");
        assert_eq!(big(1234567), "1,234,567");
        assert_eq!(big(12), "12");
        assert_eq!(sci(0.0), "0");
        assert!(sci(1.54e15).starts_with("1.54e15") || sci(1.54e15).contains("e15"));
    }
}

#[cfg(test)]
mod json_tests {
    use super::*;

    #[test]
    fn json_escapes_and_structures() {
        let mut r = Report::new("T \"x\"", &["a", "b"]);
        r.row(&["1".into(), "two\nlines".into()]);
        r.note = "n".into();
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"title\":\"T \\\"x\\\"\""), "{j}");
        assert!(j.contains("\"rows\":[[\"1\",\"two\\nlines\"]]"), "{j}");
        // Paranoid structural check without a JSON parser: balanced quotes.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn json_empty_report() {
        let r = Report::new("empty", &[]);
        let j = r.to_json();
        assert!(j.contains("\"rows\":[]"));
        assert!(j.contains("\"note\":\"\""));
    }
}
