// lint-fixture path=crates/seqio/src/fixture.rs rule=non-exhaustive-errors expect=1
// The one live violation: a public error enum downstream can match
// exhaustively, freezing its variant set forever.
#[derive(Debug)]
pub enum BadError {
    Broken(String),
}

// Must NOT fire: the required form.
#[derive(Debug)]
#[non_exhaustive]
pub enum GoodError {
    Broken(String),
}

/// Doc comments between the attributes and the item are fine.
#[non_exhaustive]
#[derive(Debug)]
pub enum AlsoGoodError {
    Broken(String),
}

// Must NOT fire: not an error enum, and not public.
pub enum Mode {
    Fast,
}
#[allow(dead_code)]
enum PrivateError {
    Internal,
}
