// lint-fixture path=crates/cudalign/src/seqio.rs rule=typed-errors expect=1
// Public Result fns must return typed error enums: the stringly
// signature fires; typed and io::Result signatures do not.

/// Typed failure used by the clean signatures below.
#[non_exhaustive]
#[derive(Debug)]
pub enum FixtureError {
    /// Input was empty.
    Empty,
}

pub fn stringly(x: u32) -> Result<u32, String> {
    if x == 0 {
        return Err("zero".to_string());
    }
    Ok(x)
}

// Must NOT fire: a typed #[non_exhaustive] error enum.
pub fn typed(x: u32) -> Result<u32, FixtureError> {
    if x == 0 {
        return Err(FixtureError::Empty);
    }
    Ok(x)
}

// Must NOT fire: a single-argument Result alias carries its own typed error.
pub fn io_like(x: u32) -> std::io::Result<u32> {
    Ok(x)
}

// Must NOT fire: private fns may keep stringly plumbing internally.
fn internal(x: u32) -> Result<u32, String> {
    Ok(x)
}
