//! The external-diagonal wavefront scheduler.
//!
//! Blocks of one external diagonal are mutually independent: each reads
//! the horizontal-bus segment written by the block above it (previous
//! diagonal) and the vertical-bus segment written by the block to its left
//! (also previous diagonal).
//!
//! Two schedulers implement that dependence structure:
//!
//! * **Diagonal-barrier** (the original engine, still used for serial
//!   runs): walk diagonals in order, execute each diagonal's blocks
//!   concurrently on the persistent [`crate::exec::WorkerPool`] (one
//!   scope per diagonal is the barrier), then commit results in block
//!   order. Simple, but every diagonal ends in a global barrier and a
//!   block's tile data bounces between workers' caches from one diagonal
//!   to the next.
//!
//! * **Column-strip** (parallel runs): each worker *owns* a contiguous
//!   strip of block-columns for the whole run ([`StripPlan`]), walking it
//!   row-major so tiles stay hot in one worker's cache. The only
//!   cross-strip dependence is the vertical bus / corner hand-off along
//!   the strip boundary, signalled point-to-point by a published-row
//!   counter per strip — several block rows are batched per publish
//!   ([`StripPlan::batch_rows`]) to amortize signalling, and there is no
//!   global barrier anywhere. When a plan has more strips than workers
//!   (ragged grids), runners that finish a strip steal the next
//!   unclaimed one, in ascending column order. The calling thread runs
//!   strip 0 and *delivers* finished blocks in canonical diagonal order,
//!   so observers see exactly the event stream of the serial engine and
//!   results are bit-identical to it.
//!
//! Either way, every completed block is reported — sequentially, on the
//! calling thread, in diagonal order — to the caller's
//! [`WavefrontObserver`], which is how the pipeline flushes special rows
//! (Stage 1) and runs goal-based matching with early abort (Stages 2-3).

use crate::ctrl::{CancelToken, StripDiag};
use crate::exec::{ExecError, WorkerPool};
use crate::grid::{GridLayout, GridSpec};
use crate::kernel::{self, CellHE, CellHF, Mode, PathCounts, TileOutcome};
use std::ops::ControlFlow;
use sw_core::full::better_endpoint;
use sw_core::scoring::{Score, Scoring};

/// Identity and geometry of one block, as seen by observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCoords {
    /// Block row index.
    pub r: usize,
    /// Block column index.
    pub c: usize,
    /// External diagonal (`r + c`).
    pub diagonal: usize,
    /// Inclusive 1-based DP row range `(start, end)` of the block.
    pub rows: (usize, usize),
    /// Inclusive 1-based DP column range `(start, end)` of the block.
    pub cols: (usize, usize),
    /// True when this block is in the last block row.
    pub last_block_row: bool,
    /// True when this block is in the last block column.
    pub last_block_col: bool,
}

/// Observer invoked after each completed block (sequentially, in ascending
/// block-column order within a diagonal).
pub trait WavefrontObserver {
    /// `bottom` is the block's last row (`H`/`F` per column — the
    /// horizontal-bus segment it just wrote, i.e. the special-row
    /// candidate); `right` is its last column (`H`/`E` per row — the
    /// *rectified vertical bus*); `outcome` carries the block's watch hit
    /// and cell count. Return `Break` to abort the launch.
    fn on_block(
        &mut self,
        block: &BlockCoords,
        outcome: &TileOutcome,
        bottom: &[CellHF],
        right: &[CellHE],
    ) -> ControlFlow<()>;

    /// Called between external diagonals at the cadence configured via
    /// [`run_resumable`]'s `checkpoint_every`, with a snapshot the
    /// observer may persist. Default: ignore.
    fn on_checkpoint(&mut self, _state: &EngineState) {}

    /// Called for strip-scheduler protocol events (claims, steals, border
    /// publishes), on the calling thread, interleaved with
    /// [`WavefrontObserver::on_block`] deliveries. Serial runs emit none.
    /// Default: ignore.
    fn on_strip_event(&mut self, _event: &StripEvent) {}
}

/// A protocol event of the column-strip scheduler, surfaced to observers
/// for tracing (`obs::Event::StripProgress` / `StripSteal`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StripEvent {
    /// A runner took ownership of a strip. `stolen` is true when this is
    /// not the runner's first strip — it finished its own and stole the
    /// next unclaimed one (ragged-edge balancing).
    Claimed {
        /// Runner index (0 = the calling thread).
        runner: usize,
        /// Strip index in the [`StripPlan`].
        strip: usize,
        /// True when the claim is a steal.
        stolen: bool,
    },
    /// A runner published its strip's right-border progress: rows
    /// `0..rows_done` of the vertical-bus/corner hand-off are now visible
    /// to the strip on its right.
    Published {
        /// Runner index.
        runner: usize,
        /// Strip index whose border advanced.
        strip: usize,
        /// Block rows published so far.
        rows_done: usize,
        /// Total block rows of the grid.
        rows_total: usize,
    },
}

/// A no-op observer.
pub struct NoObserver;

impl WavefrontObserver for NoObserver {
    fn on_block(
        &mut self,
        _: &BlockCoords,
        _: &TileOutcome,
        _: &[CellHF],
        _: &[CellHE],
    ) -> ControlFlow<()> {
        ControlFlow::Continue(())
    }
}

/// Default number of block rows batched per strip-border publish.
///
/// Larger batches amortize the signalling (one lock + condvar notify per
/// publish) over more rows; smaller batches let the right neighbour start
/// sooner. The wavefront pipeline ramps in `batch_rows * strips` diagonals
/// — negligible against the tall grids stage 1 uses.
pub const DEFAULT_BATCH_ROWS: usize = 4;

/// How block-columns are grouped into persistent ownership strips for the
/// column-strip scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripPlan {
    /// Strip boundaries: strip `s` owns block-columns
    /// `bounds[s]..bounds[s + 1]`. Monotonically increasing, starting at
    /// 0 and ending at the grid's `block_cols`.
    pub bounds: Vec<usize>,
    /// Block rows batched per border publish (at least 1).
    pub batch_rows: usize,
}

impl StripPlan {
    /// An even split of `block_cols` columns into `min(workers,
    /// block_cols)` strips; the leftmost strips take the remainder, one
    /// extra column each.
    pub fn balanced(block_cols: usize, workers: usize) -> StripPlan {
        let strips = workers.min(block_cols).max(1);
        let base = block_cols / strips;
        let extra = block_cols % strips;
        let mut bounds = Vec::with_capacity(strips + 1);
        let mut next = 0usize;
        bounds.push(0);
        for s in 0..strips {
            next += base + usize::from(s < extra);
            bounds.push(next);
        }
        StripPlan { bounds, batch_rows: DEFAULT_BATCH_ROWS }
    }

    /// Number of strips in the plan.
    pub fn strips(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Does this plan exactly cover a grid `block_cols` wide, with every
    /// strip non-empty and `batch_rows >= 1`?
    pub fn is_valid_for(&self, block_cols: usize) -> bool {
        self.batch_rows >= 1
            && self.bounds.first() == Some(&0)
            && self.bounds.last() == Some(&block_cols)
            && self.bounds.windows(2).all(|w| w[0] < w[1])
    }
}

/// Counters of one column-strip launch, reported on
/// [`RegionResult::strip`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripStats {
    /// Strips in the executed plan.
    pub strips: usize,
    /// Block rows per border publish.
    pub batch_rows: usize,
    /// Claims beyond each runner's first — whole-strip work steals.
    pub steals: u64,
    /// Border publishes that advanced a strip's published-row counter.
    pub batches_published: u64,
    /// Blocks computed per runner (index 0 = the calling thread).
    pub runner_blocks: Vec<u64>,
}

/// Which scheduler produced an [`EngineState`] snapshot — provenance
/// recorded in the checkpoint so a resumed run (possibly under a
/// different worker count) can report where the snapshot came from.
/// Resuming is schedule-independent: buses and counters mean the same
/// thing either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleInfo {
    /// Diagonal-barrier engine (serial runs, and all checkpoints written
    /// before strip scheduling existed).
    Serial,
    /// Column-strip engine.
    Strips {
        /// Strips in the plan that wrote the snapshot.
        strips: u32,
        /// Its publish batching factor.
        batch_rows: u32,
    },
}

/// One engine launch over a DP region.
#[derive(Debug, Clone, Copy)]
pub struct RegionJob<'a> {
    /// Row sequence (`S0` side of the region).
    pub a: &'a [u8],
    /// Column sequence (`S1` side of the region).
    pub b: &'a [u8],
    /// Scoring scheme.
    pub scoring: Scoring,
    /// Local or global recurrence.
    pub mode: Mode,
    /// Execution configuration.
    pub grid: GridSpec,
    /// Maximum worker threads (`0` = all available cores).
    pub workers: usize,
    /// When set, every block reports the first cell whose `H` equals this
    /// score (Stage 2's start-point detection).
    pub watch: Option<Score>,
}

/// Outcome of an engine launch.
#[derive(Debug, Clone)]
pub struct RegionResult {
    /// Best cell and its position (local mode; `None` when every cell is 0).
    pub best: Option<(Score, usize, usize)>,
    /// Cells updated (excluding borders).
    pub cells: u64,
    /// External diagonals executed.
    pub diagonals_run: usize,
    /// True when an observer aborted the launch.
    pub aborted: bool,
    /// Number of block executions (busy block-slots summed over
    /// diagonals). See [`RegionResult::utilization`].
    pub busy_slots: u64,
    /// Final horizontal bus: frontier `H`/`F` per column (row `m` for every
    /// column when the launch ran to completion).
    pub hbus: Vec<CellHF>,
    /// Final vertical bus: frontier `H`/`E` per row.
    pub vbus: Vec<CellHE>,
    /// The layout that was executed.
    pub layout: GridLayout,
    /// Precision-ladder outcome counters for the tiles of *this run* —
    /// like [`RegionResult::diagonals_run`], kernel-path counters are not
    /// carried across checkpoint resume.
    pub paths: PathCounts,
    /// Query-profile cache lookups that found a resident band (this run).
    /// Both cache counters stay 0 when the pooled diagonal-barrier engine
    /// ran: its parallel block tasks share no cache (see `run_pooled`).
    pub profile_hits: u64,
    /// Query-profile cache lookups that built a fresh band (this run).
    pub profile_misses: u64,
    /// Strip-scheduler counters; `None` when the diagonal-barrier engine
    /// ran (serial execution).
    pub strip: Option<StripStats>,
}

impl RegionResult {
    /// Fraction of block slots kept busy across the executed diagonals:
    /// `busy_slots / (diagonals_run * block_cols)`.
    ///
    /// This is the quantity CUDAlign 1.0's *cells delegation* maximizes.
    /// With the tall grids the pipeline uses (`block_rows >>
    /// block_cols`), the rectangular wavefront already achieves the
    /// paper's "full parallelism except in the very beginning and very
    /// close to the end": utilization tends to
    /// `block_rows / (block_rows + block_cols - 1)`.
    pub fn utilization(&self) -> f64 {
        let slots = self.diagonals_run as u64 * self.layout.block_cols as u64;
        if slots == 0 {
            return 0.0;
        }
        self.busy_slots as f64 / slots as f64
    }
}

struct Task<'buf, 'seq> {
    coords: BlockCoords,
    a_tile: &'seq [u8],
    b_tile: &'seq [u8],
    corner: Score,
    hseg: &'buf mut [CellHF],
    vseg: &'buf mut [CellHE],
    outcome: Option<TileOutcome>,
}

/// Serializable execution state between two external diagonals — the
/// checkpoint/resume support an 18-hour Stage 1 needs (the real CUDAlign
/// gained incremental execution in its follow-on versions).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineState {
    /// Fingerprint of the job this state belongs to: `(m, n, B, T, alpha)`.
    pub fingerprint: (u64, u64, u64, u64, u64),
    /// Next external diagonal to execute.
    pub next_diagonal: usize,
    /// Horizontal bus contents.
    pub hbus: Vec<CellHF>,
    /// Vertical bus contents.
    pub vbus: Vec<CellHE>,
    /// Corner matrix contents.
    pub corners: Vec<Score>,
    /// Best cell so far (local mode).
    pub best: Option<(Score, usize, usize)>,
    /// Cells processed so far.
    pub cells: u64,
    /// Busy block-slots so far.
    pub busy_slots: u64,
    /// Scheduler that wrote this snapshot (provenance only).
    pub schedule: ScheduleInfo,
}

impl EngineState {
    /// Does this snapshot belong to `job`? Callers should check before
    /// resuming; [`run_resumable`] panics on a mismatch.
    pub fn matches(&self, job: &RegionJob<'_>) -> bool {
        self.fingerprint == Self::fingerprint_of(job)
    }

    fn fingerprint_of(job: &RegionJob<'_>) -> (u64, u64, u64, u64, u64) {
        // FNV-1a over everything that determines the DP values: sequence
        // content, scoring, mode and grid. Resuming under any other job
        // must be rejected — buses computed with different parameters
        // would silently corrupt the result.
        fn fnv(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x100000001b3);
            }
        }
        let mut content = 0xcbf29ce484222325u64;
        fnv(&mut content, job.a);
        fnv(&mut content, job.b);
        let mut params = 0xcbf29ce484222325u64;
        for v in [
            job.scoring.match_score,
            job.scoring.mismatch_score,
            job.scoring.gap_first,
            job.scoring.gap_ext,
        ] {
            fnv(&mut params, &v.to_le_bytes());
        }
        match job.mode {
            Mode::Local => fnv(&mut params, b"local"),
            Mode::Global { origin } => {
                fnv(&mut params, b"global");
                fnv(&mut params, &origin.h0.to_le_bytes());
                fnv(&mut params, &origin.e0.to_le_bytes());
                fnv(&mut params, &origin.f0.to_le_bytes());
            }
        }
        (
            job.a.len() as u64,
            job.b.len() as u64,
            (job.grid.blocks as u64) << 32 | (job.grid.threads as u64) << 8 | job.grid.alpha as u64,
            content,
            params,
        )
    }

    /// Serialize (little-endian, self-describing lengths).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + 8 * (self.hbus.len() + self.vbus.len()) + 4 * self.corners.len(),
        );
        out.extend_from_slice(b"CKPT");
        for v in [
            self.fingerprint.0,
            self.fingerprint.1,
            self.fingerprint.2,
            self.fingerprint.3,
            self.fingerprint.4,
            self.next_diagonal as u64,
            self.cells,
            self.busy_slots,
            self.hbus.len() as u64,
            self.vbus.len() as u64,
            self.corners.len() as u64,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        match self.best {
            None => out.push(0),
            Some((s, i, j)) => {
                out.push(1);
                out.extend_from_slice(&s.to_le_bytes());
                out.extend_from_slice(&(i as u64).to_le_bytes());
                out.extend_from_slice(&(j as u64).to_le_bytes());
            }
        }
        for c in &self.hbus {
            out.extend_from_slice(&c.h.to_le_bytes());
            out.extend_from_slice(&c.f.to_le_bytes());
        }
        for c in &self.vbus {
            out.extend_from_slice(&c.h.to_le_bytes());
            out.extend_from_slice(&c.e.to_le_bytes());
        }
        for &c in &self.corners {
            out.extend_from_slice(&c.to_le_bytes());
        }
        // Strip-schedule provenance rides as a self-identifying tailer so
        // pre-strip decoders (which ignore trailing bytes) still accept
        // the blob; `Serial` writes nothing, keeping old and new encodings
        // byte-identical for old snapshots.
        if let ScheduleInfo::Strips { strips, batch_rows } = self.schedule {
            out.extend_from_slice(b"STRP");
            out.extend_from_slice(&strips.to_le_bytes());
            out.extend_from_slice(&batch_rows.to_le_bytes());
        }
        out
    }

    /// Deserialize; `None` on any structural mismatch.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, k: usize| -> Option<&[u8]> {
            let s = bytes.get(*pos..*pos + k)?;
            *pos += k;
            Some(s)
        };
        if take(&mut pos, 4)? != b"CKPT" {
            return None;
        }
        let u = |pos: &mut usize| -> Option<u64> {
            Some(u64::from_le_bytes(take(pos, 8)?.try_into().ok()?))
        };
        let fp = (u(&mut pos)?, u(&mut pos)?, u(&mut pos)?, u(&mut pos)?, u(&mut pos)?);
        let next_diagonal = u(&mut pos)? as usize;
        let cells = u(&mut pos)?;
        let busy_slots = u(&mut pos)?;
        let nh = u(&mut pos)? as usize;
        let nv = u(&mut pos)? as usize;
        let nc = u(&mut pos)? as usize;
        // Reject sizes the payload cannot hold (corruption guard).
        let need = 1 + 8 * nh + 8 * nv + 4 * nc;
        if bytes.len().checked_sub(pos)? < need {
            return None;
        }
        let best = match take(&mut pos, 1)?[0] {
            0 => None,
            _ => {
                let s = Score::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
                let i = u(&mut pos)? as usize;
                let j = u(&mut pos)? as usize;
                Some((s, i, j))
            }
        };
        let mut hbus = Vec::with_capacity(nh);
        for _ in 0..nh {
            let h = Score::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
            let f = Score::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
            hbus.push(CellHF { h, f });
        }
        let mut vbus = Vec::with_capacity(nv);
        for _ in 0..nv {
            let h = Score::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
            let e = Score::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
            vbus.push(CellHE { h, e });
        }
        let mut corners = Vec::with_capacity(nc);
        for _ in 0..nc {
            corners.push(Score::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?));
        }
        // Optional schedule tailer. Old-format blobs end here (or carry
        // unrelated trailing bytes) and decode as `Serial`; a blob that
        // *starts* the `STRP` marker must carry the whole tailer, so a
        // truncated strip checkpoint is rejected rather than silently
        // downgraded.
        let schedule = if bytes.get(pos..pos + 4) == Some(b"STRP") {
            pos += 4;
            let strips = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
            let batch_rows = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
            ScheduleInfo::Strips { strips, batch_rows }
        } else {
            ScheduleInfo::Serial
        };
        Some(EngineState {
            fingerprint: fp,
            next_diagonal,
            hbus,
            vbus,
            corners,
            best,
            cells,
            busy_slots,
            schedule,
        })
    }
}

/// Run a region to completion (or until an observer aborts).
///
/// Convenience wrapper that builds a transient [`WorkerPool`] sized by
/// `job.workers` and panics if a worker panics (the pre-executor
/// behaviour). Pipelines should prefer [`run_pooled`] with a shared pool.
pub fn run(job: &RegionJob<'_>, observer: &mut dyn WavefrontObserver) -> RegionResult {
    run_resumable(job, observer, None, None)
}

/// Run a region on a shared persistent [`WorkerPool`].
///
/// Observationally identical to [`run`] for every pool size: block
/// results are merged (and the observer notified) on the calling thread
/// in block order after each diagonal's barrier, so scheduling cannot
/// change scores, endpoints, buses, or observer event order.
pub fn run_pooled(
    pool: &WorkerPool,
    job: &RegionJob<'_>,
    observer: &mut dyn WavefrontObserver,
) -> Result<RegionResult, ExecError> {
    run_resumable_pooled(pool, job, observer, None, None)
}

/// Like [`run`], but optionally resuming from a previous [`EngineState`]
/// and/or delivering snapshots to the observer's
/// [`WavefrontObserver::on_checkpoint`] every `checkpoint_every`
/// external diagonals.
///
/// # Panics
/// Panics when `resume` carries a fingerprint for a different job, or
/// when a worker panics (transient-pool wrapper; see [`run`]).
pub fn run_resumable(
    job: &RegionJob<'_>,
    observer: &mut dyn WavefrontObserver,
    resume: Option<EngineState>,
    checkpoint_every: Option<usize>,
) -> RegionResult {
    let pool = WorkerPool::new(job.workers);
    run_resumable_pooled(&pool, job, observer, resume, checkpoint_every)
        // lint: allow(no-panics): documented panicking wrapper (see `# Panics`
        // above); error-returning callers use `run_resumable_pooled`.
        .unwrap_or_else(|e| panic!("wavefront worker panicked: {e}"))
}

/// [`run_resumable`] on a shared persistent [`WorkerPool`].
///
/// The effective parallelism of a diagonal is
/// `min(pool.lanes(), job.workers)` (with `job.workers == 0` meaning "no
/// extra cap"), so a job built with `workers: 1` stays serial even on a
/// wide pool — stage 3 relies on that to keep per-partition engines
/// single-lane while partitions fan out.
///
/// # Panics
/// Panics when `resume` carries a fingerprint for a different job.
pub fn run_resumable_pooled(
    pool: &WorkerPool,
    job: &RegionJob<'_>,
    observer: &mut dyn WavefrontObserver,
    resume: Option<EngineState>,
    checkpoint_every: Option<usize>,
) -> Result<RegionResult, ExecError> {
    run_engine(pool, job, observer, resume, checkpoint_every, None, None)
}

/// [`run_resumable_pooled`] under a supervision token.
///
/// Both schedulers poll `token` cooperatively: the serial engine between
/// external diagonals, the strip engine in its delivery loop (which in
/// turn wakes parked runners through the protocol condvars). A cancelled
/// launch first emits one final [`WavefrontObserver::on_checkpoint`] with
/// the state at the last completed diagonal boundary (when checkpointing
/// is enabled), so cancellation is always resumable, then returns with
/// [`RegionResult::aborted`] set. Workers bump the token's heartbeat on
/// every computed block / published border, which is what the stall
/// watchdog observes — no clock is read anywhere in here.
///
/// # Panics
/// Panics when `resume` carries a fingerprint for a different job.
pub fn run_supervised(
    pool: &WorkerPool,
    job: &RegionJob<'_>,
    observer: &mut dyn WavefrontObserver,
    resume: Option<EngineState>,
    checkpoint_every: Option<usize>,
    token: Option<&CancelToken>,
) -> Result<RegionResult, ExecError> {
    run_engine(pool, job, observer, resume, checkpoint_every, None, token)
}

/// Run a region on the column-strip scheduler with an explicit
/// [`StripPlan`] — including ragged plans whose strip count exceeds the
/// worker count, which exercises whole-strip work stealing.
///
/// # Panics
/// Panics when `plan` does not cover the job's grid
/// ([`StripPlan::is_valid_for`]).
pub fn run_pooled_with_plan(
    pool: &WorkerPool,
    job: &RegionJob<'_>,
    observer: &mut dyn WavefrontObserver,
    plan: &StripPlan,
) -> Result<RegionResult, ExecError> {
    run_engine(pool, job, observer, None, None, Some(plan.clone()), None)
}

fn run_engine(
    pool: &WorkerPool,
    job: &RegionJob<'_>,
    observer: &mut dyn WavefrontObserver,
    resume: Option<EngineState>,
    checkpoint_every: Option<usize>,
    plan: Option<StripPlan>,
    token: Option<&CancelToken>,
) -> Result<RegionResult, ExecError> {
    let (m, n) = (job.a.len(), job.b.len());
    let layout = job.grid.layout(m, n);
    let local = job.mode.is_local();

    let (mut hbus, mut vbus, origin_h) = match job.mode {
        Mode::Local => kernel::local_borders(m, n),
        Mode::Global { origin } => kernel::global_borders(m, n, &job.scoring, origin),
    };

    // corners[r][c] = H at (row_end(r-1), col_end(c-1)); row/col 0 hold the
    // border values so block (r, c) always reads corners[r][c]. The origin
    // corner is the origin's H seed — NEG_INF for reverse regions whose
    // path must *begin* inside a gap run.
    let (br, bc) = (layout.block_rows, layout.block_cols);
    let mut corners = vec![0 as Score; (br + 1) * (bc + 1)];
    corners[0] = origin_h;
    for c in 0..bc {
        let (_, ce) = layout.col_range(c);
        corners[c + 1] = if ce == 0 { 0 } else { hbus[ce - 1].h };
    }
    for r in 0..br {
        let (_, re) = layout.row_range(r);
        corners[(r + 1) * (bc + 1)] = if re == 0 { 0 } else { vbus[re - 1].h };
    }

    // The pool fixes the lane count for the whole run; `job.workers` can
    // only cap it further (0 = uncapped).
    let workers = match job.workers {
        0 => pool.lanes(),
        w => w.min(pool.lanes()),
    };

    let mut best: Option<(Score, usize, usize)> = None;
    let mut cells = 0u64;
    let mut aborted = false;
    let mut diagonals_run = 0usize;
    let mut busy_slots = 0u64;
    let mut paths = kernel::PathCounts::default();
    let mut first_diagonal = 0usize;
    // Serial execution walks a handful of band rows per diagonal and
    // revisits them on the next, so one run-wide profile cache catches
    // the reuse. The pooled branch below shares no cache across its
    // concurrent block tasks (a shared cache would serialize them) and
    // reports zero cache traffic.
    let mut profile_cache = crate::striped::ProfileCache::new();

    if let Some(state) = resume {
        assert_eq!(
            state.fingerprint,
            EngineState::fingerprint_of(job),
            "checkpoint belongs to a different job"
        );
        hbus = state.hbus;
        vbus = state.vbus;
        corners = state.corners;
        best = state.best;
        cells = state.cells;
        busy_slots = state.busy_slots;
        first_diagonal = state.next_diagonal;
    }

    // One detector session per engine run: shadow last-writer state for
    // every bus cell, checked against the grid's scheduled producers.
    #[cfg(feature = "race-check")]
    let race_session = crate::race::Session::new(m, n, br, bc, first_diagonal);

    // Column-strip dispatch: an explicit plan forces the strip engine;
    // otherwise it engages whenever more than one worker meets more than
    // one block column (the only shape where scheduling matters). The
    // serial fallback below also covers resume-at-end, which has no work.
    let strip_plan = match plan {
        Some(p) => {
            assert!(
                p.is_valid_for(bc),
                "strip plan {:?} does not cover {bc} block column(s)",
                p.bounds
            );
            Some(p)
        }
        None if workers > 1 && bc > 1 && first_diagonal < layout.diagonals() => {
            Some(StripPlan::balanced(bc, workers))
        }
        None => None,
    };
    if let Some(plan) = strip_plan {
        let params = strip::Params {
            pool,
            job,
            layout: &layout,
            plan: &plan,
            workers,
            first_diagonal,
            checkpoint_every,
            init_best: best,
            init_cells: cells,
            init_busy: busy_slots,
            token,
            #[cfg(feature = "race-check")]
            race: &race_session,
        };
        return strip::run(params, observer, hbus, vbus, corners);
    }

    'diagonals: for d in first_diagonal..layout.diagonals() {
        if token.is_some_and(CancelToken::is_cancelled) {
            // Flush the boundary state (diagonals < d are complete, d has
            // not started — a valid resume point) before stopping, so a
            // cancelled run is always resumable.
            if checkpoint_every.is_some() {
                observer.on_checkpoint(&EngineState {
                    fingerprint: EngineState::fingerprint_of(job),
                    next_diagonal: d,
                    hbus: hbus.clone(),
                    vbus: vbus.clone(),
                    corners: corners.clone(),
                    best,
                    cells,
                    busy_slots,
                    schedule: ScheduleInfo::Serial,
                });
            }
            aborted = true;
            break 'diagonals;
        }
        if let Some(every) = checkpoint_every {
            if d > first_diagonal && (d - first_diagonal).is_multiple_of(every.max(1)) {
                observer.on_checkpoint(&EngineState {
                    fingerprint: EngineState::fingerprint_of(job),
                    next_diagonal: d,
                    hbus: hbus.clone(),
                    vbus: vbus.clone(),
                    corners: corners.clone(),
                    best,
                    cells,
                    busy_slots,
                    schedule: ScheduleInfo::Serial,
                });
            }
        }
        let blocks: Vec<(usize, usize)> = layout.diagonal_blocks(d).collect();

        // Seeded reorder fault: perform the target block's bus reads and
        // writes one diagonal EARLY — before the barrier that orders its
        // neighbours' diagonal-d writes. The phantom touches only the
        // detector's shadow state (engine output is byte-identical); the
        // detector must flag its reads as wrong-producer.
        #[cfg(feature = "race-check")]
        if let Some((pr, pc)) = crate::exec::fault::reorder_block() {
            if d + 1 == pr + pc && pr < br && pc < bc {
                let (rs, re) = layout.row_range(pr);
                let (cs, ce) = layout.col_range(pc);
                let width = (ce + 1).saturating_sub(cs);
                let height = (re + 1).saturating_sub(rs);
                race_session.block_reads(pr, pc, d + 1, (cs - 1, width), (rs - 1, height));
                race_session.block_writes(pr, pc, d + 1, (cs - 1, width), (rs - 1, height), true);
            }
        }

        // Hand out disjoint bus segments. Blocks arrive in ascending `c`
        // (descending `r`), so the horizontal bus is split left-to-right
        // and the vertical bus back-to-front.
        let mut tasks: Vec<Task<'_, '_>> = Vec::with_capacity(blocks.len());
        {
            let mut h_rest: &mut [CellHF] = &mut hbus;
            let mut h_off = 0usize;
            let mut v_rest: &mut [CellHE] = &mut vbus;

            for &(r, c) in &blocks {
                let (rs, re) = layout.row_range(r);
                let (cs, ce) = layout.col_range(c);
                // Ranges are inclusive; degenerate regions yield re < rs.
                let width = (ce + 1).saturating_sub(cs);
                let height = (re + 1).saturating_sub(rs);

                // Horizontal segment [cs-1, cs-1+width) in absolute indices;
                // block columns ascend along the diagonal, so split forward.
                let skip = (cs - 1) - h_off;
                let (_, rest) = h_rest.split_at_mut(skip);
                let (hseg, rest) = rest.split_at_mut(width);
                h_rest = rest;
                h_off = cs - 1 + width;

                // Vertical segment [rs-1, rs-1+height): block rows descend
                // contiguously along the diagonal, so split from the back.
                let (rest, _tail) = v_rest.split_at_mut(rs - 1 + height);
                let (rest, vseg) = rest.split_at_mut(rs - 1);
                v_rest = rest;

                let coords = BlockCoords {
                    r,
                    c,
                    diagonal: d,
                    rows: (rs, re),
                    cols: (cs, ce),
                    last_block_row: r + 1 == br,
                    last_block_col: c + 1 == bc,
                };
                tasks.push(Task {
                    coords,
                    a_tile: &job.a[rs - 1..re],
                    b_tile: &job.b[cs - 1..ce],
                    corner: corners[r * (bc + 1) + c],
                    hseg,
                    vseg,
                    outcome: None,
                });
            }
        }

        // Execute the diagonal. A `Some` cache threads the run-wide
        // profile cache through (serial execution only — the pooled
        // branch passes `None` since its tasks run concurrently).
        let run_task = |t: &mut Task<'_, '_>, cache: Option<&mut crate::striped::ProfileCache>| {
            #[cfg(feature = "race-check")]
            race_session.block_reads(
                t.coords.r,
                t.coords.c,
                t.coords.diagonal,
                (t.coords.cols.0 - 1, t.hseg.len()),
                (t.coords.rows.0 - 1, t.vseg.len()),
            );
            let out = match cache {
                Some(cache) => kernel::compute_tile_cached(
                    t.a_tile,
                    t.b_tile,
                    t.coords.rows.0,
                    t.coords.cols.0,
                    &job.scoring,
                    local,
                    job.watch,
                    t.corner,
                    t.hseg,
                    t.vseg,
                    cache,
                ),
                None => kernel::compute_tile(
                    t.a_tile,
                    t.b_tile,
                    t.coords.rows.0,
                    t.coords.cols.0,
                    &job.scoring,
                    local,
                    job.watch,
                    t.corner,
                    t.hseg,
                    t.vseg,
                ),
            };
            #[cfg(feature = "race-check")]
            race_session.block_writes(
                t.coords.r,
                t.coords.c,
                t.coords.diagonal,
                (t.coords.cols.0 - 1, t.hseg.len()),
                (t.coords.rows.0 - 1, t.vseg.len()),
                false,
            );
            t.outcome = Some(out);
        };
        let parallel = workers > 1 && tasks.len() > 1;
        if parallel {
            // One pool scope per diagonal: the scope's drain is the
            // barrier. Threads persist across diagonals; only the job
            // handoff is paid here.
            let chunk = tasks.len().div_ceil(workers.min(tasks.len()));
            let run_task = &run_task;
            pool.scope(|s| {
                for group in tasks.chunks_mut(chunk) {
                    s.spawn(move || {
                        for t in group.iter_mut() {
                            run_task(t, None);
                        }
                    });
                }
            })?;
        } else {
            for t in tasks.iter_mut() {
                run_task(t, Some(&mut profile_cache));
            }
        }

        diagonals_run += 1;
        busy_slots += tasks.len() as u64;

        // Commit results and notify the observer, in block order.
        for t in tasks.iter_mut() {
            // lint: allow(no-panics): the scope() above returned Ok, which
            // guarantees every task of this diagonal ran to completion.
            let out = t.outcome.expect("task executed");
            cells += out.cells;
            paths.count(out.path);
            if let Some(cand) = out.best {
                if best.is_none_or(|b| better_endpoint(cand, b)) {
                    best = Some(cand);
                }
            }
            let (r, c) = (t.coords.r, t.coords.c);
            corners[(r + 1) * (bc + 1) + (c + 1)] = out.corner_out;
            if let Some(tok) = token {
                tok.beat();
            }
            if observer.on_block(&t.coords, &out, t.hseg, t.vseg).is_break() {
                aborted = true;
                break;
            }
        }
        if aborted {
            break 'diagonals;
        }
    }

    Ok(RegionResult {
        best,
        cells,
        diagonals_run,
        aborted,
        busy_slots,
        hbus,
        vbus,
        layout,
        paths,
        profile_hits: profile_cache.hits(),
        profile_misses: profile_cache.misses(),
        strip: None,
    })
}

/// Convenience: run without an observer.
pub fn run_plain(job: &RegionJob<'_>) -> RegionResult {
    run(job, &mut NoObserver)
}

/// The column-strip scheduler: persistent strip ownership, point-to-point
/// border publishing, bounded whole-strip work stealing.
///
/// # Protocol
///
/// * Runner `i` owns strip `i` from launch (its *home* claim), so every
///   runner is guaranteed at least one whole strip of work. Further
///   strips are claimed — stolen — in ascending index order
///   (`next_strip` counter), so unclaimed strips always form a suffix of
///   the plan and a claimed strip's left neighbour is always claimed.
/// * A runner walks its strip row-major. Before computing the strip's
///   *first* column of block row `r` it waits until the left strip's
///   published-row counter covers `r + 1` — that publish is the only
///   cross-strip synchronisation (there is no global barrier).
/// * A runner publishes after every `batch_rows`-th completed block row
///   (and after its last row), under the coordination mutex; consumers
///   re-check under the same mutex, so the lock's release/acquire pair is
///   the happens-before edge that orders the producer's bus writes before
///   the consumer's reads.
/// * The calling thread is runner 0 *and* the deliverer: it drains
///   finished blocks in canonical diagonal order, applies them to shadow
///   ("checkpoint") buses, and invokes the observer — byte-identically to
///   the serial engine. Runners may race ahead of delivery only within a
///   bounded lead window once every strip is claimed, which caps the
///   memory held by finished-but-undelivered borders.
///
/// # Why the shadow buses
///
/// Runners mutate the live buses out of diagonal order (that is the
/// point), so on abort the live buses would reflect blocks *past* the
/// abort point. The deliverer therefore maintains its own copies, updated
/// strictly in delivery order; results and checkpoints are built from
/// those, making aborted and checkpointed states bit-identical to the
/// serial engine's.
mod strip {
    use super::*;
    use std::collections::HashMap;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::{Condvar, Mutex, MutexGuard};
    use std::time::Duration;

    /// Inputs of one strip launch (everything but the observer and the
    /// live buses, which move separately for borrow-checking reasons).
    pub(super) struct Params<'a, 'j> {
        pub pool: &'a WorkerPool,
        pub job: &'a RegionJob<'j>,
        pub layout: &'a GridLayout,
        pub plan: &'a StripPlan,
        pub workers: usize,
        pub first_diagonal: usize,
        pub checkpoint_every: Option<usize>,
        pub init_best: Option<(Score, usize, usize)>,
        pub init_cells: u64,
        pub init_busy: u64,
        /// Supervision token polled by the delivery loop; runners bump
        /// its heartbeat on every computed block / published border.
        pub token: Option<&'a CancelToken>,
        #[cfg(feature = "race-check")]
        pub race: &'a crate::race::Session,
    }

    /// Raw shared view of one live bus (or the corner table).
    ///
    /// Runners access disjoint-or-ordered regions of the buses without
    /// `&mut` aliasing: see the SAFETY argument on [`compute_block`].
    struct RawBus<T>(*mut T, usize);

    impl<T> RawBus<T> {
        fn new(v: &mut Vec<T>) -> RawBus<T> {
            RawBus(v.as_mut_ptr(), v.len())
        }

        fn at(&self, i: usize) -> *mut T {
            debug_assert!(i <= self.1);
            // SAFETY: within-allocation offset — `i` is bounded by the
            // bus length captured at construction.
            unsafe { self.0.add(i) }
        }
    }

    // SAFETY: a RawBus is only dereferenced by strip runners following the
    // publish protocol (see `compute_block`'s SAFETY comment), which makes
    // every conflicting access ordered by the coordination mutex; the
    // pointee vectors outlive the pool scope that runs the runners.
    unsafe impl<T: Send> Send for RawBus<T> {}
    // SAFETY: as above — shared references to RawBus only hand out raw
    // pointers; all dereferences follow the strip protocol.
    unsafe impl<T: Send> Sync for RawBus<T> {}

    /// A finished block, parked until the deliverer consumes it.
    struct BlockDone {
        outcome: TileOutcome,
        /// Copy of the block's bottom border (its horizontal-bus segment
        /// right after the tile ran).
        bottom: Vec<CellHF>,
        /// Copy of its right border (vertical-bus segment).
        right: Vec<CellHE>,
    }

    /// Mutable coordination state, under the one strip mutex.
    struct Coord {
        /// Per strip: block rows published to the right neighbour.
        published: Vec<usize>,
        /// Next unclaimed strip (claims ascend, so unclaimed strips are a
        /// suffix).
        next_strip: usize,
        /// Per runner: strips claimed so far (first claim = ownership,
        /// later claims = steals).
        claims: Vec<u64>,
        /// Per runner: blocks computed.
        blocks: Vec<u64>,
        steals: u64,
        batches: u64,
        /// Query-profile cache hits, folded in from each runner's
        /// private cache as the runner exits.
        profile_hits: u64,
        /// Query-profile cache misses, folded in the same way.
        profile_misses: u64,
        /// Delivery frontier: every block with diagonal < `front` has
        /// been delivered.
        front: usize,
        /// Cooperative cancellation (observer abort, worker panic, body
        /// panic). Runners exit at the next wait or block boundary.
        cancel: bool,
        /// Finished, undelivered blocks.
        done: HashMap<(usize, usize), BlockDone>,
        /// Protocol events awaiting delivery to the observer.
        events: Vec<StripEvent>,
    }

    /// Everything the runners share.
    struct Shared<'a, 'j> {
        job: &'a RegionJob<'j>,
        layout: &'a GridLayout,
        plan: &'a StripPlan,
        local: bool,
        first_diagonal: usize,
        /// Max diagonals a runner may lead the delivery frontier once all
        /// strips are claimed (bounds undelivered-border memory).
        lead: usize,
        strips: usize,
        hbus: RawBus<CellHF>,
        vbus: RawBus<CellHE>,
        corners: RawBus<Score>,
        coord: Mutex<Coord>,
        /// Runners park here for publishes / frontier advances / cancel.
        cv_work: Condvar,
        /// The deliverer parks here for block completions / cancel.
        cv_done: Condvar,
        /// Heartbeat sink for the stall watchdog (never polled here).
        token: Option<&'a CancelToken>,
        #[cfg(feature = "race-check")]
        race: &'a crate::race::Session,
    }

    impl Shared<'_, '_> {
        fn lock(&self) -> MutexGuard<'_, Coord> {
            self.coord.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Set `cancel` and wake everyone.
        fn cancel_all(&self) {
            self.lock().cancel = true;
            self.cv_work.notify_all();
            self.cv_done.notify_all();
        }
    }

    /// A runner's position inside its claimed strip.
    struct Cursor {
        s: usize,
        c0: usize,
        c1: usize,
        r: usize,
        c: usize,
    }

    enum Step {
        /// Computed one block.
        Computed,
        /// The next block is publish- or lead-blocked.
        Blocked,
        /// No strip left to claim.
        Idle,
        /// Cancellation observed.
        Cancelled,
    }

    /// The strip `runner` owns from launch (pre-claimed in the engine's
    /// `Coord` init): strip index = runner index.
    fn home_cursor(sh: &Shared<'_, '_>, runner: usize) -> Cursor {
        Cursor {
            s: runner,
            c0: sh.plan.bounds[runner],
            c1: sh.plan.bounds[runner + 1],
            r: 0,
            c: sh.plan.bounds[runner],
        }
    }

    /// Claim the next unclaimed strip for `runner`, if any. Home strips
    /// are pre-claimed, so anything claimed here counts as a steal.
    fn try_claim(sh: &Shared<'_, '_>, runner: usize) -> Option<Cursor> {
        let mut co = sh.lock();
        if co.cancel || co.next_strip >= sh.strips {
            return None;
        }
        let s = co.next_strip;
        co.next_strip += 1;
        let stolen = co.claims[runner] > 0;
        co.claims[runner] += 1;
        if stolen {
            co.steals += 1;
        }
        co.events.push(StripEvent::Claimed { runner, strip: s, stolen });
        drop(co);
        // Claims can unblock lead-window waiters (the window only binds
        // once every strip is claimed) and carry an event for the
        // deliverer.
        sh.cv_work.notify_all();
        sh.cv_done.notify_all();
        Some(Cursor {
            s,
            c0: sh.plan.bounds[s],
            c1: sh.plan.bounds[s + 1],
            r: 0,
            c: sh.plan.bounds[s],
        })
    }

    /// Publish strip `s`'s border progress: rows `0..rows` are complete.
    fn publish(sh: &Shared<'_, '_>, runner: usize, s: usize, rows: usize) {
        // Shadow state first: the detector's published counter must cover
        // a consumer by the time the real counter lets it proceed.
        #[cfg(feature = "race-check")]
        sh.race.strip_publish(s, rows);
        let mut co = sh.lock();
        if rows > co.published[s] {
            co.published[s] = rows;
            co.batches += 1;
            co.events.push(StripEvent::Published {
                runner,
                strip: s,
                rows_done: rows,
                rows_total: sh.layout.block_rows,
            });
            drop(co);
            if let Some(t) = sh.token {
                t.beat();
            }
            sh.cv_work.notify_all();
            // The event itself must reach the deliverer even when no
            // block completion follows promptly.
            sh.cv_done.notify_all();
        }
    }

    /// Advance `cur` by at most one computed block (non-blocking).
    /// `cache` is the calling runner's private profile cache — strips are
    /// walked row-major (`r` fixed while `c` sweeps the strip), so
    /// consecutive blocks share a query band and the cache pays off.
    fn step(
        sh: &Shared<'_, '_>,
        runner: usize,
        cur_slot: &mut Option<Cursor>,
        cache: &mut crate::striped::ProfileCache,
    ) -> Step {
        let br = sh.layout.block_rows;
        loop {
            let Some(cur) = cur_slot.as_mut() else {
                match try_claim(sh, runner) {
                    Some(c) => {
                        *cur_slot = Some(c);
                        continue;
                    }
                    None => return Step::Idle,
                }
            };
            if cur.r == br {
                *cur_slot = None;
                continue;
            }
            if cur.c == cur.c1 {
                // Row finished: publish at batch boundaries (and at the
                // last row) so the right neighbour can follow.
                let done_rows = cur.r + 1;
                if cur.s + 1 < sh.strips && (done_rows % sh.plan.batch_rows == 0 || done_rows == br)
                {
                    publish(sh, runner, cur.s, done_rows);
                }
                cur.r += 1;
                cur.c = cur.c0;
                continue;
            }
            let (r, c) = (cur.r, cur.c);
            if r + c < sh.first_diagonal {
                // Restored from a checkpoint: nothing to compute.
                cur.c += 1;
                continue;
            }
            {
                let co = sh.lock();
                if co.cancel {
                    return Step::Cancelled;
                }
                if c == cur.c0 && cur.s > 0 && co.published[cur.s - 1] <= r {
                    return Step::Blocked;
                }
                // The lead window binds only once every strip is claimed:
                // before that, throttling a runner could leave it unable
                // to ever finish its strip and claim the one the frontier
                // is stuck on.
                if co.next_strip >= sh.strips && r + c >= co.front + sh.lead {
                    return Step::Blocked;
                }
            }
            let alive = compute_block(sh, runner, r, c, cache);
            cur.c += 1;
            return if alive { Step::Computed } else { Step::Cancelled };
        }
    }

    /// Park until the blocked condition of `cur` clears; false = cancel.
    fn wait_progress(sh: &Shared<'_, '_>, cur: &Cursor) -> bool {
        let mut co = sh.lock();
        loop {
            if co.cancel {
                return false;
            }
            let publish_ok = !(cur.c == cur.c0 && cur.s > 0 && co.published[cur.s - 1] <= cur.r);
            let lead_ok = co.next_strip < sh.strips || cur.r + cur.c < co.front + sh.lead;
            if publish_ok && lead_ok {
                return true;
            }
            co = sh.cv_work.wait(co).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Body of one pinned runner (runner indices 1..).
    fn runner_loop(sh: &Shared<'_, '_>, runner: usize) {
        let mut cache = crate::striped::ProfileCache::new();
        let mut cur: Option<Cursor> = Some(home_cursor(sh, runner));
        'work: loop {
            match step(sh, runner, &mut cur, &mut cache) {
                Step::Computed => {}
                Step::Blocked => {
                    // `cur` is Some whenever step returns Blocked.
                    let Some(c) = cur.as_ref() else { break 'work };
                    if !wait_progress(sh, c) {
                        break 'work;
                    }
                }
                Step::Idle | Step::Cancelled => break 'work,
            }
        }
        // Fold this runner's cache traffic into the shared counters on
        // the way out, under the coordination mutex.
        let mut co = sh.lock();
        co.profile_hits += cache.hits();
        co.profile_misses += cache.misses();
    }

    /// Compute block `(r, c)` against the live buses and park the result
    /// for the deliverer. Returns false when cancellation was observed.
    fn compute_block(
        sh: &Shared<'_, '_>,
        runner: usize,
        r: usize,
        c: usize,
        cache: &mut crate::striped::ProfileCache,
    ) -> bool {
        let layout = sh.layout;
        let bc = layout.block_cols;
        let (rs, re) = layout.row_range(r);
        let (cs, ce) = layout.col_range(c);
        let width = (ce + 1).saturating_sub(cs);
        let height = (re + 1).saturating_sub(rs);

        #[cfg(feature = "race-check")]
        {
            let d = r + c;
            // Seeded early-publish fault: model the right neighbour
            // consuming this block's border one publish early — its reads
            // replayed before this block has written. Shadow-only; the
            // real hand-off below is untouched.
            if let Some((fr, fc)) = crate::exec::fault::early_publish_block() {
                if fr == r && fc == c && c + 1 < bc {
                    let (ncs, nce) = layout.col_range(c + 1);
                    let nw = (nce + 1).saturating_sub(ncs);
                    sh.race.block_reads(r, c + 1, d + 1, (ncs - 1, nw), (rs - 1, height));
                }
            }
            sh.race.block_reads(r, c, d, (cs - 1, width), (rs - 1, height));
        }

        // SAFETY: the strip protocol makes these raw views race-free.
        // - hbus `[cs-1, cs-1+width)`: horizontal-bus columns are
        //   partitioned by strip (strips own disjoint block-column
        //   ranges), and within a strip one runner walks rows
        //   sequentially, so only this runner ever touches this segment
        //   while it owns the strip; strip hand-offs (steals) happen only
        //   after the previous owner finished the whole strip, ordered by
        //   the coordination mutex in try_claim/publish.
        // - vbus `[rs-1, rs-1+height)`: within a row the segment passes
        //   left-to-right between strips. The left strip stops touching
        //   row `r`'s cells once it publishes `r + 1`; the right strip
        //   starts only after observing that publish under the same
        //   mutex (step's publish check), whose release/acquire orders
        //   the writes before the reads.
        // - corners: each corner cell is written by exactly one block
        //   and read by exactly one block; same-strip pairs are ordered
        //   by the runner's sequential walk, cross-strip pairs by the
        //   publish that covers the writer's row.
        let (hseg, vseg) = unsafe {
            (
                std::slice::from_raw_parts_mut(sh.hbus.at(cs - 1), width),
                std::slice::from_raw_parts_mut(sh.vbus.at(rs - 1), height),
            )
        };
        // SAFETY: corner reads/writes follow the corner ordering argument
        // above; indices are within the `(br+1)*(bc+1)` table.
        let corner = unsafe { *sh.corners.at(r * (bc + 1) + c) };
        let out = kernel::compute_tile_cached(
            &sh.job.a[rs - 1..re],
            &sh.job.b[cs - 1..ce],
            rs,
            cs,
            &sh.job.scoring,
            sh.local,
            sh.job.watch,
            corner,
            hseg,
            vseg,
            cache,
        );
        // SAFETY: as above — this block is the unique writer of corner
        // `(r+1, c+1)`.
        unsafe { *sh.corners.at((r + 1) * (bc + 1) + (c + 1)) = out.corner_out };

        #[cfg(feature = "race-check")]
        sh.race.block_writes(r, c, r + c, (cs - 1, width), (rs - 1, height), false);

        let parked = BlockDone { outcome: out, bottom: hseg.to_vec(), right: vseg.to_vec() };
        let mut co = sh.lock();
        co.blocks[runner] += 1;
        co.done.insert((r, c), parked);
        let alive = !co.cancel;
        drop(co);
        if let Some(t) = sh.token {
            t.beat();
        }
        sh.cv_done.notify_all();
        alive
    }

    /// The deliverer's walk through the canonical (serial) block order.
    struct DeliverCursor {
        d: usize,
        total_diagonals: usize,
        blocks: Vec<(usize, usize)>,
        i: usize,
        /// Blocks of diagonals `>= first_diagonal` not yet delivered.
        remaining: usize,
    }

    pub(super) fn run(
        p: Params<'_, '_>,
        observer: &mut dyn WavefrontObserver,
        mut hbus: Vec<CellHF>,
        mut vbus: Vec<CellHE>,
        mut corners: Vec<Score>,
    ) -> Result<RegionResult, ExecError> {
        let layout = *p.layout;
        let (br, bc) = (layout.block_rows, layout.block_cols);
        let strips = p.plan.strips();
        let fd = p.first_diagonal;
        let total_diagonals = layout.diagonals();
        // One runner per strip at most; the caller is runner 0.
        let runners = p.workers.min(strips).max(1);

        // Resume frontier: rows of each strip already covered by the
        // checkpoint count as published (row `r` of strip `s` is restored
        // iff even its last column's diagonal precedes the resume point).
        let published: Vec<usize> =
            (0..strips).map(|s| fd.saturating_sub(p.plan.bounds[s + 1] - 1).min(br)).collect();

        #[cfg(feature = "race-check")]
        p.race.set_strip_plan(&p.plan.bounds, &published);

        // Seeded reorder fault (race-check): replay the armed block's bus
        // transactions before any runner has written anything — the strip
        // analogue of running it one diagonal early. Shadow-only.
        #[cfg(feature = "race-check")]
        if let Some((pr, pc)) = crate::exec::fault::reorder_block() {
            if pr < br && pc < bc && pr + pc > fd {
                let (rs, re) = layout.row_range(pr);
                let (cs, ce) = layout.col_range(pc);
                let width = (ce + 1).saturating_sub(cs);
                let height = (re + 1).saturating_sub(rs);
                p.race.block_reads(pr, pc, pr + pc, (cs - 1, width), (rs - 1, height));
                p.race.block_writes(pr, pc, pr + pc, (cs - 1, width), (rs - 1, height), true);
            }
        }

        // Shadow buses: the deliverer's diagonal-ordered view (see the
        // module docs). Cloned before the raw views are taken.
        let mut ck_hbus = hbus.clone();
        let mut ck_vbus = vbus.clone();
        let mut ck_corners = corners.clone();

        // Cancellation checkpoint: the ck buses are a valid resume point
        // only *between* diagonals (mid-diagonal they hold a partially
        // applied frontier), so the deliverer refreshes this snapshot at
        // every diagonal boundary and flushes it when a cancel lands.
        let mut cancel_snap: Option<EngineState> = match (p.token, p.checkpoint_every) {
            (Some(_), Some(_)) => Some(EngineState {
                fingerprint: EngineState::fingerprint_of(p.job),
                next_diagonal: fd,
                hbus: ck_hbus.clone(),
                vbus: ck_vbus.clone(),
                corners: ck_corners.clone(),
                best: p.init_best,
                cells: p.init_cells,
                busy_slots: p.init_busy,
                schedule: ScheduleInfo::Strips {
                    strips: strips as u32,
                    batch_rows: p.plan.batch_rows as u32,
                },
            }),
            _ => None,
        };

        let shared = Shared {
            job: p.job,
            layout: &layout,
            plan: p.plan,
            local: p.job.mode.is_local(),
            first_diagonal: fd,
            lead: bc + 8 * p.plan.batch_rows,
            strips,
            hbus: RawBus::new(&mut hbus),
            vbus: RawBus::new(&mut vbus),
            corners: RawBus::new(&mut corners),
            coord: Mutex::new(Coord {
                published,
                // Home claims: runner `i` owns strip `i` from launch, so
                // every runner is guaranteed at least one whole strip of
                // work (deterministic utilization floor); the remaining
                // strips are the stealable suffix.
                next_strip: runners,
                claims: vec![1; runners],
                blocks: vec![0; runners],
                steals: 0,
                batches: 0,
                profile_hits: 0,
                profile_misses: 0,
                front: fd,
                cancel: false,
                done: HashMap::new(),
                events: (0..runners)
                    .map(|r| StripEvent::Claimed { runner: r, strip: r, stolen: false })
                    .collect(),
            }),
            cv_work: Condvar::new(),
            cv_done: Condvar::new(),
            token: p.token,
            #[cfg(feature = "race-check")]
            race: p.race,
        };

        let mut best = p.init_best;
        let mut cells = p.init_cells;
        let mut busy_slots = p.init_busy;
        let mut diagonals_run = 0usize;
        let mut paths = kernel::PathCounts::default();
        let mut aborted = false;
        // The calling thread is runner 0; its profile cache lives out
        // here so its traffic can be folded in after the scope settles.
        let mut cache0 = crate::striped::ProfileCache::new();

        let remaining: usize =
            (fd..total_diagonals).map(|d| layout.diagonal_blocks(d).count()).sum();
        let mut dc = DeliverCursor {
            d: fd,
            total_diagonals,
            blocks: if fd < total_diagonals {
                layout.diagonal_blocks(fd).collect()
            } else {
                Vec::new()
            },
            i: 0,
            remaining,
        };

        let sh = &shared;
        let scope_result = p.pool.scope(|scope| {
            // lint: allow(cancel-coverage): bounded spawn fan-out, one pinned task per runner
            for runner in 1..runners {
                scope.spawn_pinned(move || runner_loop(sh, runner));
            }
            // The delivery loop may panic (observer code is arbitrary);
            // runners must still be released before the scope can settle,
            // so catch, cancel, then re-raise.
            let body = catch_unwind(AssertUnwindSafe(|| {
                let mut cur: Option<Cursor> = Some(home_cursor(sh, 0));
                while dc.remaining > 0 {
                    // 0) Cancellation: flush the boundary snapshot so the
                    //    run stays resumable, then tear down (the scope
                    //    epilogue below wakes every parked runner).
                    if p.token.is_some_and(CancelToken::is_cancelled) {
                        if let Some(snap) = cancel_snap.take() {
                            observer.on_checkpoint(&snap);
                        }
                        aborted = true;
                        break;
                    }
                    // 1) Deliver everything ready, in canonical order.
                    let flow = deliver_ready(
                        sh,
                        &p,
                        observer,
                        &mut dc,
                        &mut ck_hbus,
                        &mut ck_vbus,
                        &mut ck_corners,
                        &mut best,
                        &mut cells,
                        &mut busy_slots,
                        &mut diagonals_run,
                        &mut paths,
                        &mut cancel_snap,
                    );
                    if flow.is_break() {
                        aborted = true;
                        break;
                    }
                    if dc.remaining == 0 {
                        break;
                    }
                    if scope.panicked() {
                        // A runner died; the scope will surface the panic
                        // as WorkerPanic once we release the others.
                        break;
                    }
                    // 2) Advance the caller's own strip by one block.
                    match step(sh, 0, &mut cur, &mut cache0) {
                        Step::Computed => continue,
                        Step::Blocked | Step::Idle | Step::Cancelled => {}
                    }
                    // 3) Nothing to compute: park briefly for runner
                    //    completions (timeout bounds the wait so runner
                    //    panics and publish-only progress are noticed).
                    let co = sh.lock();
                    let next_ready = dc.blocks.get(dc.i).is_some_and(|rc| co.done.contains_key(rc));
                    if !next_ready && co.events.is_empty() && !co.cancel {
                        drop(
                            sh.cv_done
                                .wait_timeout(co, Duration::from_millis(1))
                                .unwrap_or_else(|e| e.into_inner())
                                .0,
                        );
                    }
                }
            }));
            // Release the runners whatever happened above, and drop any
            // runner job that never reached a worker thread (the caller's
            // drain skips pinned jobs, so they would pend forever).
            sh.cancel_all();
            scope.cancel_queued();
            if let Err(payload) = body {
                resume_unwind(payload);
            }
        });
        scope_result?;

        // Final event drain, so claims/publishes that raced the last
        // delivery still reach the observer.
        // lint: allow(cancel-coverage): bounded drain of the already-collected event buffer after the scope settled
        for ev in std::mem::take(&mut shared.lock().events) {
            observer.on_strip_event(&ev);
        }

        let co = shared.lock();
        let stats = StripStats {
            strips,
            batch_rows: p.plan.batch_rows,
            steals: co.steals,
            batches_published: co.batches,
            runner_blocks: co.blocks.clone(),
        };
        // Fold the pooled runners' cache traffic (deposited by each
        // `runner_loop` on exit) with runner 0's own cache, which lives in
        // this frame and was never routed through the coordinator.
        let profile_hits = co.profile_hits + cache0.hits();
        let profile_misses = co.profile_misses + cache0.misses();
        // Cancelled teardown: park a diagnostic snapshot of the protocol
        // counters in the token, so a stalled run can report where each
        // strip was stuck.
        if let Some(t) = p.token {
            if t.is_cancelled() {
                t.set_strip_diag(StripDiag {
                    published: co.published.clone(),
                    claims: co.claims.clone(),
                    blocks: co.blocks.clone(),
                    front: co.front,
                });
            }
        }
        drop(co);

        Ok(RegionResult {
            best,
            cells,
            diagonals_run,
            aborted,
            busy_slots,
            hbus: ck_hbus,
            vbus: ck_vbus,
            layout,
            paths,
            profile_hits,
            profile_misses,
            strip: Some(stats),
        })
    }

    /// Deliver every finished block at the canonical frontier: apply it
    /// to the shadow buses, update counters, notify the observer.
    /// Returns `Break` when the observer aborts the launch.
    #[allow(clippy::too_many_arguments)]
    fn deliver_ready(
        sh: &Shared<'_, '_>,
        p: &Params<'_, '_>,
        observer: &mut dyn WavefrontObserver,
        dc: &mut DeliverCursor,
        ck_hbus: &mut [CellHF],
        ck_vbus: &mut [CellHE],
        ck_corners: &mut [Score],
        best: &mut Option<(Score, usize, usize)>,
        cells: &mut u64,
        busy_slots: &mut u64,
        diagonals_run: &mut usize,
        paths: &mut kernel::PathCounts,
        cancel_snap: &mut Option<EngineState>,
    ) -> ControlFlow<()> {
        let layout = sh.layout;
        let (br, bc) = (layout.block_rows, layout.block_cols);
        // lint: allow(cancel-coverage): delivers only already-completed blocks and returns Continue when one is not
        // ready; the caller's delivery loop polls the cancel token every round
        loop {
            // Forward protocol events as they surface.
            let events = std::mem::take(&mut sh.lock().events);
            for ev in &events {
                observer.on_strip_event(ev);
            }
            if dc.remaining == 0 {
                return ControlFlow::Continue(());
            }
            if dc.i == dc.blocks.len() {
                // Diagonal complete: advance the frontier and refill.
                dc.d += 1;
                if dc.d >= dc.total_diagonals {
                    return ControlFlow::Continue(());
                }
                dc.blocks = layout.diagonal_blocks(dc.d).collect();
                dc.i = 0;
                let mut co = sh.lock();
                co.front = dc.d;
                drop(co);
                sh.cv_work.notify_all();
                continue;
            }
            let (r, c) = dc.blocks[dc.i];
            let Some(done) = sh.lock().done.remove(&(r, c)) else {
                return ControlFlow::Continue(());
            };
            if dc.i == 0 {
                // First delivery of this diagonal: checkpoint (state
                // through the previous diagonal), then count it — the
                // exact order of the serial engine.
                if let Some(every) = p.checkpoint_every {
                    if dc.d > p.first_diagonal
                        && (dc.d - p.first_diagonal).is_multiple_of(every.max(1))
                    {
                        observer.on_checkpoint(&EngineState {
                            fingerprint: EngineState::fingerprint_of(p.job),
                            next_diagonal: dc.d,
                            hbus: ck_hbus.to_vec(),
                            vbus: ck_vbus.to_vec(),
                            corners: ck_corners.to_vec(),
                            best: *best,
                            cells: *cells,
                            busy_slots: *busy_slots,
                            schedule: ScheduleInfo::Strips {
                                strips: sh.strips as u32,
                                batch_rows: sh.plan.batch_rows as u32,
                            },
                        });
                    }
                }
                // The ck buses hold exactly the state through diagonal
                // `dc.d - 1` right now — the last valid resume boundary.
                // Refresh the cancellation snapshot from it.
                if let Some(snap) = cancel_snap.as_mut() {
                    snap.next_diagonal = dc.d;
                    snap.hbus.copy_from_slice(ck_hbus);
                    snap.vbus.copy_from_slice(ck_vbus);
                    snap.corners.copy_from_slice(ck_corners);
                    snap.best = *best;
                    snap.cells = *cells;
                    snap.busy_slots = *busy_slots;
                }
                *diagonals_run += 1;
                *busy_slots += dc.blocks.len() as u64;
            }
            let (rs, re) = layout.row_range(r);
            let (cs, ce) = layout.col_range(c);
            let width = (ce + 1).saturating_sub(cs);
            let height = (re + 1).saturating_sub(rs);
            ck_hbus[cs - 1..cs - 1 + width].copy_from_slice(&done.bottom);
            ck_vbus[rs - 1..rs - 1 + height].copy_from_slice(&done.right);
            ck_corners[(r + 1) * (bc + 1) + (c + 1)] = done.outcome.corner_out;
            *cells += done.outcome.cells;
            paths.count(done.outcome.path);
            if let Some(cand) = done.outcome.best {
                if best.is_none_or(|b| better_endpoint(cand, b)) {
                    *best = Some(cand);
                }
            }
            let coords = BlockCoords {
                r,
                c,
                diagonal: dc.d,
                rows: (rs, re),
                cols: (cs, ce),
                last_block_row: r + 1 == br,
                last_block_col: c + 1 == bc,
            };
            dc.i += 1;
            dc.remaining -= 1;
            if observer.on_block(&coords, &done.outcome, &done.bottom, &done.right).is_break() {
                return ControlFlow::Break(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_core::full::sw_local_score;
    use sw_core::linear::forward_vectors;
    use sw_core::transcript::EdgeState as ES;

    const SC: Scoring = Scoring::paper();

    fn lcg(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize & 3]
            })
            .collect()
    }

    fn job<'a>(
        a: &'a [u8],
        b: &'a [u8],
        mode: Mode,
        grid: GridSpec,
        workers: usize,
    ) -> RegionJob<'a> {
        RegionJob { a, b, scoring: SC, mode, grid, workers, watch: None }
    }

    #[test]
    fn global_final_row_matches_rowdp() {
        let a = lcg(1, 113);
        let b = lcg(2, 97);
        for start in [ES::Diagonal, ES::GapS0, ES::GapS1] {
            let res = run_plain(&job(&a, &b, Mode::global(start), GridSpec::small(), 2));
            assert!(!res.aborted);
            assert_eq!(res.cells, (a.len() * b.len()) as u64);
            let (h, f) = forward_vectors(&a, &b, &SC, start);
            for j in 0..b.len() {
                assert_eq!(res.hbus[j].h, h[j + 1], "H mismatch at {j} start={start:?}");
                assert_eq!(res.hbus[j].f, f[j + 1], "F mismatch at {j} start={start:?}");
            }
        }
    }

    #[test]
    fn local_best_matches_reference() {
        let a = lcg(3, 200);
        let mut b = lcg(3, 200); // same seed: identical, then perturb
        for i in (0..200).step_by(17) {
            b[i] = b"ACGT"[(i / 17) % 4];
        }
        let res = run_plain(&job(&a, &b, Mode::Local, GridSpec::small(), 3));
        let (score, end) = sw_local_score(&a, &b, &SC);
        let (s, i, j) = res.best.expect("positive score expected");
        assert_eq!(s, score);
        assert_eq!((i, j), end);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let a = lcg(5, 301);
        let b = lcg(6, 257);
        let r1 =
            run_plain(&job(&a, &b, Mode::Local, GridSpec { blocks: 5, threads: 4, alpha: 3 }, 1));
        let r4 =
            run_plain(&job(&a, &b, Mode::Local, GridSpec { blocks: 5, threads: 4, alpha: 3 }, 4));
        assert_eq!(r1.best, r4.best);
        assert_eq!(r1.cells, r4.cells);
        for j in 0..b.len() {
            assert_eq!(r1.hbus[j], r4.hbus[j]);
        }
    }

    #[test]
    fn grid_shape_does_not_change_results() {
        let a = lcg(7, 150);
        let b = lcg(8, 190);
        let grids = [
            GridSpec { blocks: 1, threads: 1, alpha: 1 },
            GridSpec { blocks: 2, threads: 8, alpha: 1 },
            GridSpec { blocks: 7, threads: 2, alpha: 5 },
            GridSpec { blocks: 240, threads: 64, alpha: 4 }, // reduced at runtime
        ];
        let reference = run_plain(&job(&a, &b, Mode::global(ES::Diagonal), grids[0], 2));
        for g in &grids[1..] {
            let r = run_plain(&job(&a, &b, Mode::global(ES::Diagonal), *g, 2));
            assert_eq!(r.hbus, reference.hbus, "grid {g:?}");
        }
    }

    /// Observer sees every block exactly once, in diagonal order, and
    /// bottom/right segments have block-shaped lengths.
    #[test]
    fn observer_sees_all_blocks_in_order() {
        struct Collect {
            seen: Vec<BlockCoords>,
        }
        impl WavefrontObserver for Collect {
            fn on_block(
                &mut self,
                b: &BlockCoords,
                _out: &TileOutcome,
                bottom: &[CellHF],
                right: &[CellHE],
            ) -> ControlFlow<()> {
                assert_eq!(bottom.len(), b.cols.1 + 1 - b.cols.0);
                assert_eq!(right.len(), b.rows.1 + 1 - b.rows.0);
                self.seen.push(*b);
                ControlFlow::Continue(())
            }
        }
        let a = lcg(9, 64);
        let b = lcg(10, 48);
        let grid = GridSpec { blocks: 3, threads: 2, alpha: 4 };
        let mut obs = Collect { seen: Vec::new() };
        let res = run(&job(&a, &b, Mode::Local, grid, 2), &mut obs);
        assert_eq!(obs.seen.len(), res.layout.block_rows * res.layout.block_cols);
        // Diagonals are non-decreasing.
        for w in obs.seen.windows(2) {
            assert!(w[0].diagonal <= w[1].diagonal);
        }
    }

    #[test]
    fn observer_abort_stops_early() {
        struct StopAfter {
            n: usize,
        }
        impl WavefrontObserver for StopAfter {
            fn on_block(
                &mut self,
                _: &BlockCoords,
                _: &TileOutcome,
                _: &[CellHF],
                _: &[CellHE],
            ) -> ControlFlow<()> {
                self.n -= 1;
                if self.n == 0 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            }
        }
        let a = lcg(11, 128);
        let b = lcg(12, 128);
        let grid = GridSpec { blocks: 4, threads: 2, alpha: 2 };
        let mut obs = StopAfter { n: 3 };
        let res = run(&job(&a, &b, Mode::Local, grid, 2), &mut obs);
        assert!(res.aborted);
        assert!(res.cells < (a.len() * b.len()) as u64);
    }

    #[test]
    fn degenerate_empty_region() {
        let res = run_plain(&job(b"", b"ACG", Mode::global(ES::Diagonal), GridSpec::small(), 2));
        assert_eq!(res.cells, 0);
        assert!(!res.aborted);
        // hbus keeps the init row.
        assert_eq!(res.hbus[0].h, -5);
        let res2 = run_plain(&job(b"ACG", b"", Mode::Local, GridSpec::small(), 2));
        assert_eq!(res2.cells, 0);
        assert!(res2.best.is_none());
    }

    #[test]
    fn single_cell_region() {
        let res = run_plain(&job(b"A", b"A", Mode::Local, GridSpec::small(), 2));
        assert_eq!(res.best, Some((1, 1, 1)));
        assert_eq!(res.cells, 1);
    }
}

#[cfg(test)]
mod utilization_tests {
    use super::*;
    use sw_core::transcript::EdgeState as ES;

    fn lcg(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize & 3]
            })
            .collect()
    }

    /// Tall grids (many block rows, few block columns) keep nearly every
    /// slot busy — the property cells delegation provides on the GPU.
    #[test]
    fn tall_grid_has_high_utilization() {
        let a = lcg(1, 4000);
        let b = lcg(2, 200);
        let grid = GridSpec { blocks: 2, threads: 5, alpha: 2 }; // 400 block rows x 2 cols
        let job = RegionJob {
            a: &a,
            b: &b,
            scoring: Scoring::paper(),
            mode: Mode::global(ES::Diagonal),
            grid,
            workers: 1,
            watch: None,
        };
        let res = run_plain(&job);
        assert!(res.utilization() > 0.99, "utilization {}", res.utilization());
        assert_eq!(res.busy_slots, res.layout.block_rows as u64 * res.layout.block_cols as u64);
    }

    /// Square grids drain at the corners: utilization ~ R/(R+C-1).
    #[test]
    fn square_grid_utilization_matches_formula() {
        let a = lcg(3, 160);
        let b = lcg(4, 160);
        let grid = GridSpec { blocks: 8, threads: 10, alpha: 2 }; // 8x8 blocks
        let job = RegionJob {
            a: &a,
            b: &b,
            scoring: Scoring::paper(),
            mode: Mode::Local,
            grid,
            workers: 1,
            watch: None,
        };
        let res = run_plain(&job);
        let (r, c) = (res.layout.block_rows as f64, res.layout.block_cols as f64);
        let expected = (r * c) / ((r + c - 1.0) * c);
        assert!((res.utilization() - expected).abs() < 1e-9);
    }
}

#[cfg(test)]
mod resume_tests {
    use super::*;
    use sw_core::transcript::EdgeState as ES;

    fn lcg(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize & 3]
            })
            .collect()
    }

    fn job<'a>(a: &'a [u8], b: &'a [u8]) -> RegionJob<'a> {
        RegionJob {
            a,
            b,
            scoring: Scoring::paper(),
            mode: Mode::Local,
            grid: GridSpec { blocks: 3, threads: 2, alpha: 2 },
            workers: 2,
            watch: None,
        }
    }

    /// Observer that records every checkpoint snapshot.
    struct Snapshots(Vec<EngineState>);
    impl WavefrontObserver for Snapshots {
        fn on_block(
            &mut self,
            _: &BlockCoords,
            _: &TileOutcome,
            _: &[CellHF],
            _: &[CellHE],
        ) -> ControlFlow<()> {
            ControlFlow::Continue(())
        }
        fn on_checkpoint(&mut self, state: &EngineState) {
            self.0.push(state.clone());
        }
    }

    /// Interrupt + resume must reproduce the uninterrupted run exactly.
    #[test]
    fn resume_reproduces_uninterrupted_run() {
        let a = lcg(1, 300);
        let mut b = lcg(1, 300);
        for i in (0..300).step_by(23) {
            b[i] = b"ACGT"[i % 4];
        }
        let j = job(&a, &b);
        let full = run_plain(&j);

        // Capture checkpoints every 5 diagonals.
        let mut obs = Snapshots(Vec::new());
        let _ = run_resumable(&j, &mut obs, None, Some(5));
        let snapshots = obs.0;
        assert!(snapshots.len() >= 2, "expected several checkpoints");
        let mid = snapshots[snapshots.len() / 2].clone();

        // Round-trip the snapshot through bytes (what a file would hold).
        let bytes = mid.encode();
        let restored = EngineState::decode(&bytes).expect("decode");
        assert_eq!(restored, mid);

        let resumed = run_resumable(&j, &mut NoObserver, Some(restored), None);
        assert_eq!(resumed.best, full.best);
        assert_eq!(resumed.hbus, full.hbus);
        assert_eq!(resumed.vbus, full.vbus);
        assert_eq!(resumed.cells, full.cells, "cells counter continues across resume");
        assert_eq!(resumed.busy_slots, full.busy_slots);
    }

    #[test]
    fn resume_rejects_foreign_checkpoints() {
        let a = lcg(2, 100);
        let b = lcg(3, 100);
        let j = job(&a, &b);
        let mut obs = Snapshots(Vec::new());
        let _ = run_resumable(&j, &mut obs, None, Some(3));
        let mut snaps = obs.0;
        let other_a = lcg(4, 120);
        let j2 = job(&other_a, &b);
        let snap = snaps.pop().expect("have a snapshot");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_resumable(&j2, &mut NoObserver, Some(snap), None)
        }));
        assert!(result.is_err(), "foreign checkpoint must be rejected");
    }

    /// Strip-scheduled checkpoints carry their schedule provenance in a
    /// self-identifying tailer; stripping it yields a pre-strip-era blob
    /// that must still decode (as `Serial`) and resume correctly.
    #[test]
    fn schedule_provenance_roundtrips_and_old_blobs_decode() {
        let a = lcg(7, 260);
        let b = lcg(9, 240);
        let j = job(&a, &b); // workers: 2 -> strip scheduler
        let full = run_plain(&j);

        let mut obs = Snapshots(Vec::new());
        let _ = run_resumable(&j, &mut obs, None, Some(4));
        let snap = obs.0.into_iter().next().expect("have a checkpoint");
        let ScheduleInfo::Strips { strips, batch_rows } = snap.schedule else {
            panic!("strip-scheduled run must stamp Strips provenance, got {:?}", snap.schedule);
        };
        assert!(strips >= 2);
        assert_eq!(batch_rows as usize, DEFAULT_BATCH_ROWS);

        // Round-trip keeps the provenance.
        let bytes = snap.encode();
        let restored = EngineState::decode(&bytes).expect("decode");
        assert_eq!(restored, snap);

        // An old-format blob — everything but the 12-byte tailer — still
        // decodes; the schedule defaults to Serial and the engine payload
        // is untouched.
        let old = &bytes[..bytes.len() - 12];
        let legacy = EngineState::decode(old).expect("old-format blob must decode");
        assert_eq!(legacy.schedule, ScheduleInfo::Serial);
        assert_eq!(legacy.next_diagonal, snap.next_diagonal);
        assert_eq!(legacy.hbus, snap.hbus);
        assert_eq!(legacy.vbus, snap.vbus);
        assert_eq!(legacy.corners, snap.corners);

        // ... and resuming from it reproduces the uninterrupted run.
        let resumed = run_resumable(&j, &mut NoObserver, Some(legacy), None);
        assert_eq!(resumed.best, full.best);
        assert_eq!(resumed.hbus, full.hbus);
        assert_eq!(resumed.cells, full.cells);

        // A tailer truncated mid-way is corruption, not old format.
        assert!(EngineState::decode(&bytes[..bytes.len() - 5]).is_none());
    }

    /// A snapshot taken under one worker count must resume under any
    /// other: the strip plan is derived at launch, not persisted state.
    #[test]
    fn resume_with_different_worker_count_is_byte_identical() {
        let a = lcg(11, 280);
        let b = lcg(13, 300);
        let j4 = RegionJob { workers: 4, ..job(&a, &b) };
        let full = run_plain(&j4);

        let mut obs = Snapshots(Vec::new());
        let _ = run_resumable(&j4, &mut obs, None, Some(3));
        let snapshots = obs.0;
        assert!(snapshots.len() >= 2, "expected several checkpoints");
        let mid = snapshots[snapshots.len() / 2].clone();

        for workers in [1usize, 2, 3, 8] {
            let j = RegionJob { workers, ..j4 };
            let resumed = run_resumable(&j, &mut NoObserver, Some(mid.clone()), None);
            assert_eq!(resumed.best, full.best, "workers={workers}");
            assert_eq!(resumed.hbus, full.hbus, "workers={workers}");
            assert_eq!(resumed.vbus, full.vbus, "workers={workers}");
            assert_eq!(resumed.cells, full.cells, "workers={workers}");
            assert_eq!(resumed.busy_slots, full.busy_slots, "workers={workers}");
        }
    }

    /// An observer that cancels the supervision token after a fixed
    /// number of delivered blocks, recording every checkpoint.
    struct CancelAfter<'t> {
        countdown: usize,
        token: &'t crate::ctrl::CancelToken,
        snaps: Vec<EngineState>,
    }
    impl WavefrontObserver for CancelAfter<'_> {
        fn on_block(
            &mut self,
            _: &BlockCoords,
            _: &TileOutcome,
            _: &[CellHF],
            _: &[CellHE],
        ) -> ControlFlow<()> {
            if self.countdown > 0 {
                self.countdown -= 1;
                if self.countdown == 0 {
                    self.token.cancel(crate::ctrl::CancelCause::Requested);
                }
            }
            ControlFlow::Continue(())
        }
        fn on_checkpoint(&mut self, state: &EngineState) {
            self.snaps.push(state.clone());
        }
    }

    /// Cancelling a supervised run must (a) abort instead of returning a
    /// partial score, (b) flush one final boundary checkpoint, and (c)
    /// leave a snapshot from which resume is byte-identical to the
    /// uninterrupted run — on both schedulers, at several cancel points.
    #[test]
    fn cancelled_runs_flush_a_resumable_boundary_checkpoint() {
        let a = lcg(21, 260);
        let b = lcg(22, 300);
        for workers in [1usize, 4] {
            let j = RegionJob { workers, ..job(&a, &b) };
            let full = run_plain(&j);
            let pool = WorkerPool::new(workers);
            for cancel_after in [1usize, 7, 25] {
                let token = crate::ctrl::CancelToken::new();
                let mut obs = CancelAfter { countdown: cancel_after, token: &token, snaps: vec![] };
                // Cadence 10_000 never fires on this grid: every recorded
                // snapshot below is the cancellation flush itself.
                let res =
                    run_supervised(&pool, &j, &mut obs, None, Some(10_000), Some(&token)).unwrap();
                assert!(res.aborted, "workers={workers} cancel_after={cancel_after}");
                let snap = obs.snaps.pop().expect("cancel must flush a checkpoint");
                assert!(obs.snaps.is_empty(), "exactly one flush per cancel");
                let resumed = run_resumable(&j, &mut NoObserver, Some(snap), None);
                assert_eq!(resumed.best, full.best, "workers={workers}");
                assert_eq!(resumed.hbus, full.hbus, "workers={workers}");
                assert_eq!(resumed.vbus, full.vbus, "workers={workers}");
                assert_eq!(resumed.cells, full.cells, "workers={workers}");
                assert_eq!(resumed.busy_slots, full.busy_slots, "workers={workers}");
            }
        }
    }

    /// A token cancelled before launch aborts immediately with the
    /// initial state as its flush — resuming from it runs everything.
    #[test]
    fn pre_cancelled_run_aborts_with_initial_snapshot() {
        let a = lcg(23, 150);
        let b = lcg(24, 140);
        let j = job(&a, &b);
        let full = run_plain(&j);
        let pool = WorkerPool::new(2);
        let token = crate::ctrl::CancelToken::new();
        token.cancel(crate::ctrl::CancelCause::Requested);
        let mut obs = CancelAfter { countdown: 0, token: &token, snaps: vec![] };
        let res = run_supervised(&pool, &j, &mut obs, None, Some(10_000), Some(&token)).unwrap();
        assert!(res.aborted);
        assert_eq!(res.cells, 0, "no partial work should be committed");
        let snap = obs.snaps.pop().expect("flush");
        assert_eq!(snap.next_diagonal, 0);
        let resumed = run_resumable(&j, &mut NoObserver, Some(snap), None);
        assert_eq!(resumed.best, full.best);
        assert_eq!(resumed.hbus, full.hbus);
    }

    /// A live (never-cancelled) token must not change results, and the
    /// heartbeat must move.
    #[test]
    fn supervised_run_without_cancel_is_identical_and_beats() {
        let a = lcg(25, 200);
        let b = lcg(26, 180);
        for workers in [1usize, 3] {
            let j = RegionJob { workers, ..job(&a, &b) };
            let full = run_plain(&j);
            let pool = WorkerPool::new(workers);
            let token = crate::ctrl::CancelToken::new();
            let res = run_supervised(&pool, &j, &mut NoObserver, None, None, Some(&token)).unwrap();
            assert!(!res.aborted);
            assert_eq!(res.best, full.best, "workers={workers}");
            assert_eq!(res.hbus, full.hbus, "workers={workers}");
            assert_eq!(res.cells, full.cells, "workers={workers}");
            assert!(token.beats() > 0, "workers must report liveness");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(EngineState::decode(b"nope").is_none());
        assert!(EngineState::decode(b"").is_none());
        // Truncated real snapshot.
        let a = lcg(5, 60);
        let j = RegionJob {
            a: &a,
            b: &a,
            scoring: Scoring::paper(),
            mode: Mode::global(ES::Diagonal),
            grid: GridSpec::small(),
            workers: 1,
            watch: None,
        };
        let mut obs = Snapshots(Vec::new());
        let _ = run_resumable(&j, &mut obs, None, Some(1));
        let snaps = obs.0;
        let bytes = snaps[0].encode();
        assert!(EngineState::decode(&bytes[..bytes.len() - 3]).is_none());
        // Corrupted length field must not cause huge allocations.
        let mut corrupt = bytes.clone();
        corrupt[68] = 0xFF;
        corrupt[69] = 0xFF;
        corrupt[70] = 0xFF;
        let _ = EngineState::decode(&corrupt); // must return, not abort
    }
}
