//! Lane-striped, auto-vectorizable `i8` tile kernel — the byte-level
//! first rung of the precision ladder.
//!
//! This is the 32-lane sibling of [`crate::striped`]: the same Farrar
//! striped layout, the same three sweeps per column (partial pass, lazy-F
//! fixpoint, finalize), the same bias-rebase narrow-window overflow
//! protocol — but carried in saturating `i8` with [`LANES8`] = 32 lanes
//! per vector, so one `[i8; 32]` array is two 128-bit vectors on baseline
//! x86-64 (one 256-bit vector with AVX2) holding **twice** the rows of
//! the `[i16; 16]` form. Where SSW's byte kernel wins over its word
//! kernel, this path wins over the i16 path: half the vector ops per
//! column for the same band.
//!
//! The price is the window. With [`P8_MAX`] = 8 bounding the scoring
//! parameters, the safe range is `[i8::MIN + 32, i8::MAX - 32]` =
//! `[-96, 95]` — an i8 tile commits only while every `H` stays within
//! ~95 of the border bias and every gap chain within ~96 below it. DNA
//! scoring in *local* mode lives comfortably inside that (random-sequence
//! local scores hover near zero and planted matches rebase against the
//! border bias); *global* borders walk away linearly with the gap
//! penalty and overflow almost immediately, which this kernel detects in
//! the cheap border-conversion scan before any column work. Overflow
//! returns `None` with the buses untouched and the dispatcher in
//! [`crate::kernel`] escalates the tile: **i8 → i16 → scalar i32**, each
//! rung bit-identical to the scalar recurrence whenever it commits.
//!
//! Correctness is word-for-word the argument in [`crate::striped`]'s
//! module docs with `MARGIN = 4 * P8_MAX`: each recurrence moves a
//! checked value by at most `2 * P8_MAX`, so in-window results prove no
//! saturating op ever clipped, rail lanes (pinned at `i8::MIN`) can only
//! lose a `max`, and committed tiles are exact shifted images of the
//! `i32` recurrence.
//!
//! # Hot-loop discipline
//!
//! Unlike the i16 kernel, the per-band column streamer here is factored
//! into [`band8_columns`], tagged `// hot-loop` and enforced
//! allocation-free and wallclock-free by the `hot-loop` lint rule in the
//! `analysis` crate: all state (striped vectors, trackers, profile rows)
//! is allocated by the caller and passed in as [`Band8`], so the loop
//! body is pure index arithmetic over fixed `[i8; 32]` arrays — the
//! shape LLVM turns into `paddsb` / `psubsb` / `pmaxsb` packed ops.
//!
//! Query profiles come from the shared [`ProfileCache`] (i8 variant,
//! lazily materialized per database symbol), so tiles of the same band
//! row skip the rebuild entirely.

use crate::kernel::{CellHE, CellHF};
use crate::striped::{ProfileCache, StripedColumns, BAND, JCHUNK};
use sw_core::full::better_endpoint;
use sw_core::scoring::{Score, Scoring, NEG_INF};

/// Vector width: 32 `i8` lanes = two 128-bit vectors on baseline x86-64,
/// one 256-bit vector with AVX2 — double the rows-per-op of the i16 path.
pub const LANES8: usize = 32;

/// Largest scoring-parameter magnitude the i8 kernel accepts. One
/// recurrence step moves a value by at most `2 * P8_MAX`; the paper's
/// DNA scoring (`1 / -3 / 5 / 2`) fits with room to spare, BLOSUM-scale
/// protein matrices do not and start the ladder at i16.
pub const P8_MAX: Score = 8;

/// Rail margin (see [`crate::striped`]): no chain rooted at an in-window
/// value can reach the `i8` saturation rails.
const MARGIN8: i32 = 4 * P8_MAX;
const WIN8_LO: i32 = i8::MIN as i32 + MARGIN8;
const WIN8_HI: i32 = i8::MAX as i32 - MARGIN8;

/// Sentinel for unreachable partial-`F` lanes, pinned at the saturation
/// rail below the window so it loses every `max` against real values.
const RAIL8: i8 = i8::MIN;

/// One striped vector: lane `l` holds a row of chunk `l`.
pub(crate) type V8 = [i8; LANES8];

/// Per-lane column-index tracker vector. Column indices within a
/// [`JCHUNK`] chunk exceed `i8` range, so the trackers ride in `i16`
/// (they are bookkeeping, not DP state — the DP stays in `i8`).
type J8 = [i16; LANES8];

/// Can the i8 kernel attempt this tile? A strict subset of
/// [`crate::striped::eligible`] (narrower parameter bound, 32-row
/// minimum), which is what makes the ladder's middle rung always
/// available after an i8 overflow.
pub fn eligible(height: usize, width: usize, scoring: &Scoring) -> bool {
    let fits = |v: Score| (-P8_MAX..=P8_MAX).contains(&v);
    height >= LANES8
        && width >= LANES8
        && fits(scoring.match_score)
        && fits(scoring.mismatch_score)
        && fits(scoring.gap_first)
        && fits(scoring.gap_ext)
        && scoring.gap_first >= scoring.gap_ext
}

#[inline(always)]
fn lane_shift8(v: V8, insert: i8) -> V8 {
    let mut out = [insert; LANES8];
    out[1..].copy_from_slice(&v[..LANES8 - 1]);
    out
}

/// The cross-chunk lazy-F carry (see [`crate::striped`]): what flows into
/// lane `l`, row 0 from lane `l - 1`'s last row. Lane 0 receives rail.
#[inline(always)]
fn lane_carry8(fl: V8, hl: V8, ge8: i8, gf8: i8) -> V8 {
    let fl_sh = lane_shift8(fl, RAIL8);
    let hl_sh = lane_shift8(hl, RAIL8);
    let mut carry = [RAIL8; LANES8];
    for l in 0..LANES8 {
        let hf = hl_sh[l].max(fl_sh[l]);
        carry[l] = fl_sh[l].saturating_sub(ge8).max(hf.saturating_sub(gf8));
    }
    carry
}

/// Striped band state, allocated by [`compute_striped8_columns`] and
/// lent to the allocation-free hot loop. `bh`/`bj`/`wj` are sized by the
/// mode (empty unless LOCAL/WATCH), mirroring the i16 kernel.
struct Band8 {
    hload: Vec<V8>,
    hstore: Vec<V8>,
    ecur: Vec<V8>,
    fcur: Vec<V8>,
    bh: Vec<V8>,
    bj: Vec<J8>,
    wj: Vec<J8>,
}

/// Scalar context for one band of the i8 column streamer: everything the
/// hot loop needs beyond the striped state and the bus rows.
struct Ctx8 {
    seg: usize,
    base: usize,
    row_offset: usize,
    col_offset: usize,
    bias: Score,
    ge8: i8,
    gf8: i8,
    zero8: i8,
    watch8: i8,
    band_corner: i8,
}

// hot-loop
//
// Stream every column of one band through the three striped sweeps.
// Mirrors the i16 kernel's band loop line for line (see crate::striped
// for the pass-by-pass commentary); kept allocation-free and
// wallclock-free — enforced by the `hot-loop` analysis rule — so the
// whole body is straight-line index arithmetic over [i8; 32] arrays.
//
// Indexed `for s in 0..seg` / `for l in 0..LANES8` loops over plain
// slices are the shape LLVM reliably turns into packed i8 ops here; the
// iterator forms clippy prefers have been observed to scalarize the lane
// loops, so keep the index style.
#[allow(clippy::needless_range_loop)]
#[allow(clippy::too_many_arguments)]
fn band8_columns<const LOCAL: bool, const WATCH: bool>(
    st: &mut Band8,
    cx: &Ctx8,
    slot: &[u16; 256],
    prof: &[V8],
    b_tile: &[u8],
    th: &mut [i8],
    tf: &mut [i8],
    mn: &mut V8,
    mx: &mut V8,
    best: &mut Option<(Score, usize, usize)>,
    watch_hit: &mut Option<(usize, usize)>,
) {
    let width = b_tile.len();
    let seg = cx.seg;
    let (ge8, gf8, zero8, watch8) = (cx.ge8, cx.gf8, cx.zero8, cx.watch8);
    let jchunk = if LOCAL || WATCH { JCHUNK } else { width };
    // Lane-0 diagonal seed: the *pre-update* top-border H of the previous
    // column, carried across chunk boundaries (see the i16 kernel).
    let mut prev_top = cx.band_corner;
    let mut cbase = 0usize;
    while cbase < width {
        let clen = (width - cbase).min(jchunk);
        if LOCAL {
            st.bh.iter_mut().for_each(|v| *v = [zero8; LANES8]);
            st.bj.iter_mut().for_each(|v| *v = [-1; LANES8]);
        }
        if WATCH {
            st.wj.iter_mut().for_each(|v| *v = [-1; LANES8]);
        }
        for jc in 0..clen {
            let j = cbase + jc;
            let k = slot[b_tile[j] as usize] as usize;
            let pr = &prof[k * seg..(k + 1) * seg];
            let cur_top = th[j];
            // Band-top F seed for lane 0 (row `base`).
            let f0 = tf[j].saturating_sub(ge8).max(th[j].saturating_sub(gf8));

            // Pass 1: H with lane-chunk-partial F; store the partial F
            // *used* at each segment position.
            let mut v_f = [RAIL8; LANES8];
            v_f[0] = f0;
            let mut v_diag = lane_shift8(st.hload[seg - 1], prev_top);
            for s in 0..seg {
                let p = pr[s];
                let e = st.ecur[s];
                let mut h = [0i8; LANES8];
                for l in 0..LANES8 {
                    let mut x = v_diag[l].saturating_add(p[l]).max(e[l]).max(v_f[l]);
                    if LOCAL {
                        x = x.max(zero8);
                    }
                    h[l] = x;
                }
                v_diag = st.hload[s];
                st.hstore[s] = h;
                st.fcur[s] = v_f;
                let mut f = [0i8; LANES8];
                for l in 0..LANES8 {
                    f[l] = v_f[l].saturating_sub(ge8).max(h[l].saturating_sub(gf8));
                }
                v_f = f;
            }

            // Pass 2: lazy-F across lane-chunk boundaries; first sweep
            // unconditional, then the one-compare fixpoint tail.
            let mut carry = lane_carry8(st.fcur[seg - 1], st.hstore[seg - 1], ge8, gf8);
            for s in 0..seg {
                let f = st.fcur[s];
                let mut nf = [0i8; LANES8];
                for l in 0..LANES8 {
                    nf[l] = f[l].max(carry[l]);
                }
                st.fcur[s] = nf;
                for l in 0..LANES8 {
                    carry[l] = nf[l].saturating_sub(ge8);
                }
            }
            loop {
                let carry0 = lane_carry8(st.fcur[seg - 1], st.hstore[seg - 1], ge8, gf8);
                let f0 = st.fcur[0];
                let mut any = 0u16;
                for l in 0..LANES8 {
                    any |= (carry0[l] > f0[l]) as u16;
                }
                if any == 0 {
                    break;
                }
                let mut carry = carry0;
                for s in 0..seg {
                    let f = st.fcur[s];
                    let mut improves = 0u16;
                    for l in 0..LANES8 {
                        improves |= (carry[l] > f[l]) as u16;
                    }
                    if improves == 0 {
                        break;
                    }
                    let mut nf = [0i8; LANES8];
                    for l in 0..LANES8 {
                        nf[l] = f[l].max(carry[l]);
                    }
                    st.fcur[s] = nf;
                    for l in 0..LANES8 {
                        carry[l] = nf[l].saturating_sub(ge8);
                    }
                }
            }

            // Pass 3: finalize H, next-column E, trackers.
            let jc16 = jc as i16;
            let last_col = j + 1 == width;
            for s in 0..seg {
                let f = st.fcur[s];
                let hp = st.hstore[s];
                let mut h = [0i8; LANES8];
                for l in 0..LANES8 {
                    h[l] = hp[l].max(f[l]);
                }
                st.hstore[s] = h;
                if !last_col {
                    let e = st.ecur[s];
                    let mut en = [0i8; LANES8];
                    for l in 0..LANES8 {
                        en[l] = e[l].saturating_sub(ge8).max(h[l].saturating_sub(gf8));
                    }
                    st.ecur[s] = en;
                    for l in 0..LANES8 {
                        mn[l] = mn[l].min(en[l].min(f[l]));
                        mx[l] = mx[l].max(h[l]);
                    }
                } else {
                    for l in 0..LANES8 {
                        mn[l] = mn[l].min(f[l]);
                        mx[l] = mx[l].max(h[l]);
                    }
                }
                if LOCAL {
                    let bh = &mut st.bh[s];
                    let bj = &mut st.bj[s];
                    for l in 0..LANES8 {
                        let better = h[l] > bh[l];
                        bh[l] = if better { h[l] } else { bh[l] };
                        bj[l] = if better { jc16 } else { bj[l] };
                    }
                }
                if WATCH {
                    let wj = &mut st.wj[s];
                    for l in 0..LANES8 {
                        let hit = h[l] == watch8 && wj[l] < 0;
                        wj[l] = if hit { jc16 } else { wj[l] };
                    }
                }
            }
            th[j] = st.hstore[seg - 1][LANES8 - 1];
            tf[j] = st.fcur[seg - 1][LANES8 - 1];
            prev_top = cur_top;
            std::mem::swap(&mut st.hload, &mut st.hstore);
        }

        // Per-chunk reductions, identical ordering to the i16 kernel.
        if LOCAL {
            for s in 0..seg {
                for l in 0..LANES8 {
                    if st.bh[s][l] > zero8 {
                        let cand = (
                            cx.bias + st.bh[s][l] as Score,
                            cx.row_offset + cx.base + l * seg + s,
                            cx.col_offset + cbase + st.bj[s][l] as usize,
                        );
                        if best.is_none_or(|b| better_endpoint(cand, b)) {
                            *best = Some(cand);
                        }
                    }
                }
            }
        }
        if WATCH {
            for s in 0..seg {
                for l in 0..LANES8 {
                    if st.wj[s][l] >= 0 {
                        let cand = (
                            cx.row_offset + cx.base + l * seg + s,
                            cx.col_offset + cbase + st.wj[s][l] as usize,
                        );
                        if watch_hit.is_none_or(|cur| cand < cur) {
                            *watch_hit = Some(cand);
                        }
                    }
                }
            }
        }
        cbase += clen;
    }
}

/// Run the i8×32 striped kernel over the leading
/// `height - height % LANES8` rows.
///
/// Contract is identical to [`crate::striped::compute_striped_columns`]:
/// on success the bus segments are overwritten bit-identically to the
/// scalar kernel and the bottom sliver (at most `LANES8 - 1` rows) is the
/// dispatcher's job; on window overflow returns `None` with `top`/`left`
/// untouched so the dispatcher can escalate to the i16 rung on pristine
/// borders.
#[allow(clippy::too_many_arguments)]
// mirror of the compute_tile signature
#[allow(clippy::needless_range_loop)]
// indexed loops vectorize; see band8_columns
pub(crate) fn compute_striped8_columns<const LOCAL: bool, const WATCH: bool>(
    a_tile: &[u8],
    b_tile: &[u8],
    row_offset: usize,
    col_offset: usize,
    scoring: &Scoring,
    watch: Option<Score>,
    corner: Score,
    top: &mut [CellHF],
    left: &mut [CellHE],
    cache: &mut ProfileCache,
) -> Option<StripedColumns> {
    let height = a_tile.len();
    let width = b_tile.len();
    let rows = height - height % LANES8;
    debug_assert!(rows >= LANES8 && width >= LANES8);
    debug_assert!(top.len() >= width && left.len() == height);

    // Rebase to the largest finite border H (see crate::striped).
    let mut bias = Score::MIN;
    for v in std::iter::once(corner)
        .chain(top[..width].iter().map(|c| c.h))
        .chain(left[..rows].iter().map(|c| c.h))
    {
        if v > NEG_INF / 2 {
            bias = bias.max(v);
        }
    }
    if bias == Score::MIN || bias.unsigned_abs() > (i32::MAX / 2) as u32 {
        return None;
    }
    let bias64 = bias as i64;
    let zero_rel = -bias64;
    if LOCAL && !(WIN8_LO as i64..=WIN8_HI as i64).contains(&zero_rel) {
        return None;
    }
    let zero8 = if LOCAL { zero_rel as i8 } else { 0 };
    let (gf, ge) = (scoring.gap_first, scoring.gap_ext);

    let rel_h = |v: Score| -> Option<i8> {
        let r = v as i64 - bias64;
        if (WIN8_LO as i64..=WIN8_HI as i64).contains(&r) {
            Some(r as i8)
        } else {
            None
        }
    };
    // Gap-border tightening and up-front rejection, exactly as in the
    // i16 kernel (the raised value sits within 2*P8_MAX of its checked H).
    let rel_gap = |g: Score, h8: i8| -> Option<i8> {
        let tight = (g as i64 - bias64).max(h8 as i64 - (gf - ge) as i64);
        if tight > WIN8_HI as i64 || tight - (ge as i64) < WIN8_LO as i64 {
            None
        } else {
            Some(tight as i8)
        }
    };

    let mut th = vec![0i8; width];
    let mut tf = vec![0i8; width];
    for j in 0..width {
        let h8 = rel_h(top[j].h)?;
        th[j] = h8;
        tf[j] = rel_gap(top[j].f, h8)?;
    }
    let mut lh = vec![0i8; rows];
    let mut le = vec![0i8; rows];
    for i in 0..rows {
        let h8 = rel_h(left[i].h)?;
        lh[i] = h8;
        le[i] = rel_gap(left[i].e, h8)?;
    }
    let corner8 = rel_h(corner)?;
    let rem_corner = left[rows - 1].h;

    let gf8 = gf as i8;
    let ge8 = ge as i8;
    // Out-of-window watch scores can never equal an in-window H; i8::MIN
    // sits below WIN8_LO, so it cannot match in a committed tile either.
    let watch8: i8 = match watch {
        Some(wv) => {
            let r = wv as i64 - bias64;
            if (WIN8_LO as i64..=WIN8_HI as i64).contains(&r) {
                r as i8
            } else {
                i8::MIN
            }
        }
        None => i8::MIN,
    };

    let mut mn = [i8::MAX; LANES8];
    let mut mx = [i8::MIN; LANES8];
    let mut best: Option<(Score, usize, usize)> = None;
    let mut watch_hit: Option<(usize, usize)> = None;

    let mut band_corner = corner8;
    let mut base = 0usize;
    while base < rows {
        let band_h = (rows - base).min(BAND);
        let seg = band_h / LANES8;
        let a_band = &a_tile[base..base + band_h];

        // Striped query profile from the engine-owned cache:
        // prof[k*seg + s][l] = subst(a_band[l*seg + s], c) for slot[c] == k.
        let (slot, prof) = cache.profile8(a_band, b_tile, scoring);

        // Band state, striped from the vertical-bus scratch; E is
        // pre-advanced one column and min-tracked (see crate::striped).
        let mut st = Band8 {
            hload: vec![[0; LANES8]; seg],
            hstore: vec![[0; LANES8]; seg],
            ecur: vec![[0; LANES8]; seg],
            fcur: vec![[RAIL8; LANES8]; seg],
            bh: vec![[zero8; LANES8]; if LOCAL { seg } else { 0 }],
            bj: vec![[-1; LANES8]; if LOCAL { seg } else { 0 }],
            wj: vec![[-1; LANES8]; if WATCH { seg } else { 0 }],
        };
        for s in 0..seg {
            for l in 0..LANES8 {
                let r = base + l * seg + s;
                let h = lh[r];
                st.hload[s][l] = h;
                let e0 = (le[r] as i32 - ge).max(h as i32 - gf);
                st.ecur[s][l] = e0 as i8;
                mn[l] = mn[l].min(e0 as i8);
            }
        }

        let cx =
            Ctx8 { seg, base, row_offset, col_offset, bias, ge8, gf8, zero8, watch8, band_corner };
        band8_columns::<LOCAL, WATCH>(
            &mut st,
            &cx,
            slot,
            prof,
            b_tile,
            &mut th,
            &mut tf,
            &mut mn,
            &mut mx,
            &mut best,
            &mut watch_hit,
        );

        // Next band's lane-0 diagonal seed: this band's original
        // left-border H at its last row — capture before de-striping.
        let next_corner = lh[base + band_h - 1];
        for s in 0..seg {
            for l in 0..LANES8 {
                let r = base + l * seg + s;
                lh[r] = st.hload[s][l];
                le[r] = st.ecur[s][l];
            }
        }
        band_corner = next_corner;
        base += band_h;
    }

    // Overflow check (H >= E and H >= F at every cell, so the max only
    // needs H and the min only needs E/F).
    let mut lo_seen = i8::MAX;
    let mut hi_seen = i8::MIN;
    for l in 0..LANES8 {
        lo_seen = lo_seen.min(mn[l]);
        hi_seen = hi_seen.max(mx[l]);
    }
    if (lo_seen as i32) < WIN8_LO || (hi_seen as i32) > WIN8_HI {
        return None;
    }

    // Commit: rebase back to i32 and overwrite the buses exactly as the
    // scalar kernel would have.
    for j in 0..width {
        top[j] = CellHF { h: bias + th[j] as Score, f: bias + tf[j] as Score };
    }
    for i in 0..rows {
        left[i] = CellHE { h: bias + lh[i] as Score, e: bias + le[i] as Score };
    }

    Some(StripedColumns { rows, best, watch_hit, corner_out: top[width - 1].h, rem_corner })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eligibility8_gates_shape_and_scoring() {
        let sc = Scoring::paper();
        assert!(eligible(LANES8, LANES8, &sc));
        assert!(!eligible(LANES8 - 1, LANES8, &sc));
        assert!(!eligible(LANES8, LANES8 - 1, &sc));
        // The paper scoring fits i8; a wider parameter starts at i16.
        let wide = Scoring { match_score: P8_MAX + 1, ..sc };
        assert!(!eligible(LANES8, LANES8, &wide));
        let inverted = Scoring { gap_first: 1, gap_ext: 3, ..sc };
        assert!(!eligible(LANES8, LANES8, &inverted));
    }

    #[test]
    fn eligible8_is_subset_of_eligible16() {
        // The ladder's escalation step relies on this: any tile the i8
        // kernel attempted can be retried on the i16 kernel.
        let sc = Scoring::paper();
        for (h, w) in [(LANES8, LANES8), (100, 200), (32, 5000)] {
            if eligible(h, w, &sc) {
                assert!(crate::striped::eligible(h, w, &sc));
            }
        }
    }
}
