//! Stage 5 — obtaining the full alignment (Section IV-F).
//!
//! Every partition left by Stage 4 is at most `max_partition_size` in
//! both dimensions (or has a zero dimension), so each is aligned exactly
//! with the quadratic-space solver in constant memory, in parallel, and
//! the transcripts are concatenated into the full optimal alignment.
//! The result is also packed into the compact binary representation.

use crate::binary::BinaryAlignment;
use crate::config::PipelineConfig;
use crate::crosspoint::{CrosspointChain, Partition};
use crate::obs::{Event, Obs};
use crate::pipeline::StageError;
use crate::supervise::RunControl;
use gpu_sim::WorkerPool;
use sw_core::full::nw_global_aligned;
use sw_core::transcript::Transcript;

/// Outcome of Stage 5.
#[derive(Debug, Clone)]
pub struct Stage5Result {
    /// The full optimal alignment.
    pub transcript: Transcript,
    /// Its compact binary form.
    pub binary: BinaryAlignment,
    /// DP cells processed.
    pub cells: u64,
}

/// Run Stage 5. Partitions are solved concurrently on the shared `pool`
/// and the transcripts concatenated in partition order.
pub fn run(
    s0: &[u8],
    s1: &[u8],
    cfg: &PipelineConfig,
    pool: &WorkerPool,
    chain: &CrosspointChain,
) -> Result<Stage5Result, StageError> {
    run_traced(s0, s1, cfg, pool, chain, &mut Obs::new())
}

/// [`run`] with an observability handle: announces the number of
/// partitions about to be solved ([`Event::Partitions`]).
pub fn run_traced(
    s0: &[u8],
    s1: &[u8],
    cfg: &PipelineConfig,
    pool: &WorkerPool,
    chain: &CrosspointChain,
    obs: &mut Obs<'_>,
) -> Result<Stage5Result, StageError> {
    run_supervised(s0, s1, cfg, pool, chain, obs, &RunControl::unlimited())
}

/// [`run_traced`] under a [`RunControl`]: the token is checked on entry
/// and again before the per-partition transcripts are merged, so a
/// cancelled/expired run unwinds with a typed error instead of stitching
/// a final alignment.
pub fn run_supervised(
    s0: &[u8],
    s1: &[u8],
    cfg: &PipelineConfig,
    pool: &WorkerPool,
    chain: &CrosspointChain,
    obs: &mut Obs<'_>,
    ctrl: &RunControl,
) -> Result<Stage5Result, StageError> {
    assert!(chain.len() >= 2, "stage 5 requires a chain with start and end");
    // Stage-1 checkpoints are gone by now; resume restarts the pipeline
    // from scratch, hence diagonal 0.
    ctrl.check(0)?;
    let sc = cfg.scoring;
    let parts: Vec<Partition> = chain.partitions().collect();
    obs.emit(Event::Partitions { stage: 5, count: parts.len() });
    let workers = match cfg.workers {
        0 => pool.lanes(),
        w => w.min(pool.lanes()),
    };

    let mut results: Vec<Option<Result<(Transcript, u64), String>>> = vec![None; parts.len()];
    let solve = |p: &Partition| -> Result<(Transcript, u64), String> {
        let (sub_a, sub_b) = p.slices(s0, s1);
        let (score, t) = nw_global_aligned(sub_a, sub_b, &sc, p.start.edge, p.end.edge);
        if score != p.score() {
            return Err(format!(
                "partition {:?} solved to {score}, expected {}",
                (p.start, p.end),
                p.score()
            ));
        }
        let cells = (sub_a.len() as u64 + 1) * (sub_b.len() as u64 + 1);
        Ok((t, cells))
    };

    if workers > 1 && parts.len() > 1 {
        let chunk = parts.len().div_ceil(workers.min(parts.len()));
        let solve = &solve;
        pool.scope(|s| {
            // lint: allow(cancel-coverage): bounded spawn fan-out (one task per worker chunk); each solve() polls RunControl
            for (ps, out) in parts.chunks(chunk).zip(results.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (t, p) in ps.iter().enumerate() {
                        out[t] = Some(solve(p));
                    }
                });
            }
        })?;
    } else {
        for (t, p) in parts.iter().enumerate() {
            ctrl.check(0)?;
            results[t] = Some(solve(p));
        }
    }

    let mut transcript = Transcript::new();
    let mut cells = 0u64;
    for (idx, r) in results.into_iter().enumerate() {
        ctrl.check(0)?;
        let (t, c) = r
            .ok_or_else(|| StageError::Logic(format!("stage 5 partition {idx} task never ran")))?
            .map_err(|e| format!("stage 5 partition {idx}: {e}"))?;
        transcript.extend_from(&t);
        cells += c;
    }

    let start_cp = chain.points()[0];
    let end_cp = *chain
        .points()
        .last()
        .ok_or_else(|| StageError::Logic("stage 5 crosspoint chain is empty".into()))?;
    let binary =
        BinaryAlignment::from_transcript((start_cp.i, start_cp.j), end_cp.score, &transcript);
    debug_assert_eq!(binary.end, (end_cp.i, end_cp.j), "transcript must span the chain");

    Ok(Stage5Result { transcript, binary, cells })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crosspoint::Crosspoint;
    use crate::stage4;
    use sw_core::full::nw_global_typed;
    use sw_core::transcript::EdgeState;
    use sw_core::Scoring;

    fn lcg(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize & 3]
            })
            .collect()
    }

    fn related(seed: u64, len: usize) -> (Vec<u8>, Vec<u8>) {
        let a = lcg(seed, len);
        let mut b = a.clone();
        for i in (3..b.len()).step_by(23) {
            b[i] = b"ACGT"[(i / 23) % 4];
        }
        b.drain(len / 2..len / 2 + 4);
        (a, b)
    }

    fn chain_for(a: &[u8], b: &[u8]) -> CrosspointChain {
        let (score, _) =
            nw_global_typed(a, b, &Scoring::paper(), EdgeState::Diagonal, EdgeState::Diagonal);
        CrosspointChain::new(vec![
            Crosspoint::start(0, 0),
            Crosspoint::end(a.len(), b.len(), score),
        ])
    }

    #[test]
    fn concatenated_transcript_is_the_optimal_alignment() {
        let (a, b) = related(1, 450);
        let cfg = PipelineConfig::for_tests();
        let pool = WorkerPool::new(cfg.workers);
        let chain = chain_for(&a, &b);
        let l4 = stage4::run(&a, &b, &cfg, &pool, &chain).unwrap();
        let res = run(&a, &b, &cfg, &pool, &l4.chain).unwrap();
        res.transcript.validate(&a, &b).unwrap();
        let expected = chain.points().last().unwrap().score;
        assert_eq!(res.transcript.score(&a, &b, &Scoring::paper()), expected);
        assert_eq!(res.binary.score, expected);
        assert_eq!(res.binary.start, (0, 0));
        assert_eq!(res.binary.end, (a.len(), b.len()));
    }

    #[test]
    fn binary_roundtrips_through_encoding() {
        let (a, b) = related(2, 300);
        let cfg = PipelineConfig::for_tests();
        let pool = WorkerPool::new(cfg.workers);
        let chain = chain_for(&a, &b);
        let l4 = stage4::run(&a, &b, &cfg, &pool, &chain).unwrap();
        let res = run(&a, &b, &cfg, &pool, &l4.chain).unwrap();
        let bytes = res.binary.encode();
        let back = BinaryAlignment::decode(&bytes).unwrap();
        assert_eq!(back, res.binary);
        let t2 = back.to_transcript(&a, &b);
        assert_eq!(t2.ops(), res.transcript.ops());
    }

    #[test]
    fn stage5_memory_is_bounded_by_partition_size() {
        // With max partition size 16, each sub-DP is at most 17x17 cells.
        let (a, b) = related(3, 600);
        let cfg = PipelineConfig::for_tests();
        let pool = WorkerPool::new(cfg.workers);
        let chain = chain_for(&a, &b);
        let l4 = stage4::run(&a, &b, &cfg, &pool, &chain).unwrap();
        for p in l4.chain.partitions() {
            assert!(
                (p.height() <= 16 && p.width() <= 16) || p.height() == 0 || p.width() == 0,
                "oversized partition"
            );
        }
        let res = run(&a, &b, &cfg, &pool, &l4.chain).unwrap();
        // Total stage-5 work is linear in the alignment length.
        assert!(res.cells <= 17 * 17 * l4.chain.len() as u64);
    }
}
