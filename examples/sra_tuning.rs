//! The Special-Rows-Area tradeoff (the paper's Table VII): sweep the SRA
//! budget and watch Stage 1 pay a little while Stages 2 and 4 gain a lot.
//!
//! ```text
//! cargo run -p cudalign --release --example sra_tuning [length]
//! ```

use cudalign::{Pipeline, PipelineConfig};
use seqio::generate::{homologous_pair, HomologyParams};
use sw_core::Sequence;

fn main() {
    let len: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let (s0, s1): (Sequence, Sequence) = homologous_pair(7, len, &HomologyParams::chromosome());
    println!("homologous pair: {} bp x {} bp", s0.len(), s1.len());
    println!(
        "{:>12} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "SRA", "rows", "stage1(s)", "stage2(s)", "stage3(s)", "stage4(s)", "total(s)", "cells2"
    );

    let row_bytes = 8 * (s1.len() as u64 + 1);
    for rows in [0u64, 2, 4, 8, 16, 32, 64] {
        let mut cfg = PipelineConfig::default_cpu();
        cfg.sra_bytes = rows * row_bytes;
        cfg.sca_bytes = cfg.sra_bytes / 2;
        let res = Pipeline::new(cfg).align(s0.bases(), s1.bases()).expect("pipeline failed");
        let st = &res.stats;
        println!(
            "{:>12} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9}",
            format!("{} rows", rows),
            st.special_rows,
            st.stage_seconds[0],
            st.stage_seconds[1],
            st.stage_seconds[2],
            st.stage_seconds[3],
            st.total_seconds,
            st.stage_cells[1],
        );
    }
    println!("\nmore special rows -> smaller stage-2 strips and smaller partitions for stage 4.");
}
