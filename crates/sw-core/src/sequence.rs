//! DNA sequences.
//!
//! A [`Sequence`] is an owned, validated byte string over the alphabet
//! `{A, C, G, T, N}` with a display name. DP code operates on `&[u8]`
//! slices so any subsequence can be aligned without copying.

use std::fmt;

/// The accepted alphabet. `N` (unknown base) is allowed because real
/// chromosome FASTA files contain large runs of it.
pub const ALPHABET: &[u8] = b"ACGTN";

/// Error returned when constructing a sequence from invalid data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidBase {
    /// Offset of the first offending byte.
    pub position: usize,
    /// The offending byte.
    pub byte: u8,
}

impl fmt::Display for InvalidBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid base {:?} (0x{:02x}) at position {}",
            self.byte as char, self.byte, self.position
        )
    }
}

impl std::error::Error for InvalidBase {}

/// An owned, validated DNA sequence.
#[derive(Clone, PartialEq, Eq)]
pub struct Sequence {
    name: String,
    data: Vec<u8>,
}

impl Sequence {
    /// Build a sequence from raw bytes, validating and upper-casing them.
    ///
    /// Lower-case bases (soft-masked repeats in real FASTA files) are
    /// accepted and normalized to upper case.
    pub fn new(name: impl Into<String>, data: impl Into<Vec<u8>>) -> Result<Self, InvalidBase> {
        let mut data = data.into();
        for (position, b) in data.iter_mut().enumerate() {
            let up = b.to_ascii_uppercase();
            if !ALPHABET.contains(&up) {
                return Err(InvalidBase { position, byte: *b });
            }
            *b = up;
        }
        Ok(Sequence { name: name.into(), data })
    }

    /// Build a sequence without validation.
    ///
    /// Intended for generators that only produce valid bases; debug builds
    /// still assert validity.
    pub fn new_unchecked(name: impl Into<String>, data: Vec<u8>) -> Self {
        debug_assert!(
            data.iter().all(|b| ALPHABET.contains(b)),
            "new_unchecked called with invalid bases"
        );
        Sequence { name: name.into(), data }
    }

    /// The sequence's display name (FASTA header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The bases as a byte slice.
    #[inline]
    pub fn bases(&self) -> &[u8] {
        &self.data
    }

    /// Number of base pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The reverse of this sequence (not the reverse complement — the
    /// reverse DP passes of CUDAlign align *reversed* sequences).
    pub fn reversed(&self) -> Sequence {
        let mut data = self.data.clone();
        data.reverse();
        Sequence { name: format!("{} (reversed)", self.name), data }
    }

    /// Consume into the raw base vector.
    pub fn into_bases(self) -> Vec<u8> {
        self.data
    }
}

impl fmt::Debug for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 24;
        let preview: String = self.data.iter().take(PREVIEW).map(|&b| b as char).collect();
        let ellipsis = if self.data.len() > PREVIEW { "..." } else { "" };
        write!(f, "Sequence({:?}, {} bp, {}{})", self.name, self.data.len(), preview, ellipsis)
    }
}

impl AsRef<[u8]> for Sequence {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_dna() {
        let s = Sequence::new("x", b"ACGTN".to_vec()).unwrap();
        assert_eq!(s.bases(), b"ACGTN");
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn normalizes_lower_case() {
        let s = Sequence::new("x", b"acgtn".to_vec()).unwrap();
        assert_eq!(s.bases(), b"ACGTN");
    }

    #[test]
    fn rejects_invalid_base() {
        let err = Sequence::new("x", b"ACGZ".to_vec()).unwrap_err();
        assert_eq!(err.position, 3);
        assert_eq!(err.byte, b'Z');
        assert!(err.to_string().contains("position 3"));
    }

    #[test]
    fn reversed_reverses() {
        let s = Sequence::new("x", b"ACGT".to_vec()).unwrap();
        assert_eq!(s.reversed().bases(), b"TGCA");
        assert!(s.reversed().name().contains("reversed"));
    }

    #[test]
    fn empty_sequence() {
        let s = Sequence::new("e", Vec::new()).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
