//! Cross-crate agreement: the six-stage pipeline, the Z-align baseline,
//! the sequential linear-space aligner and the quadratic reference must
//! produce the same optimal score (and equivalent alignments) on every
//! workload class of the paper's Table II.

use baselines::{mm_local_align, quadratic_align, zalign};
use cudalign::{Pipeline, PipelineConfig};
use integration_tests::edited_pair;
use seqio::DatasetRegistry;
use sw_core::Scoring;

fn check_all_agree(a: &[u8], b: &[u8], label: &str) {
    let sc = Scoring::paper();
    let quad = quadratic_align(a, b, &sc, 1 << 30);
    let ref_score = quad.alignment.as_ref().map_or(0, |al| al.score);

    let pipe = Pipeline::new(PipelineConfig::for_tests()).align(a, b).unwrap();
    assert_eq!(pipe.best_score, ref_score, "{label}: pipeline vs quadratic");

    let mm = mm_local_align(a, b, &sc);
    assert_eq!(mm.score, ref_score, "{label}: mm_local vs quadratic");

    let z = zalign(a, b, &sc, 3);
    assert_eq!(z.score, ref_score, "{label}: zalign vs quadratic");

    if ref_score > 0 {
        // All ends agree (deterministic tie-break shared by every
        // implementation).
        let q = quad.alignment.unwrap();
        assert_eq!(pipe.end, q.end, "{label}: pipeline end");
        assert_eq!(mm.end, q.end, "{label}: mm end");
        assert_eq!(z.end, q.end, "{label}: zalign end");
        // Transcripts all rescore to the optimum.
        for (name, start, end, t) in [
            ("pipeline", pipe.start, pipe.end, &pipe.transcript),
            ("mm", mm.start, mm.end, &mm.transcript),
            ("zalign", z.start, z.end, &z.transcript),
        ] {
            let sub_a = &a[start.0..end.0];
            let sub_b = &b[start.1..end.1];
            t.validate(sub_a, sub_b).unwrap_or_else(|e| panic!("{label}/{name}: {e}"));
            assert_eq!(t.score(sub_a, sub_b, &sc), ref_score, "{label}/{name} score");
        }
    }
}

#[test]
fn agreement_on_edited_pairs() {
    for seed in 1..6u64 {
        let (a, b) = edited_pair(seed, 320, 17);
        check_all_agree(&a, &b, &format!("edited-{seed}"));
    }
}

#[test]
fn agreement_on_registry_pairs() {
    // High scale so the suite stays quick; every similarity class runs.
    let reg = DatasetRegistry::paper();
    for spec in reg.pairs() {
        let (s0, s1) = spec.materialize(40_000, 7);
        check_all_agree(s0.bases(), s1.bases(), spec.key);
    }
}

#[test]
fn agreement_on_pathological_shapes() {
    // Long thin matrices, gap-dominated alignments, near-empty inputs.
    let cases: Vec<(Vec<u8>, Vec<u8>)> = vec![
        (vec![b'A'; 500], vec![b'A'; 3]),
        (vec![b'A'; 3], vec![b'A'; 500]),
        (b"ACGT".repeat(100), b"TGCA".repeat(100)),
        (vec![b'G'; 1], vec![b'G'; 1]),
    ];
    for (i, (a, b)) in cases.iter().enumerate() {
        check_all_agree(a, b, &format!("shape-{i}"));
    }
}
