// lint-fixture path=crates/gpu-sim/src/hot.rs rule=hot-loop expect=1

// hot-loop
//
// A tagged per-column loop that cheats: the vec! inside the body is the
// one violation this fixture expects.
#[allow(clippy::needless_range_loop)]
fn tagged_dirty(xs: &mut [i32]) {
    let tmp = vec![0i32; 4];
    for i in 0..xs.len() {
        xs[i] += tmp[i % 4];
    }
}

// hot-loop
fn tagged_clean(xs: &mut [i32], scratch: &mut [i32]) {
    for i in 0..xs.len() {
        scratch[i % scratch.len()] = xs[i];
        xs[i] = xs[i].saturating_add(scratch[i % scratch.len()]);
    }
}

/// Prose that merely mentions hot-loop discipline does not tag the fn,
/// so its allocations are fine.
fn untagged(n: usize) -> Vec<i32> {
    let mut v = Vec::new();
    v.resize(n, 0);
    v
}
