//! The per-block tile kernel.
//!
//! A block computes a `height x width` tile of the Gotoh DP given its
//! borders: the *horizontal bus* segment above it (`H`/`F` of the previous
//! row), the *vertical bus* segment to its left (`H`/`E` of the previous
//! column) and the diagonal corner value. It overwrites both segments with
//! its own last row / last column — exactly the bus hand-off of the paper
//! (Section III-C).

use crate::striped::{self, ProfileCache, QueryProfile, StripedColumns};
use crate::striped8;
use sw_core::full::better_endpoint;
use sw_core::scoring::{Score, Scoring, NEG_INF};
use sw_core::transcript::EdgeState;

/// Horizontal-bus cell: `H` and `F` of one column at the frontier row.
/// (`F` is the vertical-gap state — the value a block below needs; this is
/// also the pair stored to disk for special rows.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellHF {
    /// `H` value.
    pub h: Score,
    /// `F` value (vertical gap state).
    pub f: Score,
}

impl CellHF {
    /// An unreachable cell.
    pub const UNREACHABLE: CellHF = CellHF { h: NEG_INF, f: NEG_INF };
}

/// Vertical-bus cell: `H` and `E` of one row at the frontier column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellHE {
    /// `H` value.
    pub h: Score,
    /// `E` value (horizontal gap state).
    pub e: Score,
}

impl CellHE {
    /// An unreachable cell.
    pub const UNREACHABLE: CellHE = CellHE { h: NEG_INF, e: NEG_INF };
}

/// DP state seeded at the top-left corner of a global-mode region.
///
/// The pipeline launches the engine in two flavours: *forward* regions
/// (Stage 3) start from a crosspoint going down-right, *reverse* regions
/// (Stage 2) are reversed problems whose origin is the crosspoint the path
/// must end in. The two differ in gap-open accounting — see
/// `sw_core::linear::RowDp::{new, new_reverse}` for the rules these
/// constructors mirror.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalOrigin {
    /// `H` at the origin.
    pub h0: Score,
    /// `E` at the origin (horizontal-gap state).
    pub e0: Score,
    /// `F` at the origin (vertical-gap state).
    pub f0: Score,
}

impl GlobalOrigin {
    /// Forward-region origin for a partition starting in `start`:
    /// `H = 0`, and the matching gap state is seeded to `0` so extending
    /// the incoming run charges no second opening.
    pub fn forward(start: EdgeState) -> Self {
        GlobalOrigin {
            h0: 0,
            e0: if start == EdgeState::GapS0 { 0 } else { NEG_INF },
            f0: if start == EdgeState::GapS1 { 0 } else { NEG_INF },
        }
    }

    /// Reverse-region origin for a problem whose *original* orientation
    /// must end in `end`: gap ends seed `-G_open` (the opening is charged
    /// inside the region under forward accounting) and forbid `H`.
    pub fn reverse(end: EdgeState, scoring: &Scoring) -> Self {
        match end {
            EdgeState::Diagonal => GlobalOrigin { h0: 0, e0: NEG_INF, f0: NEG_INF },
            EdgeState::GapS0 => GlobalOrigin { h0: NEG_INF, e0: -scoring.gap_open(), f0: NEG_INF },
            EdgeState::GapS1 => GlobalOrigin { h0: NEG_INF, e0: NEG_INF, f0: -scoring.gap_open() },
        }
    }
}

/// Recurrence flavour of an engine launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Smith-Waterman local: `H` clamped at 0, zero borders, the engine
    /// tracks the maximum and its position (Stage 1).
    Local,
    /// Global recurrence from the region's top-left corner (Stages 2-3).
    Global {
        /// Origin seeding.
        origin: GlobalOrigin,
    },
}

impl Mode {
    /// Global mode with a plain forward origin.
    pub fn global(start: EdgeState) -> Self {
        Mode::Global { origin: GlobalOrigin::forward(start) }
    }

    /// Global mode for a reversed problem ending in `end`.
    pub fn global_reverse(end: EdgeState, scoring: &Scoring) -> Self {
        Mode::Global { origin: GlobalOrigin::reverse(end, scoring) }
    }

    /// True for [`Mode::Local`].
    pub fn is_local(&self) -> bool {
        matches!(self, Mode::Local)
    }
}

/// Which rung of the precision ladder computed a tile. Tracked per tile
/// so the engine can report how much work ran vectorized at which width
/// and how often the overflow protocol escalated (`align --stats`,
/// metrics, the `--trace` schema, MCUPS benches).
///
/// Deliberately **not** `#[non_exhaustive]`: every `match` on a ladder
/// outcome (path counting in the engines, labeling in the benches) must
/// be forced by the compiler to take an explicit stance when a rung is
/// added — a downstream wildcard silently lumping a new variant into the
/// wrong counter is exactly the miscounting this audit exists to
/// prevent. Matches that genuinely do not care (e.g. "anything
/// non-scalar") say so with a deliberate `_` arm and a comment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// 32-lane saturating-`i8` kernel committed the tile (plus a scalar
    /// sliver for the `height % LANES8` remainder rows).
    Striped8,
    /// The `i8` attempt left its safe window; the tile was escalated to
    /// and committed by the `i16` kernel (results identical).
    Striped8Fallback16,
    /// Lane-striped saturating-`i16` kernel (plus a scalar sliver for the
    /// `height % LANES` remainder rows). The `i8` rung was not attempted:
    /// the tile shape or scoring failed [`striped8::eligible`], or the
    /// caller asked for the i16 path directly ([`compute_tile_i16`]).
    Striped16,
    /// Scalar `i32` kernel chosen up front — the tile was too small or the
    /// scoring too wide for any striped path ([`striped::eligible`]).
    Scalar,
    /// Every striped attempt left its safe window; the tile was
    /// transparently re-run on the scalar kernel (results identical).
    StripedFallback,
}

impl KernelPath {
    /// Stable snake_case label for benches and trace records.
    pub fn label(self) -> &'static str {
        match self {
            KernelPath::Striped8 => "striped8",
            KernelPath::Striped8Fallback16 => "striped8_fb16",
            KernelPath::Striped16 => "striped16",
            KernelPath::Scalar => "scalar",
            KernelPath::StripedFallback => "fallback",
        }
    }

    /// Vector lanes of the kernel that committed the tile's striped rows
    /// (`1` for the scalar paths).
    pub fn lanes(self) -> usize {
        match self {
            KernelPath::Striped8 => striped8::LANES8,
            KernelPath::Striped8Fallback16 | KernelPath::Striped16 => striped::LANES,
            KernelPath::Scalar | KernelPath::StripedFallback => 1,
        }
    }
}

/// Per-path tile counters, threaded from every engine (serial/pooled
/// wavefront, strip scheduler, multi-device split) through the pipeline
/// stages into the run-level stats (`PipelineStats` in `cudalign`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathCounts {
    /// Tiles committed by the i8×32 kernel.
    pub striped8: u64,
    /// Tiles that overflowed i8 and committed on the i16 kernel.
    pub striped8_fb16: u64,
    /// Tiles that ran the i16 kernel first (i8 rung not attempted).
    pub striped16: u64,
    /// Tiles that overflowed every striped window and re-ran scalar.
    pub fallback: u64,
}

impl PathCounts {
    /// Count one tile outcome. Exhaustive on purpose (see [`KernelPath`]):
    /// a new ladder rung must decide its counter here before the engines
    /// compile again. Up-front scalar tiles are not counted — they never
    /// attempted a striped path, so they are neither a win nor a fallback.
    pub fn count(&mut self, path: KernelPath) {
        match path {
            KernelPath::Striped8 => self.striped8 += 1,
            KernelPath::Striped8Fallback16 => self.striped8_fb16 += 1,
            KernelPath::Striped16 => self.striped16 += 1,
            KernelPath::StripedFallback => self.fallback += 1,
            KernelPath::Scalar => {}
        }
    }

    /// Fold another engine's counters into this one.
    pub fn add(&mut self, other: &PathCounts) {
        self.striped8 += other.striped8;
        self.striped8_fb16 += other.striped8_fb16;
        self.striped16 += other.striped16;
        self.fallback += other.fallback;
    }

    /// Tiles committed by *some* striped kernel (any width).
    pub fn striped_total(&self) -> u64 {
        self.striped8 + self.striped8_fb16 + self.striped16
    }
}

/// Result of one tile computation.
#[derive(Debug, Clone, Copy)]
pub struct TileOutcome {
    /// `H` at the tile's bottom-right cell (the corner for the block at
    /// `(r + 1, c + 1)`).
    pub corner_out: Score,
    /// Best cell in the tile (local mode only): `(score, abs_row, abs_col)`.
    pub best: Option<(Score, usize, usize)>,
    /// First cell (scan order) whose `H` equals the watched score, if a
    /// watch was set: `(abs_row, abs_col)`. Stage 2 uses this to detect
    /// the alignment's start point (`H_reverse == goal`).
    pub watch_hit: Option<(usize, usize)>,
    /// Cells updated.
    pub cells: u64,
    /// Execution path that produced this tile.
    pub path: KernelPath,
}

/// Compute one tile.
///
/// * `a_tile`/`b_tile` — the characters of this block's rows/columns,
/// * `row_offset`/`col_offset` — absolute (1-based) DP coordinates of the
///   tile's first row/column, used only for max tracking,
/// * `corner` — `H` at `(row_offset - 1, col_offset - 1)`,
/// * `top` — horizontal-bus segment (`b_tile.len()` entries) holding row
///   `row_offset - 1`; overwritten with the tile's last row,
/// * `left` — vertical-bus segment (`a_tile.len()` entries) holding column
///   `col_offset - 1`; overwritten with the tile's last column.
///
/// Zero-dimension contract: a zero-height tile leaves `top` untouched and
/// `corner_out` is the top border's last `H` (or `corner` itself if the
/// tile is also zero-width); a zero-width tile likewise leaves `left`
/// untouched and `corner_out` is the left border's last `H`. Degenerate
/// tiles count zero cells and never produce `best`/`watch_hit`.
///
/// Eligible tiles climb the precision ladder: the 32-lane `i8` kernel is
/// attempted first ([`striped8::eligible`]), escalating on window
/// overflow to the 16-lane `i16` kernel ([`striped::eligible`]) and
/// finally to the scalar `i32` loop; results are bit-identical on every
/// rung, and [`TileOutcome::path`] records where the tile committed.
///
/// This entry point builds a throwaway [`ProfileCache`] per call; engines
/// that compute many tiles of the same band row should hold a cache and
/// call [`compute_tile_cached`] to reuse query profiles across tiles.
#[allow(clippy::too_many_arguments)] // a tile kernel: sequences, borders and tracking knobs
pub fn compute_tile(
    a_tile: &[u8],
    b_tile: &[u8],
    row_offset: usize,
    col_offset: usize,
    scoring: &Scoring,
    local: bool,
    watch: Option<Score>,
    corner: Score,
    top: &mut [CellHF],
    left: &mut [CellHE],
) -> TileOutcome {
    let mut cache = ProfileCache::new();
    compute_tile_cached(
        a_tile, b_tile, row_offset, col_offset, scoring, local, watch, corner, top, left,
        &mut cache,
    )
}

/// [`compute_tile`] with an engine-owned [`ProfileCache`]: the full
/// precision ladder, reusing cached query profiles across tiles of the
/// same band.
#[allow(clippy::too_many_arguments)]
pub fn compute_tile_cached(
    a_tile: &[u8],
    b_tile: &[u8],
    row_offset: usize,
    col_offset: usize,
    scoring: &Scoring,
    local: bool,
    watch: Option<Score>,
    corner: Score,
    top: &mut [CellHF],
    left: &mut [CellHE],
    cache: &mut ProfileCache,
) -> TileOutcome {
    // Dispatch to monomorphized inner loops — the CPU analogue of the
    // paper's phase division, where the common case runs "an optimized
    // kernel" without bookkeeping branches. Watching is rare (Stage 2
    // only) and max-tracking applies only to local mode, so the global
    // no-watch kernel — the bulk of Stages 2-3 — carries neither check.
    match (local, watch.is_some()) {
        (false, false) => dispatch_tile::<false, false>(
            a_tile, b_tile, row_offset, col_offset, scoring, watch, corner, top, left, cache, true,
        ),
        (false, true) => dispatch_tile::<false, true>(
            a_tile, b_tile, row_offset, col_offset, scoring, watch, corner, top, left, cache, true,
        ),
        (true, false) => dispatch_tile::<true, false>(
            a_tile, b_tile, row_offset, col_offset, scoring, watch, corner, top, left, cache, true,
        ),
        (true, true) => dispatch_tile::<true, true>(
            a_tile, b_tile, row_offset, col_offset, scoring, watch, corner, top, left, cache, true,
        ),
    }
}

/// Compute one tile starting the ladder at the `i16` rung (the i8 kernel
/// is not attempted). Same contract as [`compute_tile`]; commits as
/// [`KernelPath::Striped16`] or falls back. The MCUPS benches use this to
/// measure the i16 path in isolation against the i8-first default.
#[allow(clippy::too_many_arguments)]
pub fn compute_tile_i16(
    a_tile: &[u8],
    b_tile: &[u8],
    row_offset: usize,
    col_offset: usize,
    scoring: &Scoring,
    local: bool,
    watch: Option<Score>,
    corner: Score,
    top: &mut [CellHF],
    left: &mut [CellHE],
) -> TileOutcome {
    let mut cache = ProfileCache::new();
    let cache = &mut cache;
    match (local, watch.is_some()) {
        (false, false) => dispatch_tile::<false, false>(
            a_tile, b_tile, row_offset, col_offset, scoring, watch, corner, top, left, cache, false,
        ),
        (false, true) => dispatch_tile::<false, true>(
            a_tile, b_tile, row_offset, col_offset, scoring, watch, corner, top, left, cache, false,
        ),
        (true, false) => dispatch_tile::<true, false>(
            a_tile, b_tile, row_offset, col_offset, scoring, watch, corner, top, left, cache, false,
        ),
        (true, true) => dispatch_tile::<true, true>(
            a_tile, b_tile, row_offset, col_offset, scoring, watch, corner, top, left, cache, false,
        ),
    }
}

/// Compute one tile on the scalar `i32` kernel regardless of eligibility.
///
/// Same contract as [`compute_tile`]. This is the reference path: the
/// striped kernel's overflow fallback re-runs through it, and the
/// equivalence tests and MCUPS benches call it directly to compare paths.
#[allow(clippy::too_many_arguments)]
pub fn compute_tile_scalar(
    a_tile: &[u8],
    b_tile: &[u8],
    row_offset: usize,
    col_offset: usize,
    scoring: &Scoring,
    local: bool,
    watch: Option<Score>,
    corner: Score,
    top: &mut [CellHF],
    left: &mut [CellHE],
) -> TileOutcome {
    match (local, watch.is_some()) {
        (false, false) => compute_tile_impl::<false, false>(
            a_tile, b_tile, row_offset, col_offset, scoring, watch, corner, top, left,
        ),
        (false, true) => compute_tile_impl::<false, true>(
            a_tile, b_tile, row_offset, col_offset, scoring, watch, corner, top, left,
        ),
        (true, false) => compute_tile_impl::<true, false>(
            a_tile, b_tile, row_offset, col_offset, scoring, watch, corner, top, left,
        ),
        (true, true) => compute_tile_impl::<true, true>(
            a_tile, b_tile, row_offset, col_offset, scoring, watch, corner, top, left,
        ),
    }
}

/// Route a tile down the precision ladder: attempt the i8 kernel first
/// (unless `allow8` is off or the tile fails [`striped8::eligible`]),
/// escalate to the i16 kernel on window overflow — always possible, since
/// i8 eligibility is a strict subset of i16 eligibility — and finally
/// re-run the whole tile on the scalar `i32` kernel. Whichever striped
/// rung commits, the `height % lanes` bottom sliver is stitched with the
/// scalar kernel by [`finish_striped`].
#[allow(clippy::too_many_arguments)]
fn dispatch_tile<const LOCAL: bool, const WATCH: bool>(
    a_tile: &[u8],
    b_tile: &[u8],
    row_offset: usize,
    col_offset: usize,
    scoring: &Scoring,
    watch: Option<Score>,
    corner: Score,
    top: &mut [CellHF],
    left: &mut [CellHE],
    cache: &mut ProfileCache,
    allow8: bool,
) -> TileOutcome {
    let attempted8 = allow8 && striped8::eligible(a_tile.len(), b_tile.len(), scoring);
    if attempted8 {
        if let Some(part) = striped8::compute_striped8_columns::<LOCAL, WATCH>(
            a_tile, b_tile, row_offset, col_offset, scoring, watch, corner, top, left, cache,
        ) {
            return finish_striped::<LOCAL, WATCH>(
                part,
                KernelPath::Striped8,
                a_tile,
                b_tile,
                row_offset,
                col_offset,
                scoring,
                watch,
                top,
                left,
            );
        }
        // i8 window overflow: buses untouched, escalate to the i16 rung.
    }
    if striped::eligible(a_tile.len(), b_tile.len(), scoring) {
        match striped::compute_striped_columns::<LOCAL, WATCH>(
            a_tile, b_tile, row_offset, col_offset, scoring, watch, corner, top, left, cache,
        ) {
            Some(part) => {
                let path =
                    if attempted8 { KernelPath::Striped8Fallback16 } else { KernelPath::Striped16 };
                return finish_striped::<LOCAL, WATCH>(
                    part, path, a_tile, b_tile, row_offset, col_offset, scoring, watch, top, left,
                );
            }
            None => {
                // Overflow on every striped rung: buses are untouched,
                // re-run the whole tile scalar.
                let mut out = compute_tile_impl::<LOCAL, WATCH>(
                    a_tile, b_tile, row_offset, col_offset, scoring, watch, corner, top, left,
                );
                out.path = KernelPath::StripedFallback;
                return out;
            }
        }
    }
    compute_tile_impl::<LOCAL, WATCH>(
        a_tile, b_tile, row_offset, col_offset, scoring, watch, corner, top, left,
    )
}

/// Stitch a committed striped result with its scalar bottom sliver (if
/// the tile height is not a lane multiple): seed with the original
/// left-border H at row `rows - 1` and reuse the (already updated)
/// horizontal bus, exactly like a stitched lower tile.
#[allow(clippy::too_many_arguments)]
fn finish_striped<const LOCAL: bool, const WATCH: bool>(
    part: StripedColumns,
    path: KernelPath,
    a_tile: &[u8],
    b_tile: &[u8],
    row_offset: usize,
    col_offset: usize,
    scoring: &Scoring,
    watch: Option<Score>,
    top: &mut [CellHF],
    left: &mut [CellHE],
) -> TileOutcome {
    let height = a_tile.len();
    let (corner_out, best, watch_hit) = if part.rows < height {
        let rem = compute_tile_impl::<LOCAL, WATCH>(
            &a_tile[part.rows..],
            b_tile,
            row_offset + part.rows,
            col_offset,
            scoring,
            watch,
            part.rem_corner,
            top,
            &mut left[part.rows..],
        );
        (
            rem.corner_out,
            merge_best(part.best, rem.best),
            merge_watch(part.watch_hit, rem.watch_hit),
        )
    } else {
        (part.corner_out, part.best, part.watch_hit)
    };
    TileOutcome { corner_out, best, watch_hit, cells: (a_tile.len() * b_tile.len()) as u64, path }
}

/// Fold two partial best endpoints with the same total order the scalar
/// scan uses, so the striped + sliver composition stays bit-identical.
fn merge_best(
    a: Option<(Score, usize, usize)>,
    b: Option<(Score, usize, usize)>,
) -> Option<(Score, usize, usize)> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if better_endpoint(y, x) { y } else { x }),
        (x, None) => x,
        (None, y) => y,
    }
}

/// First watch hit in scan order = lexicographic `(row, col)` minimum.
fn merge_watch(a: Option<(usize, usize)>, b: Option<(usize, usize)>) -> Option<(usize, usize)> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[allow(clippy::too_many_arguments)]
fn compute_tile_impl<const LOCAL: bool, const WATCH: bool>(
    a_tile: &[u8],
    b_tile: &[u8],
    row_offset: usize,
    col_offset: usize,
    scoring: &Scoring,
    watch: Option<Score>,
    corner: Score,
    top: &mut [CellHF],
    left: &mut [CellHE],
) -> TileOutcome {
    debug_assert_eq!(top.len(), b_tile.len());
    debug_assert_eq!(left.len(), a_tile.len());

    let mut best: Option<(Score, usize, usize)> = None;
    let mut watch_hit: Option<(usize, usize)> = None;
    let watch_score = watch.unwrap_or(Score::MIN);
    let mut prev_left_h = corner;

    // Hoist the substitution lookup out of the inner loop: one score row
    // per distinct query symbol, indexed in lockstep with the bus.
    let profile = QueryProfile::build(a_tile, b_tile, scoring);

    for (i, &ai) in a_tile.iter().enumerate() {
        let left_cell = left[i];
        let mut diag = prev_left_h;
        let mut h_left = left_cell.h;
        let mut e = left_cell.e;
        let prow = profile.row(ai);

        for (j, (cell, &sc)) in top.iter_mut().zip(prow).enumerate() {
            e = (e - scoring.gap_ext).max(h_left - scoring.gap_first);
            let t = *cell;
            let f = (t.f - scoring.gap_ext).max(t.h - scoring.gap_first);
            let mut h = (diag + sc).max(e).max(f);
            if LOCAL {
                if h < 0 {
                    h = 0;
                }
                if h > 0 {
                    let cand = (h, row_offset + i, col_offset + j);
                    if best.is_none_or(|b| better_endpoint(cand, b)) {
                        best = Some(cand);
                    }
                }
            }
            if WATCH && h == watch_score && watch_hit.is_none() {
                watch_hit = Some((row_offset + i, col_offset + j));
            }
            diag = t.h;
            *cell = CellHF { h, f };
            h_left = h;
        }
        prev_left_h = left_cell.h;
        left[i] = CellHE { h: h_left, e };
    }

    let corner_out = if b_tile.is_empty() {
        // Zero-width tile: the "last column" is the left border itself
        // (`prev_left_h` equals `corner` when the tile is also zero-height).
        prev_left_h
    } else {
        // Bottom-right H. For a zero-height tile the loop never ran, so
        // this is the untouched top border's last value — the same walk a
        // degenerate block performs along the bus.
        top[b_tile.len() - 1].h
    };

    TileOutcome {
        corner_out,
        best,
        watch_hit,
        cells: (a_tile.len() * b_tile.len()) as u64,
        path: KernelPath::Scalar,
    }
}

/// Border values for a global-mode region: the init row (`H`/`F` per
/// column) and init column (`H`/`E` per row) implied by the origin
/// seeding, matching `sw_core::linear::RowDp`.
pub fn global_borders(
    m: usize,
    n: usize,
    scoring: &Scoring,
    origin: GlobalOrigin,
) -> (Vec<CellHF>, Vec<CellHE>, Score) {
    let mut top = vec![CellHF::UNREACHABLE; n];
    let mut left = vec![CellHE::UNREACHABLE; m];
    // Row 0: E-run from the origin; F is unreachable along row 0.
    let mut e = origin.e0;
    let mut h_prev = origin.h0;
    for cell in top.iter_mut() {
        e = (e - scoring.gap_ext).max(h_prev - scoring.gap_first);
        h_prev = e;
        *cell = CellHF { h: e, f: NEG_INF };
    }
    // Column 0: F-run from the origin; E is unreachable along column 0.
    let mut f = origin.f0;
    let mut h_prev = origin.h0;
    for cell in left.iter_mut() {
        f = (f - scoring.gap_ext).max(h_prev - scoring.gap_first);
        h_prev = f;
        *cell = CellHE { h: f, e: NEG_INF };
    }
    (top, left, origin.h0)
}

/// Border values for a local-mode region: all zeros.
pub fn local_borders(m: usize, n: usize) -> (Vec<CellHF>, Vec<CellHE>, Score) {
    (vec![CellHF { h: 0, f: NEG_INF }; n], vec![CellHE { h: 0, e: NEG_INF }; m], 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_core::full::{nw_global_typed, sw_local_score};
    use sw_core::linear::forward_vectors;
    use sw_core::transcript::EdgeState as ES;

    const SC: Scoring = Scoring::paper();

    fn lcg(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize & 3]
            })
            .collect()
    }

    /// One tile spanning the whole matrix must reproduce the linear DP.
    #[test]
    fn single_tile_global_equals_rowdp() {
        let a = lcg(1, 37);
        let b = lcg(2, 23);
        for start in [ES::Diagonal, ES::GapS0, ES::GapS1] {
            let (mut top, mut left, corner) =
                global_borders(a.len(), b.len(), &SC, GlobalOrigin::forward(start));
            compute_tile(&a, &b, 1, 1, &SC, false, None, corner, &mut top, &mut left);
            let (h, f) = forward_vectors(&a, &b, &SC, start);
            for j in 0..b.len() {
                assert_eq!(top[j].h, h[j + 1], "H mismatch at {j}");
                assert_eq!(top[j].f, f[j + 1], "F mismatch at {j}");
            }
        }
    }

    /// One local tile must find the same best score/endpoint as the
    /// reference scan.
    #[test]
    fn single_tile_local_equals_reference() {
        let a = lcg(3, 64);
        let mut b = a.clone();
        b[10] = b'A';
        b[11] = b'C';
        let (mut top, mut left, corner) = local_borders(a.len(), b.len());
        let out = compute_tile(&a, &b, 1, 1, &SC, true, None, corner, &mut top, &mut left);
        let (score, end) = sw_local_score(&a, &b, &SC);
        let (s, i, j) = out.best.unwrap();
        assert_eq!(s, score);
        assert_eq!((i, j), end);
    }

    /// 2x2 tiles stitched through buses must agree with the single tile.
    #[test]
    fn stitched_tiles_equal_single_tile() {
        let a = lcg(5, 30);
        let b = lcg(6, 26);
        let (mi, nj) = (a.len() / 2, b.len() / 2);

        // Reference: single tile.
        let (mut top_ref, mut left_ref, corner) =
            global_borders(a.len(), b.len(), &SC, GlobalOrigin::forward(ES::Diagonal));
        compute_tile(&a, &b, 1, 1, &SC, false, None, corner, &mut top_ref, &mut left_ref);

        // Stitched: four tiles with explicit corner bookkeeping.
        let (mut top, mut left, _) =
            global_borders(a.len(), b.len(), &SC, GlobalOrigin::forward(ES::Diagonal));
        let (t0, t1) = top.split_at_mut(nj);
        let (l0, l1) = left.split_at_mut(mi);
        // corners[r][c] = H at the bottom-right of block (r, c); virtual
        // row/col -1 handled explicitly.
        let c00_in = 0; // H(0,0)
        let o00 = compute_tile(&a[..mi], &b[..nj], 1, 1, &SC, false, None, c00_in, t0, l0);
        // block (0,1): corner = H(0, nj) = value the init row had there.
        let (init_top, _, _) =
            global_borders(a.len(), b.len(), &SC, GlobalOrigin::forward(ES::Diagonal));
        let c01_in = init_top[nj - 1].h;
        let o01 = compute_tile(&a[..mi], &b[nj..], 1, nj + 1, &SC, false, None, c01_in, t1, l0);
        let _ = o01;
        // block (1,0): corner = H(mi, 0) = init column value at row mi.
        let (_, init_left, _) =
            global_borders(a.len(), b.len(), &SC, GlobalOrigin::forward(ES::Diagonal));
        let c10_in = init_left[mi - 1].h;
        compute_tile(&a[mi..], &b[..nj], mi + 1, 1, &SC, false, None, c10_in, t0, l1);
        // block (1,1): corner = bottom-right H of block (0,0).
        compute_tile(&a[mi..], &b[nj..], mi + 1, nj + 1, &SC, false, None, o00.corner_out, t1, l1);

        for j in 0..b.len() {
            assert_eq!(top[j], top_ref[j], "bus mismatch at column {j}");
        }
        for i in mi..a.len() {
            assert_eq!(left[i], left_ref[i], "vbus mismatch at row {i}");
        }
    }

    #[test]
    fn empty_tiles_pass_through() {
        let (mut top, mut left, corner) =
            global_borders(0, 5, &SC, GlobalOrigin::forward(ES::Diagonal));
        let out = compute_tile(b"", b"ACGTA", 1, 1, &SC, false, None, corner, &mut top, &mut left);
        assert_eq!(out.cells, 0);
        // Zero-height: corner walks along the untouched top border.
        assert_eq!(out.corner_out, top[4].h);
        let _ = corner;
        let (mut top2, mut left2, corner2) =
            global_borders(4, 0, &SC, GlobalOrigin::forward(ES::Diagonal));
        let out2 =
            compute_tile(b"ACGT", b"", 1, 1, &SC, false, None, corner2, &mut top2, &mut left2);
        assert_eq!(out2.cells, 0);
        // corner_out walks down the left border to the last row.
        assert_eq!(out2.corner_out, left2[3].h);
        let _ = top2;
    }

    /// Big tiles must take the striped path and still agree with the
    /// scalar kernel on every bus cell and outcome field.
    #[test]
    fn striped_path_taken_and_matches_scalar() {
        let a = lcg(11, 200);
        let b = lcg(12, 171); // 171 = 10 * LANES + 11-column sliver
        for local in [false, true] {
            let (mut top_s, mut left_s, corner) = if local {
                local_borders(a.len(), b.len())
            } else {
                global_borders(a.len(), b.len(), &SC, GlobalOrigin::forward(ES::Diagonal))
            };
            let mut top_v = top_s.clone();
            let mut left_v = left_s.clone();
            let scal = compute_tile_scalar(
                &a,
                &b,
                1,
                1,
                &SC,
                local,
                None,
                corner,
                &mut top_s,
                &mut left_s,
            );
            let vect =
                compute_tile(&a, &b, 1, 1, &SC, local, None, corner, &mut top_v, &mut left_v);
            // Local borders (all zero) keep the tile inside the i8 window;
            // global borders walk past it with the gap run, so the i8
            // attempt detects overflow up front and escalates to i16.
            let expect = if local { KernelPath::Striped8 } else { KernelPath::Striped8Fallback16 };
            assert_eq!(vect.path, expect, "local={local}");
            assert_eq!(scal.path, KernelPath::Scalar);
            assert_eq!(top_v, top_s, "hbus, local={local}");
            assert_eq!(left_v, left_s, "vbus, local={local}");
            assert_eq!(vect.corner_out, scal.corner_out);
            assert_eq!(vect.best, scal.best);
            assert_eq!(vect.cells, scal.cells);
        }
    }

    /// Regression: the lane-0 diagonal seed (`prev_top`) must be carried
    /// across JCHUNK column-chunk boundaries, not re-read from the
    /// horizontal bus — by the end of a chunk the bus already holds this
    /// band's bottom row, and re-seeding from it fed a wrong diagonal to
    /// the band's top row at every chunk boundary. Unit-test builds
    /// shrink JCHUNK/BAND (see `striped.rs`), so this tile crosses three
    /// chunk boundaries and two band boundaries in the modes that chunk
    /// (local and watch).
    #[test]
    fn chunk_and_band_boundaries_match_scalar() {
        let a = lcg(19, 80); // > 2 * BAND(test)
        let b = lcg(20, 200); // > 3 * JCHUNK(test)
        for (local, watched) in [(true, false), (false, true), (true, true)] {
            let (top_0, left_0, corner) = if local {
                local_borders(a.len(), b.len())
            } else {
                global_borders(a.len(), b.len(), &SC, GlobalOrigin::forward(ES::Diagonal))
            };
            let watch = if watched {
                let (mut t, mut l) = (top_0.clone(), left_0.clone());
                let probe =
                    compute_tile_scalar(&a, &b, 1, 1, &SC, local, None, corner, &mut t, &mut l);
                Some(probe.corner_out)
            } else {
                None
            };
            let (mut top_s, mut left_s) = (top_0.clone(), left_0.clone());
            let scal = compute_tile_scalar(
                &a,
                &b,
                1,
                1,
                &SC,
                local,
                watch,
                corner,
                &mut top_s,
                &mut left_s,
            );
            let (mut top_v, mut left_v) = (top_0, left_0);
            let vect =
                compute_tile(&a, &b, 1, 1, &SC, local, watch, corner, &mut top_v, &mut left_v);
            let expect = if local { KernelPath::Striped8 } else { KernelPath::Striped8Fallback16 };
            assert_eq!(vect.path, expect, "local={local} watched={watched}");
            assert_eq!(top_v, top_s, "hbus, local={local} watched={watched}");
            assert_eq!(left_v, left_s, "vbus, local={local} watched={watched}");
            assert_eq!(vect.corner_out, scal.corner_out);
            assert_eq!(vect.best, scal.best);
            assert_eq!(vect.watch_hit, scal.watch_hit);
        }
    }

    /// Watch hits must agree across paths, including hits inside the
    /// striped columns and inside the scalar sliver.
    #[test]
    fn striped_watch_matches_scalar() {
        let a = lcg(13, 90);
        let b = lcg(14, 75);
        let (mut top, mut left, corner) =
            global_borders(a.len(), b.len(), &SC, GlobalOrigin::forward(ES::Diagonal));
        compute_tile(&a, &b, 1, 1, &SC, false, None, corner, &mut top, &mut left);
        // Watch a score that actually occurs: the final corner value.
        let goal = top[b.len() - 1].h;
        for watch in [goal, goal + 1_000_000] {
            let (mut top_s, mut left_s, corner) =
                global_borders(a.len(), b.len(), &SC, GlobalOrigin::forward(ES::Diagonal));
            let mut top_v = top_s.clone();
            let mut left_v = left_s.clone();
            let scal = compute_tile_scalar(
                &a,
                &b,
                1,
                1,
                &SC,
                false,
                Some(watch),
                corner,
                &mut top_s,
                &mut left_s,
            );
            let vect = compute_tile(
                &a,
                &b,
                1,
                1,
                &SC,
                false,
                Some(watch),
                corner,
                &mut top_v,
                &mut left_v,
            );
            // Global borders overflow the i8 window; the i16 rung commits.
            assert_eq!(vect.path, KernelPath::Striped8Fallback16);
            assert_eq!(vect.watch_hit, scal.watch_hit, "watch={watch}");
            assert_eq!(top_v, top_s);
            assert_eq!(left_v, left_s);
        }
    }

    /// Borders whose scores sit outside the i16 window must trigger the
    /// transparent scalar fallback — identical results, path recorded.
    #[test]
    fn saturating_tile_falls_back_to_scalar() {
        let a = lcg(15, 48);
        let b = lcg(16, 48);
        let (mut top_s, mut left_s, _) =
            global_borders(a.len(), b.len(), &SC, GlobalOrigin::forward(ES::Diagonal));
        // A border H far above the rest: rebasing to it pushes every other
        // border value below the safe window.
        top_s[0].h += 100_000;
        let corner = 0;
        let mut top_v = top_s.clone();
        let mut left_v = left_s.clone();
        let scal =
            compute_tile_scalar(&a, &b, 1, 1, &SC, false, None, corner, &mut top_s, &mut left_s);
        let vect = compute_tile(&a, &b, 1, 1, &SC, false, None, corner, &mut top_v, &mut left_v);
        assert_eq!(vect.path, KernelPath::StripedFallback);
        assert_eq!(top_v, top_s);
        assert_eq!(left_v, left_s);
        assert_eq!(vect.corner_out, scal.corner_out);
    }

    /// A reverse-origin region (NEG_INF corner seed) is ineligible for
    /// rebasing at its first block but must still be exact via fallback.
    #[test]
    fn reverse_origin_first_block_falls_back() {
        let a = lcg(17, 40);
        let b = lcg(18, 40);
        let (mut top_s, mut left_s, corner) =
            global_borders(a.len(), b.len(), &SC, GlobalOrigin::reverse(ES::GapS1, &SC));
        let mut top_v = top_s.clone();
        let mut left_v = left_s.clone();
        compute_tile_scalar(&a, &b, 1, 1, &SC, false, None, corner, &mut top_s, &mut left_s);
        let vect = compute_tile(&a, &b, 1, 1, &SC, false, None, corner, &mut top_v, &mut left_v);
        assert_eq!(vect.path, KernelPath::StripedFallback);
        assert_eq!(top_v, top_s);
        assert_eq!(left_v, left_s);
    }

    /// The i16-only entry point starts the ladder at the middle rung and
    /// must agree bit-for-bit with the i8-first default.
    #[test]
    fn i16_entry_point_skips_i8_and_matches() {
        let a = lcg(21, 100);
        let b = lcg(22, 90);
        let (mut top_8, mut left_8, corner) = local_borders(a.len(), b.len());
        let mut top_16 = top_8.clone();
        let mut left_16 = left_8.clone();
        let o8 = compute_tile(&a, &b, 1, 1, &SC, true, None, corner, &mut top_8, &mut left_8);
        let o16 =
            compute_tile_i16(&a, &b, 1, 1, &SC, true, None, corner, &mut top_16, &mut left_16);
        assert_eq!(o8.path, KernelPath::Striped8);
        assert_eq!(o16.path, KernelPath::Striped16);
        assert_eq!(top_8, top_16);
        assert_eq!(left_8, left_16);
        assert_eq!(o8.best, o16.best);
        assert_eq!(o8.corner_out, o16.corner_out);
    }

    /// Planted near-overflow border: high enough to leave the i8 window
    /// (local zero no longer fits alongside the bias) but comfortably
    /// inside i16 — the tile must take exactly one escalation step and
    /// stay bit-identical to scalar.
    #[test]
    fn forced_i8_to_i16_escalation_matches_scalar() {
        let a = lcg(25, 64);
        let b = lcg(26, 96);
        let (mut top_s, mut left_s, corner) = local_borders(a.len(), b.len());
        top_s[0].h += 200;
        let mut top_v = top_s.clone();
        let mut left_v = left_s.clone();
        let scal =
            compute_tile_scalar(&a, &b, 1, 1, &SC, true, None, corner, &mut top_s, &mut left_s);
        let vect = compute_tile(&a, &b, 1, 1, &SC, true, None, corner, &mut top_v, &mut left_v);
        assert_eq!(vect.path, KernelPath::Striped8Fallback16);
        assert_eq!(top_v, top_s);
        assert_eq!(left_v, left_s);
        assert_eq!(vect.best, scal.best);
        assert_eq!(vect.corner_out, scal.corner_out);
    }

    /// Planted far-overflow border: past the i16 window too, so the tile
    /// must walk the whole ladder (i8 → i16 → scalar) and re-run scalar.
    #[test]
    fn forced_full_escalation_matches_scalar() {
        let a = lcg(27, 64);
        let b = lcg(28, 96);
        let (mut top_s, mut left_s, corner) = local_borders(a.len(), b.len());
        top_s[0].h += 100_000;
        let mut top_v = top_s.clone();
        let mut left_v = left_s.clone();
        let scal =
            compute_tile_scalar(&a, &b, 1, 1, &SC, true, None, corner, &mut top_s, &mut left_s);
        let vect = compute_tile(&a, &b, 1, 1, &SC, true, None, corner, &mut top_v, &mut left_v);
        assert_eq!(vect.path, KernelPath::StripedFallback);
        assert_eq!(top_v, top_s);
        assert_eq!(left_v, left_s);
        assert_eq!(vect.best, scal.best);
        assert_eq!(vect.corner_out, scal.corner_out);
    }

    /// An engine-owned cache must be hit when a second tile shares the
    /// first tile's band, and the cached run must stay bit-identical.
    #[test]
    fn profile_cache_hits_across_tiles_of_one_band() {
        let a = lcg(29, 64);
        let b = lcg(30, 128);
        let nj = 64;
        let mut cache = super::ProfileCache::new();
        let (mut top, mut left, corner) = local_borders(a.len(), b.len());
        let (t0, t1) = top.split_at_mut(nj);
        let o0 = compute_tile_cached(
            &a,
            &b[..nj],
            1,
            1,
            &SC,
            true,
            None,
            corner,
            t0,
            &mut left,
            &mut cache,
        );
        // Second tile of the same band row: same query band, new columns.
        let mut left2 = vec![CellHE { h: 0, e: NEG_INF }; a.len()];
        let o1 = compute_tile_cached(
            &a,
            &b[nj..],
            1,
            nj + 1,
            &SC,
            true,
            None,
            0,
            t1,
            &mut left2,
            &mut cache,
        );
        assert_eq!(o0.path, KernelPath::Striped8);
        assert_eq!(o1.path, KernelPath::Striped8);
        // Under cfg(test) BAND = 32, so the 64-row query spans two bands:
        // the first tile builds one cache entry per band, the second hits both.
        assert_eq!(
            cache.misses(),
            a.len().div_ceil(crate::striped::BAND) as u64,
            "first tile builds one entry per band"
        );
        assert!(cache.hits() >= 2, "second tile reuses every band entry");

        // The cached composition must equal the uncached single tiles.
        let (mut top_r, mut left_r, _) = local_borders(a.len(), b.len());
        let (r0, r1) = top_r.split_at_mut(nj);
        compute_tile(&a, &b[..nj], 1, 1, &SC, true, None, corner, r0, &mut left_r);
        let mut left_r2 = vec![CellHE { h: 0, e: NEG_INF }; a.len()];
        compute_tile(&a, &b[nj..], 1, nj + 1, &SC, true, None, 0, r1, &mut left_r2);
        assert_eq!(t0, r0);
        assert_eq!(t1, r1);
        assert_eq!(left2, left_r2);
    }

    #[test]
    fn global_borders_match_nw_init() {
        let (top, left, _) = global_borders(3, 3, &SC, GlobalOrigin::forward(ES::Diagonal));
        // H(0, j) = -(5 + (j-1)*2)
        assert_eq!(top[0].h, -5);
        assert_eq!(top[1].h, -7);
        assert_eq!(top[2].h, -9);
        assert_eq!(left[0].h, -5);
        assert_eq!(left[2].h, -9);
        // Seeded gap state halves the first step cost.
        let (top_e, _, _) = global_borders(3, 3, &SC, GlobalOrigin::forward(ES::GapS0));
        assert_eq!(top_e[0].h, -2);
        let (_, left_f, _) = global_borders(3, 3, &SC, GlobalOrigin::forward(ES::GapS1));
        assert_eq!(left_f[0].h, -2);
        // Cross-check against the quadratic DP.
        let (s, _) = nw_global_typed(b"", b"AC", &SC, ES::GapS0, ES::Diagonal);
        assert_eq!(s, top_e[1].h);
    }
}
