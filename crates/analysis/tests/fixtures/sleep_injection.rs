// lint-fixture path=crates/cudalign/src/stage1.rs rule=sleep-injection expect=1
// One live violation: a bare blocking sleep in library code outside the
// sanctioned storage/exec homes.
pub fn wait_a_bit() {
    std::thread::sleep(std::time::Duration::from_millis(5));
}

// Must NOT fire: a justified allow at a site that genuinely needs it.
pub fn sanctioned_wait() {
    // lint: allow(sleep-injection): simulated device settle time, bounded at 1ms
    std::thread::sleep(std::time::Duration::from_millis(1));
}

// Must NOT fire: test regions are exempt (tests may pace themselves).
#[cfg(test)]
mod tests {
    #[test]
    fn sleepy() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
