// lint-fixture path=crates/cudalign/src/fixture.rs rule=fs-isolation expect=1
// The one live violation: raw filesystem access outside storage.rs.
pub fn leak(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}

// Must NOT fire: `fs` in strings/comments, or behind a justified allow.
pub fn clean() {
    // std::fs in a comment is fine
    let s = "File::open in a string is fine";
    let _ = s;
}

pub fn allowed(p: &std::path::Path) -> bool {
    // lint: allow(fs-isolation): fixture — justified suppression must not fire
    std::fs::metadata(p).is_ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _ = std::fs::read_to_string("/nonexistent");
    }
}
