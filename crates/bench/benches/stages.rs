//! Stage-level benchmarks: the flush overhead (Table IV), the
//! orthogonal-execution saving (Table IX) and the whole pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cudalign::sra::LineStore;
use cudalign::{stage1, stage4, Crosspoint, CrosspointChain, Pipeline, PipelineConfig, WorkerPool};
use seqio::generate::{homologous_pair, HomologyParams};
use sw_core::full::nw_global_typed;
use sw_core::transcript::EdgeState;
use sw_core::Scoring;

fn pair(len: usize) -> (Vec<u8>, Vec<u8>) {
    let (a, b) = homologous_pair(9, len, &HomologyParams::chromosome());
    (a.into_bases(), b.into_bases())
}

fn bench_stage1_flush(c: &mut Criterion) {
    let mut g = c.benchmark_group("stage1");
    g.sample_size(10);
    let (a, b) = pair(4096);
    g.throughput(Throughput::Elements((a.len() * b.len()) as u64));
    for (name, sra) in [("noflush", 0u64), ("flush", 1 << 20)] {
        g.bench_with_input(BenchmarkId::new(name, a.len()), &sra, |bench, &sra| {
            let mut cfg = PipelineConfig::default_cpu();
            cfg.sra_bytes = sra;
            let pool = WorkerPool::new(cfg.workers);
            let fp = cfg.job_fingerprint(a.len(), b.len());
            bench.iter(|| {
                let mut rows = LineStore::new(&cfg.backend, sra, "row", fp).unwrap();
                stage1::run(&a, &b, &cfg, &pool, &mut rows).unwrap().best_score
            })
        });
    }
    g.finish();
}

fn bench_stage4_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("stage4");
    g.sample_size(10);
    let (a, b) = pair(4096);
    let (score, _) =
        nw_global_typed(&a, &b, &Scoring::paper(), EdgeState::Diagonal, EdgeState::Diagonal);
    let chain = CrosspointChain::new(vec![
        Crosspoint::start(0, 0),
        Crosspoint::end(a.len(), b.len(), score),
    ]);
    for (name, orth) in [("classic", false), ("orthogonal", true)] {
        g.bench_with_input(BenchmarkId::new(name, a.len()), &orth, |bench, &orth| {
            let mut cfg = PipelineConfig::default_cpu();
            cfg.orthogonal_stage4 = orth;
            let pool = WorkerPool::new(cfg.workers);
            bench.iter(|| stage4::run(&a, &b, &cfg, &pool, &chain).unwrap().cells)
        });
    }
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    for len in [1024usize, 4096] {
        let (a, b) = pair(len);
        g.throughput(Throughput::Elements((a.len() * b.len()) as u64));
        g.bench_with_input(BenchmarkId::new("full", len), &len, |bench, _| {
            let cfg = PipelineConfig::default_cpu();
            bench.iter(|| Pipeline::new(cfg.clone()).align(&a, &b).unwrap().best_score)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_stage1_flush, bench_stage4_modes, bench_pipeline);
criterion_main!(benches);
