//! Qualitative claims of the paper's evaluation, checked end-to-end on
//! the synthetic Table II workloads.

use cudalign::{Pipeline, PipelineConfig};
use seqio::generate::HomologyParams;
use seqio::{DatasetRegistry, Relation};

fn align_pair(key: &str, scale: usize) -> (cudalign::PipelineResult, usize, usize) {
    let reg = DatasetRegistry::paper();
    let spec = reg.get(key).unwrap();
    let (s0, s1) = spec.materialize(scale, 42);
    let res = Pipeline::new(PipelineConfig::default_cpu()).align(s0.bases(), s1.bases()).unwrap();
    (res, s0.len(), s1.len())
}

/// Unrelated pairs (herpes viruses): the optimal alignment is a short
/// random coincidence — the paper found score 18 over 162K x 172K.
#[test]
fn unrelated_pairs_align_weakly() {
    let (res, m, _) = align_pair("162Kx172K", 20_000);
    assert!(res.best_score < 40, "score {}", res.best_score);
    assert!(res.transcript.len() < m / 2);
}

/// Strain pairs (B. anthracis): the alignment spans essentially the whole
/// genome — the paper's score 5,220,960 over 5,227 KBP with few gaps.
#[test]
fn strain_pairs_align_end_to_end() {
    let (res, m, _) = align_pair("5227Kx5229K", 20_000);
    let span = res.end.0 - res.start.0;
    assert!(span * 10 >= m * 9, "alignment spans {span} of {m} bp");
    let stats = res.transcript.stats();
    let total = stats.total_columns().max(1);
    assert!(stats.matches * 100 / total > 95, "match fraction too low");
}

/// The chromosome pair: the human side carries a large unrelated left
/// flank, so the alignment starts deep into S1 (the paper's start
/// position (0, 13,841,680)) and matches ~94% of columns.
#[test]
fn chromosome_pair_skips_the_flank() {
    let (res, m, n) = align_pair("32799Kx46944K", 10_000);
    assert!(
        res.start.1 > n / 4,
        "alignment should start after the flank: start {:?} of {n}",
        res.start
    );
    assert!(res.start.0 < m / 10, "chimp side aligns from near its beginning");
    let stats = res.transcript.stats();
    let total = stats.total_columns().max(1);
    let match_pct = 100.0 * stats.matches as f64 / total as f64;
    assert!(
        (88.0..99.5).contains(&match_pct),
        "match fraction {match_pct:.1}% out of the chromosome regime"
    );
}

/// Island pairs (Corynebacterium/Drosophila): one bounded homologous
/// segment inside megabase unrelated sequence.
#[test]
fn island_pairs_find_the_island() {
    let reg = DatasetRegistry::paper();
    let spec = reg.get("3147Kx3283K").unwrap();
    let island_frac = match spec.relation {
        Relation::Island { island_frac, .. } => island_frac,
        _ => panic!("expected island relation"),
    };
    let (s0, s1) = spec.materialize(10_000, 42);
    let res = Pipeline::new(PipelineConfig::default_cpu()).align(s0.bases(), s1.bases()).unwrap();
    let expected_island = (s0.len().min(s1.len()) as f64 * island_frac) as usize;
    // The alignment covers at least half the planted island (divergence
    // may trim its ends) and does not balloon past ~3x of it.
    assert!(
        res.transcript.len() >= expected_island / 2,
        "alignment {} shorter than half the island {expected_island}",
        res.transcript.len()
    );
    assert!(res.transcript.len() <= expected_island * 3 + 64);
}

/// The divergence presets produce the intended mutation regimes.
#[test]
fn divergence_presets_are_ordered() {
    let strain = HomologyParams::strain();
    let chromo = HomologyParams::chromosome();
    let diverged = HomologyParams::diverged();
    assert!(strain.snp_rate < chromo.snp_rate);
    assert!(chromo.snp_rate < diverged.snp_rate);
}
