//! Trace-schema round-trip tests: a full pipeline run recorded through a
//! [`cudalign::TraceWriter`] must produce NDJSON that the schema checker
//! accepts, covering all six stages, with resume-aware progress.

use cudalign::config::{CheckpointPolicy, SraBackend};
use cudalign::obs::validate_trace;
use cudalign::{Obs, Pipeline, PipelineConfig, Progress, TraceWriter};
use integration_tests::edited_pair;

fn traced_run(cfg: PipelineConfig, a: &[u8], b: &[u8]) -> (String, cudalign::PipelineResult) {
    let mut tracer = TraceWriter::new(Vec::new());
    let res = {
        let mut obs = Obs::new();
        obs.add_recorder(&mut tracer);
        Pipeline::new(cfg).align_observed(a, b, &mut obs).expect("pipeline run")
    };
    let bytes = tracer.finish().expect("trace writes succeed");
    (String::from_utf8(bytes).expect("trace is UTF-8"), res)
}

/// Every record the pipeline emits parses as JSON and the whole stream
/// passes the schema checker: spans nest, stages 1..=6 all appear, the
/// run ends with `run_end`.
#[test]
fn trace_round_trip_covers_all_six_stages() {
    let (a, b) = edited_pair(71, 400, 19);
    let (text, res) = traced_run(PipelineConfig::for_tests(), &a, &b);
    assert!(res.best_score > 0, "pair must align");

    let check = validate_trace(&text).expect("schema-valid trace");
    assert!(check.ended, "run_end must close the trace");
    assert!(
        check.stages_seen.iter().all(|s| *s),
        "all six stages must be traced: {:?}",
        check.stages_seen
    );
    assert!(check.records > 10, "a real run emits spans plus progress ticks");
}

/// A run resumed from a stage-1 checkpoint reports the resumed diagonal
/// in `run_begin`, and the progress tracker starts at the resumed offset
/// rather than zero.
#[test]
fn resumed_trace_reports_resume_offset() {
    let (a, b) = edited_pair(72, 400, 17);
    let dir = std::env::temp_dir().join(format!("cudalign-trace-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut cfg = PipelineConfig::for_tests();
    cfg.backend = SraBackend::Disk(dir.clone());
    cfg.checkpoint = Some(CheckpointPolicy { dir: dir.clone(), every_diagonals: 9 });

    // "Crashed" run leaves a snapshot plus row files behind.
    {
        let fp = cfg.job_fingerprint(a.len(), b.len());
        let mut rows = cudalign::sra::LineStore::<gpu_sim::CellHF>::new(
            &cfg.backend,
            cfg.sra_bytes,
            "special-row",
            fp,
        )
        .unwrap();
        let pool = gpu_sim::WorkerPool::new(cfg.workers);
        let _ = cudalign::stage1::run_resumable(
            &a,
            &b,
            &cfg,
            &pool,
            &mut rows,
            None,
            Some((dir.as_path(), 9)),
        );
        std::mem::forget(rows);
    }

    let mut tracer = TraceWriter::new(Vec::new());
    let mut progress = Progress::new();
    {
        let mut obs = Obs::new();
        obs.add_recorder(&mut tracer);
        obs.add_recorder(&mut progress);
        Pipeline::new(cfg).align_observed(&a, &b, &mut obs).expect("resumed run");
    }
    let text = String::from_utf8(tracer.finish().unwrap()).unwrap();
    let check = validate_trace(&text).expect("schema-valid resumed trace");
    assert!(check.ended);
    assert_eq!(progress.percent(), Some(100.0), "stage-1 sweep completed");

    // The first record is run_begin with a non-zero resume diagonal.
    let first = text.lines().next().expect("non-empty trace");
    let rec = cudalign::obs::parse_json(first).expect("run_begin parses");
    assert_eq!(rec.get("ev").and_then(|v| v.str_val()), Some("run_begin"));
    let resumed = rec.get("resumed_from_diagonal").and_then(|v| v.num()).unwrap_or(0.0);
    assert!(resumed > 0.0, "resumed diagonal must be recorded, got {resumed}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A run cancelled before its first diagonal still yields a schema-valid
/// trace: `run_begin` is emitted eagerly, so the stream carries
/// `run_begin` + `interrupt` instead of being rejected as empty, and the
/// pipeline surfaces the typed cancellation.
#[test]
fn immediately_cancelled_run_traces_run_begin_plus_interrupt() {
    let (a, b) = edited_pair(73, 200, 11);
    let ctrl = cudalign::RunControl::unlimited();
    ctrl.cancel();

    let mut tracer = TraceWriter::new(Vec::new());
    let err = {
        let mut obs = Obs::new();
        obs.add_recorder(&mut tracer);
        Pipeline::new(PipelineConfig::for_tests())
            .align_supervised(&a, &b, &mut obs, &ctrl)
            .expect_err("pre-cancelled run must not succeed")
    };
    assert_eq!(err.interruption_kind(), Some("cancelled"), "{err}");

    let text = String::from_utf8(tracer.finish().unwrap()).unwrap();
    let check = validate_trace(&text).expect("interrupted trace stays schema-valid");
    assert!(!check.ended, "no run_end on an interrupted run");
    assert_eq!(check.interrupts, 1, "the cancellation is recorded");
    let first = text.lines().next().expect("non-empty trace");
    let rec = cudalign::obs::parse_json(first).expect("run_begin parses");
    assert_eq!(rec.get("ev").and_then(|v| v.str_val()), Some("run_begin"));
}

/// CI hook: when `CUDALIGN_TRACE_FILE` points at a trace written by the
/// CLI (`align --trace`), validate it against the same schema checker.
/// Skipped (trivially passing) when the variable is unset.
#[test]
fn validates_external_trace_file() {
    let Ok(path) = std::env::var("CUDALIGN_TRACE_FILE") else {
        return;
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("CUDALIGN_TRACE_FILE {path}: {e}"));
    let check = validate_trace(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert!(check.ended, "{path}: trace must end with run_end");
    assert!(
        check.stages_seen.iter().all(|s| *s),
        "{path}: all six stages must appear: {:?}",
        check.stages_seen
    );
}
