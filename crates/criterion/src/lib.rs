//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors the dependencies it needs as minimal in-repo
//! crates. This one implements the subset of criterion's API that the
//! bench targets use — [`Criterion::benchmark_group`], group
//! `sample_size`/`throughput`/`bench_function`/`bench_with_input`/`finish`,
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — so every
//! `benches/*.rs` file compiles and runs unchanged.
//!
//! It is a measurement harness, not a statistics engine: each benchmark is
//! warmed up once, then timed over `sample_size` samples (batched so one
//! sample is at least ~1 ms), and the per-iteration minimum, median, and
//! mean are printed. No plots, no saved baselines, no outlier analysis.
//! Unknown command-line arguments (e.g. `--bench`, passed by cargo) are
//! ignored, as the real crate does.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much work one iteration performs, for derived rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many abstract elements (here: DP cells).
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus a parameter rendered via
/// `Display`, printed as `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times one benchmark body. Mirrors `criterion::Bencher`.
pub struct Bencher {
    samples: usize,
    /// (total wall time, total iterations) accumulated by [`Bencher::iter`].
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Measure `body` repeatedly. The return value is passed through
    /// [`black_box`] so the work is not optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        // Warm-up + calibration: how many iterations make one ~1 ms sample?
        let start = Instant::now();
        black_box(body());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut times = Vec::with_capacity(self.samples);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                black_box(body());
            }
            let dt = t0.elapsed();
            times.push(dt / per_sample as u32);
            total += dt;
            iters += per_sample;
            // Keep slow benchmarks bounded: past ~3 s, the samples we have
            // are representative enough.
            if total > Duration::from_secs(3) {
                break;
            }
        }
        times.sort_unstable();
        self.measured = Some((total, iters));
        let median = times[times.len() / 2];
        let min = times[0];
        let mean = total / iters.max(1) as u32;
        print!(
            "    min {:>12?}   median {:>12?}   mean {:>12?}   ({} iters)",
            min, median, mean, iters
        );
    }
}

/// A named group of related benchmarks. Mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        print!("{}/{} ... ", self.name, id.id);
        let mut b = Bencher { samples: self.sample_size, measured: None };
        body(&mut b);
        self.report(&b);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        print!("{}/{} ... ", self.name, id.id);
        let mut b = Bencher { samples: self.sample_size, measured: None };
        body(&mut b, input);
        self.report(&b);
        self
    }

    fn report(&self, b: &Bencher) {
        match (b.measured, self.throughput) {
            (Some((total, iters)), Some(tp)) if iters > 0 && !total.is_zero() => {
                let per_iter = total.as_secs_f64() / iters as f64;
                let (units, label) = match tp {
                    Throughput::Elements(n) => (n, "elem/s"),
                    Throughput::Bytes(n) => (n, "B/s"),
                };
                println!("   {:>10.3} M{}", units as f64 / per_iter / 1e6, label);
            }
            (Some(_), None) => println!(),
            _ => println!("no measurement (Bencher::iter never called)"),
        }
    }

    /// End the group. (The real crate finalizes reports here; nothing to do.)
    pub fn finish(self) {}
}

/// Top-level benchmark driver. Mirrors `criterion::Criterion`.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        // Swallow harness CLI args (`--bench`, filters) like the real crate.
        let _ = std::env::args();
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name} ==");
        BenchmarkGroup { name, sample_size: 20, throughput: None, _criterion: self }
    }
}

/// Bundle benchmark functions into a group runner. Mirrors
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = <$crate::Criterion as ::std::default::Default>::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a bench target. Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn harness_runs() {
        smoke();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 42).id, "f/42");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
