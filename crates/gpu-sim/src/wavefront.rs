//! The external-diagonal wavefront scheduler.
//!
//! Blocks of one external diagonal are mutually independent: each reads
//! the horizontal-bus segment written by the block above it (previous
//! diagonal) and the vertical-bus segment written by the block to its left
//! (also previous diagonal). The scheduler walks diagonals in order,
//! executes each diagonal's blocks concurrently on the persistent
//! [`crate::exec::WorkerPool`] (one scope per diagonal is the barrier),
//! then — still synchronously with respect to the next diagonal — reports
//! every completed block to the caller's [`WavefrontObserver`], which is
//! how the pipeline flushes special rows (Stage 1) and runs goal-based
//! matching with early abort (Stages 2-3).

use crate::exec::{ExecError, WorkerPool};
use crate::grid::{GridLayout, GridSpec};
use crate::kernel::{self, CellHE, CellHF, Mode, TileOutcome};
use std::ops::ControlFlow;
use sw_core::full::better_endpoint;
use sw_core::scoring::{Score, Scoring};

/// Identity and geometry of one block, as seen by observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCoords {
    /// Block row index.
    pub r: usize,
    /// Block column index.
    pub c: usize,
    /// External diagonal (`r + c`).
    pub diagonal: usize,
    /// Inclusive 1-based DP row range `(start, end)` of the block.
    pub rows: (usize, usize),
    /// Inclusive 1-based DP column range `(start, end)` of the block.
    pub cols: (usize, usize),
    /// True when this block is in the last block row.
    pub last_block_row: bool,
    /// True when this block is in the last block column.
    pub last_block_col: bool,
}

/// Observer invoked after each completed block (sequentially, in ascending
/// block-column order within a diagonal).
pub trait WavefrontObserver {
    /// `bottom` is the block's last row (`H`/`F` per column — the
    /// horizontal-bus segment it just wrote, i.e. the special-row
    /// candidate); `right` is its last column (`H`/`E` per row — the
    /// *rectified vertical bus*); `outcome` carries the block's watch hit
    /// and cell count. Return `Break` to abort the launch.
    fn on_block(
        &mut self,
        block: &BlockCoords,
        outcome: &TileOutcome,
        bottom: &[CellHF],
        right: &[CellHE],
    ) -> ControlFlow<()>;

    /// Called between external diagonals at the cadence configured via
    /// [`run_resumable`]'s `checkpoint_every`, with a snapshot the
    /// observer may persist. Default: ignore.
    fn on_checkpoint(&mut self, _state: &EngineState) {}
}

/// A no-op observer.
pub struct NoObserver;

impl WavefrontObserver for NoObserver {
    fn on_block(
        &mut self,
        _: &BlockCoords,
        _: &TileOutcome,
        _: &[CellHF],
        _: &[CellHE],
    ) -> ControlFlow<()> {
        ControlFlow::Continue(())
    }
}

/// One engine launch over a DP region.
#[derive(Debug, Clone, Copy)]
pub struct RegionJob<'a> {
    /// Row sequence (`S0` side of the region).
    pub a: &'a [u8],
    /// Column sequence (`S1` side of the region).
    pub b: &'a [u8],
    /// Scoring scheme.
    pub scoring: Scoring,
    /// Local or global recurrence.
    pub mode: Mode,
    /// Execution configuration.
    pub grid: GridSpec,
    /// Maximum worker threads (`0` = all available cores).
    pub workers: usize,
    /// When set, every block reports the first cell whose `H` equals this
    /// score (Stage 2's start-point detection).
    pub watch: Option<Score>,
}

/// Outcome of an engine launch.
#[derive(Debug, Clone)]
pub struct RegionResult {
    /// Best cell and its position (local mode; `None` when every cell is 0).
    pub best: Option<(Score, usize, usize)>,
    /// Cells updated (excluding borders).
    pub cells: u64,
    /// External diagonals executed.
    pub diagonals_run: usize,
    /// True when an observer aborted the launch.
    pub aborted: bool,
    /// Number of block executions (busy block-slots summed over
    /// diagonals). See [`RegionResult::utilization`].
    pub busy_slots: u64,
    /// Final horizontal bus: frontier `H`/`F` per column (row `m` for every
    /// column when the launch ran to completion).
    pub hbus: Vec<CellHF>,
    /// Final vertical bus: frontier `H`/`E` per row.
    pub vbus: Vec<CellHE>,
    /// The layout that was executed.
    pub layout: GridLayout,
    /// Tiles computed on the lane-striped vector kernel *in this run* —
    /// like [`RegionResult::diagonals_run`], kernel-path counters are not
    /// carried across checkpoint resume.
    pub striped_tiles: u64,
    /// Tiles that attempted the striped kernel but overflowed the `i16`
    /// window and re-ran on the scalar kernel (this run).
    pub fallback_tiles: u64,
}

impl RegionResult {
    /// Fraction of block slots kept busy across the executed diagonals:
    /// `busy_slots / (diagonals_run * block_cols)`.
    ///
    /// This is the quantity CUDAlign 1.0's *cells delegation* maximizes.
    /// With the tall grids the pipeline uses (`block_rows >>
    /// block_cols`), the rectangular wavefront already achieves the
    /// paper's "full parallelism except in the very beginning and very
    /// close to the end": utilization tends to
    /// `block_rows / (block_rows + block_cols - 1)`.
    pub fn utilization(&self) -> f64 {
        let slots = self.diagonals_run as u64 * self.layout.block_cols as u64;
        if slots == 0 {
            return 0.0;
        }
        self.busy_slots as f64 / slots as f64
    }
}

struct Task<'buf, 'seq> {
    coords: BlockCoords,
    a_tile: &'seq [u8],
    b_tile: &'seq [u8],
    corner: Score,
    hseg: &'buf mut [CellHF],
    vseg: &'buf mut [CellHE],
    outcome: Option<TileOutcome>,
}

/// Serializable execution state between two external diagonals — the
/// checkpoint/resume support an 18-hour Stage 1 needs (the real CUDAlign
/// gained incremental execution in its follow-on versions).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineState {
    /// Fingerprint of the job this state belongs to: `(m, n, B, T, alpha)`.
    pub fingerprint: (u64, u64, u64, u64, u64),
    /// Next external diagonal to execute.
    pub next_diagonal: usize,
    /// Horizontal bus contents.
    pub hbus: Vec<CellHF>,
    /// Vertical bus contents.
    pub vbus: Vec<CellHE>,
    /// Corner matrix contents.
    pub corners: Vec<Score>,
    /// Best cell so far (local mode).
    pub best: Option<(Score, usize, usize)>,
    /// Cells processed so far.
    pub cells: u64,
    /// Busy block-slots so far.
    pub busy_slots: u64,
}

impl EngineState {
    /// Does this snapshot belong to `job`? Callers should check before
    /// resuming; [`run_resumable`] panics on a mismatch.
    pub fn matches(&self, job: &RegionJob<'_>) -> bool {
        self.fingerprint == Self::fingerprint_of(job)
    }

    fn fingerprint_of(job: &RegionJob<'_>) -> (u64, u64, u64, u64, u64) {
        // FNV-1a over everything that determines the DP values: sequence
        // content, scoring, mode and grid. Resuming under any other job
        // must be rejected — buses computed with different parameters
        // would silently corrupt the result.
        fn fnv(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x100000001b3);
            }
        }
        let mut content = 0xcbf29ce484222325u64;
        fnv(&mut content, job.a);
        fnv(&mut content, job.b);
        let mut params = 0xcbf29ce484222325u64;
        for v in [
            job.scoring.match_score,
            job.scoring.mismatch_score,
            job.scoring.gap_first,
            job.scoring.gap_ext,
        ] {
            fnv(&mut params, &v.to_le_bytes());
        }
        match job.mode {
            Mode::Local => fnv(&mut params, b"local"),
            Mode::Global { origin } => {
                fnv(&mut params, b"global");
                fnv(&mut params, &origin.h0.to_le_bytes());
                fnv(&mut params, &origin.e0.to_le_bytes());
                fnv(&mut params, &origin.f0.to_le_bytes());
            }
        }
        (
            job.a.len() as u64,
            job.b.len() as u64,
            (job.grid.blocks as u64) << 32 | (job.grid.threads as u64) << 8 | job.grid.alpha as u64,
            content,
            params,
        )
    }

    /// Serialize (little-endian, self-describing lengths).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + 8 * (self.hbus.len() + self.vbus.len()) + 4 * self.corners.len(),
        );
        out.extend_from_slice(b"CKPT");
        for v in [
            self.fingerprint.0,
            self.fingerprint.1,
            self.fingerprint.2,
            self.fingerprint.3,
            self.fingerprint.4,
            self.next_diagonal as u64,
            self.cells,
            self.busy_slots,
            self.hbus.len() as u64,
            self.vbus.len() as u64,
            self.corners.len() as u64,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        match self.best {
            None => out.push(0),
            Some((s, i, j)) => {
                out.push(1);
                out.extend_from_slice(&s.to_le_bytes());
                out.extend_from_slice(&(i as u64).to_le_bytes());
                out.extend_from_slice(&(j as u64).to_le_bytes());
            }
        }
        for c in &self.hbus {
            out.extend_from_slice(&c.h.to_le_bytes());
            out.extend_from_slice(&c.f.to_le_bytes());
        }
        for c in &self.vbus {
            out.extend_from_slice(&c.h.to_le_bytes());
            out.extend_from_slice(&c.e.to_le_bytes());
        }
        for &c in &self.corners {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    /// Deserialize; `None` on any structural mismatch.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, k: usize| -> Option<&[u8]> {
            let s = bytes.get(*pos..*pos + k)?;
            *pos += k;
            Some(s)
        };
        if take(&mut pos, 4)? != b"CKPT" {
            return None;
        }
        let u = |pos: &mut usize| -> Option<u64> {
            Some(u64::from_le_bytes(take(pos, 8)?.try_into().ok()?))
        };
        let fp = (u(&mut pos)?, u(&mut pos)?, u(&mut pos)?, u(&mut pos)?, u(&mut pos)?);
        let next_diagonal = u(&mut pos)? as usize;
        let cells = u(&mut pos)?;
        let busy_slots = u(&mut pos)?;
        let nh = u(&mut pos)? as usize;
        let nv = u(&mut pos)? as usize;
        let nc = u(&mut pos)? as usize;
        // Reject sizes the payload cannot hold (corruption guard).
        let need = 1 + 8 * nh + 8 * nv + 4 * nc;
        if bytes.len().checked_sub(pos)? < need {
            return None;
        }
        let best = match take(&mut pos, 1)?[0] {
            0 => None,
            _ => {
                let s = Score::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
                let i = u(&mut pos)? as usize;
                let j = u(&mut pos)? as usize;
                Some((s, i, j))
            }
        };
        let mut hbus = Vec::with_capacity(nh);
        for _ in 0..nh {
            let h = Score::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
            let f = Score::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
            hbus.push(CellHF { h, f });
        }
        let mut vbus = Vec::with_capacity(nv);
        for _ in 0..nv {
            let h = Score::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
            let e = Score::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?);
            vbus.push(CellHE { h, e });
        }
        let mut corners = Vec::with_capacity(nc);
        for _ in 0..nc {
            corners.push(Score::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?));
        }
        Some(EngineState {
            fingerprint: fp,
            next_diagonal,
            hbus,
            vbus,
            corners,
            best,
            cells,
            busy_slots,
        })
    }
}

/// Run a region to completion (or until an observer aborts).
///
/// Convenience wrapper that builds a transient [`WorkerPool`] sized by
/// `job.workers` and panics if a worker panics (the pre-executor
/// behaviour). Pipelines should prefer [`run_pooled`] with a shared pool.
pub fn run(job: &RegionJob<'_>, observer: &mut dyn WavefrontObserver) -> RegionResult {
    run_resumable(job, observer, None, None)
}

/// Run a region on a shared persistent [`WorkerPool`].
///
/// Observationally identical to [`run`] for every pool size: block
/// results are merged (and the observer notified) on the calling thread
/// in block order after each diagonal's barrier, so scheduling cannot
/// change scores, endpoints, buses, or observer event order.
pub fn run_pooled(
    pool: &WorkerPool,
    job: &RegionJob<'_>,
    observer: &mut dyn WavefrontObserver,
) -> Result<RegionResult, ExecError> {
    run_resumable_pooled(pool, job, observer, None, None)
}

/// Like [`run`], but optionally resuming from a previous [`EngineState`]
/// and/or delivering snapshots to the observer's
/// [`WavefrontObserver::on_checkpoint`] every `checkpoint_every`
/// external diagonals.
///
/// # Panics
/// Panics when `resume` carries a fingerprint for a different job, or
/// when a worker panics (transient-pool wrapper; see [`run`]).
pub fn run_resumable(
    job: &RegionJob<'_>,
    observer: &mut dyn WavefrontObserver,
    resume: Option<EngineState>,
    checkpoint_every: Option<usize>,
) -> RegionResult {
    let pool = WorkerPool::new(job.workers);
    run_resumable_pooled(&pool, job, observer, resume, checkpoint_every)
        // lint: allow(no-panics): documented panicking wrapper (see `# Panics`
        // above); error-returning callers use `run_resumable_pooled`.
        .unwrap_or_else(|e| panic!("wavefront worker panicked: {e}"))
}

/// [`run_resumable`] on a shared persistent [`WorkerPool`].
///
/// The effective parallelism of a diagonal is
/// `min(pool.lanes(), job.workers)` (with `job.workers == 0` meaning "no
/// extra cap"), so a job built with `workers: 1` stays serial even on a
/// wide pool — stage 3 relies on that to keep per-partition engines
/// single-lane while partitions fan out.
///
/// # Panics
/// Panics when `resume` carries a fingerprint for a different job.
pub fn run_resumable_pooled(
    pool: &WorkerPool,
    job: &RegionJob<'_>,
    observer: &mut dyn WavefrontObserver,
    resume: Option<EngineState>,
    checkpoint_every: Option<usize>,
) -> Result<RegionResult, ExecError> {
    let (m, n) = (job.a.len(), job.b.len());
    let layout = job.grid.layout(m, n);
    let local = job.mode.is_local();

    let (mut hbus, mut vbus, origin_h) = match job.mode {
        Mode::Local => kernel::local_borders(m, n),
        Mode::Global { origin } => kernel::global_borders(m, n, &job.scoring, origin),
    };

    // corners[r][c] = H at (row_end(r-1), col_end(c-1)); row/col 0 hold the
    // border values so block (r, c) always reads corners[r][c]. The origin
    // corner is the origin's H seed — NEG_INF for reverse regions whose
    // path must *begin* inside a gap run.
    let (br, bc) = (layout.block_rows, layout.block_cols);
    let mut corners = vec![0 as Score; (br + 1) * (bc + 1)];
    corners[0] = origin_h;
    for c in 0..bc {
        let (_, ce) = layout.col_range(c);
        corners[c + 1] = if ce == 0 { 0 } else { hbus[ce - 1].h };
    }
    for r in 0..br {
        let (_, re) = layout.row_range(r);
        corners[(r + 1) * (bc + 1)] = if re == 0 { 0 } else { vbus[re - 1].h };
    }

    // The pool fixes the lane count for the whole run; `job.workers` can
    // only cap it further (0 = uncapped).
    let workers = match job.workers {
        0 => pool.lanes(),
        w => w.min(pool.lanes()),
    };

    let mut best: Option<(Score, usize, usize)> = None;
    let mut cells = 0u64;
    let mut aborted = false;
    let mut diagonals_run = 0usize;
    let mut busy_slots = 0u64;
    let mut striped_tiles = 0u64;
    let mut fallback_tiles = 0u64;
    let mut first_diagonal = 0usize;

    if let Some(state) = resume {
        assert_eq!(
            state.fingerprint,
            EngineState::fingerprint_of(job),
            "checkpoint belongs to a different job"
        );
        hbus = state.hbus;
        vbus = state.vbus;
        corners = state.corners;
        best = state.best;
        cells = state.cells;
        busy_slots = state.busy_slots;
        first_diagonal = state.next_diagonal;
    }

    // One detector session per engine run: shadow last-writer state for
    // every bus cell, checked against the grid's scheduled producers.
    #[cfg(feature = "race-check")]
    let race_session = crate::race::Session::new(m, n, br, bc, first_diagonal);

    'diagonals: for d in first_diagonal..layout.diagonals() {
        if let Some(every) = checkpoint_every {
            if d > first_diagonal && (d - first_diagonal).is_multiple_of(every.max(1)) {
                observer.on_checkpoint(&EngineState {
                    fingerprint: EngineState::fingerprint_of(job),
                    next_diagonal: d,
                    hbus: hbus.clone(),
                    vbus: vbus.clone(),
                    corners: corners.clone(),
                    best,
                    cells,
                    busy_slots,
                });
            }
        }
        let blocks: Vec<(usize, usize)> = layout.diagonal_blocks(d).collect();

        // Seeded reorder fault: perform the target block's bus reads and
        // writes one diagonal EARLY — before the barrier that orders its
        // neighbours' diagonal-d writes. The phantom touches only the
        // detector's shadow state (engine output is byte-identical); the
        // detector must flag its reads as wrong-producer.
        #[cfg(feature = "race-check")]
        if let Some((pr, pc)) = crate::exec::fault::reorder_block() {
            if d + 1 == pr + pc && pr < br && pc < bc {
                let (rs, re) = layout.row_range(pr);
                let (cs, ce) = layout.col_range(pc);
                let width = (ce + 1).saturating_sub(cs);
                let height = (re + 1).saturating_sub(rs);
                race_session.block_reads(pr, pc, d + 1, (cs - 1, width), (rs - 1, height));
                race_session.block_writes(pr, pc, d + 1, (cs - 1, width), (rs - 1, height), true);
            }
        }

        // Hand out disjoint bus segments. Blocks arrive in ascending `c`
        // (descending `r`), so the horizontal bus is split left-to-right
        // and the vertical bus back-to-front.
        let mut tasks: Vec<Task<'_, '_>> = Vec::with_capacity(blocks.len());
        {
            let mut h_rest: &mut [CellHF] = &mut hbus;
            let mut h_off = 0usize;
            let mut v_rest: &mut [CellHE] = &mut vbus;

            for &(r, c) in &blocks {
                let (rs, re) = layout.row_range(r);
                let (cs, ce) = layout.col_range(c);
                // Ranges are inclusive; degenerate regions yield re < rs.
                let width = (ce + 1).saturating_sub(cs);
                let height = (re + 1).saturating_sub(rs);

                // Horizontal segment [cs-1, cs-1+width) in absolute indices;
                // block columns ascend along the diagonal, so split forward.
                let skip = (cs - 1) - h_off;
                let (_, rest) = h_rest.split_at_mut(skip);
                let (hseg, rest) = rest.split_at_mut(width);
                h_rest = rest;
                h_off = cs - 1 + width;

                // Vertical segment [rs-1, rs-1+height): block rows descend
                // contiguously along the diagonal, so split from the back.
                let (rest, _tail) = v_rest.split_at_mut(rs - 1 + height);
                let (rest, vseg) = rest.split_at_mut(rs - 1);
                v_rest = rest;

                let coords = BlockCoords {
                    r,
                    c,
                    diagonal: d,
                    rows: (rs, re),
                    cols: (cs, ce),
                    last_block_row: r + 1 == br,
                    last_block_col: c + 1 == bc,
                };
                tasks.push(Task {
                    coords,
                    a_tile: &job.a[rs - 1..re],
                    b_tile: &job.b[cs - 1..ce],
                    corner: corners[r * (bc + 1) + c],
                    hseg,
                    vseg,
                    outcome: None,
                });
            }
        }

        // Execute the diagonal.
        let run_task = |t: &mut Task<'_, '_>| {
            #[cfg(feature = "race-check")]
            race_session.block_reads(
                t.coords.r,
                t.coords.c,
                t.coords.diagonal,
                (t.coords.cols.0 - 1, t.hseg.len()),
                (t.coords.rows.0 - 1, t.vseg.len()),
            );
            let out = kernel::compute_tile(
                t.a_tile,
                t.b_tile,
                t.coords.rows.0,
                t.coords.cols.0,
                &job.scoring,
                local,
                job.watch,
                t.corner,
                t.hseg,
                t.vseg,
            );
            #[cfg(feature = "race-check")]
            race_session.block_writes(
                t.coords.r,
                t.coords.c,
                t.coords.diagonal,
                (t.coords.cols.0 - 1, t.hseg.len()),
                (t.coords.rows.0 - 1, t.vseg.len()),
                false,
            );
            t.outcome = Some(out);
        };
        let parallel = workers > 1 && tasks.len() > 1;
        if parallel {
            // One pool scope per diagonal: the scope's drain is the
            // barrier. Threads persist across diagonals; only the job
            // handoff is paid here.
            let chunk = tasks.len().div_ceil(workers.min(tasks.len()));
            let run_task = &run_task;
            pool.scope(|s| {
                for group in tasks.chunks_mut(chunk) {
                    s.spawn(move || {
                        for t in group.iter_mut() {
                            run_task(t);
                        }
                    });
                }
            })?;
        } else {
            for t in tasks.iter_mut() {
                run_task(t);
            }
        }

        diagonals_run += 1;
        busy_slots += tasks.len() as u64;

        // Commit results and notify the observer, in block order.
        for t in tasks.iter_mut() {
            // lint: allow(no-panics): the scope() above returned Ok, which
            // guarantees every task of this diagonal ran to completion.
            let out = t.outcome.expect("task executed");
            cells += out.cells;
            match out.path {
                kernel::KernelPath::Striped => striped_tiles += 1,
                kernel::KernelPath::StripedFallback => fallback_tiles += 1,
                kernel::KernelPath::Scalar => {}
            }
            if let Some(cand) = out.best {
                if best.is_none_or(|b| better_endpoint(cand, b)) {
                    best = Some(cand);
                }
            }
            let (r, c) = (t.coords.r, t.coords.c);
            corners[(r + 1) * (bc + 1) + (c + 1)] = out.corner_out;
            if observer.on_block(&t.coords, &out, t.hseg, t.vseg).is_break() {
                aborted = true;
                break;
            }
        }
        if aborted {
            break 'diagonals;
        }
    }

    Ok(RegionResult {
        best,
        cells,
        diagonals_run,
        aborted,
        busy_slots,
        hbus,
        vbus,
        layout,
        striped_tiles,
        fallback_tiles,
    })
}

/// Convenience: run without an observer.
pub fn run_plain(job: &RegionJob<'_>) -> RegionResult {
    run(job, &mut NoObserver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_core::full::sw_local_score;
    use sw_core::linear::forward_vectors;
    use sw_core::transcript::EdgeState as ES;

    const SC: Scoring = Scoring::paper();

    fn lcg(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize & 3]
            })
            .collect()
    }

    fn job<'a>(
        a: &'a [u8],
        b: &'a [u8],
        mode: Mode,
        grid: GridSpec,
        workers: usize,
    ) -> RegionJob<'a> {
        RegionJob { a, b, scoring: SC, mode, grid, workers, watch: None }
    }

    #[test]
    fn global_final_row_matches_rowdp() {
        let a = lcg(1, 113);
        let b = lcg(2, 97);
        for start in [ES::Diagonal, ES::GapS0, ES::GapS1] {
            let res = run_plain(&job(&a, &b, Mode::global(start), GridSpec::small(), 2));
            assert!(!res.aborted);
            assert_eq!(res.cells, (a.len() * b.len()) as u64);
            let (h, f) = forward_vectors(&a, &b, &SC, start);
            for j in 0..b.len() {
                assert_eq!(res.hbus[j].h, h[j + 1], "H mismatch at {j} start={start:?}");
                assert_eq!(res.hbus[j].f, f[j + 1], "F mismatch at {j} start={start:?}");
            }
        }
    }

    #[test]
    fn local_best_matches_reference() {
        let a = lcg(3, 200);
        let mut b = lcg(3, 200); // same seed: identical, then perturb
        for i in (0..200).step_by(17) {
            b[i] = b"ACGT"[(i / 17) % 4];
        }
        let res = run_plain(&job(&a, &b, Mode::Local, GridSpec::small(), 3));
        let (score, end) = sw_local_score(&a, &b, &SC);
        let (s, i, j) = res.best.expect("positive score expected");
        assert_eq!(s, score);
        assert_eq!((i, j), end);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let a = lcg(5, 301);
        let b = lcg(6, 257);
        let r1 =
            run_plain(&job(&a, &b, Mode::Local, GridSpec { blocks: 5, threads: 4, alpha: 3 }, 1));
        let r4 =
            run_plain(&job(&a, &b, Mode::Local, GridSpec { blocks: 5, threads: 4, alpha: 3 }, 4));
        assert_eq!(r1.best, r4.best);
        assert_eq!(r1.cells, r4.cells);
        for j in 0..b.len() {
            assert_eq!(r1.hbus[j], r4.hbus[j]);
        }
    }

    #[test]
    fn grid_shape_does_not_change_results() {
        let a = lcg(7, 150);
        let b = lcg(8, 190);
        let grids = [
            GridSpec { blocks: 1, threads: 1, alpha: 1 },
            GridSpec { blocks: 2, threads: 8, alpha: 1 },
            GridSpec { blocks: 7, threads: 2, alpha: 5 },
            GridSpec { blocks: 240, threads: 64, alpha: 4 }, // reduced at runtime
        ];
        let reference = run_plain(&job(&a, &b, Mode::global(ES::Diagonal), grids[0], 2));
        for g in &grids[1..] {
            let r = run_plain(&job(&a, &b, Mode::global(ES::Diagonal), *g, 2));
            assert_eq!(r.hbus, reference.hbus, "grid {g:?}");
        }
    }

    /// Observer sees every block exactly once, in diagonal order, and
    /// bottom/right segments have block-shaped lengths.
    #[test]
    fn observer_sees_all_blocks_in_order() {
        struct Collect {
            seen: Vec<BlockCoords>,
        }
        impl WavefrontObserver for Collect {
            fn on_block(
                &mut self,
                b: &BlockCoords,
                _out: &TileOutcome,
                bottom: &[CellHF],
                right: &[CellHE],
            ) -> ControlFlow<()> {
                assert_eq!(bottom.len(), b.cols.1 + 1 - b.cols.0);
                assert_eq!(right.len(), b.rows.1 + 1 - b.rows.0);
                self.seen.push(*b);
                ControlFlow::Continue(())
            }
        }
        let a = lcg(9, 64);
        let b = lcg(10, 48);
        let grid = GridSpec { blocks: 3, threads: 2, alpha: 4 };
        let mut obs = Collect { seen: Vec::new() };
        let res = run(&job(&a, &b, Mode::Local, grid, 2), &mut obs);
        assert_eq!(obs.seen.len(), res.layout.block_rows * res.layout.block_cols);
        // Diagonals are non-decreasing.
        for w in obs.seen.windows(2) {
            assert!(w[0].diagonal <= w[1].diagonal);
        }
    }

    #[test]
    fn observer_abort_stops_early() {
        struct StopAfter {
            n: usize,
        }
        impl WavefrontObserver for StopAfter {
            fn on_block(
                &mut self,
                _: &BlockCoords,
                _: &TileOutcome,
                _: &[CellHF],
                _: &[CellHE],
            ) -> ControlFlow<()> {
                self.n -= 1;
                if self.n == 0 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            }
        }
        let a = lcg(11, 128);
        let b = lcg(12, 128);
        let grid = GridSpec { blocks: 4, threads: 2, alpha: 2 };
        let mut obs = StopAfter { n: 3 };
        let res = run(&job(&a, &b, Mode::Local, grid, 2), &mut obs);
        assert!(res.aborted);
        assert!(res.cells < (a.len() * b.len()) as u64);
    }

    #[test]
    fn degenerate_empty_region() {
        let res = run_plain(&job(b"", b"ACG", Mode::global(ES::Diagonal), GridSpec::small(), 2));
        assert_eq!(res.cells, 0);
        assert!(!res.aborted);
        // hbus keeps the init row.
        assert_eq!(res.hbus[0].h, -5);
        let res2 = run_plain(&job(b"ACG", b"", Mode::Local, GridSpec::small(), 2));
        assert_eq!(res2.cells, 0);
        assert!(res2.best.is_none());
    }

    #[test]
    fn single_cell_region() {
        let res = run_plain(&job(b"A", b"A", Mode::Local, GridSpec::small(), 2));
        assert_eq!(res.best, Some((1, 1, 1)));
        assert_eq!(res.cells, 1);
    }
}

#[cfg(test)]
mod utilization_tests {
    use super::*;
    use sw_core::transcript::EdgeState as ES;

    fn lcg(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize & 3]
            })
            .collect()
    }

    /// Tall grids (many block rows, few block columns) keep nearly every
    /// slot busy — the property cells delegation provides on the GPU.
    #[test]
    fn tall_grid_has_high_utilization() {
        let a = lcg(1, 4000);
        let b = lcg(2, 200);
        let grid = GridSpec { blocks: 2, threads: 5, alpha: 2 }; // 400 block rows x 2 cols
        let job = RegionJob {
            a: &a,
            b: &b,
            scoring: Scoring::paper(),
            mode: Mode::global(ES::Diagonal),
            grid,
            workers: 1,
            watch: None,
        };
        let res = run_plain(&job);
        assert!(res.utilization() > 0.99, "utilization {}", res.utilization());
        assert_eq!(res.busy_slots, res.layout.block_rows as u64 * res.layout.block_cols as u64);
    }

    /// Square grids drain at the corners: utilization ~ R/(R+C-1).
    #[test]
    fn square_grid_utilization_matches_formula() {
        let a = lcg(3, 160);
        let b = lcg(4, 160);
        let grid = GridSpec { blocks: 8, threads: 10, alpha: 2 }; // 8x8 blocks
        let job = RegionJob {
            a: &a,
            b: &b,
            scoring: Scoring::paper(),
            mode: Mode::Local,
            grid,
            workers: 1,
            watch: None,
        };
        let res = run_plain(&job);
        let (r, c) = (res.layout.block_rows as f64, res.layout.block_cols as f64);
        let expected = (r * c) / ((r + c - 1.0) * c);
        assert!((res.utilization() - expected).abs() < 1e-9);
    }
}

#[cfg(test)]
mod resume_tests {
    use super::*;
    use sw_core::transcript::EdgeState as ES;

    fn lcg(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize & 3]
            })
            .collect()
    }

    fn job<'a>(a: &'a [u8], b: &'a [u8]) -> RegionJob<'a> {
        RegionJob {
            a,
            b,
            scoring: Scoring::paper(),
            mode: Mode::Local,
            grid: GridSpec { blocks: 3, threads: 2, alpha: 2 },
            workers: 2,
            watch: None,
        }
    }

    /// Observer that records every checkpoint snapshot.
    struct Snapshots(Vec<EngineState>);
    impl WavefrontObserver for Snapshots {
        fn on_block(
            &mut self,
            _: &BlockCoords,
            _: &TileOutcome,
            _: &[CellHF],
            _: &[CellHE],
        ) -> ControlFlow<()> {
            ControlFlow::Continue(())
        }
        fn on_checkpoint(&mut self, state: &EngineState) {
            self.0.push(state.clone());
        }
    }

    /// Interrupt + resume must reproduce the uninterrupted run exactly.
    #[test]
    fn resume_reproduces_uninterrupted_run() {
        let a = lcg(1, 300);
        let mut b = lcg(1, 300);
        for i in (0..300).step_by(23) {
            b[i] = b"ACGT"[i % 4];
        }
        let j = job(&a, &b);
        let full = run_plain(&j);

        // Capture checkpoints every 5 diagonals.
        let mut obs = Snapshots(Vec::new());
        let _ = run_resumable(&j, &mut obs, None, Some(5));
        let snapshots = obs.0;
        assert!(snapshots.len() >= 2, "expected several checkpoints");
        let mid = snapshots[snapshots.len() / 2].clone();

        // Round-trip the snapshot through bytes (what a file would hold).
        let bytes = mid.encode();
        let restored = EngineState::decode(&bytes).expect("decode");
        assert_eq!(restored, mid);

        let resumed = run_resumable(&j, &mut NoObserver, Some(restored), None);
        assert_eq!(resumed.best, full.best);
        assert_eq!(resumed.hbus, full.hbus);
        assert_eq!(resumed.vbus, full.vbus);
        assert_eq!(resumed.cells, full.cells, "cells counter continues across resume");
        assert_eq!(resumed.busy_slots, full.busy_slots);
    }

    #[test]
    fn resume_rejects_foreign_checkpoints() {
        let a = lcg(2, 100);
        let b = lcg(3, 100);
        let j = job(&a, &b);
        let mut obs = Snapshots(Vec::new());
        let _ = run_resumable(&j, &mut obs, None, Some(3));
        let mut snaps = obs.0;
        let other_a = lcg(4, 120);
        let j2 = job(&other_a, &b);
        let snap = snaps.pop().expect("have a snapshot");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_resumable(&j2, &mut NoObserver, Some(snap), None)
        }));
        assert!(result.is_err(), "foreign checkpoint must be rejected");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(EngineState::decode(b"nope").is_none());
        assert!(EngineState::decode(b"").is_none());
        // Truncated real snapshot.
        let a = lcg(5, 60);
        let j = RegionJob {
            a: &a,
            b: &a,
            scoring: Scoring::paper(),
            mode: Mode::global(ES::Diagonal),
            grid: GridSpec::small(),
            workers: 1,
            watch: None,
        };
        let mut obs = Snapshots(Vec::new());
        let _ = run_resumable(&j, &mut obs, None, Some(1));
        let snaps = obs.0;
        let bytes = snaps[0].encode();
        assert!(EngineState::decode(&bytes[..bytes.len() - 3]).is_none());
        // Corrupted length field must not cause huge allocations.
        let mut corrupt = bytes.clone();
        corrupt[68] = 0xFF;
        corrupt[69] = 0xFF;
        corrupt[70] = 0xFF;
        let _ = EngineState::decode(&corrupt); // must return, not abort
    }
}
