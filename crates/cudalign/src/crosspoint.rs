//! Crosspoints and partitions (Section IV-A of the paper).
//!
//! A *crosspoint* is a coordinate of the optimal alignment where it
//! crosses a special row or column, annotated with the DP state there
//! (the paper's `type`) and the absolute forward score at that point.
//! Successive crosspoints delimit *partitions* — independent alignment
//! subproblems whose scores telescope to the total.

use sw_core::scoring::Score;
use sw_core::transcript::EdgeState;

/// One crosspoint `(i, j, score, type)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crosspoint {
    /// Row coordinate (prefix length of `S0`).
    pub i: usize,
    /// Column coordinate (prefix length of `S1`).
    pub j: usize,
    /// Forward score of the optimal alignment at this point (`H` value, or
    /// the `E`/`F` value when the edge is inside a gap run).
    pub score: Score,
    /// DP state at this point (the paper's type 0/1/2).
    pub edge: EdgeState,
}

impl Crosspoint {
    /// The alignment's start point: score 0, type 0.
    pub fn start(i: usize, j: usize) -> Self {
        Crosspoint { i, j, score: 0, edge: EdgeState::Diagonal }
    }

    /// An end point with the optimal score, type 0.
    pub fn end(i: usize, j: usize, score: Score) -> Self {
        Crosspoint { i, j, score, edge: EdgeState::Diagonal }
    }
}

/// A partition: the subproblem between two successive crosspoints.
///
/// The partition aligns `S0[start.i .. end.i]` against
/// `S1[start.j .. end.j]` with edge-typed boundaries; its optimal score is
/// `end.score - start.score`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Start crosspoint (exclusive coordinate: the partition's subsequences
    /// begin one past it).
    pub start: Crosspoint,
    /// End crosspoint (inclusive coordinate).
    pub end: Crosspoint,
}

impl Partition {
    /// Rows spanned (`end.i - start.i`).
    pub fn height(&self) -> usize {
        self.end.i - self.start.i
    }

    /// Columns spanned (`end.j - start.j`).
    pub fn width(&self) -> usize {
        self.end.j - self.start.j
    }

    /// DP cells of the partition.
    pub fn cells(&self) -> u64 {
        self.height() as u64 * self.width() as u64
    }

    /// The partition's optimal score (`end.score - start.score`).
    pub fn score(&self) -> Score {
        self.end.score - self.start.score
    }

    /// The subsequences this partition aligns.
    pub fn slices<'a>(&self, s0: &'a [u8], s1: &'a [u8]) -> (&'a [u8], &'a [u8]) {
        (&s0[self.start.i..self.end.i], &s1[self.start.j..self.end.j])
    }

    /// True when both dimensions fit within `max` (Stage-4 stop rule).
    pub fn fits(&self, max: usize) -> bool {
        self.height() <= max && self.width() <= max
    }
}

/// An ordered chain of crosspoints from the alignment's start point to its
/// end point (the paper's `L_k` lists).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CrosspointChain {
    points: Vec<Crosspoint>,
}

impl CrosspointChain {
    /// Build from an ordered vector.
    ///
    /// # Panics
    /// Panics (in debug builds) if the chain violates the structural
    /// invariants checked by [`CrosspointChain::validate`].
    pub fn new(points: Vec<Crosspoint>) -> Self {
        let chain = CrosspointChain { points };
        debug_assert_eq!(chain.validate(), Ok(()), "invalid crosspoint chain");
        chain
    }

    /// The crosspoints, start to end.
    pub fn points(&self) -> &[Crosspoint] {
        &self.points
    }

    /// Number of crosspoints (`|L_k|`).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The partitions delimited by successive crosspoints.
    pub fn partitions(&self) -> impl Iterator<Item = Partition> + '_ {
        self.points.windows(2).map(|w| Partition { start: w[0], end: w[1] })
    }

    /// Largest partition height (`H_max` of Table VIII); 0 when fewer than
    /// two crosspoints.
    pub fn h_max(&self) -> usize {
        self.partitions().map(|p| p.height()).max().unwrap_or(0)
    }

    /// Largest partition width (`W_max`).
    pub fn w_max(&self) -> usize {
        self.partitions().map(|p| p.width()).max().unwrap_or(0)
    }

    /// Insert additional crosspoints, keeping the chain ordered. Points
    /// are merged by `(i, j)` coordinate order; the relative order of the
    /// inputs must already be consistent with the chain.
    pub fn insert_between(&mut self, index: usize, points: Vec<Crosspoint>) {
        // `index` is the partition index: new points go between
        // self.points[index] and self.points[index + 1].
        let at = index + 1;
        self.points.splice(at..at, points);
        debug_assert_eq!(self.validate(), Ok(()));
    }

    /// Structural validation:
    ///
    /// * coordinates non-decreasing in both axes, strictly increasing in
    ///   at least one per step,
    /// * partition scores telescope (`score` strictly consistent),
    /// * the first point has score 0 and type 0,
    /// * gap-typed crosspoints are interior (not the chain's ends).
    pub fn validate(&self) -> Result<(), ChainError> {
        if self.points.is_empty() {
            return Ok(());
        }
        let first = self.points[0];
        if first.score != 0 || first.edge != EdgeState::Diagonal {
            return Err(ChainError::BadStart(first));
        }
        if let Some(&last) = self.points.last() {
            if last.edge != EdgeState::Diagonal {
                return Err(ChainError::BadEnd(last));
            }
        }
        for (k, w) in self.points.windows(2).enumerate() {
            let (a, b) = (w[0], w[1]);
            if b.i < a.i || b.j < a.j {
                return Err(ChainError::Backwards { index: k, from: a, to: b });
            }
            if b.i == a.i && b.j == a.j {
                return Err(ChainError::Duplicate { index: k, point: a });
            }
        }
        Ok(())
    }
}

/// Structural defects a [`CrosspointChain`] can exhibit, as reported by
/// [`CrosspointChain::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChainError {
    /// The first crosspoint is not `(score 0, type 0)`.
    BadStart(Crosspoint),
    /// The last crosspoint carries a gap edge type.
    BadEnd(Crosspoint),
    /// Step `index -> index + 1` decreases a coordinate.
    Backwards {
        /// Index of the earlier crosspoint of the offending pair.
        index: usize,
        /// The earlier crosspoint.
        from: Crosspoint,
        /// The later crosspoint.
        to: Crosspoint,
    },
    /// Two successive crosspoints share the same `(i, j)` coordinate.
    Duplicate {
        /// Index of the first of the duplicate pair.
        index: usize,
        /// The repeated crosspoint.
        point: Crosspoint,
    },
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::BadStart(p) => {
                write!(f, "start point must be (score 0, type 0), got {p:?}")
            }
            ChainError::BadEnd(p) => write!(f, "end point must have type 0, got {p:?}"),
            ChainError::Backwards { index, from, to } => {
                write!(f, "crosspoint {index} -> {} goes backwards: {from:?} -> {to:?}", index + 1)
            }
            ChainError::Duplicate { index, point } => {
                write!(f, "duplicate crosspoint at index {index}: {point:?}")
            }
        }
    }
}

impl std::error::Error for ChainError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(i: usize, j: usize, score: Score) -> Crosspoint {
        Crosspoint { i, j, score, edge: EdgeState::Diagonal }
    }

    #[test]
    fn partition_geometry() {
        let p = Partition { start: cp(10, 20, 5), end: cp(30, 25, 17) };
        assert_eq!(p.height(), 20);
        assert_eq!(p.width(), 5);
        assert_eq!(p.cells(), 100);
        assert_eq!(p.score(), 12);
        assert!(p.fits(20));
        assert!(!p.fits(19));
    }

    #[test]
    fn partition_slices() {
        let s0 = b"AAACCCGGGTTT";
        let s1 = b"ACGTACGTACGT";
        let p = Partition { start: cp(3, 4, 0), end: cp(6, 8, 3) };
        let (a, b) = p.slices(s0, s1);
        assert_eq!(a, b"CCC");
        assert_eq!(b, b"ACGT");
    }

    #[test]
    fn chain_partitions_and_extremes() {
        let chain = CrosspointChain::new(vec![cp(0, 0, 0), cp(10, 4, 6), cp(12, 30, 9)]);
        let parts: Vec<Partition> = chain.partitions().collect();
        assert_eq!(parts.len(), 2);
        assert_eq!(chain.h_max(), 10);
        assert_eq!(chain.w_max(), 26);
        let total: Score = parts.iter().map(|p| p.score()).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn chain_validation_rejects_bad_chains() {
        let bad_start = CrosspointChain { points: vec![cp(0, 0, 1), cp(1, 1, 2)] };
        assert!(bad_start.validate().is_err());
        let backwards = CrosspointChain { points: vec![cp(0, 5, 0), cp(1, 3, 2)] };
        assert!(backwards.validate().is_err());
        let dup = CrosspointChain { points: vec![cp(0, 0, 0), cp(0, 0, 2)] };
        assert!(dup.validate().is_err());
        let gap_end = CrosspointChain {
            points: vec![cp(0, 0, 0), Crosspoint { i: 3, j: 3, score: 1, edge: EdgeState::GapS1 }],
        };
        assert!(gap_end.validate().is_err());
    }

    #[test]
    fn insert_between_keeps_order() {
        let mut chain = CrosspointChain::new(vec![cp(0, 0, 0), cp(20, 20, 10)]);
        chain.insert_between(0, vec![cp(5, 5, 3), cp(10, 12, 7)]);
        assert_eq!(chain.len(), 4);
        assert_eq!(chain.points()[1], cp(5, 5, 3));
        assert_eq!(chain.points()[2], cp(10, 12, 7));
    }

    #[test]
    fn empty_chain_is_valid() {
        let chain = CrosspointChain::default();
        assert!(chain.validate().is_ok());
        assert_eq!(chain.h_max(), 0);
        assert!(chain.is_empty());
    }
}
