// lint-fixture path=crates/cudalign/src/fixture.rs rule=thread-isolation expect=1
// The one live violation: a thread spawned outside gpu_sim::exec.
pub fn rogue() {
    std::thread::spawn(|| {}).join().ok();
}

// Must NOT fire: thread mentions in strings and comments.
pub fn clean() {
    // thread::spawn in a comment is fine
    let s = "thread::scope in a string is fine";
    let _ = s;
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        std::thread::scope(|_| {});
    }
}
