//! Quadratic-space dynamic programming with traceback.
//!
//! Two entry points:
//!
//! * [`sw_local`] — Smith-Waterman + Gotoh local alignment (Phase 1 and
//!   Phase 2 of Section II-A), used as ground truth in tests and as the
//!   quadratic-space baseline,
//! * [`nw_global_typed`] — global (Needleman-Wunsch + Gotoh) alignment of a
//!   *partition*, honouring the paper's crosspoint edge types so that a gap
//!   run crossing a partition boundary is charged exactly one opening
//!   (Section IV-A). This is the Stage-5 base-case solver.
//!
//! Both keep the three DP matrices in rolling rows and store only one
//! direction byte per cell, so an `m x n` problem needs `(m+1)(n+1)` bytes
//! plus `O(n)` words.

use crate::scoring::{Score, Scoring, NEG_INF};
use crate::transcript::{EdgeState, EditOp, Transcript};

/// Result of a local alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalAlignment {
    /// The optimal score (max over the `H` matrix).
    pub score: Score,
    /// DP node where the alignment starts: `(i, j)` prefix lengths, i.e.
    /// the alignment consumes `a[start.0..end.0]` and `b[start.1..end.1]`.
    pub start: (usize, usize),
    /// DP node where the alignment ends.
    pub end: (usize, usize),
    /// The alignment itself.
    pub transcript: Transcript,
}

/// Deterministic endpoint preference shared by every implementation in the
/// workspace (full-matrix, linear-space and the wavefront engine must all
/// report the same endpoint): higher score wins; ties prefer the earlier
/// anti-diagonal `i + j`, then the smaller row `i`.
#[inline]
pub fn better_endpoint(cand: (Score, usize, usize), best: (Score, usize, usize)) -> bool {
    let (cs, ci, cj) = cand;
    let (bs, bi, bj) = best;
    if cs != bs {
        return cs > bs;
    }
    let (cd, bd) = (ci + cj, bi + bj);
    if cd != bd {
        return cd < bd;
    }
    ci < bi
}

// Direction byte layout.
const H_SRC_MASK: u8 = 0b0011; // 0 = stop (zero cell / origin), 1 = diag, 2 = E, 3 = F
const H_DIAG: u8 = 1;
const H_FROM_E: u8 = 2;
const H_FROM_F: u8 = 3;
const E_EXTEND: u8 = 0b0100; // set when E came from E (gap extension)
const F_EXTEND: u8 = 0b1000; // set when F came from F (gap extension)

/// Smith-Waterman local alignment with full traceback.
///
/// Returns `None` when the optimal score is zero (no positive-scoring local
/// alignment exists, e.g. one of the sequences is empty).
pub fn sw_local(a: &[u8], b: &[u8], scoring: &Scoring) -> Option<LocalAlignment> {
    let (m, n) = (a.len(), b.len());
    let mut dirs = vec![0u8; (m + 1) * (n + 1)];
    let row = n + 1;

    let mut h_prev = vec![0 as Score; n + 1];
    let mut h_cur = vec![0 as Score; n + 1];
    let mut f = vec![NEG_INF; n + 1];

    let mut best = (0 as Score, 0usize, 0usize);

    for i in 1..=m {
        let ai = a[i - 1];
        let mut e = NEG_INF;
        h_cur[0] = 0;
        let dir_row = &mut dirs[i * row..(i + 1) * row];
        for j in 1..=n {
            let mut d = 0u8;

            let e_ext = e - scoring.gap_ext;
            let e_open = h_cur[j - 1] - scoring.gap_first;
            e = if e_ext >= e_open {
                d |= E_EXTEND;
                e_ext
            } else {
                e_open
            };

            let f_ext = f[j] - scoring.gap_ext;
            let f_open = h_prev[j] - scoring.gap_first;
            f[j] = if f_ext >= f_open {
                d |= F_EXTEND;
                f_ext
            } else {
                f_open
            };

            let diag = h_prev[j - 1] + scoring.subst(ai, b[j - 1]);

            // H = max(0, diag, E, F); ties prefer diag, then E, then F so
            // tracebacks favour substitutions over gaps.
            let mut h = 0;
            let mut src = 0u8;
            if diag >= h {
                h = diag;
                src = H_DIAG;
            }
            if e > h {
                h = e;
                src = H_FROM_E;
            }
            if f[j] > h {
                h = f[j];
                src = H_FROM_F;
            }
            // A diagonal source that yields a non-positive score is a stop:
            // the local alignment would never pass through it.
            if h == 0 {
                src = 0;
            }
            d |= src;
            dir_row[j] = d;
            h_cur[j] = h;

            if better_endpoint((h, i, j), best) {
                best = (h, i, j);
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
    }

    let (score, ei, ej) = best;
    if score <= 0 {
        return None;
    }
    let (transcript, start) = traceback(&dirs, row, (ei, ej), TracebackState::H, |d, i, j| {
        (d & H_SRC_MASK) == 0 || (i == 0 && j == 0)
    });
    Some(LocalAlignment { score, start, end: (ei, ej), transcript })
}

/// Score-only Smith-Waterman in linear memory: returns the best score and
/// its end position using [`better_endpoint`] for ties, plus nothing else.
/// This is the reference for Stage 1.
pub fn sw_local_score(a: &[u8], b: &[u8], scoring: &Scoring) -> (Score, (usize, usize)) {
    let (m, n) = (a.len(), b.len());
    let mut h_prev = vec![0 as Score; n + 1];
    let mut h_cur = vec![0 as Score; n + 1];
    let mut f = vec![NEG_INF; n + 1];
    let mut best = (0 as Score, 0usize, 0usize);
    for i in 1..=m {
        let ai = a[i - 1];
        let mut e = NEG_INF;
        h_cur[0] = 0;
        for j in 1..=n {
            e = (e - scoring.gap_ext).max(h_cur[j - 1] - scoring.gap_first);
            f[j] = (f[j] - scoring.gap_ext).max(h_prev[j] - scoring.gap_first);
            let diag = h_prev[j - 1] + scoring.subst(ai, b[j - 1]);
            let h = diag.max(e).max(f[j]).max(0);
            h_cur[j] = h;
            if better_endpoint((h, i, j), best) {
                best = (h, i, j);
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
    }
    (best.0, (best.1, best.2))
}

/// Global (Needleman-Wunsch + Gotoh) alignment of a partition whose edges
/// carry crosspoint types.
///
/// * `start` — DP state at the top-left corner. `GapS0`/`GapS1` mean the
///   incoming path is inside a horizontal/vertical gap run, so extending
///   that run does **not** pay a second opening.
/// * `end` — required DP state at the bottom-right corner; the score is
///   read from `H`, `E` or `F` accordingly.
///
/// Returns the partition score and transcript. The score composes with
/// neighbouring partitions by plain addition (the telescoping property the
/// crosspoint chain relies on).
pub fn nw_global_typed(
    a: &[u8],
    b: &[u8],
    scoring: &Scoring,
    start: EdgeState,
    end: EdgeState,
) -> (Score, Transcript) {
    let (m, n) = (a.len(), b.len());
    let row = n + 1;
    let mut dirs = vec![0u8; (m + 1) * row];

    let mut h_prev = vec![NEG_INF; n + 1];
    let mut h_cur = vec![NEG_INF; n + 1];
    let mut e_row = vec![NEG_INF; n + 1]; // E values of the *current* row (for end-state reads)
    let mut f = vec![NEG_INF; n + 1];

    // Origin: H = 0 always (a gap run may close exactly at the crosspoint
    // for free); E/F seeded to 0 when the edge is inside the matching run.
    h_prev[0] = 0;
    let e0 = if start == EdgeState::GapS0 { 0 } else { NEG_INF };
    let f0 = if start == EdgeState::GapS1 { 0 } else { NEG_INF };

    // Row 0: only horizontal moves.
    {
        let mut e = e0;
        for j in 1..=n {
            let mut d = 0u8;
            let e_ext = e - scoring.gap_ext;
            let e_open = h_prev[j - 1] - scoring.gap_first;
            e = if e_ext >= e_open {
                d |= E_EXTEND;
                e_ext
            } else {
                e_open
            };
            h_prev[j] = e;
            e_row[j] = e;
            d |= H_FROM_E;
            dirs[j] = d;
        }
    }
    let mut f_col0 = f0; // F value in column 0 of the previous row
    let mut last_e = e_row.clone();

    for i in 1..=m {
        let ai = a[i - 1];
        // Column 0: only vertical moves.
        let f_ext = f_col0 - scoring.gap_ext;
        let f_open = h_prev[0] - scoring.gap_first;
        let (f0_cur, mut d0) = if f_ext >= f_open { (f_ext, F_EXTEND) } else { (f_open, 0) };
        f_col0 = f0_cur;
        h_cur[0] = f0_cur;
        d0 |= H_FROM_F;
        dirs[i * row] = d0;

        let mut e = NEG_INF;
        let dir_row = &mut dirs[i * row..(i + 1) * row];
        for j in 1..=n {
            let mut d = 0u8;
            let e_ext = e - scoring.gap_ext;
            let e_open = h_cur[j - 1] - scoring.gap_first;
            e = if e_ext >= e_open {
                d |= E_EXTEND;
                e_ext
            } else {
                e_open
            };
            let f_ext = f[j] - scoring.gap_ext;
            let f_open = h_prev[j] - scoring.gap_first;
            f[j] = if f_ext >= f_open {
                d |= F_EXTEND;
                f_ext
            } else {
                f_open
            };
            let diag = h_prev[j - 1] + scoring.subst(ai, b[j - 1]);

            let mut h = diag;
            let mut src = H_DIAG;
            if e > h {
                h = e;
                src = H_FROM_E;
            }
            if f[j] > h {
                h = f[j];
                src = H_FROM_F;
            }
            d |= src;
            dir_row[j] = d;
            h_cur[j] = h;
            if i == m {
                last_e[j] = e;
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
    }
    if m == 0 {
        last_e = e_row;
    }

    let score = match end {
        EdgeState::Diagonal => h_prev[n],
        EdgeState::GapS0 => {
            if m == 0 && n == 0 {
                e0
            } else {
                last_e[n]
            }
        }
        EdgeState::GapS1 => {
            if n == 0 {
                f_col0
            } else {
                f[n]
            }
        }
    };

    // An unreachable end state (e.g. requiring a trailing horizontal gap
    // when `n == 0`) has no path to trace.
    if score <= NEG_INF / 2 {
        return (NEG_INF, Transcript::new());
    }

    let init_state = match end {
        EdgeState::Diagonal => TracebackState::H,
        EdgeState::GapS0 => TracebackState::E,
        EdgeState::GapS1 => TracebackState::F,
    };
    let (transcript, origin) =
        traceback(&dirs, row, (m, n), init_state, |_d, i, j| i == 0 && j == 0);
    debug_assert_eq!(origin, (0, 0), "global traceback must reach the origin");
    (score, transcript)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TracebackState {
    H,
    E,
    F,
}

/// Shared traceback walker. `stop(dir, i, j)` decides when an `H` state
/// terminates the walk (zero cell for local, origin for global).
fn traceback(
    dirs: &[u8],
    row: usize,
    end: (usize, usize),
    init: TracebackState,
    stop: impl Fn(u8, usize, usize) -> bool,
) -> (Transcript, (usize, usize)) {
    let (mut i, mut j) = end;
    let mut state = init;
    let mut ops = Vec::new();
    loop {
        let d = dirs[i * row + j];
        match state {
            TracebackState::H => {
                if stop(d, i, j) {
                    break;
                }
                match d & H_SRC_MASK {
                    H_DIAG => {
                        // Caller distinguishes match/mismatch via validate();
                        // we record Mismatch only when chars differ, which the
                        // walker cannot see — so the op kind is patched below.
                        ops.push(EditOp::Match);
                        i -= 1;
                        j -= 1;
                    }
                    H_FROM_E => state = TracebackState::E,
                    H_FROM_F => state = TracebackState::F,
                    _ => break, // stop marker inside the matrix (local zero cell)
                }
            }
            TracebackState::E => {
                if i == 0 && j == 0 {
                    // Seeded origin: the gap run continues into the
                    // upstream partition; nothing more to emit.
                    break;
                }
                ops.push(EditOp::GapS0);
                let extend = d & E_EXTEND != 0;
                j -= 1;
                state = if extend { TracebackState::E } else { TracebackState::H };
            }
            TracebackState::F => {
                if i == 0 && j == 0 {
                    break;
                }
                ops.push(EditOp::GapS1);
                let extend = d & F_EXTEND != 0;
                i -= 1;
                state = if extend { TracebackState::F } else { TracebackState::H };
            }
        }
    }
    ops.reverse();
    (Transcript::from_ops(ops), (i, j))
}

/// Patch diagonal ops into `Match`/`Mismatch` according to the actual
/// characters. The traceback walker cannot see the sequences, so callers
/// run this once after it.
fn classify_diagonals(t: &mut Transcript, a: &[u8], b: &[u8]) {
    let mut ops = t.ops().to_vec();
    let (mut i, mut j) = (0usize, 0usize);
    for op in &mut ops {
        match op {
            EditOp::Match | EditOp::Mismatch => {
                *op = if a[i] == b[j] { EditOp::Match } else { EditOp::Mismatch };
                i += 1;
                j += 1;
            }
            EditOp::GapS0 => j += 1,
            EditOp::GapS1 => i += 1,
        }
    }
    *t = Transcript::from_ops(ops);
}

/// Convenience wrapper: [`sw_local`] with properly classified diagonal ops.
pub fn sw_local_aligned(a: &[u8], b: &[u8], scoring: &Scoring) -> Option<LocalAlignment> {
    let mut r = sw_local(a, b, scoring)?;
    let sub_a = &a[r.start.0..r.end.0];
    let sub_b = &b[r.start.1..r.end.1];
    classify_diagonals(&mut r.transcript, sub_a, sub_b);
    Some(r)
}

/// Convenience wrapper: [`nw_global_typed`] with classified diagonal ops.
pub fn nw_global_aligned(
    a: &[u8],
    b: &[u8],
    scoring: &Scoring,
    start: EdgeState,
    end: EdgeState,
) -> (Score, Transcript) {
    let (score, mut t) = nw_global_typed(a, b, scoring, start, end);
    classify_diagonals(&mut t, a, b);
    (score, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transcript::EdgeState as ES;

    const SC: Scoring = Scoring::paper();

    #[test]
    fn identical_sequences_align_fully() {
        let a = b"ACGTACGT";
        let r = sw_local_aligned(a, a, &SC).unwrap();
        assert_eq!(r.score, 8);
        assert_eq!(r.start, (0, 0));
        assert_eq!(r.end, (8, 8));
        assert_eq!(r.transcript.cigar(), "8=");
        r.transcript.validate(a, a).unwrap();
    }

    #[test]
    fn local_ignores_poor_flanks() {
        //            ....MMMMMM....
        let a = b"TTTTACGTGACCTTTT";
        let b = b"GGGGACGTGACCGGGG";
        let r = sw_local_aligned(a, b, &SC).unwrap();
        assert_eq!(r.score, 8);
        assert_eq!(r.start, (4, 4));
        assert_eq!(r.end, (12, 12));
    }

    #[test]
    fn local_none_for_disjoint_alphabet_or_empty() {
        assert!(sw_local(b"AAAA", b"", &SC).is_none());
        assert!(sw_local(b"", b"CCCC", &SC).is_none());
        // single mismatch only -> no positive score
        assert!(sw_local(b"A", b"C", &SC).is_none());
    }

    #[test]
    fn local_gap_in_middle() {
        // b = a with 2 bases deleted -> expect a type-2 (GapS1) run.
        let a = b"ACGTACGTACGTACGT";
        let b = b"ACGTACGTCGTACGT"; // removed one 'A' at pos 8
        let r = sw_local_aligned(a, b, &SC).unwrap();
        r.transcript.validate(&a[r.start.0..r.end.0], &b[r.start.1..r.end.1]).unwrap();
        let check = r.transcript.score(&a[r.start.0..r.end.0], &b[r.start.1..r.end.1], &SC);
        assert_eq!(check, r.score);
        assert_eq!(r.score, 15 - 5); // 15 matches, one 1-gap run
    }

    #[test]
    fn score_only_agrees_with_full() {
        let a = b"GATTACAGATTACAGGG";
        let b = b"GATCACAGTTTACAGGA";
        let full = sw_local(a, b, &SC).unwrap();
        let (s, end) = sw_local_score(a, b, &SC);
        assert_eq!(s, full.score);
        assert_eq!(end, full.end);
    }

    #[test]
    fn global_identical() {
        let a = b"ACGT";
        let (s, t) = nw_global_aligned(a, a, &SC, ES::Diagonal, ES::Diagonal);
        assert_eq!(s, 4);
        assert_eq!(t.cigar(), "4=");
    }

    #[test]
    fn global_empty_vs_nonempty_is_one_gap_run() {
        let (s, t) = nw_global_aligned(b"", b"ACG", &SC, ES::Diagonal, ES::Diagonal);
        assert_eq!(s, -(5 + 2 + 2));
        assert_eq!(t.cigar(), "3I");
        let (s2, t2) = nw_global_aligned(b"ACG", b"", &SC, ES::Diagonal, ES::Diagonal);
        assert_eq!(s2, -(5 + 2 + 2));
        assert_eq!(t2.cigar(), "3D");
    }

    #[test]
    fn global_both_empty() {
        let (s, t) = nw_global_aligned(b"", b"", &SC, ES::Diagonal, ES::Diagonal);
        assert_eq!(s, 0);
        assert!(t.is_empty());
    }

    #[test]
    fn global_start_in_gap_skips_opening() {
        // Partition starts inside a vertical gap run: aligning "GG" vs ""
        // should cost two extensions, not open+ext.
        let (s, t) = nw_global_typed(b"GG", b"", &SC, ES::GapS1, ES::Diagonal);
        assert_eq!(s, -4);
        assert_eq!(t.cigar(), "2D");
        // Standalone it would cost -7.
        let (s2, _) = nw_global_typed(b"GG", b"", &SC, ES::Diagonal, ES::Diagonal);
        assert_eq!(s2, -7);
    }

    #[test]
    fn global_end_in_gap_reads_f_state() {
        // Path must END inside a vertical gap: align "AG" vs "A" ending in F.
        // Expected: match A, then gap-open for G: -5 + 1 = -4.
        let (s, t) = nw_global_typed(b"AG", b"A", &SC, ES::Diagonal, ES::GapS1);
        assert_eq!(s, 1 - 5);
        assert_eq!(t.cigar(), "1=1D");
    }

    #[test]
    fn global_gap_run_spanning_both_edges() {
        // Entire partition inside one vertical run: start F, end F.
        let (s, t) = nw_global_typed(b"GGG", b"", &SC, ES::GapS1, ES::GapS1);
        assert_eq!(s, -6); // three extensions
        assert_eq!(t.cigar(), "3D");
    }

    #[test]
    fn global_score_matches_transcript_score() {
        let a = b"ACCGTTAGCAGT";
        let b = b"ACGTTAGGCAGT";
        let (s, t) = nw_global_aligned(a, b, &SC, ES::Diagonal, ES::Diagonal);
        t.validate(a, b).unwrap();
        assert_eq!(t.score(a, b, &SC), s);
    }

    #[test]
    fn endpoint_tiebreak_prefers_earlier_diagonal() {
        assert!(better_endpoint((5, 1, 1), (5, 1, 2)));
        assert!(!better_endpoint((5, 1, 2), (5, 1, 1)));
        assert!(better_endpoint((6, 9, 9), (5, 1, 1)));
        assert!(better_endpoint((5, 1, 3), (5, 2, 2)));
    }

    #[test]
    fn typed_edges_telescope() {
        // Split a known alignment with a long gap across two partitions and
        // check the typed scores add up to the untyped whole.
        let a = b"ACGTAAAACGT"; // 4 A's inserted in the middle
        let b = b"ACGTCGT";
        let (whole, t) = nw_global_aligned(a, b, &SC, ES::Diagonal, ES::Diagonal);
        t.validate(a, b).unwrap();
        // The optimal alignment is 4=4D3=: gap run on rows 4..8.
        assert_eq!(t.cigar(), "4=4D3=");
        // Split inside the run at row 6 (2 gaps in the first part).
        let (s1, t1) = nw_global_typed(&a[..6], &b[..4], &SC, ES::Diagonal, ES::GapS1);
        let (s2, t2) = nw_global_typed(&a[6..], &b[4..], &SC, ES::GapS1, ES::Diagonal);
        assert_eq!(s1 + s2, whole);
        assert_eq!(t1.cigar(), "4=2D");
        assert_eq!(t2.cigar(), "2D3=");
    }
}
