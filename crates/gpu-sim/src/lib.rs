#![warn(missing_docs)]

//! # gpu-sim
//!
//! A CUDA-like block/thread wavefront execution engine in safe Rust — the
//! substrate that stands in for the paper's NVIDIA GTX 285.
//!
//! CUDAlign divides the DP matrix into a grid of blocks (`B` block-columns,
//! each block `alpha * T` rows tall, where `T` is the CUDA block's thread
//! count and each thread owns `alpha` rows). Blocks on the same *external
//! diagonal* are independent and run concurrently; values cross block
//! boundaries through a *horizontal bus* (last row of each block: `H`/`F`
//! pairs) and a *vertical bus* (last column: `H`/`E` pairs). This crate
//! reproduces that execution model with OS threads:
//!
//! * [`grid`] — grid geometry and the paper's *minimum size requirement*
//!   (`n >= 2 B T`), including the runtime reduction of `B`,
//! * [`kernel`] — the per-block tile kernel (Gotoh recurrences over a
//!   `block_height x block_width` tile fed by bus segments), dispatching
//!   between a scalar `i32` loop and the vector path below,
//! * [`striped`] — the lane-striped saturating-`i16` kernel (the CPU
//!   analogue of the paper's internal-diagonal parallelism) with the
//!   query-profile cache and the overflow/fallback protocol,
//! * [`striped8`] — the 32-lane saturating-`i8` first rung of the
//!   per-tile precision ladder (i8 → i16 → scalar `i32`), sharing the
//!   striped layout and overflow protocol with [`striped`],
//! * [`ctrl`] — run-supervision primitives: the clonable [`CancelToken`]
//!   (cancel flag + cause + heartbeat) polled cooperatively by every
//!   scheduler, with the deadline/stall watchdog living in [`exec`],
//! * [`exec`] — the persistent worker-pool executor (the CPU analogue of
//!   a persistent-kernel GPU design): long-lived threads, a queue/condvar
//!   handoff per external diagonal, panic capture instead of process
//!   aborts, and busy-lane utilization counters,
//! * [`wavefront`] — the external-diagonal scheduler (one [`exec`] scope
//!   per diagonal as the barrier) with observer hooks used by the
//!   pipeline to flush special rows and run matching procedures,
//! * [`device`] — the calibrated GTX 285 time model used to project
//!   paper-scale runtimes from cell counts,
//! * [`multi`] — column-split execution across several simulated cards
//!   with counted border exchange (the paper's dual-GPU future work).
//!
//! What is *not* simulated: warp-level mechanics (the short/long phase
//! kernel split and the `alpha`-row memory access design) — these affect
//! GPU throughput, not results; their cost shows up in the [`device`]
//! model instead. Internal-diagonal parallelism *is* exploited, but as
//! real CPU SIMD via [`striped`] rather than as simulation. The data-flow the algorithm depends on —
//! bus hand-offs, block boundaries, diagonal-synchronous progress and the
//! minimum size requirement — is executed faithfully.

pub mod ctrl;
pub mod device;
pub mod exec;
pub mod grid;
pub mod kernel;
pub mod multi;
#[cfg(feature = "race-check")]
pub mod race;
pub mod striped;
pub mod striped8;
pub mod wavefront;

pub use ctrl::{CancelCause, CancelToken, StripDiag};
pub use device::DeviceModel;
pub use exec::{ExecError, PoolStats, Watchdog, WorkerPool};
pub use grid::GridSpec;
pub use kernel::{CellHE, CellHF, GlobalOrigin, KernelPath, Mode, TileOutcome};
pub use wavefront::{
    BlockCoords, NoObserver, RegionJob, RegionResult, ScheduleInfo, StripEvent, StripPlan,
    StripStats, WavefrontObserver,
};
