//! FastLSA (Driga et al., ICPP 2003) — the paper's Section III-A
//! comparator: a divide-and-conquer linear-space aligner that, unlike
//! Myers-Miller, *caches k grid rows in memory* during the forward pass
//! and then solves the slabs between them right-to-left, trading memory
//! (`k` rows) for recomputation (each cell is computed ~`1 + 1/k` times
//! instead of Myers-Miller's ~2).
//!
//! This implementation adapts `k` so every slab fits the configured cell
//! buffer (the original's "if the problem fits in memory, solve it
//! directly" base case), and supports the local-alignment wrapper the
//! evaluation needs.

use sw_core::full::{better_endpoint, sw_local_score};
use sw_core::linear::RowDp;
use sw_core::scoring::{Score, Scoring, NEG_INF};
use sw_core::transcript::{EdgeState, EditOp, Transcript};

/// Statistics of one FastLSA run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastLsaStats {
    /// Cells computed by the forward (row-caching) pass.
    pub forward_cells: u64,
    /// Cells computed while solving slabs.
    pub slab_cells: u64,
    /// Cached grid rows.
    pub cached_rows: usize,
    /// Peak bytes used for cached rows.
    pub cache_bytes: u64,
}

impl FastLsaStats {
    /// Total cell updates.
    pub fn total_cells(&self) -> u64 {
        self.forward_cells + self.slab_cells
    }
}

/// Result of the local wrapper.
#[derive(Debug, Clone)]
pub struct FastLsaResult {
    /// Optimal local score.
    pub score: Score,
    /// Start node.
    pub start: (usize, usize),
    /// End node.
    pub end: (usize, usize),
    /// The alignment.
    pub transcript: Transcript,
    /// Work/memory statistics.
    pub stats: FastLsaStats,
}

// Direction bits for the slab traceback (same layout as sw-core's full DP).
const H_SRC_MASK: u8 = 0b0011;
const H_DIAG: u8 = 1;
const H_FROM_E: u8 = 2;
const H_FROM_F: u8 = 3;
const E_EXTEND: u8 = 0b0100;
const F_EXTEND: u8 = 0b1000;

/// Solve one slab: full DP over `a_slab x b[..width]` whose row 0 is the
/// cached grid row `top` (`(H, F)` pairs, `width + 1` cells including
/// column 0). Traceback starts at the bottom-right corner in `end_state`
/// and stops when it crosses into row 0, returning the operations (in
/// order), the entry column and the entry state.
fn solve_slab(
    a_slab: &[u8],
    b: &[u8],
    scoring: &Scoring,
    top: &[(Score, Score)],
    end_state: EdgeState,
) -> (Vec<EditOp>, usize, EdgeState) {
    let m = a_slab.len();
    let n = b.len();
    debug_assert_eq!(top.len(), n + 1);
    let row = n + 1;
    let mut dirs = vec![0u8; (m + 1) * row];

    let mut h_prev: Vec<Score> = top.iter().map(|c| c.0).collect();
    let mut h_cur = vec![NEG_INF; n + 1];
    let mut f: Vec<Score> = top.iter().map(|c| c.1).collect();
    let mut e_last_row = vec![NEG_INF; n + 1];

    for i in 1..=m {
        let ai = a_slab[i - 1];
        // Column 0 continues the global matrix's left border: a pure
        // vertical run. Its values are implied by the top row's column 0.
        let f_ext = f[0] - scoring.gap_ext;
        let f_open = h_prev[0] - scoring.gap_first;
        let (f0, mut d0) = if f_ext >= f_open { (f_ext, F_EXTEND) } else { (f_open, 0) };
        f[0] = f0;
        h_cur[0] = f0;
        d0 |= H_FROM_F;
        dirs[i * row] = d0;

        let mut e = NEG_INF;
        for j in 1..=n {
            let mut d = 0u8;
            let e_ext = e - scoring.gap_ext;
            let e_open = h_cur[j - 1] - scoring.gap_first;
            e = if e_ext >= e_open {
                d |= E_EXTEND;
                e_ext
            } else {
                e_open
            };
            let f_ext = f[j] - scoring.gap_ext;
            let f_open = h_prev[j] - scoring.gap_first;
            f[j] = if f_ext >= f_open {
                d |= F_EXTEND;
                f_ext
            } else {
                f_open
            };
            let diag = h_prev[j - 1] + scoring.subst(ai, b[j - 1]);
            let mut h = diag;
            let mut src = H_DIAG;
            if e > h {
                h = e;
                src = H_FROM_E;
            }
            if f[j] > h {
                h = f[j];
                src = H_FROM_F;
            }
            d |= src;
            dirs[i * row + j] = d;
            h_cur[j] = h;
            if i == m {
                e_last_row[j] = e;
            }
        }
        std::mem::swap(&mut h_prev, &mut h_cur);
    }
    let _ = e_last_row;

    // Traceback from (m, n) in `end_state` until the walk crosses row 0.
    let (mut i, mut j) = (m, n);
    let mut state = match end_state {
        EdgeState::Diagonal => 0u8, // H
        EdgeState::GapS0 => 1,      // E
        EdgeState::GapS1 => 2,      // F
    };
    let mut ops: Vec<EditOp> = Vec::new();
    let entry_state;
    loop {
        if i == 0 {
            // Entered row 0 in H (diagonal arrivals are emitted before the
            // move, so reaching i == 0 in H/E means the path continues
            // from the cached row in H state at this column).
            entry_state = if state == 2 { EdgeState::GapS1 } else { EdgeState::Diagonal };
            break;
        }
        let d = dirs[i * row + j];
        match state {
            0 => match d & H_SRC_MASK {
                H_DIAG => {
                    ops.push(EditOp::Match); // classified later
                    i -= 1;
                    j -= 1;
                }
                H_FROM_E => state = 1,
                H_FROM_F => state = 2,
                _ => unreachable!("slab interior always has a source"),
            },
            1 => {
                ops.push(EditOp::GapS0);
                let extend = d & E_EXTEND != 0;
                j -= 1;
                state = if extend { 1 } else { 0 };
            }
            _ => {
                ops.push(EditOp::GapS1);
                let extend = d & F_EXTEND != 0;
                i -= 1;
                if i == 0 && extend {
                    // The vertical run continues above the cached row.
                    entry_state = EdgeState::GapS1;
                    break;
                }
                state = if extend { 2 } else { 0 };
            }
        }
    }
    ops.reverse();
    (ops, j, entry_state)
}

/// The number of grid rows FastLSA caches per recursion level (the
/// original's `k`; Driga et al. found small constants best).
pub const FASTLSA_K: usize = 8;

struct Runner<'a> {
    scoring: &'a Scoring,
    buffer_cells: u64,
    stats: &'a mut FastLsaStats,
    /// Bytes of cached rows currently live across the recursion stack.
    live_cache_bytes: u64,
}

impl Runner<'_> {
    /// Solve rows `a_sub` (absolute top row `row0`) against `b[..width]`,
    /// whose row 0 values are `top`, tracing back from the bottom-right
    /// in `end_state`. Returns `(ops, entry_j, entry_state)`.
    #[allow(clippy::too_many_arguments)] // recursion carries slab geometry explicitly
    fn solve(
        &mut self,
        a_all: &[u8],
        b_all: &[u8],
        row0: usize,
        a_sub: &[u8],
        width: usize,
        top: &[(Score, Score)],
        end_state: EdgeState,
    ) -> (Vec<EditOp>, usize, EdgeState) {
        let m = a_sub.len();
        let b_sub = &b_all[..width];
        if ((m as u64) + 1) * ((width as u64) + 1) <= self.buffer_cells || m <= 1 {
            self.stats.slab_cells += (m * width) as u64;
            let (mut ops, entry_j, entry_state) =
                solve_slab(a_sub, b_sub, self.scoring, &top[..width + 1], end_state);
            classify(&mut ops, a_all, b_all, row0, entry_j);
            return (ops, entry_j, entry_state);
        }

        // Cache k interior rows during one forward pass from `top`.
        let k = FASTLSA_K.min(m - 1);
        let boundaries: Vec<usize> = (1..=k).map(|i| i * m / (k + 1)).collect();
        let cache_bytes = 8 * (k as u64) * (width as u64 + 1);
        self.live_cache_bytes += cache_bytes;
        self.stats.cache_bytes = self.stats.cache_bytes.max(self.live_cache_bytes);
        self.stats.cached_rows += k;

        let mut cached: Vec<Vec<(Score, Score)>> = Vec::with_capacity(k);
        {
            // Forward pass continuing from the arbitrary top border.
            let mut h: Vec<Score> = top[..width + 1].iter().map(|c| c.0).collect();
            let mut f: Vec<Score> = top[..width + 1].iter().map(|c| c.1).collect();
            let sc = self.scoring;
            let mut next = 0usize;
            for (idx, &ai) in a_sub.iter().enumerate() {
                let f0 = (f[0] - sc.gap_ext).max(h[0] - sc.gap_first);
                f[0] = f0;
                let mut diag = h[0];
                h[0] = f0;
                let mut e = NEG_INF;
                for j in 1..=width {
                    e = (e - sc.gap_ext).max(h[j - 1] - sc.gap_first);
                    f[j] = (f[j] - sc.gap_ext).max(h[j] - sc.gap_first);
                    let v = (diag + sc.subst(ai, b_all[j - 1])).max(e).max(f[j]);
                    diag = h[j];
                    h[j] = v;
                }
                if next < boundaries.len() && idx + 1 == boundaries[next] {
                    cached.push(h.iter().zip(&f).map(|(&h, &f)| (h, f)).collect());
                    next += 1;
                }
            }
            self.stats.forward_cells += (m * width) as u64;
        }

        // Solve slabs bottom-up, recursing when a slab is still too big.
        let mut cur_row = m;
        let mut cur_col = width;
        let mut cur_state = end_state;
        let mut pieces: Vec<Vec<EditOp>> = Vec::new();
        for (bi, &top_row) in boundaries.iter().enumerate().rev() {
            let (ops, entry_j, entry_state) = self.solve(
                a_all,
                b_all,
                row0 + top_row,
                &a_sub[top_row..cur_row],
                cur_col,
                &cached[bi],
                cur_state,
            );
            pieces.push(ops);
            cur_row = top_row;
            cur_col = entry_j;
            cur_state = entry_state;
        }
        // Top slab continues from this level's own `top` border.
        let (ops, entry_j, entry_state) =
            self.solve(a_all, b_all, row0, &a_sub[..cur_row], cur_col, top, cur_state);
        pieces.push(ops);

        self.live_cache_bytes -= cache_bytes;

        let mut all = Vec::new();
        for ops in pieces.into_iter().rev() {
            all.extend(ops);
        }
        (all, entry_j, entry_state)
    }
}

/// Global alignment from the origin to `(a.len(), b.len())` ending in
/// `end_state`, using at most `buffer_cells` cells of quadratic storage
/// at a time plus `FASTLSA_K` cached rows per recursion level.
pub fn fastlsa_global(
    a: &[u8],
    b: &[u8],
    scoring: &Scoring,
    buffer_cells: u64,
    end_state: EdgeState,
    stats: &mut FastLsaStats,
) -> Transcript {
    let n = b.len();
    let buffer_cells = buffer_cells.max(4 * (n as u64 + 1)).max(64);
    let top: Vec<(Score, Score)> = {
        let dp = RowDp::new(n, *scoring, EdgeState::Diagonal);
        dp.h().iter().zip(dp.f()).map(|(&h, &f)| (h, f)).collect()
    };
    let mut runner = Runner { scoring, buffer_cells, stats, live_cache_bytes: 0 };
    let (ops, entry_j, entry_state) = runner.solve(a, b, 0, a, n, &top, end_state);
    let mut ops = prepend_origin_run(ops, entry_j, entry_state);
    // Leading run ops precede already-classified ops; classify is
    // idempotent for gap ops, so re-classifying from the origin is safe.
    classify(&mut ops, a, b, 0, 0);
    Transcript::from_ops(ops)
}

/// When a traceback bottoms out on the *global* init row at column
/// `entry_j > 0`, the path's prefix is the horizontal run the init row
/// encodes implicitly; emit it.
fn prepend_origin_run(ops: Vec<EditOp>, entry_j: usize, entry_state: EdgeState) -> Vec<EditOp> {
    debug_assert_eq!(
        entry_state,
        EdgeState::Diagonal,
        "the global init row has no F state to continue"
    );
    if entry_j == 0 {
        return ops;
    }
    let mut out = Vec::with_capacity(entry_j + ops.len());
    out.extend(std::iter::repeat_n(EditOp::GapS0, entry_j));
    out.extend(ops);
    out
}

/// Patch diagonal ops into Match/Mismatch given the slab's absolute
/// starting coordinates.
fn classify(ops: &mut [EditOp], a: &[u8], b: &[u8], mut i: usize, mut j: usize) {
    for op in ops.iter_mut() {
        match op {
            EditOp::Match | EditOp::Mismatch => {
                *op = if a[i] == b[j] { EditOp::Match } else { EditOp::Mismatch };
                i += 1;
                j += 1;
            }
            EditOp::GapS0 => j += 1,
            EditOp::GapS1 => i += 1,
        }
    }
}

/// Local alignment via FastLSA: endpoint scan, start scan, then the
/// row-caching global solver on the delimited span.
pub fn fastlsa_local(a: &[u8], b: &[u8], scoring: &Scoring, buffer_cells: u64) -> FastLsaResult {
    let (score, end) = sw_local_score(a, b, scoring);
    let mut stats =
        FastLsaStats { forward_cells: (a.len() * b.len()) as u64, ..Default::default() };
    if score <= 0 {
        return FastLsaResult {
            score: 0,
            start: (0, 0),
            end: (0, 0),
            transcript: Transcript::new(),
            stats,
        };
    }
    let a_rev: Vec<u8> = a[..end.0].iter().rev().copied().collect();
    let b_rev: Vec<u8> = b[..end.1].iter().rev().copied().collect();
    let (rev_score, rev_end) = sw_local_score(&a_rev, &b_rev, scoring);
    debug_assert_eq!(rev_score, score);
    stats.forward_cells += (end.0 * end.1) as u64;
    let start = (end.0 - rev_end.0, end.1 - rev_end.1);
    let _ = better_endpoint; // shared tie-break rule with the scans

    let transcript = fastlsa_global(
        &a[start.0..end.0],
        &b[start.1..end.1],
        scoring,
        buffer_cells,
        EdgeState::Diagonal,
        &mut stats,
    );
    FastLsaResult { score, start, end, transcript, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_core::full::{nw_global_aligned, sw_local_aligned};

    const SC: Scoring = Scoring::paper();

    fn lcg(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize & 3]
            })
            .collect()
    }

    fn related(seed: u64, len: usize) -> (Vec<u8>, Vec<u8>) {
        let a = lcg(seed, len);
        let mut b = a.clone();
        for i in (4..b.len()).step_by(21) {
            b[i] = b"ACGT"[(i / 21) % 4];
        }
        b.drain(len / 2..len / 2 + 13);
        (a, b)
    }

    fn check_global(a: &[u8], b: &[u8], buffer: u64) {
        let (expected, _) = nw_global_aligned(a, b, &SC, EdgeState::Diagonal, EdgeState::Diagonal);
        let mut stats = FastLsaStats::default();
        let t = fastlsa_global(a, b, &SC, buffer, EdgeState::Diagonal, &mut stats);
        t.validate(a, b).unwrap();
        assert_eq!(t.score(a, b, &SC), expected, "buffer {buffer}");
    }

    #[test]
    fn global_matches_nw_small_buffer() {
        let (a, b) = related(1, 400);
        for buffer in [500u64, 2_000, 10_000, 1 << 30] {
            check_global(&a, &b, buffer);
        }
    }

    #[test]
    fn global_handles_gap_spanning_slabs() {
        // A long deletion crosses several cached rows: entry states must
        // carry GapS1 across slab boundaries.
        let a = lcg(2, 500);
        let mut b = a.clone();
        b.drain(150..360);
        check_global(&a, &b, 2_000);
    }

    #[test]
    fn local_matches_reference() {
        let (a, b) = related(3, 350);
        let r = fastlsa_local(&a, &b, &SC, 4_000);
        let reference = sw_local_aligned(&a, &b, &SC).unwrap();
        assert_eq!(r.score, reference.score);
        assert_eq!(r.end, reference.end);
        let sub_a = &a[r.start.0..r.end.0];
        let sub_b = &b[r.start.1..r.end.1];
        r.transcript.validate(sub_a, sub_b).unwrap();
        assert_eq!(r.transcript.score(sub_a, sub_b, &SC), r.score);
    }

    #[test]
    fn recomputation_is_below_myers_miller() {
        // FastLSA's slab pass touches ~1 forward + ~1/(k+1)-ish extra,
        // well below Myers-Miller's ~2x total.
        let (a, b) = related(4, 600);
        let mut stats = FastLsaStats::default();
        let _ = fastlsa_global(&a, &b, &SC, 20_000, EdgeState::Diagonal, &mut stats);
        let mn = (a.len() * b.len()) as u64;
        assert!(stats.forward_cells >= mn);
        assert!(
            stats.slab_cells < mn,
            "slab recomputation {} should be below one full pass {mn}",
            stats.slab_cells
        );
        assert!(stats.cached_rows > 0);
        assert!(stats.cache_bytes > 0);
    }

    #[test]
    fn degenerate_inputs() {
        let mut stats = FastLsaStats::default();
        let t = fastlsa_global(b"", b"ACG", &SC, 64, EdgeState::Diagonal, &mut stats);
        assert_eq!(t.cigar(), "3I");
        let t2 = fastlsa_global(b"ACG", b"", &SC, 64, EdgeState::Diagonal, &mut stats);
        assert_eq!(t2.cigar(), "3D");
        let r = fastlsa_local(b"", b"", &SC, 64);
        assert_eq!(r.score, 0);
    }
}
