//! Shared experiment plumbing: workload materialization, pipeline
//! invocation and paper-scale projection.

use cudalign::{Pipeline, PipelineConfig, PipelineResult};
use gpu_sim::DeviceModel;
use seqio::datasets::PairSpec;
use sw_core::Sequence;

/// A materialized workload.
pub struct Workload {
    /// The Table II row this reproduces.
    pub spec: PairSpec,
    /// Scaled `S0`.
    pub s0: Sequence,
    /// Scaled `S1`.
    pub s1: Sequence,
    /// Linear scale divisor used.
    pub scale: usize,
}

impl Workload {
    /// Materialize a pair at the given scale/seed.
    pub fn new(spec: &PairSpec, scale: usize, seed: u64) -> Self {
        let (s0, s1) = spec.materialize(scale, seed);
        Workload { spec: spec.clone(), s0, s1, scale }
    }

    /// DP matrix size at this scale.
    pub fn cells(&self) -> u64 {
        self.s0.len() as u64 * self.s1.len() as u64
    }

    /// DP matrix size at paper scale.
    pub fn paper_cells(&self) -> u64 {
        self.spec.real_sizes.0 as u64 * self.spec.real_sizes.1 as u64
    }
}

/// The paper's per-pair SRA sizes (Table IV), in bytes at paper scale.
pub fn paper_sra_bytes(key: &str) -> u64 {
    match key {
        "162Kx172K" => 5 << 20,
        "543Kx536K" => 50 << 20,
        "1044Kx1073K" => 250 << 20,
        "3147Kx3283K" => 1 << 30,
        "5227Kx5229K" | "7146Kx5227K" => 3 << 30,
        "23012Kx24544K" => 10 << 30,
        "32799Kx46944K" => 50 << 30,
        _ => 1 << 30,
    }
}

/// Scale a paper-scale SRA budget down to the scaled run.
///
/// What the SRA tradeoff depends on is the *number of special rows* it
/// holds (`|SRA| / 8n` — the paper's Table VIII `|L2|` column). A special
/// row shrinks by `scale`, so dividing the byte budget by `scale` keeps
/// the row-count regime identical to the paper (e.g. 143 rows for the
/// 50 GB chromosome setting). Floored at two rows.
pub fn scaled_sra_bytes(paper_bytes: u64, scale: usize, n_scaled: usize) -> u64 {
    let scaled = paper_bytes / scale as u64;
    scaled.max(2 * 8 * (n_scaled as u64 + 1))
}

/// Pipeline configuration for reproduction runs of one workload. Special
/// rows/columns go to disk, as in the paper (the flush overhead of
/// Table IV is an I/O effect).
pub fn repro_config(w: &Workload) -> PipelineConfig {
    let mut cfg = PipelineConfig::default_cpu();
    cfg.sra_bytes = scaled_sra_bytes(paper_sra_bytes(w.spec.key), w.scale, w.s1.len());
    cfg.sca_bytes = cfg.sra_bytes / 4;
    // Stage-2/3 blocks must shrink with the workload: the paper's strips
    // are hundreds of block-heights wide (228 kbp strips / 512-row
    // blocks); GPU-sized blocks on scaled strips would leave Stage 2 no
    // column boundaries to flush and starve Stage 3.
    cfg.grid23 = gpu_sim::GridSpec { blocks: 60, threads: 8, alpha: 2 };
    cfg.backend = cudalign::config::SraBackend::Disk(
        std::env::temp_dir().join(format!("cudalign-repro-{}", std::process::id())),
    );
    cfg
}

/// Run the full pipeline on a workload.
pub fn run_pipeline(w: &Workload, cfg: &PipelineConfig) -> PipelineResult {
    Pipeline::new(cfg.clone()).align(w.s0.bases(), w.s1.bases()).expect("pipeline failed")
}

/// Project a stage's paper-scale runtime on the modelled GTX 285 from the
/// measured counts: cells grow with `scale^2`; flushed bytes grow with
/// `scale` (row count is scale-invariant by construction, row width grows
/// with `scale`).
pub fn project_seconds(
    device: &DeviceModel,
    cells_scaled: u64,
    flushed_scaled: u64,
    scale: usize,
) -> f64 {
    let s = scale as u64;
    device.stage_seconds(cells_scaled.saturating_mul(s * s), flushed_scaled.saturating_mul(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio::DatasetRegistry;

    #[test]
    fn workload_materializes_at_scale() {
        let reg = DatasetRegistry::paper();
        let w = Workload::new(reg.get("162Kx172K").unwrap(), 1000, 1);
        assert_eq!(w.s0.len(), 162);
        assert!(w.cells() > 0);
        assert_eq!(w.paper_cells(), 162_114 * 171_823);
    }

    #[test]
    fn sra_scaling_preserves_row_counts() {
        // The 50 GB chromosome setting holds ~143 rows at paper scale;
        // the scaled budget must hold about as many scaled rows.
        let n_scaled = 46_944;
        let b = scaled_sra_bytes(50 << 30, 1000, n_scaled);
        let rows = b / (8 * (n_scaled as u64 + 1));
        assert!((130..160).contains(&rows), "rows {rows}");
        // Tiny paper budget at huge scale still yields two rows' worth.
        let b2 = scaled_sra_bytes(5 << 20, 1_000_000, 162);
        assert_eq!(b2, 2 * 8 * 163);
    }

    #[test]
    fn projection_uses_scale_squared() {
        let d = DeviceModel::gtx285();
        let t1 = project_seconds(&d, 1_000, 0, 1000);
        let t2 = d.stage_seconds(1_000_000_000, 0);
        assert!((t1 - t2).abs() < 1e-9);
    }

    #[test]
    fn smoke_pipeline_run() {
        let reg = DatasetRegistry::paper();
        let w = Workload::new(reg.get("162Kx172K").unwrap(), 1000, 1);
        let cfg = repro_config(&w);
        let res = run_pipeline(&w, &cfg);
        // Unrelated pair: short alignment, but machinery must succeed.
        assert!(res.best_score >= 0);
    }
}
