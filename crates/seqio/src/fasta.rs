//! Minimal FASTA reader/writer.
//!
//! Supports multi-record files, arbitrary line wrapping, lower-case
//! (soft-masked) bases and `N` runs — enough to load real chromosome
//! downloads should the user have them, while the test-suite uses the
//! synthetic generator.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;
use sw_core::Sequence;

/// Line width used when writing.
pub const LINE_WIDTH: usize = 70;

/// Errors raised while parsing FASTA input.
#[derive(Debug)]
#[non_exhaustive]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Sequence data before the first `>` header.
    MissingHeader,
    /// A base outside `{A,C,G,T,N}` (after upper-casing).
    InvalidBase {
        /// Record the base occurred in.
        record: String,
        /// 1-based line number.
        line: usize,
        /// The offending byte.
        byte: u8,
    },
}

impl std::fmt::Display for FastaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "I/O error: {e}"),
            FastaError::MissingHeader => write!(f, "sequence data before the first '>' header"),
            FastaError::InvalidBase { record, line, byte } => write!(
                f,
                "invalid base {:?} in record {:?} at line {}",
                *byte as char, record, line
            ),
        }
    }
}

impl std::error::Error for FastaError {}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e)
    }
}

/// Parse every record from a reader.
pub fn read_fasta<R: Read>(reader: R) -> Result<Vec<Sequence>, FastaError> {
    let buf = BufReader::new(reader);
    let mut records: Vec<Sequence> = Vec::new();
    let mut name: Option<String> = None;
    let mut data: Vec<u8> = Vec::new();

    let flush = |name: &mut Option<String>, data: &mut Vec<u8>, out: &mut Vec<Sequence>| {
        if let Some(n) = name.take() {
            out.push(Sequence::new_unchecked(n, std::mem::take(data)));
        }
    };

    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            flush(&mut name, &mut data, &mut records);
            name = Some(header.trim().to_string());
        } else {
            if name.is_none() {
                return Err(FastaError::MissingHeader);
            }
            for &b in line.as_bytes() {
                if b.is_ascii_whitespace() {
                    continue;
                }
                let up = b.to_ascii_uppercase();
                if !sw_core::sequence::ALPHABET.contains(&up) {
                    return Err(FastaError::InvalidBase {
                        record: name.clone().unwrap_or_default(),
                        line: lineno + 1,
                        byte: b,
                    });
                }
                data.push(up);
            }
        }
    }
    flush(&mut name, &mut data, &mut records);
    Ok(records)
}

/// Parse every record from a file.
pub fn read_fasta_file(path: impl AsRef<Path>) -> Result<Vec<Sequence>, FastaError> {
    read_fasta(File::open(path)?)
}

/// Write records with [`LINE_WIDTH`]-column wrapping.
pub fn write_fasta<'a, W: Write>(
    writer: W,
    records: impl IntoIterator<Item = &'a Sequence>,
) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for rec in records {
        writeln!(w, ">{}", rec.name())?;
        for chunk in rec.bases().chunks(LINE_WIDTH) {
            w.write_all(chunk)?;
            w.write_all(b"\n")?;
        }
    }
    w.flush()
}

/// Write records to a file.
pub fn write_fasta_file<'a>(
    path: impl AsRef<Path>,
    records: impl IntoIterator<Item = &'a Sequence>,
) -> io::Result<()> {
    write_fasta(File::create(path)?, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_record() {
        let input = ">chr1 test\nACGT\nacgt\n";
        let recs = read_fasta(input.as_bytes()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name(), "chr1 test");
        assert_eq!(recs[0].bases(), b"ACGTACGT");
    }

    #[test]
    fn parses_multiple_records_and_blank_lines() {
        let input = ">a\nAC\n\n>b\nGT\nNN\n";
        let recs = read_fasta(input.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].bases(), b"AC");
        assert_eq!(recs[1].bases(), b"GTNN");
    }

    #[test]
    fn rejects_headerless_data() {
        assert!(matches!(read_fasta("ACGT\n".as_bytes()), Err(FastaError::MissingHeader)));
    }

    #[test]
    fn rejects_invalid_base_with_location() {
        let err = read_fasta(">a\nACGT\nACXT\n".as_bytes()).unwrap_err();
        match err {
            FastaError::InvalidBase { record, line, byte } => {
                assert_eq!(record, "a");
                assert_eq!(line, 3);
                assert_eq!(byte, b'X');
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn roundtrip_with_wrapping() {
        let seq = Sequence::new("wrap", vec![b'A'; 2 * LINE_WIDTH + 7]).unwrap();
        let mut out = Vec::new();
        write_fasta(&mut out, [&seq]).unwrap();
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(text.lines().count() == 4); // header + 3 data lines
        let back = read_fasta(&out[..]).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].bases(), seq.bases());
        assert_eq!(back[0].name(), "wrap");
    }

    #[test]
    fn empty_input_yields_no_records() {
        assert!(read_fasta("".as_bytes()).unwrap().is_empty());
    }
}
