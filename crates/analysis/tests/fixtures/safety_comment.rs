// lint-fixture path=crates/seqio/src/fixture.rs rule=safety-comment expect=1
// The one live violation: an unsafe block with no SAFETY comment.
pub fn undocumented(x: u32) -> i32 {
    unsafe { std::mem::transmute::<u32, i32>(x) }
}

// Must NOT fire: the canonical form, modeled on the lifetime-erasure
// transmute in gpu_sim::exec::Scope::spawn (the lint's reference fixture).
pub fn documented(x: u32) -> i32 {
    // SAFETY: u32 and i32 have identical size and all bit patterns of a
    // u32 are valid i32 values, so this transmute cannot produce UB.
    unsafe { std::mem::transmute::<u32, i32>(x) }
}

pub fn mentions_only() {
    // the word unsafe in a comment is fine
    let s = "unsafe in a string is fine";
    let _ = s;
}
