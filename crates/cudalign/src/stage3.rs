//! Stage 3 — splitting partitions (Section IV-D).
//!
//! Each partition produced by Stage 2 is refined with the special columns
//! its strip saved: a forward wavefront runs from the partition's start
//! crosspoint, column-band by column-band; whenever the band's last block
//! column (the special column) completes, the goal-based matching
//! procedure compares the forward `H`/`E` values against the stored
//! *reverse* values and yields a crosspoint, from which the next band
//! restarts. Once the partition's last special column is intercepted, no
//! further computation is needed — the next crosspoint is the partition's
//! own end point.
//!
//! As in the paper, parallelism is exploited *inside* each band (the
//! wavefront engine); partitions are visited in order.

use crate::config::PipelineConfig;
use crate::crosspoint::{Crosspoint, CrosspointChain, Partition};
use crate::obs::{Event, Obs};
use crate::pipeline::StageError;
use crate::sra::LineStore;
use crate::stage2::gap_run_from;
use crate::supervise::RunControl;
use gpu_sim::wavefront::{self, RegionJob};
use gpu_sim::{BlockCoords, CellHE, CellHF, GlobalOrigin, Mode, TileOutcome, WorkerPool};
use std::ops::ControlFlow;
use sw_core::scoring::Score;
use sw_core::transcript::EdgeState;

/// Outcome of Stage 3.
#[derive(Debug, Clone)]
pub struct Stage3Result {
    /// The refined chain (the paper's `L_3`).
    pub chain: CrosspointChain,
    /// DP cells processed (`Cells_3`).
    pub cells: u64,
    /// Peak bus memory across bands (`VRAM_3`).
    pub vram_bytes: u64,
    /// Smallest effective block count across bands (the paper's `B_3`
    /// after the minimum-size-requirement reduction).
    pub min_blocks: usize,
    /// Special columns skipped because their stored line failed
    /// validation on read-back. The partition simply is not split at a
    /// skipped column — coarser, never wrong.
    pub skipped_columns: u64,
    /// Precision-ladder outcome counters for this stage's tiles.
    pub paths: gpu_sim::kernel::PathCounts,
    /// Query-profile cache hits during this stage.
    pub profile_hits: u64,
    /// Query-profile cache misses (profile bands built) during this stage.
    pub profile_misses: u64,
}

struct BandObserver<'a> {
    /// Stored reverse column (origin row, cells) bounding the band.
    rev_col: &'a [CellHE],
    rev_origin: usize,
    col: usize,
    goal_rel: Score,
    gopen: Score,
    cur: Crosspoint,
    found: Option<Crosspoint>,
}

impl gpu_sim::WavefrontObserver for BandObserver<'_> {
    fn on_block(
        &mut self,
        block: &BlockCoords,
        _outcome: &TileOutcome,
        _bottom: &[CellHF],
        right: &[CellHE],
    ) -> ControlFlow<()> {
        if !block.last_block_col {
            return ControlFlow::Continue(());
        }
        // The band's right bus holds forward (H, E) on the special column.
        // lint: allow(cancel-coverage): bounded scan of one block's right bus; the engine polls cancellation between blocks
        for (k, cell) in right.iter().enumerate() {
            let i = self.cur.i + block.rows.0 + k;
            let rev = self.rev_col[i - self.rev_origin];
            let h_total = cell.h + rev.h;
            if h_total == self.goal_rel {
                self.found = Some(Crosspoint {
                    i,
                    j: self.col,
                    score: self.cur.score + cell.h,
                    edge: EdgeState::Diagonal,
                });
                return ControlFlow::Break(());
            }
            let g_total = cell.e + rev.e + self.gopen;
            if g_total == self.goal_rel {
                self.found = Some(Crosspoint {
                    i,
                    j: self.col,
                    score: self.cur.score + cell.e,
                    edge: EdgeState::GapS0,
                });
                return ControlFlow::Break(());
            }
        }
        ControlFlow::Continue(())
    }
}

/// Refine one partition with its stored special columns; returns the new
/// interior crosspoints and the cells processed.
#[allow(clippy::too_many_arguments)]
fn refine_partition(
    s0: &[u8],
    s1: &[u8],
    cfg: &PipelineConfig,
    pool: &WorkerPool,
    p: &Partition,
    cols: &LineStore<CellHE>,
    vram: &mut u64,
    min_blocks: &mut usize,
    skipped: &mut u64,
    paths: &mut gpu_sim::kernel::PathCounts,
    profile: &mut (u64, u64),
) -> Result<(Vec<Crosspoint>, u64), StageError> {
    let sc = cfg.scoring;
    let gopen = sc.gap_open();
    let inside = cols.lines_between(p.start.j, p.end.j);
    let mut new_points = Vec::with_capacity(inside.len());
    let mut cur = p.start;
    let mut cells = 0u64;

    // lint: allow(cancel-coverage): bounded by the partition's stored special columns; the driver polls cancellation between partitions
    for c in inside {
        debug_assert!(cur.j < c && c < p.end.j);
        // A column whose stored line fails validation (or vanished) is
        // skipped, not fatal: the partition stays unsplit at `c` and the
        // next band just spans further. The store is shared immutably
        // across concurrently refined partitions, so the bad line is
        // counted here and left for the owner to discard.
        let Ok(Some((rev_origin, rev_cells))) = cols.get(c) else {
            *skipped += 1;
            continue;
        };
        let goal_rel = p.end.score - cur.score;
        let origin = GlobalOrigin::forward(cur.edge);

        // Upfront border check: the path may cross column `c` at row
        // `cur.i` via a pure horizontal run (the band's row-0 border).
        let run = gap_run_from(origin.e0, origin.h0, c - cur.j, &sc);
        let rev = rev_cells[cur.i - rev_origin];
        let border_cross = if run + rev.h == goal_rel {
            Some(Crosspoint { i: cur.i, j: c, score: cur.score + run, edge: EdgeState::Diagonal })
        } else if run + rev.e + gopen == goal_rel {
            Some(Crosspoint { i: cur.i, j: c, score: cur.score + run, edge: EdgeState::GapS0 })
        } else {
            None
        };
        if let Some(cp) = border_cross {
            new_points.push(cp);
            cur = cp;
            continue;
        }

        let a_band = &s0[cur.i..p.end.i];
        let b_band = &s1[cur.j..c];
        let mut obs = BandObserver {
            rev_col: &rev_cells,
            rev_origin,
            col: c,
            goal_rel,
            gopen,
            cur,
            found: None,
        };
        let job = RegionJob {
            a: a_band,
            b: b_band,
            scoring: sc,
            mode: Mode::Global { origin },
            grid: cfg.grid23,
            workers: cfg.workers,
            watch: None,
        };
        let res = wavefront::run_pooled(pool, &job, &mut obs)?;
        cells += res.cells;
        paths.add(&res.paths);
        profile.0 += res.profile_hits;
        profile.1 += res.profile_misses;
        *vram = (*vram).max(gpu_sim::DeviceModel::bus_bytes(a_band.len(), b_band.len()));
        *min_blocks = (*min_blocks).min(res.layout.block_cols);

        match obs.found {
            Some(cp) => {
                new_points.push(cp);
                cur = cp;
            }
            None => {
                return Err(StageError::Logic(format!(
                    "stage 3: goal {goal_rel} not found on column {c} of partition {:?}",
                    (p.start, p.end)
                )));
            }
        }
    }
    Ok((new_points, cells))
}

/// Run Stage 3 over every partition of the Stage-2 chain.
///
/// By default, partitions are visited in order and parallelism is
/// exploited *inside* each band, as in the paper's evaluated
/// configuration. With [`PipelineConfig::parallel_partitions`] the
/// partitions themselves run concurrently, each on a **single-block**
/// grid — the paper's future-work variant, for which the minimum size
/// requirement vanishes (one block cannot race itself on the buses).
pub fn run(
    s0: &[u8],
    s1: &[u8],
    cfg: &PipelineConfig,
    pool: &WorkerPool,
    chain: &CrosspointChain,
    cols: &LineStore<CellHE>,
) -> Result<Stage3Result, StageError> {
    run_traced(s0, s1, cfg, pool, chain, cols, &mut Obs::new())
}

/// [`run`] with an observability handle: announces the partition count
/// and each partition's shape ([`Event::Partitions`], [`Event::Partition`])
/// before solving starts. Events are emitted upfront from the caller
/// thread, so the parallel-partitions mode traces identically to the
/// sequential one.
pub fn run_traced(
    s0: &[u8],
    s1: &[u8],
    cfg: &PipelineConfig,
    pool: &WorkerPool,
    chain: &CrosspointChain,
    cols: &LineStore<CellHE>,
    obs: &mut Obs<'_>,
) -> Result<Stage3Result, StageError> {
    run_supervised(s0, s1, cfg, pool, chain, cols, obs, &RunControl::unlimited())
}

/// [`run_traced`] under a [`RunControl`]: the token is checked before
/// each partition is solved (in both the sequential and parallel modes),
/// so a cancelled/expired run unwinds with a typed error instead of
/// refining every remaining partition.
#[allow(clippy::too_many_arguments)]
pub fn run_supervised(
    s0: &[u8],
    s1: &[u8],
    cfg: &PipelineConfig,
    pool: &WorkerPool,
    chain: &CrosspointChain,
    cols: &LineStore<CellHE>,
    obs: &mut Obs<'_>,
    ctrl: &RunControl,
) -> Result<Stage3Result, StageError> {
    let parts: Vec<Partition> = chain.partitions().collect();
    obs.emit(Event::Partitions { stage: 3, count: parts.len() });
    for (k, p) in parts.iter().enumerate() {
        ctrl.check(0)?;
        obs.emit(Event::Partition {
            stage: 3,
            index: k,
            height: p.end.i - p.start.i,
            width: p.end.j - p.start.j,
        });
    }
    let workers = match cfg.workers {
        0 => pool.lanes(),
        w => w.min(pool.lanes()),
    };

    // Per-partition outputs, merged in order afterwards.
    type PartOut = Result<
        (Vec<Crosspoint>, u64, u64, usize, u64, gpu_sim::kernel::PathCounts, (u64, u64)),
        StageError,
    >;
    let mut outputs: Vec<Option<PartOut>> = vec![None; parts.len()];

    let solve = |p: &Partition, cfg: &PipelineConfig| -> PartOut {
        // Stage-1 checkpoints are gone by now; resume restarts the
        // pipeline from scratch, hence diagonal 0.
        ctrl.check(0)?;
        let mut vram = 0u64;
        let mut min_blocks = cfg.grid23.blocks;
        let mut skipped = 0u64;
        let mut paths = gpu_sim::kernel::PathCounts::default();
        let mut profile = (0u64, 0u64);
        let (pts, cells) = refine_partition(
            s0,
            s1,
            cfg,
            pool,
            p,
            cols,
            &mut vram,
            &mut min_blocks,
            &mut skipped,
            &mut paths,
            &mut profile,
        )?;
        Ok((pts, cells, vram, min_blocks, skipped, paths, profile))
    };

    if cfg.parallel_partitions && parts.len() > 1 && workers > 1 {
        // One block per partition; the engine itself runs sequentially
        // (`workers = 1` bands spawn a single pool job each) so the
        // partition fan-out owns all the parallelism. The partition jobs
        // and the band jobs they spawn share the same pool: the nested
        // scopes participate in draining the queue, so a pool narrower
        // than the partition count cannot deadlock.
        let mut part_cfg = cfg.clone();
        part_cfg.grid23.blocks = 1;
        part_cfg.workers = 1;
        let chunk = parts.len().div_ceil(workers.min(parts.len()));
        let solve = &solve;
        let part_cfg = &part_cfg;
        pool.scope(|s| {
            // lint: allow(cancel-coverage): bounded spawn fan-out (one task per worker chunk); each solve() polls RunControl
            for (ps, out) in parts.chunks(chunk).zip(outputs.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (k, p) in ps.iter().enumerate() {
                        out[k] = Some(solve(p, part_cfg));
                    }
                });
            }
        })?;
    } else {
        // lint: allow(cancel-coverage): solve() polls RunControl at the top of every partition
        for (k, p) in parts.iter().enumerate() {
            outputs[k] = Some(solve(p, cfg));
        }
    }

    let mut points: Vec<Crosspoint> = Vec::new();
    let mut cells = 0u64;
    let mut vram = 0u64;
    let mut min_blocks = cfg.grid23.blocks;
    let mut skipped_columns = 0u64;
    let mut paths = gpu_sim::kernel::PathCounts::default();
    let mut profile_hits = 0u64;
    let mut profile_misses = 0u64;
    if !chain.is_empty() {
        points.push(chain.points()[0]);
    }
    for (p, out) in parts.iter().zip(outputs) {
        ctrl.check(0)?;
        let (new_points, c, v, b, s, p_d, prof) =
            out.ok_or_else(|| StageError::Logic("stage 3 partition task never ran".into()))??;
        cells += c;
        vram = vram.max(v);
        min_blocks = min_blocks.min(b);
        skipped_columns += s;
        paths.add(&p_d);
        profile_hits += prof.0;
        profile_misses += prof.1;
        points.extend(new_points);
        points.push(p.end);
    }

    let chain = CrosspointChain::new(points);
    chain.validate()?;
    Ok(Stage3Result {
        chain,
        cells,
        vram_bytes: vram,
        min_blocks,
        skipped_columns,
        paths,
        profile_hits,
        profile_misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SraBackend;
    use crate::{stage1, stage2};
    use sw_core::full::nw_global_typed;
    use sw_core::Scoring;

    fn lcg(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize & 3]
            })
            .collect()
    }

    fn related(seed: u64, len: usize) -> (Vec<u8>, Vec<u8>) {
        let a = lcg(seed, len);
        let mut b = a.clone();
        for i in (5..b.len()).step_by(17) {
            b[i] = b"ACGT"[(i / 17) % 4];
        }
        b.drain(len / 3..len / 3 + 5);
        let at = 2 * len / 3;
        for (off, ch) in [b'A', b'C', b'G', b'T', b'A', b'C'].iter().enumerate() {
            b.insert(at + off, *ch);
        }
        (a, b)
    }

    fn run_stages(a: &[u8], b: &[u8]) -> (CrosspointChain, Stage3Result) {
        let cfg = PipelineConfig::for_tests();
        let pool = WorkerPool::new(cfg.workers);
        let mut rows = LineStore::new(&SraBackend::Memory, cfg.sra_bytes, "row", 7).unwrap();
        let s1r = stage1::run(a, b, &cfg, &pool, &mut rows).unwrap();
        assert!(s1r.best_score > 0);
        let mut cols = LineStore::new(&SraBackend::Memory, cfg.sca_bytes, "col", 7).unwrap();
        let s2r =
            stage2::run(a, b, &cfg, &pool, s1r.best_score, s1r.end, &mut rows, &mut cols).unwrap();
        let s3r = run(a, b, &cfg, &pool, &s2r.chain, &cols).unwrap();
        (s2r.chain, s3r)
    }

    #[test]
    fn stage3_adds_crosspoints_and_keeps_ends() {
        let (a, b) = related(1, 400);
        let (l2, s3r) = run_stages(&a, &b);
        assert!(s3r.chain.len() >= l2.len(), "stage 3 must not lose crosspoints");
        assert_eq!(s3r.chain.points()[0], l2.points()[0]);
        assert_eq!(s3r.chain.points().last(), l2.points().last());
        s3r.chain.validate().unwrap();
    }

    #[test]
    fn every_partition_score_is_its_global_alignment_score() {
        let (a, b) = related(2, 350);
        let (_, s3r) = run_stages(&a, &b);
        for p in s3r.chain.partitions() {
            let (sub_a, sub_b) = p.slices(&a, &b);
            let (g, _) = nw_global_typed(sub_a, sub_b, &Scoring::paper(), p.start.edge, p.end.edge);
            assert_eq!(g, p.score(), "partition {:?}", (p.start, p.end));
        }
    }

    #[test]
    fn stage3_reduces_partition_width() {
        let (a, b) = related(3, 500);
        let (l2, s3r) = run_stages(&a, &b);
        if s3r.chain.len() > l2.len() {
            assert!(s3r.chain.w_max() <= l2.w_max());
        }
    }

    #[test]
    fn no_columns_means_chain_unchanged() {
        let (a, b) = related(4, 120);
        let cfg = PipelineConfig::for_tests();
        let pool = WorkerPool::new(cfg.workers);
        let mut rows = LineStore::new(&SraBackend::Memory, cfg.sra_bytes, "row", 7).unwrap();
        let s1r = stage1::run(&a, &b, &cfg, &pool, &mut rows).unwrap();
        let mut cols = LineStore::new(&SraBackend::Memory, 0, "col", 7).unwrap();
        let s2r = stage2::run(&a, &b, &cfg, &pool, s1r.best_score, s1r.end, &mut rows, &mut cols)
            .unwrap();
        let s3r = run(&a, &b, &cfg, &pool, &s2r.chain, &cols).unwrap();
        assert_eq!(s3r.chain.points(), s2r.chain.points());
        assert_eq!(s3r.cells, 0);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::config::SraBackend;
    use crate::{stage1, stage2};

    fn lcg(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                b"ACGT"[(x >> 33) as usize & 3]
            })
            .collect()
    }

    /// The parallel-partitions future-work mode produces the same chain
    /// as the paper's sequential configuration.
    #[test]
    fn parallel_partitions_match_sequential() {
        let a = lcg(31, 600);
        let mut b = a.clone();
        for i in (5..b.len()).step_by(13) {
            b[i] = b"ACGT"[(i / 13) % 4];
        }
        let cfg = PipelineConfig::for_tests();
        let pool = WorkerPool::new(4);
        let mut rows = LineStore::new(&SraBackend::Memory, cfg.sra_bytes, "row", 7).unwrap();
        let s1r = stage1::run(&a, &b, &cfg, &pool, &mut rows).unwrap();
        let mut cols = LineStore::new(&SraBackend::Memory, cfg.sca_bytes, "col", 7).unwrap();
        let s2r = stage2::run(&a, &b, &cfg, &pool, s1r.best_score, s1r.end, &mut rows, &mut cols)
            .unwrap();

        let seq = run(&a, &b, &cfg, &pool, &s2r.chain, &cols).unwrap();
        let mut par_cfg = cfg.clone();
        par_cfg.parallel_partitions = true;
        par_cfg.workers = 4;
        let par = run(&a, &b, &par_cfg, &pool, &s2r.chain, &cols).unwrap();
        assert_eq!(par.chain.points(), seq.chain.points());
        // Cell counts may differ: a single-block band aborts at a coarser
        // granularity than a multi-block one. Same order of magnitude.
        assert!(par.cells <= 2 * seq.cells + 1000 && seq.cells <= 2 * par.cells + 1000);
    }
}
