// lint-fixture path=crates/cudalign/src/stalefix.rs rule=stale-allow expect=1
// A suppression whose rule no longer fires on that line is itself a lint
// error, so fixed code can't keep its scar tissue.

pub fn safe_default(x: Option<u32>) -> u32 {
    // lint: allow(no-panics): the unwrap here was replaced by unwrap_or
    x.unwrap_or(0)
}
