//! Property tests: every baseline agrees with the quadratic reference on
//! arbitrary inputs.

use baselines::fastlsa::{fastlsa_global, fastlsa_local, FastLsaStats};
use baselines::{mm_local_align, zalign};
use proptest::prelude::*;
use sw_core::full::{nw_global_typed, sw_local_score};
use sw_core::transcript::EdgeState;
use sw_core::Scoring;

fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"ACGT".to_vec()), 0..max_len)
}

fn related_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (dna(250), any::<u64>()).prop_map(|(a, seed)| {
        let mut b = a.clone();
        let mut x = seed | 1;
        for _ in 0..5 {
            if b.len() < 4 {
                break;
            }
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pos = (x as usize >> 8) % b.len();
            match x % 3 {
                0 => b[pos] = b"ACGT"[(x as usize >> 40) & 3],
                1 => {
                    let del = (1 + (x >> 16) as usize % 15).min(b.len() - pos);
                    b.drain(pos..pos + del);
                }
                _ => {
                    for k in 0..(1 + (x >> 16) as usize % 9) {
                        b.insert(pos, b"ACGT"[(x as usize >> (2 * k)) & 3]);
                    }
                }
            }
        }
        (a, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fastlsa_global_equals_nw((a, b) in related_pair(), buffer in 64u64..50_000) {
        let sc = Scoring::paper();
        let (expected, _) = nw_global_typed(&a, &b, &sc, EdgeState::Diagonal, EdgeState::Diagonal);
        let mut stats = FastLsaStats::default();
        let t = fastlsa_global(&a, &b, &sc, buffer, EdgeState::Diagonal, &mut stats);
        t.validate(&a, &b).unwrap();
        prop_assert_eq!(t.score(&a, &b, &sc), expected);
    }

    #[test]
    fn fastlsa_local_equals_reference((a, b) in related_pair(), buffer in 64u64..20_000) {
        let sc = Scoring::paper();
        let (ref_score, ref_end) = sw_local_score(&a, &b, &sc);
        let r = fastlsa_local(&a, &b, &sc, buffer);
        prop_assert_eq!(r.score, ref_score);
        if ref_score > 0 {
            prop_assert_eq!(r.end, ref_end);
            let sub_a = &a[r.start.0..r.end.0];
            let sub_b = &b[r.start.1..r.end.1];
            r.transcript.validate(sub_a, sub_b).unwrap();
            prop_assert_eq!(r.transcript.score(sub_a, sub_b, &sc), ref_score);
        }
    }

    #[test]
    fn zalign_equals_reference((a, b) in related_pair(), workers in 1usize..6) {
        let sc = Scoring::paper();
        let (ref_score, ref_end) = sw_local_score(&a, &b, &sc);
        let r = zalign(&a, &b, &sc, workers);
        prop_assert_eq!(r.score, ref_score);
        if ref_score > 0 {
            prop_assert_eq!(r.end, ref_end);
        }
    }

    #[test]
    fn mm_local_equals_reference((a, b) in related_pair()) {
        let sc = Scoring::paper();
        let (ref_score, _) = sw_local_score(&a, &b, &sc);
        let r = mm_local_align(&a, &b, &sc);
        prop_assert_eq!(r.score, ref_score);
        if ref_score > 0 {
            let sub_a = &a[r.start.0..r.end.0];
            let sub_b = &b[r.start.1..r.end.1];
            prop_assert_eq!(r.transcript.score(sub_a, sub_b, &sc), ref_score);
        }
    }
}
