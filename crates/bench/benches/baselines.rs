//! Pipeline vs the comparator aligners (the Table VI shape).

use baselines::{fastlsa_local, mm_local_align, quadratic_align, zalign};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cudalign::{Pipeline, PipelineConfig};
use seqio::generate::{homologous_pair, HomologyParams};
use sw_core::Scoring;

fn pair(len: usize) -> (Vec<u8>, Vec<u8>) {
    let (a, b) = homologous_pair(13, len, &HomologyParams::chromosome());
    (a.into_bases(), b.into_bases())
}

fn bench_aligners(c: &mut Criterion) {
    let mut g = c.benchmark_group("aligners");
    g.sample_size(10);
    let len = 3000usize;
    let (a, b) = pair(len);
    let sc = Scoring::paper();
    g.throughput(Throughput::Elements((a.len() * b.len()) as u64));

    g.bench_function(BenchmarkId::new("quadratic", len), |bench| {
        bench.iter(|| quadratic_align(&a, &b, &sc, 1 << 30).alignment.as_ref().map(|x| x.score))
    });
    g.bench_function(BenchmarkId::new("mm_local_1core", len), |bench| {
        bench.iter(|| mm_local_align(&a, &b, &sc).score)
    });
    for workers in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("zalign", workers), &workers, |bench, &w| {
            bench.iter(|| zalign(&a, &b, &sc, w).score)
        });
    }
    g.bench_function(BenchmarkId::new("fastlsa", len), |bench| {
        bench.iter(|| fastlsa_local(&a, &b, &sc, 1 << 18).score)
    });
    g.bench_function(BenchmarkId::new("cudalign_pipeline", len), |bench| {
        let cfg = PipelineConfig::default_cpu();
        bench.iter(|| Pipeline::new(cfg.clone()).align(&a, &b).unwrap().best_score)
    });
    g.finish();
}

criterion_group!(benches, bench_aligners);
criterion_main!(benches);
