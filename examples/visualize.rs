//! Stage 6 as a standalone tool: align two FASTA files (or a generated
//! pair), write the binary alignment, then reconstruct and render it.
//!
//! ```text
//! cargo run -p cudalign --release --example visualize [a.fasta b.fasta]
//! ```
//!
//! Without arguments a demo pair is generated. With two FASTA paths the
//! first record of each file is aligned.

use cudalign::{stage6, BinaryAlignment, Pipeline, PipelineConfig};
use seqio::fasta;
use seqio::generate::{homologous_pair, HomologyParams};
use sw_core::Sequence;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (s0, s1): (Sequence, Sequence) = if args.len() == 2 {
        let mut r0 = fasta::read_fasta_file(&args[0]).expect("read first FASTA");
        let mut r1 = fasta::read_fasta_file(&args[1]).expect("read second FASTA");
        assert!(!r0.is_empty() && !r1.is_empty(), "FASTA files must contain records");
        (r0.remove(0), r1.remove(0))
    } else {
        homologous_pair(3, 600, &HomologyParams::chromosome())
    };
    println!("aligning {:?} x {:?}", s0.name(), s1.name());

    let result = Pipeline::new(PipelineConfig::default_cpu())
        .align(s0.bases(), s1.bases())
        .expect("pipeline failed");
    if result.best_score == 0 {
        println!("no positive-scoring local alignment");
        return;
    }

    // Write the binary representation to a temp file and read it back —
    // the paper's stages 5 and 6 are decoupled exactly like this.
    let path = std::env::temp_dir().join("alignment.cal2");
    std::fs::write(&path, result.binary.encode()).expect("write binary alignment");
    let bytes = std::fs::read(&path).expect("read back");
    let binary = BinaryAlignment::decode(&bytes).expect("decode");
    println!("binary alignment: {} bytes at {}", bytes.len(), path.display());

    let text = stage6::render_text(s0.bases(), s1.bases(), &binary, 80);
    println!(
        "text rendering: {} bytes ({}x larger)\n",
        text.len(),
        text.len() / bytes.len().max(1)
    );
    // Print only the head of long alignments.
    for line in text.lines().take(30) {
        println!("{line}");
    }
    let transcript = binary.to_transcript(s0.bases(), s1.bases());
    println!("{}", stage6::summary(&binary, &transcript));
    let _ = std::fs::remove_file(&path);
}
