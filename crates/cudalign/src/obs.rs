//! Observability: event-sourced tracing, a metrics registry, and live
//! progress for the six-stage pipeline (DESIGN.md §10).
//!
//! The paper's flagship run takes 18.5 hours; a run that long needs more
//! than a stats struct printed after the fact. This module provides the
//! three sinks the pipeline reports into:
//!
//! 1. **Events** — [`Event`] values emitted at pipeline edges (stage
//!    begin/end spans, per-external-diagonal ticks, per-partition and
//!    per-strip records, storage flush/drop, checkpoints) and fanned out
//!    to any number of [`Recorder`]s through an [`Obs`] handle.
//! 2. **Metrics** — a [`Metrics`] registry of named counters and gauges.
//!    It is the single source of truth behind `PipelineStats`: the
//!    pipeline accumulates into the registry, the stats struct is built
//!    from it, and the trace dumps it verbatim as the final `metrics`
//!    record, so `--stats`, the MCUPS bench and the trace can never
//!    disagree.
//! 3. **Clock** — all wall-clock reads go through the injected [`Clock`].
//!    This file is the only place in `cudalign` allowed to touch
//!    `std::time::Instant` (enforced by the `clock-injection` lint in the
//!    `analysis` crate); everything else samples time via
//!    [`Obs::now`], which makes timing deterministic under test via
//!    [`ManualClock`].
//!
//! Hot paths (the DP kernels and the wavefront inner loops) do **not**
//! emit events — they keep reporting pre-aggregated counters through the
//! existing bus/stats plumbing, so the `no-wallclock` lint stays clean
//! and tracing adds no per-cell overhead.
//!
//! # Trace format
//!
//! [`TraceWriter`] encodes each event as one JSON object per line
//! (NDJSON). Every record carries `"t"` (seconds since the recorder's
//! clock origin, non-decreasing) and `"ev"` (the record type); the
//! remaining fields are per-type and documented in DESIGN.md §10.
//! [`validate_trace`] checks a whole trace against that schema — field
//! presence and types, monotone timestamps, and span nesting (stages
//! open and close in order, stage-scoped records fall inside their
//! stage's span).

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Clock injection
// ---------------------------------------------------------------------------

/// A monotone clock, injected at the pipeline edges.
///
/// Returns the elapsed time since the clock's origin (creation for
/// [`WallClock`], explicit for [`ManualClock`]). Implementations must be
/// monotone: successive calls never go backwards.
pub trait Clock {
    /// Time elapsed since this clock's origin.
    fn now(&self) -> Duration;
}

impl<C: Clock + ?Sized> Clock for &C {
    fn now(&self) -> Duration {
        (**self).now()
    }
}

/// The production clock: monotone wall time since construction.
///
/// This is the only type in `cudalign` that reads `std::time::Instant`;
/// the `clock-injection` lint keeps it that way.
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: std::time::Instant,
}

impl WallClock {
    /// A wall clock whose origin is "now".
    pub fn new() -> Self {
        WallClock { origin: std::time::Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A hand-cranked clock for deterministic tests.
///
/// Interior mutability lets a test keep a shared reference while the
/// [`Obs`] holds `Box::new(&clock)` as its [`Clock`].
#[derive(Debug, Default)]
pub struct ManualClock {
    now: Cell<Duration>,
}

impl ManualClock {
    /// A manual clock starting at zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Set the absolute time. Callers are responsible for monotonicity.
    pub fn set(&self, t: Duration) {
        self.now.set(t);
    }

    /// Advance the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.now.set(self.now.get().saturating_add(d));
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        self.now.get()
    }
}

/// A hand-cranked clock that is `Send + Sync + Clone` — the supervision
/// tests' counterpart to [`ManualClock`] (whose `Cell` is not `Sync`).
///
/// Clones share one atomic nanosecond counter, so a test can hold one
/// clone, hand a second to [`Obs`], and derive the watchdog's time
/// source from a third; advancing any of them advances the run's whole
/// notion of time.
#[derive(Debug, Clone, Default)]
pub struct SharedClock {
    nanos: Arc<AtomicU64>,
}

impl SharedClock {
    /// A shared clock starting at zero.
    pub fn new() -> Self {
        SharedClock::default()
    }

    /// Set the absolute time. Callers are responsible for monotonicity.
    pub fn set(&self, t: Duration) {
        self.nanos.store(t.as_nanos() as u64, Ordering::Release);
    }

    /// Advance the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::AcqRel);
    }
}

impl Clock for SharedClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Acquire))
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One observable moment in a pipeline run.
///
/// Events are pure data; the emission timestamp is stamped by
/// [`Obs::emit`] and handed to each [`Recorder`] alongside the event.
/// The NDJSON encoding of each variant is documented in DESIGN.md §10.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A run starts: matrix shape, stage-1 grid total, and where stage 1
    /// resumes (0 for a fresh run).
    RunBegin {
        /// Rows of the DP matrix (`|S0|`).
        m: usize,
        /// Columns of the DP matrix (`|S1|`).
        n: usize,
        /// Total external diagonals in the stage-1 grid.
        total_diagonals: usize,
        /// First diagonal stage 1 will execute (from a checkpoint).
        resumed_from_diagonal: usize,
    },
    /// A pipeline stage opens (stages are numbered 1..=6).
    StageBegin {
        /// Stage number, 1..=6.
        stage: u8,
    },
    /// A pipeline stage closes.
    StageEnd {
        /// Stage number, 1..=6.
        stage: u8,
        /// Wall seconds the stage took (injected clock).
        seconds: f64,
        /// DP cells the stage processed in this run.
        cells: u64,
    },
    /// Stage-1 wavefront progress: `done` of `total` external diagonals
    /// are complete (absolute, i.e. inclusive of diagonals skipped by a
    /// checkpoint resume).
    Diagonal {
        /// Stage number (currently always 1).
        stage: u8,
        /// External diagonals fully executed, counted from the matrix
        /// origin.
        done: usize,
        /// Total external diagonals in the grid.
        total: usize,
    },
    /// Stage-1 strip-scheduler progress: a worker published a batch of
    /// block rows of its column strip to its right neighbour.
    StripProgress {
        /// Stage number (currently always 1).
        stage: u8,
        /// Runner index (0 = the calling thread).
        worker: usize,
        /// Column-strip index within the strip plan.
        strip: usize,
        /// Block rows of this strip completed and published.
        rows_done: usize,
        /// Total block rows in the grid.
        rows_total: usize,
    },
    /// Stage-1 strip scheduler: a worker claimed a strip. `stolen` marks
    /// claims beyond the worker's first (bounded work stealing).
    StripSteal {
        /// Stage number (currently always 1).
        stage: u8,
        /// Runner index (0 = the calling thread).
        worker: usize,
        /// Column-strip index that was claimed.
        strip: usize,
        /// False for the worker's first claim (its home strip).
        stolen: bool,
    },
    /// Stage 2 starts a reverse strip.
    Strip {
        /// Stage number (currently always 2).
        stage: u8,
        /// 1-based strip index.
        index: usize,
        /// Strip height in rows.
        height: usize,
        /// Strip width in columns.
        width: usize,
    },
    /// A stage announces how many partitions it is about to solve.
    Partitions {
        /// Stage number (3 or 5).
        stage: u8,
        /// Partition count.
        count: usize,
    },
    /// One partition a stage will solve.
    Partition {
        /// Stage number (currently always 3).
        stage: u8,
        /// 0-based partition index.
        index: usize,
        /// Partition height in rows.
        height: usize,
        /// Partition width in columns.
        width: usize,
    },
    /// One stage-4 refinement iteration finished.
    Iteration {
        /// Stage number (currently always 4).
        stage: u8,
        /// 1-based iteration index.
        index: usize,
        /// Crosspoints known after this iteration.
        crosspoints: usize,
        /// DP cells this iteration processed.
        cells: u64,
        /// Wall seconds this iteration took (injected clock).
        seconds: f64,
    },
    /// A special row/column was fully written to its store.
    StorageFlush {
        /// Which store: `"sra"` (special rows) or `"sca"` (special
        /// columns).
        store: &'static str,
        /// Row (SRA) or column (SCA) index.
        index: usize,
        /// Bytes the line occupies in the store.
        bytes: u64,
    },
    /// A stored line was dropped (e.g. a corrupt row rejected on read).
    StorageDrop {
        /// Which store: `"sra"` or `"sca"`.
        store: &'static str,
        /// Row (SRA) or column (SCA) index.
        index: usize,
    },
    /// Precision-ladder and query-profile-cache outcome of one
    /// engine-driven stage (1..=3), emitted once per stage inside its
    /// span, just before [`Event::StageEnd`].
    Kernel {
        /// Stage number, 1..=3.
        stage: u8,
        /// Tiles that committed on the 32-lane saturating-`i8` rung.
        striped8: u64,
        /// Tiles that attempted `i8`, overflowed its window, and
        /// committed on the `i16` rung.
        striped8_fb16: u64,
        /// Tiles that went straight to the `i16` rung (`i8` ineligible).
        striped16: u64,
        /// Tiles that re-ran on the scalar `i32` kernel after `i16`
        /// overflow.
        fallback: u64,
        /// Query-profile cache hits during the stage.
        profile_hits: u64,
        /// Query-profile cache misses (profile bands built).
        profile_misses: u64,
    },
    /// A stage-1 checkpoint snapshot was attempted.
    Checkpoint {
        /// The diagonal the snapshot restarts from.
        diagonal: usize,
        /// Whether the snapshot was persisted.
        ok: bool,
    },
    /// The run was interrupted — cancelled, past its deadline, or
    /// stalled. Terminal diagnostic: the pipeline returns the matching
    /// typed error immediately after emitting it, so an interrupted
    /// trace ends with this record (plus an optional [`Event::StallDiag`])
    /// instead of `run_end`.
    Interrupt {
        /// Stage that observed the interruption, 1..=6.
        stage: u8,
        /// `"cancelled"`, `"deadline"`, or `"stalled"`.
        kind: &'static str,
        /// External diagonal the run can resume from (stage 1), else 0.
        diagonal: usize,
        /// Time from the cancel signal to the run unwinding, in
        /// milliseconds on the supervisor's clock (0 when unknown).
        latency_ms: f64,
    },
    /// Strip-scheduler coordination snapshot attached to a stall
    /// diagnosis: where every strip and runner was when the run stopped.
    StallDiag {
        /// Stage that owned the strip launch (currently always 1).
        stage: u8,
        /// Delivery frontier (external diagonal) at teardown.
        front: usize,
        /// Per strip: block rows published to the right neighbour.
        published: Vec<usize>,
        /// Per runner: strips claimed (first claim = home, rest steals).
        claims: Vec<u64>,
        /// Per runner: blocks computed.
        blocks: Vec<u64>,
    },
    /// Final dump of the metrics registry (see [`Metrics::to_event`]).
    Metrics {
        /// Counter names and values, sorted by name.
        counters: Vec<(String, u64)>,
        /// Gauge names and values, sorted by name.
        gauges: Vec<(String, f64)>,
    },
    /// The run is over.
    RunEnd {
        /// Total wall seconds (injected clock).
        seconds: f64,
        /// Best local alignment score found.
        best_score: i64,
    },
    /// A job was admitted to the serve queue. Job-scoped record emitted
    /// by [`crate::serve`] into the job's own trace stream, *before* any
    /// `run_begin` — it gives every per-job trace a header even when the
    /// pipeline never runs (cancelled while queued, or served from the
    /// result cache).
    JobSubmit {
        /// Serve-assigned job id, unique within the server.
        job: u64,
        /// Content fingerprint the result cache is keyed by. Encoded as
        /// 16 hex digits — JSON numbers are f64 and would corrupt the
        /// high bits.
        fingerprint: u64,
        /// Query length.
        m: usize,
        /// Database length.
        n: usize,
        /// Job priority (higher drains first).
        priority: u8,
        /// Queue depth right after admission, this job included.
        queued: usize,
    },
    /// A runner picked the job up (or resolved it from the result
    /// cache). Precedes `run_begin` when a pipeline actually runs.
    JobStart {
        /// Serve-assigned job id.
        job: u64,
        /// Whether the result came from the fingerprint cache (no
        /// pipeline run follows).
        cached: bool,
    },
    /// Terminal job record: nothing may follow it in the job's trace.
    /// Present even when the run never began, which is what keeps an
    /// immediately-cancelled job's trace schema-valid instead of
    /// [`TraceError::Empty`].
    JobEnd {
        /// Serve-assigned job id.
        job: u64,
        /// `"ok"`, `"cached"`, `"cancelled"`, `"deadline"`, `"stalled"`,
        /// or `"failed"`.
        outcome: &'static str,
        /// Queue wait plus run time, in seconds on the server's clock.
        seconds: f64,
    },
}

/// A sink for timed [`Event`]s.
///
/// Recorders are driven synchronously from the pipeline's caller thread
/// (never from pool workers), in emission order.
pub trait Recorder {
    /// Record `ev`, emitted at clock time `t`.
    fn record(&mut self, t: Duration, ev: &Event);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Named counters (u64) and gauges (f64), the single source of truth for
/// the pipeline's scalar statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `delta` to counter `key` (creating it at zero).
    pub fn inc(&mut self, key: &'static str, delta: u64) {
        let slot = self.counters.entry(key).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Set counter `key` to `value`.
    pub fn set(&mut self, key: &'static str, value: u64) {
        self.counters.insert(key, value);
    }

    /// Read counter `key` (0 if never touched).
    pub fn get(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Set gauge `key` to `value`.
    pub fn set_gauge(&mut self, key: &'static str, value: f64) {
        self.gauges.insert(key, value);
    }

    /// Add `delta` to gauge `key` (creating it at zero).
    pub fn add_gauge(&mut self, key: &'static str, delta: f64) {
        *self.gauges.entry(key).or_insert(0.0) += delta;
    }

    /// Read gauge `key` (0.0 if never touched).
    pub fn gauge(&self, key: &str) -> f64 {
        self.gauges.get(key).copied().unwrap_or(0.0)
    }

    /// Snapshot the registry as an [`Event::Metrics`] record.
    pub fn to_event(&self) -> Event {
        Event::Metrics {
            counters: self.counters.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
            gauges: self.gauges.iter().map(|(k, v)| ((*k).to_string(), *v)).collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// The observability handle
// ---------------------------------------------------------------------------

/// The pipeline's observability handle: an injected clock, a metrics
/// registry, and a fan-out list of recorders.
///
/// `Obs::new()` (or `Obs::default()`) is the silent configuration: a
/// wall clock, no recorders. [`Pipeline::align`] uses it, so runs without
/// tracing pay only the cost of a few `Instant`-free duration reads.
///
/// [`Pipeline::align`]: crate::pipeline::Pipeline::align
pub struct Obs<'a> {
    clock: Box<dyn Clock + 'a>,
    recorders: Vec<&'a mut (dyn Recorder + 'a)>,
    /// The run's metrics registry. Pipeline code accumulates here; the
    /// final `PipelineStats` and the trace's `metrics` record are both
    /// derived from it.
    pub metrics: Metrics,
}

impl std::fmt::Debug for Obs<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("recorders", &self.recorders.len())
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl Default for Obs<'_> {
    fn default() -> Self {
        Obs::new()
    }
}

impl<'a> Obs<'a> {
    /// Wall clock, no recorders.
    pub fn new() -> Self {
        Obs { clock: Box::new(WallClock::new()), recorders: Vec::new(), metrics: Metrics::new() }
    }

    /// A handle driven by the given clock (e.g. `Box::new(&manual)`).
    pub fn with_clock(clock: Box<dyn Clock + 'a>) -> Self {
        Obs { clock, recorders: Vec::new(), metrics: Metrics::new() }
    }

    /// Attach a recorder; every subsequent [`Obs::emit`] reaches it.
    pub fn add_recorder(&mut self, recorder: &'a mut (dyn Recorder + 'a)) {
        self.recorders.push(recorder);
    }

    /// Current time on the injected clock.
    pub fn now(&self) -> Duration {
        self.clock.now()
    }

    /// Stamp `ev` with the current clock time and fan it out to every
    /// recorder.
    pub fn emit(&mut self, ev: Event) {
        let t = self.clock.now();
        for r in &mut self.recorders {
            r.record(t, &ev);
        }
    }
}

// ---------------------------------------------------------------------------
// NDJSON trace sink
// ---------------------------------------------------------------------------

/// A [`Recorder`] that encodes every event as one JSON object per line.
///
/// Write errors are sticky: the first failure is remembered, later
/// records are dropped, and [`TraceWriter::finish`] reports the error —
/// a broken trace file never aborts an alignment.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    records: u64,
    error: Option<String>,
}

impl<W: Write> TraceWriter<W> {
    /// Wrap a byte sink (commonly a buffered file handle).
    pub fn new(out: W) -> Self {
        TraceWriter { out, records: 0, error: None }
    }

    /// Records successfully written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The first write error, if any.
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// Flush and return the sink, or the first write/flush error.
    pub fn finish(mut self) -> Result<W, TraceError> {
        if let Some(e) = self.error {
            return Err(TraceError::Io(e));
        }
        match self.out.flush() {
            Ok(()) => Ok(self.out),
            Err(e) => Err(TraceError::Io(e.to_string())),
        }
    }
}

/// Failures of the trace subsystem: sink errors from
/// [`TraceWriter::finish`], malformed JSON from [`parse_json`], and
/// schema violations from [`validate_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// The byte sink failed to write or flush; payload is the I/O error
    /// text (kept as a string so the error stays `Clone + PartialEq`).
    Io(String),
    /// A line is not well-formed JSON.
    Json(String),
    /// A parsed record violates the DESIGN.md §10 schema.
    Schema {
        /// 1-based line number of the offending record.
        line: usize,
        /// What the record got wrong.
        msg: String,
    },
    /// The trace has no records at all (no `run_begin`).
    Empty,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace sink error: {e}"),
            TraceError::Json(e) => write!(f, "{e}"),
            TraceError::Schema { line, msg } => write!(f, "line {line}: {msg}"),
            TraceError::Empty => write!(f, "empty trace: no run_begin record"),
        }
    }
}

impl std::error::Error for TraceError {}

impl<W: Write> Recorder for TraceWriter<W> {
    fn record(&mut self, t: Duration, ev: &Event) {
        if self.error.is_some() {
            return;
        }
        let mut line = encode_record(t, ev);
        line.push('\n');
        match self.out.write_all(line.as_bytes()) {
            Ok(()) => self.records += 1,
            Err(e) => self.error = Some(e.to_string()),
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Finite floats render as plain JSON numbers; NaN/inf (which valid runs
/// never produce) degrade to 0 rather than corrupting the line.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn encode_record(t: Duration, ev: &Event) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(s, "{{\"t\":{}", json_f64(t.as_secs_f64()));
    match ev {
        Event::RunBegin { m, n, total_diagonals, resumed_from_diagonal } => {
            let _ = write!(
                s,
                ",\"ev\":\"run_begin\",\"m\":{m},\"n\":{n},\"total_diagonals\":{total_diagonals},\"resumed_from_diagonal\":{resumed_from_diagonal}"
            );
        }
        Event::StageBegin { stage } => {
            let _ = write!(s, ",\"ev\":\"stage_begin\",\"stage\":{stage}");
        }
        Event::StageEnd { stage, seconds, cells } => {
            let _ = write!(
                s,
                ",\"ev\":\"stage_end\",\"stage\":{stage},\"seconds\":{},\"cells\":{cells}",
                json_f64(*seconds)
            );
        }
        Event::Diagonal { stage, done, total } => {
            let _ = write!(
                s,
                ",\"ev\":\"diagonal\",\"stage\":{stage},\"done\":{done},\"total\":{total}"
            );
        }
        Event::StripProgress { stage, worker, strip, rows_done, rows_total } => {
            let _ = write!(
                s,
                ",\"ev\":\"strip_progress\",\"stage\":{stage},\"worker\":{worker},\"strip\":{strip},\"rows_done\":{rows_done},\"rows_total\":{rows_total}"
            );
        }
        Event::StripSteal { stage, worker, strip, stolen } => {
            let _ = write!(
                s,
                ",\"ev\":\"strip_steal\",\"stage\":{stage},\"worker\":{worker},\"strip\":{strip},\"stolen\":{stolen}"
            );
        }
        Event::Strip { stage, index, height, width } => {
            let _ = write!(
                s,
                ",\"ev\":\"strip\",\"stage\":{stage},\"index\":{index},\"height\":{height},\"width\":{width}"
            );
        }
        Event::Partitions { stage, count } => {
            let _ = write!(s, ",\"ev\":\"partitions\",\"stage\":{stage},\"count\":{count}");
        }
        Event::Partition { stage, index, height, width } => {
            let _ = write!(
                s,
                ",\"ev\":\"partition\",\"stage\":{stage},\"index\":{index},\"height\":{height},\"width\":{width}"
            );
        }
        Event::Iteration { stage, index, crosspoints, cells, seconds } => {
            let _ = write!(
                s,
                ",\"ev\":\"iteration\",\"stage\":{stage},\"index\":{index},\"crosspoints\":{crosspoints},\"cells\":{cells},\"seconds\":{}",
                json_f64(*seconds)
            );
        }
        Event::StorageFlush { store, index, bytes } => {
            let _ = write!(
                s,
                ",\"ev\":\"storage_flush\",\"store\":\"{}\",\"index\":{index},\"bytes\":{bytes}",
                json_escape(store)
            );
        }
        Event::StorageDrop { store, index } => {
            let _ = write!(
                s,
                ",\"ev\":\"storage_drop\",\"store\":\"{}\",\"index\":{index}",
                json_escape(store)
            );
        }
        Event::Kernel {
            stage,
            striped8,
            striped8_fb16,
            striped16,
            fallback,
            profile_hits,
            profile_misses,
        } => {
            let _ = write!(
                s,
                ",\"ev\":\"kernel\",\"stage\":{stage},\"striped8\":{striped8},\"striped8_fb16\":{striped8_fb16},\"striped16\":{striped16},\"fallback\":{fallback},\"profile_hits\":{profile_hits},\"profile_misses\":{profile_misses}"
            );
        }
        Event::Checkpoint { diagonal, ok } => {
            let _ = write!(s, ",\"ev\":\"checkpoint\",\"diagonal\":{diagonal},\"ok\":{ok}");
        }
        Event::Interrupt { stage, kind, diagonal, latency_ms } => {
            let _ = write!(
                s,
                ",\"ev\":\"interrupt\",\"stage\":{stage},\"kind\":\"{}\",\"diagonal\":{diagonal},\"latency_ms\":{}",
                json_escape(kind),
                json_f64(*latency_ms)
            );
        }
        Event::StallDiag { stage, front, published, claims, blocks } => {
            let _ = write!(s, ",\"ev\":\"stall_diag\",\"stage\":{stage},\"front\":{front}");
            s.push_str(",\"published\":[");
            for (i, v) in published.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{v}");
            }
            s.push_str("],\"claims\":[");
            for (i, v) in claims.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{v}");
            }
            s.push_str("],\"blocks\":[");
            for (i, v) in blocks.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{v}");
            }
            s.push(']');
        }
        Event::Metrics { counters, gauges } => {
            s.push_str(",\"ev\":\"metrics\",\"counters\":{");
            for (i, (k, v)) in counters.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\":{v}", json_escape(k));
            }
            s.push_str("},\"gauges\":{");
            for (i, (k, v)) in gauges.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\":{}", json_escape(k), json_f64(*v));
            }
            s.push('}');
        }
        Event::RunEnd { seconds, best_score } => {
            let _ = write!(
                s,
                ",\"ev\":\"run_end\",\"seconds\":{},\"best_score\":{best_score}",
                json_f64(*seconds)
            );
        }
        Event::JobSubmit { job, fingerprint, m, n, priority, queued } => {
            let _ = write!(
                s,
                ",\"ev\":\"job_submit\",\"job\":{job},\"fingerprint\":\"{fingerprint:016x}\",\"m\":{m},\"n\":{n},\"priority\":{priority},\"queued\":{queued}"
            );
        }
        Event::JobStart { job, cached } => {
            let _ = write!(s, ",\"ev\":\"job_start\",\"job\":{job},\"cached\":{cached}");
        }
        Event::JobEnd { job, outcome, seconds } => {
            let _ = write!(
                s,
                ",\"ev\":\"job_end\",\"job\":{job},\"outcome\":\"{}\",\"seconds\":{}",
                json_escape(outcome),
                json_f64(*seconds)
            );
        }
    }
    s.push('}');
    s
}

// ---------------------------------------------------------------------------
// Progress
// ---------------------------------------------------------------------------

/// A [`Recorder`] that tracks percent-complete and an ETA.
///
/// During stage 1 (by far the dominant cost — it sweeps the full `m x n`
/// matrix), progress is `done / total` external diagonals. The count is
/// **absolute**, so a run resumed from a stage-1 checkpoint starts at the
/// resumed diagonal, not at zero. The ETA extrapolates only from work
/// this run actually did: `remaining * elapsed / (done - resumed)` —
/// resumed (skipped) diagonals never inflate the apparent rate.
#[derive(Debug, Clone, Default)]
pub struct Progress {
    total: usize,
    offset: usize,
    done: usize,
    stage: u8,
    started: Option<Duration>,
    now: Duration,
    finished: bool,
}

impl Progress {
    /// A fresh tracker; feed it events via [`Recorder::record`].
    pub fn new() -> Self {
        Progress::default()
    }

    /// Percent complete of the stage-1 sweep, if a run is in flight.
    pub fn percent(&self) -> Option<f64> {
        if self.stage == 0 || self.total == 0 {
            return None;
        }
        Some(100.0 * self.done as f64 / self.total as f64)
    }

    /// Estimated seconds until stage 1 completes, extrapolated from this
    /// run's own diagonal rate. `None` until at least one post-resume
    /// diagonal has finished in nonzero time.
    pub fn eta_seconds(&self) -> Option<f64> {
        let started = self.started?;
        let run = self.now.checked_sub(started)?.as_secs_f64();
        let fresh = self.done.checked_sub(self.offset)?;
        if fresh == 0 || run <= 0.0 || self.done >= self.total {
            return None;
        }
        Some((self.total - self.done) as f64 * run / fresh as f64)
    }

    /// One-line human summary, or `None` when idle/finished.
    pub fn render(&self) -> Option<String> {
        if self.finished || self.stage == 0 {
            return None;
        }
        if self.stage == 1 && self.total > 0 {
            let pct = 100.0 * self.done as f64 / self.total as f64;
            let eta = match self.eta_seconds() {
                Some(e) => format!("{e:.1}s"),
                None => "-".to_string(),
            };
            Some(format!(
                "align: stage 1/6  {pct:5.1}%  diagonal {}/{}  ETA {eta}",
                self.done, self.total
            ))
        } else {
            Some(format!("align: stage {}/6", self.stage))
        }
    }
}

impl Recorder for Progress {
    fn record(&mut self, t: Duration, ev: &Event) {
        self.now = t;
        match ev {
            Event::RunBegin { total_diagonals, resumed_from_diagonal, .. } => {
                self.total = *total_diagonals;
                self.offset = *resumed_from_diagonal;
                self.done = *resumed_from_diagonal;
                self.started = Some(t);
                self.stage = 0;
                self.finished = false;
            }
            Event::StageBegin { stage } => self.stage = *stage,
            Event::StageEnd { stage: 1, .. } => self.done = self.total,
            Event::Diagonal { done, total, .. } => {
                self.done = *done;
                self.total = *total;
            }
            Event::RunEnd { .. } => self.finished = true,
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON (for the schema checker)
// ---------------------------------------------------------------------------

/// A parsed JSON value — the minimal model the trace validator needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` or `false`
    Bool(bool),
    /// Any JSON number, widened to `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, entries in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn str_val(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn bool_val(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse one JSON document. Rejects trailing garbage; never panics.
pub fn parse_json(src: &str) -> Result<Json, TraceError> {
    let b = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(b, &mut pos, 0).map_err(TraceError::Json)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(TraceError::Json(format!("trailing bytes at offset {pos}")));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 64;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while b.get(*pos).is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn expect_byte(b: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    match b.get(*pos) {
        Some(&c) if c == want => {
            *pos += 1;
            Ok(())
        }
        other => Err(format!("expected '{}' at offset {}, found {:?}", want as char, *pos, other)),
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_string());
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while b.get(*pos).is_some_and(|c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at offset {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let cp = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        // Lone surrogates (which we never emit) degrade to
                        // the replacement character.
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the full UTF-8 scalar starting here.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                match rest.chars().next() {
                    Some(c) => {
                        out.push(c);
                        *pos += c.len_utf8();
                    }
                    None => return Err("unterminated string".to_string()),
                }
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u32, String> {
    let chunk = b.get(at..at + 4).ok_or("truncated \\u escape")?;
    let text = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
    u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape {text:?}"))
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect_byte(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']', found {other:?}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    expect_byte(b, pos, b'{')?;
    let mut entries = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(entries));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect_byte(b, pos, b':')?;
        let value = parse_value(b, pos, depth + 1)?;
        entries.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Trace schema validation
// ---------------------------------------------------------------------------

/// Summary returned by a successful [`validate_trace`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Number of records in the trace.
    pub records: usize,
    /// Which of stages 1..=6 opened a span (index = stage - 1).
    pub stages_seen: [bool; 6],
    /// Whether the trace ends with a `run_end` record.
    pub ended: bool,
    /// `strip_progress` records seen (stage-1 strip scheduler).
    pub strip_progress: usize,
    /// `strip_steal` records with `stolen: true` (work stealing).
    pub strip_steals: usize,
    /// `strip_steal` records total (home claims + steals).
    pub strip_claims: usize,
    /// `interrupt` records seen (cancel / deadline / stall diagnoses).
    pub interrupts: usize,
    /// `job_submit` records seen (serve-mode per-job traces).
    pub jobs: usize,
}

struct TraceState {
    last_t: f64,
    begun: bool,
    ended: bool,
    job_submitted: bool,
    job_done: bool,
    open_stage: Option<u8>,
    last_closed: u8,
    check: TraceCheck,
}

/// Check a whole NDJSON trace against the DESIGN.md §10 schema:
/// every line parses, required fields are present and typed, timestamps
/// are non-decreasing, and spans nest (`run_begin` first, stages open
/// and close in ascending order one at a time, stage-scoped records fall
/// inside a stage span, nothing follows `run_end` except a terminal
/// `job_end`, nothing at all follows `job_end`).
///
/// A trace with no `run_begin` is [`TraceError::Empty`] **unless** it is
/// a completed job stream (`job_submit` … `job_end`): a job cancelled
/// while queued, or served from the result cache, legitimately never
/// opens a run, and its explicitly-terminated trace still validates.
pub fn validate_trace(text: &str) -> Result<TraceCheck, TraceError> {
    let mut st = TraceState {
        last_t: 0.0,
        begun: false,
        ended: false,
        job_submitted: false,
        job_done: false,
        open_stage: None,
        last_closed: 0,
        check: TraceCheck::default(),
    };
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_record(&mut st, line)
            .map_err(|msg| TraceError::Schema { line: lineno + 1, msg })?;
    }
    if !st.begun && !st.job_done {
        return Err(TraceError::Empty);
    }
    st.check.ended = st.ended;
    Ok(st.check)
}

fn req_num(obj: &Json, key: &str) -> Result<f64, String> {
    let v = obj
        .get(key)
        .ok_or_else(|| format!("missing field {key:?}"))?
        .num()
        .ok_or_else(|| format!("field {key:?} is not a number"))?;
    if !v.is_finite() {
        return Err(format!("field {key:?} is not finite"));
    }
    Ok(v)
}

fn req_stage(obj: &Json) -> Result<u8, String> {
    let v = req_num(obj, "stage")?;
    if !(1.0..=6.0).contains(&v) || v.fract() != 0.0 {
        return Err(format!("stage {v} out of range 1..=6"));
    }
    Ok(v as u8)
}

fn validate_record(st: &mut TraceState, line: &str) -> Result<(), String> {
    let obj = parse_json(line).map_err(|e| e.to_string())?;
    if obj.entries().is_none() {
        return Err("record is not a JSON object".to_string());
    }
    let ev = obj.get("ev").and_then(Json::str_val).ok_or("missing or non-string \"ev\" field")?;
    if st.job_done {
        return Err("record after job_end".to_string());
    }
    if st.ended && ev != "job_end" {
        return Err("record after run_end".to_string());
    }
    let t = req_num(&obj, "t")?;
    if t < st.last_t {
        return Err(format!("timestamp went backwards ({} -> {t})", st.last_t));
    }
    st.last_t = t;
    if ev == "job_submit" {
        if st.job_submitted {
            return Err("duplicate job_submit".to_string());
        }
        if st.begun {
            return Err("job_submit after run_begin".to_string());
        }
        st.job_submitted = true;
        req_num(&obj, "job")?;
        let fp = obj
            .get("fingerprint")
            .and_then(Json::str_val)
            .ok_or("missing or non-string \"fingerprint\" field")?;
        if fp.len() != 16 || !fp.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("fingerprint {fp:?} is not 16 hex digits"));
        }
        req_num(&obj, "m")?;
        req_num(&obj, "n")?;
        req_num(&obj, "priority")?;
        req_num(&obj, "queued")?;
        st.check.jobs += 1;
        st.check.records += 1;
        return Ok(());
    }
    if ev == "job_start" {
        if !st.job_submitted {
            return Err("job_start before job_submit".to_string());
        }
        if st.begun {
            return Err("job_start after run_begin".to_string());
        }
        req_num(&obj, "job")?;
        obj.get("cached").and_then(Json::bool_val).ok_or("missing or non-bool \"cached\" field")?;
        st.check.records += 1;
        return Ok(());
    }
    if ev == "job_end" {
        if !st.job_submitted {
            return Err("job_end before job_submit".to_string());
        }
        req_num(&obj, "job")?;
        let outcome = obj
            .get("outcome")
            .and_then(Json::str_val)
            .ok_or("missing or non-string \"outcome\" field")?;
        match outcome {
            // A run that claims success must actually have run to
            // completion; a cache hit must not carry run records.
            "ok" if !st.ended => return Err("outcome \"ok\" without run_end".to_string()),
            "cached" if st.begun => {
                return Err("outcome \"cached\" on a trace with run records".to_string());
            }
            "ok" | "cached" | "cancelled" | "deadline" | "stalled" | "failed" => {}
            other => return Err(format!("unknown job outcome {other:?}")),
        }
        req_num(&obj, "seconds")?;
        st.job_done = true;
        st.check.records += 1;
        return Ok(());
    }
    if ev == "run_begin" {
        if st.begun {
            return Err("duplicate run_begin".to_string());
        }
        st.begun = true;
        let total = req_num(&obj, "total_diagonals")?;
        let resumed = req_num(&obj, "resumed_from_diagonal")?;
        req_num(&obj, "m")?;
        req_num(&obj, "n")?;
        if resumed > total {
            return Err("resumed_from_diagonal exceeds total_diagonals".to_string());
        }
        st.check.records += 1;
        return Ok(());
    }
    if !st.begun {
        return Err(format!("{ev:?} before run_begin"));
    }
    match ev {
        "stage_begin" => {
            let stage = req_stage(&obj)?;
            if let Some(open) = st.open_stage {
                return Err(format!("stage {stage} begins inside open stage {open}"));
            }
            if stage <= st.last_closed {
                return Err(format!("stage {stage} begins after stage {} closed", st.last_closed));
            }
            st.open_stage = Some(stage);
            st.check.stages_seen[usize::from(stage) - 1] = true;
        }
        "stage_end" => {
            let stage = req_stage(&obj)?;
            req_num(&obj, "seconds")?;
            req_num(&obj, "cells")?;
            if st.open_stage != Some(stage) {
                return Err(format!("stage {stage} ends but open stage is {:?}", st.open_stage));
            }
            st.open_stage = None;
            st.last_closed = stage;
        }
        "diagonal" => {
            let stage = req_stage(&obj)?;
            in_open_stage(st, stage, ev)?;
            let done = req_num(&obj, "done")?;
            let total = req_num(&obj, "total")?;
            if done > total {
                return Err(format!("diagonal done {done} exceeds total {total}"));
            }
        }
        "strip_progress" => {
            let stage = req_stage(&obj)?;
            in_open_stage(st, stage, ev)?;
            req_num(&obj, "worker")?;
            req_num(&obj, "strip")?;
            let done = req_num(&obj, "rows_done")?;
            let total = req_num(&obj, "rows_total")?;
            if done > total {
                return Err(format!("strip_progress rows_done {done} exceeds total {total}"));
            }
            st.check.strip_progress += 1;
        }
        "strip_steal" => {
            let stage = req_stage(&obj)?;
            in_open_stage(st, stage, ev)?;
            req_num(&obj, "worker")?;
            req_num(&obj, "strip")?;
            let stolen = obj
                .get("stolen")
                .and_then(Json::bool_val)
                .ok_or("missing or non-bool \"stolen\" field")?;
            st.check.strip_claims += 1;
            if stolen {
                st.check.strip_steals += 1;
            }
        }
        "strip" => {
            let stage = req_stage(&obj)?;
            in_open_stage(st, stage, ev)?;
            req_num(&obj, "index")?;
            req_num(&obj, "height")?;
            req_num(&obj, "width")?;
        }
        "partitions" => {
            let stage = req_stage(&obj)?;
            in_open_stage(st, stage, ev)?;
            req_num(&obj, "count")?;
        }
        "partition" => {
            let stage = req_stage(&obj)?;
            in_open_stage(st, stage, ev)?;
            req_num(&obj, "index")?;
            req_num(&obj, "height")?;
            req_num(&obj, "width")?;
        }
        "iteration" => {
            let stage = req_stage(&obj)?;
            in_open_stage(st, stage, ev)?;
            req_num(&obj, "index")?;
            req_num(&obj, "crosspoints")?;
            req_num(&obj, "cells")?;
            req_num(&obj, "seconds")?;
        }
        "storage_flush" | "storage_drop" => {
            if st.open_stage.is_none() {
                return Err(format!("{ev} outside any stage span"));
            }
            let store = obj
                .get("store")
                .and_then(Json::str_val)
                .ok_or("missing or non-string \"store\" field")?;
            if store != "sra" && store != "sca" {
                return Err(format!("unknown store {store:?}"));
            }
            req_num(&obj, "index")?;
            if ev == "storage_flush" {
                req_num(&obj, "bytes")?;
            }
        }
        "kernel" => {
            let stage = req_stage(&obj)?;
            in_open_stage(st, stage, ev)?;
            for key in [
                "striped8",
                "striped8_fb16",
                "striped16",
                "fallback",
                "profile_hits",
                "profile_misses",
            ] {
                let v = req_num(&obj, key)?;
                if v < 0.0 {
                    return Err(format!("negative {key} {v}"));
                }
            }
        }
        "checkpoint" => {
            if st.open_stage.is_none() {
                return Err("checkpoint outside any stage span".to_string());
            }
            req_num(&obj, "diagonal")?;
            obj.get("ok").and_then(Json::bool_val).ok_or("missing or non-bool \"ok\" field")?;
        }
        "interrupt" => {
            // Interruption is terminal and may surface inside or after a
            // stage span (the interrupted stage never emits stage_end),
            // so only the stage *number* is validated, not span nesting.
            req_stage(&obj)?;
            let kind = obj
                .get("kind")
                .and_then(Json::str_val)
                .ok_or("missing or non-string \"kind\" field")?;
            if !matches!(kind, "cancelled" | "deadline" | "stalled") {
                return Err(format!("unknown interrupt kind {kind:?}"));
            }
            req_num(&obj, "diagonal")?;
            let latency = req_num(&obj, "latency_ms")?;
            if latency < 0.0 {
                return Err(format!("negative latency_ms {latency}"));
            }
            st.check.interrupts += 1;
        }
        "stall_diag" => {
            req_stage(&obj)?;
            req_num(&obj, "front")?;
            for key in ["published", "claims", "blocks"] {
                let items = obj
                    .get(key)
                    .and_then(Json::arr)
                    .ok_or_else(|| format!("missing or non-array {key:?} field"))?;
                if let Some(bad) = items.iter().find(|v| v.num().is_none()) {
                    return Err(format!("non-numeric entry {bad:?} in {key:?}"));
                }
            }
        }
        "metrics" => {
            for section in ["counters", "gauges"] {
                let entries = obj
                    .get(section)
                    .and_then(Json::entries)
                    .ok_or_else(|| format!("missing or non-object {section:?} field"))?;
                for (k, v) in entries {
                    if v.num().is_none() {
                        return Err(format!("{section}.{k} is not a number"));
                    }
                }
            }
        }
        "run_end" => {
            if let Some(open) = st.open_stage {
                return Err(format!("run_end with stage {open} still open"));
            }
            req_num(&obj, "seconds")?;
            req_num(&obj, "best_score")?;
            st.ended = true;
        }
        other => return Err(format!("unknown record type {other:?}")),
    }
    st.check.records += 1;
    Ok(())
}

fn in_open_stage(st: &TraceState, stage: u8, ev: &str) -> Result<(), String> {
    if st.open_stage == Some(stage) {
        Ok(())
    } else {
        Err(format!("{ev} for stage {stage} but open stage is {:?}", st.open_stage))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Emit a miniature but schema-complete run through a TraceWriter and
    /// return the NDJSON text.
    fn sample_trace(resumed: usize) -> String {
        let clk = ManualClock::new();
        let mut tw = TraceWriter::new(Vec::new());
        {
            let mut obs = Obs::with_clock(Box::new(&clk));
            obs.add_recorder(&mut tw);
            obs.emit(Event::RunBegin {
                m: 64,
                n: 48,
                total_diagonals: 10,
                resumed_from_diagonal: resumed,
            });
            obs.emit(Event::StageBegin { stage: 1 });
            for d in resumed..10 {
                clk.advance(Duration::from_millis(100));
                obs.emit(Event::Diagonal { stage: 1, done: d + 1, total: 10 });
                if d == resumed + 1 {
                    obs.emit(Event::Checkpoint { diagonal: d + 1, ok: true });
                    obs.emit(Event::StorageFlush { store: "sra", index: 16, bytes: 392 });
                }
            }
            obs.emit(Event::Kernel {
                stage: 1,
                striped8: 4,
                striped8_fb16: 2,
                striped16: 1,
                fallback: 0,
                profile_hits: 3,
                profile_misses: 1,
            });
            obs.emit(Event::StageEnd { stage: 1, seconds: 1.0, cells: 64 * 48 });
            obs.emit(Event::StageBegin { stage: 2 });
            obs.emit(Event::Strip { stage: 2, index: 1, height: 20, width: 40 });
            obs.emit(Event::StorageFlush { store: "sca", index: 7, bytes: 168 });
            obs.emit(Event::StorageDrop { store: "sra", index: 16 });
            obs.emit(Event::Kernel {
                stage: 2,
                striped8: 0,
                striped8_fb16: 1,
                striped16: 0,
                fallback: 1,
                profile_hits: 0,
                profile_misses: 2,
            });
            obs.emit(Event::StageEnd { stage: 2, seconds: 0.1, cells: 800 });
            obs.emit(Event::StageBegin { stage: 3 });
            obs.emit(Event::Partitions { stage: 3, count: 1 });
            obs.emit(Event::Partition { stage: 3, index: 0, height: 20, width: 40 });
            obs.emit(Event::StageEnd { stage: 3, seconds: 0.05, cells: 400 });
            obs.emit(Event::StageBegin { stage: 4 });
            obs.emit(Event::Iteration {
                stage: 4,
                index: 1,
                crosspoints: 5,
                cells: 200,
                seconds: 0.01,
            });
            obs.emit(Event::StageEnd { stage: 4, seconds: 0.02, cells: 200 });
            obs.emit(Event::StageBegin { stage: 5 });
            obs.emit(Event::Partitions { stage: 5, count: 4 });
            obs.emit(Event::StageEnd { stage: 5, seconds: 0.01, cells: 100 });
            obs.emit(Event::StageBegin { stage: 6 });
            obs.emit(Event::StageEnd { stage: 6, seconds: 0.0, cells: 0 });
            obs.metrics.set("stage1.cells", 64 * 48);
            obs.metrics.set_gauge("total.seconds", 1.18);
            obs.emit(obs.metrics.to_event());
            obs.emit(Event::RunEnd { seconds: 1.18, best_score: 42 });
        }
        String::from_utf8(tw.finish().unwrap()).unwrap()
    }

    #[test]
    fn round_trip_trace_validates_and_covers_all_stages() {
        let text = sample_trace(0);
        let check = validate_trace(&text).unwrap();
        assert!(check.stages_seen.iter().all(|&s| s), "stages seen: {:?}", check.stages_seen);
        assert!(check.ended);
        assert_eq!(check.records, text.lines().filter(|l| !l.trim().is_empty()).count());
    }

    #[test]
    fn every_record_parses_as_standalone_json() {
        for line in sample_trace(3).lines() {
            let v = parse_json(line).unwrap();
            assert!(v.get("t").and_then(Json::num).is_some(), "no t in {line}");
            assert!(v.get("ev").and_then(Json::str_val).is_some(), "no ev in {line}");
        }
    }

    #[test]
    fn resumed_trace_reports_resume_diagonal() {
        let text = sample_trace(4);
        validate_trace(&text).unwrap();
        let first = parse_json(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("resumed_from_diagonal").and_then(Json::num), Some(4.0));
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        let ok = sample_trace(0);
        // A record after run_end.
        let extra = format!("{ok}\n{{\"t\":99,\"ev\":\"stage_begin\",\"stage\":1}}");
        assert!(validate_trace(&extra).unwrap_err().to_string().contains("after run_end"));
        // Unbalanced span: drop the stage_end records.
        let unbalanced: String =
            ok.lines().filter(|l| !l.contains("stage_end")).collect::<Vec<_>>().join("\n");
        assert!(validate_trace(&unbalanced).is_err());
        // Non-monotone timestamps.
        let back = "{\"t\":1,\"ev\":\"run_begin\",\"m\":1,\"n\":1,\"total_diagonals\":1,\"resumed_from_diagonal\":0}\n{\"t\":0.5,\"ev\":\"stage_begin\",\"stage\":1}";
        assert!(validate_trace(back).unwrap_err().to_string().contains("backwards"));
        // Missing required field.
        let missing = "{\"t\":0,\"ev\":\"run_begin\",\"m\":1,\"n\":1,\"total_diagonals\":1}";
        assert!(validate_trace(missing).unwrap_err().to_string().contains("resumed_from_diagonal"));
        // Garbage line.
        assert!(validate_trace("not json").is_err());
        // Empty trace.
        assert!(validate_trace("").unwrap_err().to_string().contains("run_begin"));
    }

    #[test]
    fn job_records_frame_a_run_and_terminate_the_stream() {
        // Full serve-job trace: submit/start wrap a complete run, job_end
        // closes the stream.
        let run = sample_trace(0);
        let submit = "{\"t\":0,\"ev\":\"job_submit\",\"job\":3,\"fingerprint\":\"00d3adb33f000001\",\"m\":1,\"n\":1,\"priority\":5,\"queued\":2}";
        let start = "{\"t\":0,\"ev\":\"job_start\",\"job\":3,\"cached\":false}";
        let full = format!("{submit}\n{start}\n{run}\n{{\"t\":99,\"ev\":\"job_end\",\"job\":3,\"outcome\":\"ok\",\"seconds\":99}}");
        let check = validate_trace(&full).unwrap();
        assert!(check.ended);
        assert_eq!(check.jobs, 1);

        // A job cancelled while queued never opens a run, yet its
        // explicitly-terminated two-record stream validates (the
        // empty-trace fix).
        let cancelled = format!(
            "{submit}\n{{\"t\":1,\"ev\":\"job_end\",\"job\":3,\"outcome\":\"cancelled\",\"seconds\":1}}"
        );
        let check = validate_trace(&cancelled).unwrap();
        assert!(!check.ended);
        assert_eq!(check.jobs, 1);
        assert_eq!(check.records, 2);

        // Cache hit: start with cached=true, outcome "cached", no run.
        let hit = format!(
            "{submit}\n{{\"t\":1,\"ev\":\"job_start\",\"job\":3,\"cached\":true}}\n{{\"t\":1,\"ev\":\"job_end\",\"job\":3,\"outcome\":\"cached\",\"seconds\":1}}"
        );
        assert_eq!(validate_trace(&hit).unwrap().jobs, 1);
    }

    #[test]
    fn validator_rejects_malformed_job_records() {
        let submit = "{\"t\":0,\"ev\":\"job_submit\",\"job\":3,\"fingerprint\":\"00d3adb33f000001\",\"m\":1,\"n\":1,\"priority\":5,\"queued\":2}";
        let end_ok = "{\"t\":9,\"ev\":\"job_end\",\"job\":3,\"outcome\":\"ok\",\"seconds\":9}";
        // "ok" without a completed run is a lie.
        let lie = format!("{submit}\n{end_ok}");
        assert!(validate_trace(&lie).unwrap_err().to_string().contains("without run_end"));
        // "cached" with run records is a lie the other way.
        let run = sample_trace(0);
        let cached = format!(
            "{submit}\n{run}\n{{\"t\":99,\"ev\":\"job_end\",\"job\":3,\"outcome\":\"cached\",\"seconds\":99}}"
        );
        assert!(validate_trace(&cached).unwrap_err().to_string().contains("cached"));
        // Nothing may follow job_end.
        let tail = format!(
            "{submit}\n{{\"t\":1,\"ev\":\"job_end\",\"job\":3,\"outcome\":\"failed\",\"seconds\":1}}\n{submit}"
        );
        assert!(validate_trace(&tail).unwrap_err().to_string().contains("after job_end"));
        // job_end needs its submit; a fingerprint must be 16 hex digits.
        assert!(validate_trace(end_ok).unwrap_err().to_string().contains("before job_submit"));
        let bad_fp = submit.replace("00d3adb33f000001", "xyz");
        assert!(validate_trace(&bad_fp).unwrap_err().to_string().contains("hex"));
        // A submit with no terminal record is still an empty run.
        assert!(matches!(validate_trace(submit), Err(TraceError::Empty)));
    }

    #[test]
    fn progress_is_resume_aware_and_eta_uses_this_runs_rate() {
        let mut p = Progress::new();
        let t0 = Duration::ZERO;
        p.record(
            t0,
            &Event::RunBegin { m: 100, n: 100, total_diagonals: 100, resumed_from_diagonal: 40 },
        );
        p.record(t0, &Event::StageBegin { stage: 1 });
        // Progress starts at the resumed diagonal, not zero.
        assert_eq!(p.percent(), Some(40.0));
        assert_eq!(p.eta_seconds(), None);
        // 30 fresh diagonals in 10 seconds -> 3/s; 30 remain -> ETA 10s.
        p.record(Duration::from_secs(10), &Event::Diagonal { stage: 1, done: 70, total: 100 });
        assert_eq!(p.percent(), Some(70.0));
        let eta = p.eta_seconds().unwrap();
        assert!((eta - 10.0).abs() < 1e-9, "eta = {eta}");
        let line = p.render().unwrap();
        assert!(line.contains("70.0%"), "{line}");
        assert!(line.contains("diagonal 70/100"), "{line}");
        // Later stages render a simple stage marker.
        p.record(Duration::from_secs(21), &Event::StageEnd { stage: 1, seconds: 21.0, cells: 1 });
        p.record(Duration::from_secs(21), &Event::StageBegin { stage: 4 });
        assert_eq!(p.render().unwrap(), "align: stage 4/6");
        p.record(Duration::from_secs(22), &Event::RunEnd { seconds: 22.0, best_score: 1 });
        assert_eq!(p.render(), None);
    }

    #[test]
    fn metrics_registry_counts_and_dumps_sorted() {
        let mut m = Metrics::new();
        m.inc("b.cells", 5);
        m.inc("b.cells", 7);
        m.set("a.rows", 3);
        m.set_gauge("z.seconds", 1.5);
        m.add_gauge("z.seconds", 0.25);
        assert_eq!(m.get("b.cells"), 12);
        assert_eq!(m.get("a.rows"), 3);
        assert_eq!(m.get("missing"), 0);
        assert!((m.gauge("z.seconds") - 1.75).abs() < 1e-12);
        match m.to_event() {
            Event::Metrics { counters, gauges } => {
                assert_eq!(counters, vec![("a.rows".to_string(), 3), ("b.cells".to_string(), 12)]);
                assert_eq!(gauges.len(), 1);
                assert_eq!(gauges[0].0, "z.seconds");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn json_parser_handles_escapes_and_rejects_garbage() {
        let v = parse_json(r#"{"k":"a\"b\\c\nd\u0041","n":-1.5e2,"b":[true,false,null]}"#).unwrap();
        assert_eq!(v.get("k").and_then(Json::str_val), Some("a\"b\\c\ndA"));
        assert_eq!(v.get("n").and_then(Json::num), Some(-150.0));
        assert_eq!(
            v.get("b"),
            Some(&Json::Arr(vec![Json::Bool(true), Json::Bool(false), Json::Null]))
        );
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "1 2", "\"\\q\""] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
        // Escaping round-trips through our own encoder.
        let tricky = "quote\" slash\\ tab\t nl\n ctrl\u{1}";
        let encoded = format!("{{\"s\":\"{}\"}}", json_escape(tricky));
        let parsed = parse_json(&encoded).unwrap();
        assert_eq!(parsed.get("s").and_then(Json::str_val), Some(tricky));
    }

    #[test]
    fn trace_writer_reports_sticky_write_errors() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut tw = TraceWriter::new(Failing);
        tw.record(Duration::ZERO, &Event::StageBegin { stage: 1 });
        tw.record(Duration::ZERO, &Event::StageBegin { stage: 2 });
        assert_eq!(tw.records(), 0);
        assert!(tw.error().is_some_and(|e| e.contains("disk full")));
        assert!(tw.finish().is_err());
    }

    #[test]
    fn interrupted_trace_validates_without_run_end() {
        let clk = ManualClock::new();
        let mut tw = TraceWriter::new(Vec::new());
        {
            let mut obs = Obs::with_clock(Box::new(&clk));
            obs.add_recorder(&mut tw);
            obs.emit(Event::RunBegin {
                m: 64,
                n: 48,
                total_diagonals: 10,
                resumed_from_diagonal: 0,
            });
            obs.emit(Event::StageBegin { stage: 1 });
            clk.advance(Duration::from_millis(40));
            obs.emit(Event::Diagonal { stage: 1, done: 3, total: 10 });
            obs.emit(Event::Interrupt { stage: 1, kind: "stalled", diagonal: 3, latency_ms: 12.5 });
            obs.emit(Event::StallDiag {
                stage: 1,
                front: 3,
                published: vec![4, 3, 0],
                claims: vec![2, 1],
                blocks: vec![9, 5],
            });
        }
        let text = String::from_utf8(tw.finish().unwrap()).unwrap();
        let check = validate_trace(&text).unwrap();
        assert!(!check.ended, "interrupted trace must not count as ended");
        assert_eq!(check.interrupts, 1);
        // The arrays survive the round trip through the encoder.
        let diag = text.lines().find(|l| l.contains("stall_diag")).unwrap();
        let v = parse_json(diag).unwrap();
        assert_eq!(v.get("published").and_then(Json::arr).map(<[Json]>::len), Some(3));
        assert_eq!(v.get("claims").and_then(Json::arr).map(<[Json]>::len), Some(2));
        assert_eq!(v.get("front").and_then(Json::num), Some(3.0));
    }

    #[test]
    fn validator_rejects_malformed_interrupt_records() {
        let head = "{\"t\":0,\"ev\":\"run_begin\",\"m\":1,\"n\":1,\"total_diagonals\":1,\"resumed_from_diagonal\":0}";
        let bad_kind = format!(
            "{head}\n{{\"t\":1,\"ev\":\"interrupt\",\"stage\":1,\"kind\":\"bored\",\"diagonal\":0,\"latency_ms\":0}}"
        );
        assert!(validate_trace(&bad_kind)
            .unwrap_err()
            .to_string()
            .contains("unknown interrupt kind"));
        let neg_latency = format!(
            "{head}\n{{\"t\":1,\"ev\":\"interrupt\",\"stage\":1,\"kind\":\"deadline\",\"diagonal\":0,\"latency_ms\":-3}}"
        );
        assert!(validate_trace(&neg_latency)
            .unwrap_err()
            .to_string()
            .contains("negative latency_ms"));
        let bad_diag = format!(
            "{head}\n{{\"t\":1,\"ev\":\"stall_diag\",\"stage\":1,\"front\":0,\"published\":[1,\"x\"],\"claims\":[],\"blocks\":[]}}"
        );
        assert!(validate_trace(&bad_diag).unwrap_err().to_string().contains("non-numeric"));
        let missing_arr = format!(
            "{head}\n{{\"t\":1,\"ev\":\"stall_diag\",\"stage\":1,\"front\":0,\"published\":[],\"claims\":[]}}"
        );
        assert!(validate_trace(&missing_arr).unwrap_err().to_string().contains("blocks"));
    }

    #[test]
    fn shared_clock_clones_share_time_across_threads() {
        let clk = SharedClock::new();
        let obs = Obs::with_clock(Box::new(clk.clone()));
        assert_eq!(obs.now(), Duration::ZERO);
        let remote = clk.clone();
        std::thread::scope(|s| {
            s.spawn(move || remote.advance(Duration::from_millis(300)));
        });
        assert_eq!(obs.now(), Duration::from_millis(300));
        clk.set(Duration::from_secs(2));
        assert_eq!(clk.now(), Duration::from_secs(2));
    }

    #[test]
    fn manual_clock_drives_obs_time() {
        let clk = ManualClock::new();
        let obs = Obs::with_clock(Box::new(&clk));
        assert_eq!(obs.now(), Duration::ZERO);
        clk.advance(Duration::from_millis(250));
        assert_eq!(obs.now(), Duration::from_millis(250));
        clk.set(Duration::from_secs(5));
        assert_eq!(obs.now(), Duration::from_secs(5));
    }
}
