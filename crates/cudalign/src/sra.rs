//! The Special Rows Area (SRA) and its column twin.
//!
//! Stage 1 flushes selected DP rows (`H`/`F` per cell, 8 bytes) to a
//! budgeted storage area; Stage 2 reads them back for its matching
//! procedure and writes special *columns* (`H`/`E`) the same way for
//! Stage 3. [`LineStore`] implements both, with a RAM backend for tests
//! and a disk backend that mirrors the paper's on-disk area.
//!
//! Lines are written in *segments* as the wavefront's blocks complete
//! (the "shifted bus" of Figure 5: a special row is scattered across the
//! blocks of an external diagonal and becomes whole only after several
//! diagonals); a line becomes readable once every cell has arrived.
//!
//! Disk persistence goes through [`crate::storage`]: every line file is a
//! checksummed frame carrying the job fingerprint, written atomically.
//! Failures *degrade* instead of panicking — an unwritable line is
//! dropped (the pipeline tolerates fewer special lines; partitions just
//! grow) and a corrupt or stale line surfaces as a typed
//! [`StorageError`] for the caller to drop and count. [`StoreStats`]
//! records every such event for [`crate::PipelineStats`].

use crate::config::SraBackend;
use crate::storage::{self, FrameMeta, StorageError};
use gpu_sim::{CellHE, CellHF};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use sw_core::scoring::Score;

/// Bytes per stored cell (two 4-byte values — the paper's layout).
pub const CELL_BYTES: u64 = 8;

/// The [`Score`] stored little-endian at byte offset `at` of a cell.
/// Out-of-range reads are zero-filled rather than panicking; callers only
/// pass offsets 0 and 4 of an 8-byte cell.
fn score_at(b: &[u8; 8], at: usize) -> Score {
    let mut le = [0u8; 4];
    for (d, s) in le.iter_mut().zip(b.iter().skip(at)) {
        *d = *s;
    }
    Score::from_le_bytes(le)
}

/// An owned 8-byte cell from a slice; shorter input is zero-padded (the
/// framing layer has already length-checked every payload it hands out).
fn cell8(c: &[u8]) -> [u8; 8] {
    let mut b = [0u8; 8];
    for (d, s) in b.iter_mut().zip(c) {
        *d = *s;
    }
    b
}

/// A bus cell that can be stored in a [`LineStore`].
pub trait BusCell: Copy + Send + 'static {
    /// Encode into 8 little-endian bytes.
    fn encode(self) -> [u8; 8];
    /// Decode from 8 little-endian bytes.
    fn decode(bytes: [u8; 8]) -> Self;
}

impl BusCell for CellHF {
    fn encode(self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[..4].copy_from_slice(&self.h.to_le_bytes());
        out[4..].copy_from_slice(&self.f.to_le_bytes());
        out
    }
    fn decode(b: [u8; 8]) -> Self {
        CellHF { h: score_at(&b, 0), f: score_at(&b, 4) }
    }
}

impl BusCell for CellHE {
    fn encode(self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[..4].copy_from_slice(&self.h.to_le_bytes());
        out[4..].copy_from_slice(&self.e.to_le_bytes());
        out
    }
    fn decode(b: [u8; 8]) -> Self {
        CellHE { h: score_at(&b, 0), e: score_at(&b, 4) }
    }
}

/// The paper's flush interval: the number of block rows between special
/// rows must be at least `ceil(8 m n / (alpha T |SRA|))` so the area never
/// overflows (Section IV-B). Returns `max(1, ...)`.
pub fn flush_interval(m: usize, n: usize, block_height: usize, sra_bytes: u64) -> usize {
    if sra_bytes == 0 {
        return usize::MAX;
    }
    let numer = (CELL_BYTES as u128) * (m as u128) * (n as u128);
    let denom = (block_height as u128) * (sra_bytes as u128);
    let interval = numer.div_ceil(denom.max(1));
    (interval.min(usize::MAX as u128) as usize).max(1)
}

/// Storage-health counters of one [`LineStore`], aggregated into
/// [`crate::PipelineStats`] so an operator can see a degraded run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Completed lines abandoned because their disk write failed after
    /// retries (ENOSPC, persistent I/O error). The run continues with
    /// fewer special lines.
    pub dropped_lines: u64,
    /// Transient write failures that a retry recovered.
    pub write_retries: u64,
    /// Files rejected during [`LineStore::reopen`] (truncated,
    /// bit-flipped, misnamed, or carrying a foreign job fingerprint).
    pub rejected_files: u64,
    /// Orphaned files swept by [`LineStore::new`] (left behind by a
    /// crashed prior run) plus stale tmp siblings removed on reopen.
    pub swept_files: u64,
}

impl StoreStats {
    /// Element-wise sum (for aggregating the row and column stores).
    pub fn merged(self, other: StoreStats) -> StoreStats {
        StoreStats {
            dropped_lines: self.dropped_lines + other.dropped_lines,
            write_retries: self.write_retries + other.write_retries,
            rejected_files: self.rejected_files + other.rejected_files,
            swept_files: self.swept_files + other.swept_files,
        }
    }
}

enum Stored<T> {
    Memory(Vec<T>),
    Disk(PathBuf),
}

struct Line<T> {
    origin: usize,
    len: usize,
    data: Stored<T>,
}

struct Partial<T> {
    origin: usize,
    filled: usize,
    cells: Vec<Option<T>>,
}

/// A budgeted store of special lines (rows or columns).
pub struct LineStore<T: BusCell> {
    budget: u64,
    used: u64,
    dir: Option<PathBuf>,
    prefix: &'static str,
    fingerprint: u64,
    persist: bool,
    stats: StoreStats,
    lines: BTreeMap<usize, Line<T>>,
    partial: HashMap<usize, Partial<T>>,
}

impl<T: BusCell> LineStore<T> {
    fn fresh(
        backend: &SraBackend,
        budget: u64,
        prefix: &'static str,
        fingerprint: u64,
    ) -> Result<Self, StorageError> {
        let dir = match backend {
            SraBackend::Memory => None,
            SraBackend::Disk(d) => {
                storage::ensure_dir(d)?;
                Some(d.clone())
            }
        };
        Ok(LineStore {
            budget,
            used: 0,
            dir,
            prefix,
            fingerprint,
            persist: false,
            stats: StoreStats::default(),
            lines: BTreeMap::new(),
            partial: HashMap::new(),
        })
    }

    /// Files in this store's directory that belong to this store's prefix:
    /// `<prefix>-<index>-<origin>.bin` plus their `.tmp` staging siblings.
    fn own_files(&self) -> Result<Vec<(PathBuf, bool /* is_tmp */)>, StorageError> {
        let Some(dir) = &self.dir else { return Ok(Vec::new()) };
        let mut out = Vec::new();
        for path in storage::list_dir(dir)? {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            if !name.starts_with(&format!("{}-", self.prefix)) {
                continue;
            }
            if name.ends_with(".bin") {
                out.push((path, false));
            } else if name.ends_with(".bin.tmp") {
                out.push((path, true));
            }
        }
        Ok(out)
    }

    /// Create a store with the given budget. `prefix` names disk files
    /// (`<prefix>-<index>-<origin>.bin`); `fingerprint` identifies the job
    /// (see [`storage::job_fingerprint`]) and is stamped into every frame.
    ///
    /// On a disk backend, orphaned files under this prefix — left behind
    /// by a crashed prior run — are swept (deleted and counted in
    /// [`StoreStats::swept_files`]): a *fresh* store must never silently
    /// coexist with stale state it would otherwise leak forever.
    pub fn new(
        backend: &SraBackend,
        budget: u64,
        prefix: &'static str,
        fingerprint: u64,
    ) -> Result<Self, StorageError> {
        let mut store = Self::fresh(backend, budget, prefix, fingerprint)?;
        for (path, _) in store.own_files()? {
            if storage::remove_file_quiet(&path) {
                store.stats.swept_files += 1;
            }
        }
        Ok(store)
    }

    /// Rebuild a disk-backed store's index from the files a previous run
    /// left behind (crash-recovery for Stage 1's special rows). Every
    /// candidate file is fully validated — magic, job fingerprint, header
    /// vs. file name, payload length, CRC32 — before adoption; files that
    /// fail any check (truncated, bit-flipped, misnamed, foreign job) are
    /// deleted and counted in [`StoreStats::rejected_files`], never
    /// decoded into cells. Stale `.tmp` siblings from an interrupted write
    /// are swept. Completed lines beyond the budget are dropped (and their
    /// files deleted), smallest index first.
    pub fn reopen(
        backend: &SraBackend,
        budget: u64,
        prefix: &'static str,
        fingerprint: u64,
    ) -> Result<Self, StorageError> {
        let mut store = Self::fresh(backend, budget, prefix, fingerprint)?;
        let mut found: Vec<(usize, usize, PathBuf)> = Vec::new();
        for (path, is_tmp) in store.own_files()? {
            if is_tmp {
                // An interrupted write: the frame never made it to its
                // final name, so nothing references it.
                if storage::remove_file_quiet(&path) {
                    store.stats.swept_files += 1;
                }
                continue;
            }
            let named = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_prefix(&format!("{prefix}-")))
                .and_then(|n| n.strip_suffix(".bin"))
                .and_then(|rest| {
                    let (idx, origin) = rest.split_once('-')?;
                    Some((idx.parse::<usize>().ok()?, origin.parse::<usize>().ok()?))
                });
            let Some((idx, origin)) = named else {
                // Matches the prefix but not the naming scheme: reject.
                storage::remove_file_quiet(&path);
                store.stats.rejected_files += 1;
                continue;
            };
            match storage::read_frame(&path, fingerprint) {
                Ok((meta, _)) if meta.index == idx as u64 && meta.origin == origin as u64 => {
                    found.push((idx, origin, path));
                }
                // Valid frame under the wrong name (copied/renamed by
                // hand, or cross-linked by a sick filesystem): the name is
                // what indexing trusts, so treat as corrupt.
                Ok(_) | Err(_) => {
                    storage::remove_file_quiet(&path);
                    store.stats.rejected_files += 1;
                }
            }
        }
        found.sort();
        for (idx, origin, path) in found {
            let len_bytes = storage::file_len(&path)
                .map(|len| len.saturating_sub(storage::FRAME_HEADER_BYTES as u64))
                .unwrap_or(0);
            if store.used + len_bytes > budget {
                if storage::remove_file_quiet(&path) {
                    store.stats.swept_files += 1;
                }
                continue;
            }
            store.used += len_bytes;
            store.lines.insert(
                idx,
                Line { origin, len: (len_bytes / CELL_BYTES) as usize, data: Stored::Disk(path) },
            );
        }
        Ok(store)
    }

    /// Keep (or stop keeping) disk files alive past this store's drop.
    /// The pipeline sets this when checkpointing is on, so an error
    /// return — or a simulated crash — leaves the special lines on disk
    /// for the resumed run to [`LineStore::reopen`].
    pub fn persist_on_drop(&mut self, persist: bool) {
        self.persist = persist;
    }

    /// Storage-health counters accumulated so far.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The job fingerprint this store stamps into its frames.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Begin accepting segments for line `index`, covering coordinates
    /// `origin .. origin + len`. Returns `false` (and tracks nothing) when
    /// the line would exceed the budget.
    pub fn try_begin_line(&mut self, index: usize, origin: usize, len: usize) -> bool {
        let bytes = CELL_BYTES * len as u64;
        if self.used + bytes > self.budget {
            return false;
        }
        if self.lines.contains_key(&index) || self.partial.contains_key(&index) {
            return false;
        }
        self.used += bytes;
        self.partial.insert(index, Partial { origin, filled: 0, cells: vec![None; len] });
        true
    }

    /// Store a segment of line `index` starting at absolute coordinate
    /// `at`. Segments for untracked lines are ignored (returns `false`).
    /// Returns `true` when this segment completed the line.
    ///
    /// On the disk backend a completed line is persisted through
    /// [`storage::write_frame`] (atomic, retried). If the write still
    /// fails — disk full, persistent I/O error — the line is *dropped*:
    /// its budget is refunded, [`StoreStats::dropped_lines`] grows, and
    /// the store carries on. The pipeline is correct with any subset of
    /// special lines; a panic here would cost an 18-hour Stage 1.
    pub fn put_segment(&mut self, index: usize, at: usize, cells: impl Iterator<Item = T>) -> bool {
        let Some(p) = self.partial.get_mut(&index) else {
            return false;
        };
        // Out-of-range segments (possible via a corrupted restored
        // checkpoint) are rejected rather than panicking mid-resume.
        let Some(base) = at.checked_sub(p.origin) else {
            return false;
        };
        for (k, cell) in cells.enumerate() {
            let Some(slot) = p.cells.get_mut(base + k) else {
                return false;
            };
            if slot.is_none() {
                p.filled += 1;
            }
            *slot = Some(cell);
        }
        if p.filled != p.cells.len() {
            return false;
        }
        let Some(p) = self.partial.remove(&index) else { return false };
        let origin = p.origin;
        let len = p.cells.len();
        let data: Vec<T> = p.cells.into_iter().flatten().collect();
        debug_assert_eq!(data.len(), len, "filled == len guarantees no None cells");
        let stored = match &self.dir {
            None => Stored::Memory(data),
            Some(dir) => {
                let path = dir.join(format!("{}-{index}-{origin}.bin", self.prefix));
                let mut buf = Vec::with_capacity(len * CELL_BYTES as usize);
                for c in &data {
                    buf.extend_from_slice(&c.encode());
                }
                let meta = FrameMeta {
                    fingerprint: self.fingerprint,
                    index: index as u64,
                    origin: origin as u64,
                    len: len as u64,
                };
                match storage::write_frame(&path, &meta, &buf) {
                    Ok(retries) => {
                        self.stats.write_retries += retries as u64;
                        Stored::Disk(path)
                    }
                    Err(_) => {
                        // Degrade: drop this line, refund its budget.
                        self.used -= CELL_BYTES * len as u64;
                        self.stats.dropped_lines += 1;
                        return false;
                    }
                }
            }
        };
        self.lines.insert(index, Line { origin, len, data: stored });
        true
    }

    /// Completed line indices, ascending.
    pub fn indices(&self) -> Vec<usize> {
        self.lines.keys().copied().collect()
    }

    /// The greatest completed line strictly below `index`.
    pub fn previous_line(&self, index: usize) -> Option<usize> {
        self.lines.range(..index).next_back().map(|(k, _)| *k)
    }

    /// Completed line indices within `(lo, hi)` exclusive.
    pub fn lines_between(&self, lo: usize, hi: usize) -> Vec<usize> {
        if hi <= lo + 1 {
            return Vec::new();
        }
        self.lines.range(lo + 1..hi).map(|(k, _)| *k).collect()
    }

    /// Read a completed line: `Ok(Some((origin, cells)))`. Unknown indices
    /// are `Ok(None)`; a disk line that fails validation (truncated,
    /// bit-flipped, foreign) is a typed error — the caller decides whether
    /// to drop the line and degrade or abort the stage.
    pub fn get(&self, index: usize) -> Result<Option<(usize, Vec<T>)>, StorageError> {
        let Some(line) = self.lines.get(&index) else { return Ok(None) };
        let cells = match &line.data {
            Stored::Memory(v) => v.clone(),
            Stored::Disk(path) => {
                let (meta, payload) = storage::read_frame(path, self.fingerprint)?;
                if meta.index != index as u64 || meta.origin != line.origin as u64 {
                    return Err(StorageError::Corrupt {
                        path: path.clone(),
                        reason: format!(
                            "frame header names line {}@{}, store expected {index}@{}",
                            meta.index, meta.origin, line.origin
                        ),
                    });
                }
                payload.chunks_exact(8).map(|c| T::decode(cell8(c))).collect()
            }
        };
        Ok(Some((line.origin, cells)))
    }

    /// Serialize the in-flight (incomplete) lines — the state a Stage-1
    /// checkpoint must carry so a crash does not lose the special rows
    /// whose segments were mid-assembly (with `B` block columns, a row's
    /// segments span `B` external diagonals — the paper's Figure 5).
    ///
    /// Segment application is idempotent, so a partial snapshot taken at
    /// any diagonal composes correctly with an engine snapshot taken at a
    /// nearby one.
    pub fn encode_partials(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"SRAP");
        out.extend_from_slice(&(self.partial.len() as u64).to_le_bytes());
        let mut keys: Vec<&usize> = self.partial.keys().collect();
        keys.sort();
        for &index in keys {
            let p = &self.partial[&index];
            out.extend_from_slice(&(index as u64).to_le_bytes());
            out.extend_from_slice(&(p.origin as u64).to_le_bytes());
            out.extend_from_slice(&(p.cells.len() as u64).to_le_bytes());
            for cell in &p.cells {
                match cell {
                    None => out.push(0),
                    Some(c) => {
                        out.push(1);
                        out.extend_from_slice(&c.encode());
                    }
                }
            }
        }
        out
    }

    /// Restore in-flight lines from [`LineStore::encode_partials`] output.
    /// Lines already completed (or tracked) in this store are skipped;
    /// budget accounting is preserved. Returns `false` on malformed input.
    #[must_use]
    pub fn restore_partials(&mut self, bytes: &[u8]) -> bool {
        let mut pos = 0usize;
        let take = |pos: &mut usize, k: usize| -> Option<&[u8]> {
            let s = bytes.get(*pos..*pos + k)?;
            *pos += k;
            Some(s)
        };
        let Some(magic) = take(&mut pos, 4) else { return false };
        if magic != b"SRAP" {
            return false;
        }
        let Some(nb) = take(&mut pos, 8) else { return false };
        let n = u64::from_le_bytes(cell8(nb)) as usize;
        for _ in 0..n {
            let (Some(ib), Some(ob), Some(lb)) =
                (take(&mut pos, 8), take(&mut pos, 8), take(&mut pos, 8))
            else {
                return false;
            };
            let index = u64::from_le_bytes(cell8(ib)) as usize;
            let origin = u64::from_le_bytes(cell8(ob)) as usize;
            let len = u64::from_le_bytes(cell8(lb)) as usize;
            if bytes.len().saturating_sub(pos) < len {
                return false; // at least 1 byte per cell must remain
            }
            let mut cells: Vec<Option<T>> = Vec::with_capacity(len);
            let mut filled = 0usize;
            for _ in 0..len {
                let Some(tag) = take(&mut pos, 1) else { return false };
                if tag[0] == 0 {
                    cells.push(None);
                } else {
                    let Some(cb) = take(&mut pos, 8) else { return false };
                    cells.push(Some(T::decode(cell8(cb))));
                    filled += 1;
                }
            }
            if self.lines.contains_key(&index) || self.partial.contains_key(&index) {
                continue;
            }
            let cost = CELL_BYTES * len as u64;
            if self.used + cost > self.budget {
                continue;
            }
            self.used += cost;
            self.partial.insert(index, Partial { origin, filled, cells });
        }
        true
    }

    /// Abandon all incomplete lines, refunding their budget. Stage 2 calls
    /// this after each strip aborts early (goal found): partially filled
    /// columns past the abort point will never complete.
    pub fn abort_partials(&mut self) {
        for (_, p) in self.partial.drain() {
            self.used -= CELL_BYTES * p.cells.len() as u64;
        }
    }

    /// Drop a completed line, freeing its budget (and its disk file).
    pub fn remove(&mut self, index: usize) {
        if let Some(line) = self.lines.remove(&index) {
            self.used -= CELL_BYTES * line.len as u64;
            if let Stored::Disk(path) = line.data {
                storage::remove_file_quiet(&path);
            }
        }
    }

    /// Drop every line and partial, deleting all disk files. Called on the
    /// success path so a finished run leaves no state behind regardless of
    /// [`LineStore::persist_on_drop`].
    pub fn clear(&mut self) {
        let indices: Vec<usize> = self.lines.keys().copied().collect();
        for i in indices {
            self.remove(i);
        }
        self.abort_partials();
    }

    /// Bytes currently accounted against the budget.
    pub fn bytes_used(&self) -> u64 {
        self.used
    }

    /// The configured budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Number of completed lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when no line has been completed.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

impl<T: BusCell> Drop for LineStore<T> {
    fn drop(&mut self) {
        if self.dir.is_some() && !self.persist {
            let indices: Vec<usize> = self.lines.keys().copied().collect();
            for i in indices {
                self.remove(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::fault;
    use std::fs;
    use sw_core::scoring::NEG_INF;

    const FP: u64 = 0x5EED;

    fn hf(h: Score) -> CellHF {
        CellHF { h, f: h - 7 }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "cudalign-sra-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn flush_interval_matches_paper_formula() {
        // 8 m n / (alpha T |SRA|), rounded up.
        assert_eq!(flush_interval(1000, 1000, 100, 8_000_000), 1);
        assert_eq!(flush_interval(1000, 1000, 100, 80_000), 1);
        assert_eq!(flush_interval(10_000, 10_000, 256, 1 << 20), 3);
        assert_eq!(flush_interval(100, 100, 10, 0), usize::MAX);
    }

    #[test]
    fn segments_assemble_into_lines() {
        let mut store: LineStore<CellHF> =
            LineStore::new(&SraBackend::Memory, 1 << 20, "row", FP).unwrap();
        assert!(store.try_begin_line(8, 0, 5));
        assert!(!store.put_segment(8, 0, [hf(1), hf(2)].into_iter()));
        assert!(!store.put_segment(8, 3, [hf(4), hf(5)].into_iter()));
        assert!(store.put_segment(8, 2, [hf(3)].into_iter()));
        let (origin, cells) = store.get(8).unwrap().unwrap();
        assert_eq!(origin, 0);
        assert_eq!(cells.iter().map(|c| c.h).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
        assert_eq!(store.len(), 1);
        assert_eq!(store.bytes_used(), 40);
    }

    #[test]
    fn budget_is_enforced() {
        let mut store: LineStore<CellHF> =
            LineStore::new(&SraBackend::Memory, 100, "row", FP).unwrap();
        assert!(store.try_begin_line(1, 0, 10)); // 80 bytes
        assert!(!store.try_begin_line(2, 0, 10), "would exceed 100 bytes");
        assert!(store.try_begin_line(3, 0, 2)); // 16 more = 96
        store.put_segment(1, 0, (0..10).map(hf));
        store.remove(1);
        assert_eq!(store.bytes_used(), 16);
        assert!(store.try_begin_line(4, 0, 10), "freed budget is reusable");
    }

    #[test]
    fn segments_for_untracked_lines_are_ignored() {
        let mut store: LineStore<CellHF> =
            LineStore::new(&SraBackend::Memory, 64, "row", FP).unwrap();
        assert!(!store.put_segment(3, 0, [hf(1)].into_iter()));
        assert!(store.get(3).unwrap().is_none());
    }

    #[test]
    fn duplicate_begin_rejected() {
        let mut store: LineStore<CellHF> =
            LineStore::new(&SraBackend::Memory, 1 << 20, "r", FP).unwrap();
        assert!(store.try_begin_line(5, 0, 4));
        assert!(!store.try_begin_line(5, 0, 4));
    }

    #[test]
    fn navigation_helpers() {
        let mut store: LineStore<CellHF> =
            LineStore::new(&SraBackend::Memory, 1 << 20, "r", FP).unwrap();
        for idx in [4usize, 8, 12] {
            store.try_begin_line(idx, 0, 1);
            store.put_segment(idx, 0, [hf(idx as Score)].into_iter());
        }
        assert_eq!(store.indices(), vec![4, 8, 12]);
        assert_eq!(store.previous_line(12), Some(8));
        assert_eq!(store.previous_line(4), None);
        assert_eq!(store.previous_line(5), Some(4));
        assert_eq!(store.lines_between(4, 12), vec![8]);
        assert_eq!(store.lines_between(0, 100), vec![4, 8, 12]);
        assert_eq!(store.lines_between(8, 9), Vec::<usize>::new());
    }

    #[test]
    fn disk_backend_roundtrip() {
        let _guard = fault::test_guard();
        let dir = tmpdir("roundtrip");
        {
            let mut store: LineStore<CellHE> =
                LineStore::new(&SraBackend::Disk(dir.clone()), 1 << 20, "col", FP).unwrap();
            store.try_begin_line(7, 3, 4);
            store.put_segment(
                7,
                3,
                [
                    CellHE { h: 1, e: NEG_INF },
                    CellHE { h: -2, e: 5 },
                    CellHE { h: 3, e: 4 },
                    CellHE { h: 9, e: 9 },
                ]
                .into_iter(),
            );
            let (origin, cells) = store.get(7).unwrap().unwrap();
            assert_eq!(origin, 3);
            assert_eq!(cells[0], CellHE { h: 1, e: NEG_INF });
            assert_eq!(cells[3], CellHE { h: 9, e: 9 });
            // File exists on disk: framed, so header + 32 payload bytes.
            let path = dir.join("col-7-3.bin");
            assert_eq!(fs::metadata(&path).unwrap().len(), storage::FRAME_HEADER_BYTES as u64 + 32);
        }
        // Dropped store cleans its files (persist_on_drop defaults off).
        assert!(fs::read_dir(&dir).map(|d| d.count() == 0).unwrap_or(true));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn new_sweeps_orphans_but_reopen_adopts() {
        let _guard = fault::test_guard();
        let dir = tmpdir("sweep");
        {
            let mut store: LineStore<CellHF> =
                LineStore::new(&SraBackend::Disk(dir.clone()), 1 << 20, "row", FP).unwrap();
            store.try_begin_line(5, 0, 2);
            store.put_segment(5, 0, [hf(1), hf(2)].into_iter());
            store.persist_on_drop(true);
        }
        // A stale tmp sibling and an unrelated-prefix file join the orphan.
        fs::write(dir.join("row-9-0.bin.tmp"), b"half a frame").unwrap();
        fs::write(dir.join("col-1-0.bin"), b"other store's file").unwrap();
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 3);

        // reopen adopts the valid line and sweeps only the tmp.
        let reopened: LineStore<CellHF> =
            LineStore::reopen(&SraBackend::Disk(dir.clone()), 1 << 20, "row", FP).unwrap();
        assert_eq!(reopened.indices(), vec![5]);
        assert_eq!(reopened.get(5).unwrap().unwrap().1.len(), 2);
        assert_eq!(reopened.stats().swept_files, 1, "tmp sibling swept");
        assert_eq!(reopened.stats().rejected_files, 0);
        drop(reopened); // deletes row-5-0.bin (persist off by default)

        fs::write(dir.join("row-3-0.bin"), b"orphan from a crashed run").unwrap();
        fs::write(dir.join("row-4-0.bin.tmp"), b"torn").unwrap();
        let store: LineStore<CellHF> =
            LineStore::new(&SraBackend::Disk(dir.clone()), 1 << 20, "row", FP).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.stats().swept_files, 2, "orphan + tmp swept on new");
        assert!(!dir.join("row-3-0.bin").exists());
        assert!(dir.join("col-1-0.bin").exists(), "other prefix untouched");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_rejects_foreign_and_corrupt_files() {
        let _guard = fault::test_guard();
        let dir = tmpdir("reject");
        let backend = SraBackend::Disk(dir.clone());
        {
            let mut store: LineStore<CellHF> =
                LineStore::new(&backend, 1 << 20, "row", FP).unwrap();
            for idx in [2usize, 4, 6] {
                store.try_begin_line(idx, 0, 3);
                store.put_segment(idx, 0, (0..3).map(|k| hf(k as Score)));
            }
            store.persist_on_drop(true);
        }
        // Corrupt line 2 (bit flip in the payload), truncate line 4.
        let p2 = dir.join("row-2-0.bin");
        let mut b = fs::read(&p2).unwrap();
        let at = b.len() - 3;
        b[at] ^= 0x40;
        fs::write(&p2, &b).unwrap();
        let p4 = dir.join("row-4-0.bin");
        let b = fs::read(&p4).unwrap();
        fs::write(&p4, &b[..b.len() / 2]).unwrap();

        let reopened: LineStore<CellHF> = LineStore::reopen(&backend, 1 << 20, "row", FP).unwrap();
        assert_eq!(reopened.indices(), vec![6], "only the intact line survives");
        assert_eq!(reopened.stats().rejected_files, 2);
        assert!(!p2.exists() && !p4.exists(), "rejected files are deleted");
        drop(reopened);

        // A whole store written under another job's fingerprint.
        {
            let mut store: LineStore<CellHF> =
                LineStore::new(&backend, 1 << 20, "row", FP + 1).unwrap();
            store.try_begin_line(8, 0, 2);
            store.put_segment(8, 0, [hf(1), hf(2)].into_iter());
            store.persist_on_drop(true);
        }
        let reopened: LineStore<CellHF> = LineStore::reopen(&backend, 1 << 20, "row", FP).unwrap();
        assert!(reopened.is_empty(), "foreign-fingerprint file not adopted");
        assert_eq!(reopened.stats().rejected_files, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_rejects_misnamed_files() {
        let _guard = fault::test_guard();
        let dir = tmpdir("misnamed");
        let backend = SraBackend::Disk(dir.clone());
        {
            let mut store: LineStore<CellHF> =
                LineStore::new(&backend, 1 << 20, "row", FP).unwrap();
            store.try_begin_line(5, 0, 2);
            store.put_segment(5, 0, [hf(1), hf(2)].into_iter());
            store.persist_on_drop(true);
        }
        // A valid frame copied under the wrong name: header says line 5,
        // name says line 7. Adopting it would hand Stage 2 the wrong row.
        fs::copy(dir.join("row-5-0.bin"), dir.join("row-7-0.bin")).unwrap();
        let reopened: LineStore<CellHF> = LineStore::reopen(&backend, 1 << 20, "row", FP).unwrap();
        assert_eq!(reopened.indices(), vec![5]);
        assert_eq!(reopened.stats().rejected_files, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_failure_drops_line_and_degrades() {
        let _guard = fault::test_guard();
        let dir = tmpdir("degrade");
        let mut store: LineStore<CellHF> =
            LineStore::new(&SraBackend::Disk(dir.clone()), 1 << 20, "row", FP).unwrap();
        assert!(store.try_begin_line(4, 0, 2));
        let used = store.bytes_used();
        fault::arm_write(0, fault::WriteFault::Enospc, 1);
        let completed = store.put_segment(4, 0, [hf(1), hf(2)].into_iter());
        fault::disarm_all();
        assert!(!completed, "line did not complete");
        assert!(store.get(4).unwrap().is_none(), "line is gone, not half-stored");
        assert_eq!(store.stats().dropped_lines, 1);
        assert_eq!(store.bytes_used(), used - 16, "budget refunded");
        // The store still works for the next line.
        assert!(store.try_begin_line(8, 0, 1));
        assert!(store.put_segment(8, 0, [hf(9)].into_iter()));
        assert!(store.get(8).unwrap().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_write_failures_recover_with_retries() {
        let _guard = fault::test_guard();
        let dir = tmpdir("transient");
        let mut store: LineStore<CellHF> =
            LineStore::new(&SraBackend::Disk(dir.clone()), 1 << 20, "row", FP).unwrap();
        assert!(store.try_begin_line(2, 0, 1));
        fault::arm_write(0, fault::WriteFault::Transient, 1);
        assert!(store.put_segment(2, 0, [hf(5)].into_iter()));
        fault::disarm_all();
        assert_eq!(store.stats().write_retries, 1);
        assert_eq!(store.stats().dropped_lines, 0);
        assert_eq!(store.get(2).unwrap().unwrap().1[0].h, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_get_is_a_typed_error_and_removable() {
        let _guard = fault::test_guard();
        let dir = tmpdir("corrupt-get");
        let mut store: LineStore<CellHF> =
            LineStore::new(&SraBackend::Disk(dir.clone()), 1 << 20, "row", FP).unwrap();
        store.try_begin_line(6, 0, 2);
        store.put_segment(6, 0, [hf(1), hf(2)].into_iter());
        // Corrupt the file behind the store's back.
        let path = dir.join("row-6-0.bin");
        let mut b = fs::read(&path).unwrap();
        let last = b.len() - 1;
        b[last] ^= 0x01;
        fs::write(&path, &b).unwrap();
        match store.get(6) {
            Err(StorageError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        store.remove(6);
        assert!(store.get(6).unwrap().is_none());
        assert_eq!(store.bytes_used(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_removes_everything() {
        let _guard = fault::test_guard();
        let dir = tmpdir("clear");
        let mut store: LineStore<CellHF> =
            LineStore::new(&SraBackend::Disk(dir.clone()), 1 << 20, "row", FP).unwrap();
        store.try_begin_line(1, 0, 2);
        store.put_segment(1, 0, [hf(1), hf(2)].into_iter());
        store.try_begin_line(3, 0, 4);
        store.persist_on_drop(true);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.bytes_used(), 0);
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0, "disk files deleted");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_codecs_roundtrip() {
        let a = CellHF { h: -123456, f: NEG_INF };
        assert_eq!(CellHF::decode(a.encode()), a);
        let b = CellHE { h: i32::MAX / 8, e: -1 };
        assert_eq!(CellHE::decode(b.encode()), b);
    }
}

#[cfg(test)]
mod partial_snapshot_tests {
    use super::*;
    use sw_core::scoring::Score;

    const FP: u64 = 0x5EED;

    fn hf(h: Score) -> CellHF {
        CellHF { h, f: h - 1 }
    }

    #[test]
    fn partials_roundtrip() {
        let mut store: LineStore<CellHF> =
            LineStore::new(&SraBackend::Memory, 1 << 20, "r", FP).unwrap();
        store.try_begin_line(8, 0, 5);
        store.put_segment(8, 1, [hf(10), hf(11)].into_iter());
        store.try_begin_line(16, 2, 3);
        store.put_segment(16, 3, [hf(20)].into_iter());
        let bytes = store.encode_partials();

        let mut fresh: LineStore<CellHF> =
            LineStore::new(&SraBackend::Memory, 1 << 20, "r", FP).unwrap();
        assert!(fresh.restore_partials(&bytes));
        // Completing the restored partials yields identical lines.
        fresh.put_segment(8, 0, [hf(9)].into_iter());
        fresh.put_segment(8, 3, [hf(12), hf(13)].into_iter());
        let (origin, cells) = fresh.get(8).unwrap().unwrap();
        assert_eq!(origin, 0);
        assert_eq!(cells.iter().map(|c| c.h).collect::<Vec<_>>(), vec![9, 10, 11, 12, 13]);
        // Idempotence: re-putting a segment present in the snapshot is fine.
        fresh.put_segment(16, 3, [hf(20)].into_iter());
        fresh.put_segment(16, 2, [hf(19)].into_iter());
        assert!(fresh.get(16).unwrap().is_none(), "still missing index 4");
        fresh.put_segment(16, 4, [hf(21)].into_iter());
        assert!(fresh.get(16).unwrap().is_some());
    }

    #[test]
    fn restore_rejects_garbage_and_respects_budget() {
        let mut store: LineStore<CellHF> =
            LineStore::new(&SraBackend::Memory, 1 << 20, "r", FP).unwrap();
        assert!(!store.restore_partials(b"nope"));
        assert!(!store.restore_partials(b"SRAP\x01\x00\x00\x00\x00\x00\x00\x00"));
        // Oversized partial vs budget: skipped, not an error.
        let mut big: LineStore<CellHF> =
            LineStore::new(&SraBackend::Memory, 1 << 20, "r", FP).unwrap();
        big.try_begin_line(1, 0, 100);
        let bytes = big.encode_partials();
        let mut tiny: LineStore<CellHF> = LineStore::new(&SraBackend::Memory, 64, "r", FP).unwrap();
        assert!(tiny.restore_partials(&bytes));
        assert_eq!(tiny.bytes_used(), 0, "over-budget partial skipped");
    }

    #[test]
    fn restore_skips_already_tracked_lines() {
        let mut a: LineStore<CellHF> =
            LineStore::new(&SraBackend::Memory, 1 << 20, "r", FP).unwrap();
        a.try_begin_line(4, 0, 2);
        a.put_segment(4, 0, [hf(1)].into_iter());
        let bytes = a.encode_partials();
        // The target already completed line 4.
        let mut b: LineStore<CellHF> =
            LineStore::new(&SraBackend::Memory, 1 << 20, "r", FP).unwrap();
        b.try_begin_line(4, 0, 2);
        b.put_segment(4, 0, [hf(7), hf(8)].into_iter());
        let used = b.bytes_used();
        assert!(b.restore_partials(&bytes));
        assert_eq!(b.bytes_used(), used, "no double accounting");
        assert_eq!(b.get(4).unwrap().unwrap().1[0].h, 7, "completed line untouched");
    }
}
