//! Edit transcripts: the representation of an alignment as a sequence of
//! column operations, plus statistics (Table X of the paper) and validity
//! checks used extensively by the test suite.

use crate::scoring::{Score, Scoring};
use std::fmt;

/// One column of an alignment.
///
/// The DP matrix has `S0` on rows (index `i`) and `S1` on columns
/// (index `j`); see the crate-level conventions in DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EditOp {
    /// `S0[i]` aligned to `S1[j]`, identical characters (diagonal move).
    Match,
    /// `S0[i]` aligned to `S1[j]`, different characters (diagonal move).
    Mismatch,
    /// A gap in `S0` aligned to `S1[j]` (horizontal move, `E` matrix,
    /// the paper's crosspoint *type 1*).
    GapS0,
    /// `S0[i]` aligned to a gap in `S1` (vertical move, `F` matrix,
    /// the paper's crosspoint *type 2*).
    GapS1,
}

/// DP state at a partition edge; mirrors the paper's crosspoint `type`.
///
/// `Diagonal` (type 0) means the path is in the `H` state at the edge;
/// `GapS0`/`GapS1` mean the edge falls *inside* a horizontal/vertical gap
/// run (`E`/`F` state), so the adjoining partition must not charge the
/// gap-open penalty a second time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EdgeState {
    /// Type 0: match/mismatch (the `H` matrix).
    #[default]
    Diagonal,
    /// Type 1: inside a gap in `S0` (the `E` matrix).
    GapS0,
    /// Type 2: inside a gap in `S1` (the `F` matrix).
    GapS1,
}

impl EdgeState {
    /// The paper's numeric type code (0, 1 or 2).
    pub fn code(self) -> u8 {
        match self {
            EdgeState::Diagonal => 0,
            EdgeState::GapS0 => 1,
            EdgeState::GapS1 => 2,
        }
    }

    /// Inverse of [`EdgeState::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(EdgeState::Diagonal),
            1 => Some(EdgeState::GapS0),
            2 => Some(EdgeState::GapS1),
            _ => None,
        }
    }

    /// The edge state seen from the transposed matrix (S0 and S1 swapped):
    /// gap types 1 and 2 exchange roles.
    pub fn transposed(self) -> Self {
        match self {
            EdgeState::Diagonal => EdgeState::Diagonal,
            EdgeState::GapS0 => EdgeState::GapS1,
            EdgeState::GapS1 => EdgeState::GapS0,
        }
    }
}

/// Alignment composition counts — the rows of Table X.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlignmentStats {
    /// Columns where both characters are identical.
    pub matches: usize,
    /// Columns where the characters differ.
    pub mismatches: usize,
    /// Gap runs (each charged the full `G_first` penalty).
    pub gap_openings: usize,
    /// Gaps beyond the first of each run (charged `G_ext`).
    pub gap_extensions: usize,
}

impl AlignmentStats {
    /// Total number of alignment columns.
    pub fn total_columns(&self) -> usize {
        self.matches + self.mismatches + self.gap_openings + self.gap_extensions
    }

    /// Score contribution of each category and the total, in Table X order.
    pub fn score_breakdown(&self, scoring: &Scoring) -> [(String, usize, Score); 5] {
        let m = self.matches as Score * scoring.match_score;
        let x = self.mismatches as Score * scoring.mismatch_score;
        let o = -(self.gap_openings as Score) * scoring.gap_first;
        let e = -(self.gap_extensions as Score) * scoring.gap_ext;
        [
            ("Matches".into(), self.matches, m),
            ("Mismatches".into(), self.mismatches, x),
            ("Gap Openings".into(), self.gap_openings, o),
            ("Gap Extensions".into(), self.gap_extensions, e),
            ("Total".into(), self.total_columns(), m + x + o + e),
        ]
    }
}

/// An alignment as an ordered list of [`EditOp`]s.
///
/// Transcripts are *relative*: they describe the alignment of two specific
/// subsequences and carry no coordinates themselves. CUDAlign's pipeline
/// attaches start/end coordinates separately (the `cudalign` crate).
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Transcript {
    ops: Vec<EditOp>,
}

impl Transcript {
    /// An empty transcript.
    pub fn new() -> Self {
        Transcript { ops: Vec::new() }
    }

    /// Build from a vector of operations.
    pub fn from_ops(ops: Vec<EditOp>) -> Self {
        Transcript { ops }
    }

    /// The operations, in alignment order.
    pub fn ops(&self) -> &[EditOp] {
        &self.ops
    }

    /// Number of alignment columns.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when there are no columns.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Append a single operation.
    pub fn push(&mut self, op: EditOp) {
        self.ops.push(op);
    }

    /// Append all operations of `other`.
    pub fn extend_from(&mut self, other: &Transcript) {
        self.ops.extend_from_slice(&other.ops);
    }

    /// Concatenate a list of transcripts (Stage 5 of the pipeline).
    pub fn concat<'a>(parts: impl IntoIterator<Item = &'a Transcript>) -> Transcript {
        let mut out = Transcript::new();
        for p in parts {
            out.extend_from(p);
        }
        out
    }

    /// Reverse the transcript in place (used when a reverse DP pass
    /// produced the operations back-to-front).
    pub fn reverse(&mut self) {
        self.ops.reverse();
    }

    /// Number of `S0` characters consumed (diagonal + vertical moves).
    pub fn consumed_s0(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, EditOp::Match | EditOp::Mismatch | EditOp::GapS1))
            .count()
    }

    /// Number of `S1` characters consumed (diagonal + horizontal moves).
    pub fn consumed_s1(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, EditOp::Match | EditOp::Mismatch | EditOp::GapS0))
            .count()
    }

    /// Composition statistics, treating the transcript as a standalone
    /// alignment (every gap run charges one opening).
    pub fn stats(&self) -> AlignmentStats {
        self.stats_as_continuation(EdgeState::Diagonal)
    }

    /// Composition statistics for a transcript that *continues* from the
    /// given edge state: when the first operation extends the same gap run
    /// the partition entered in, that first gap is an extension, not an
    /// opening (paper Section IV-A).
    pub fn stats_as_continuation(&self, start: EdgeState) -> AlignmentStats {
        let mut st = AlignmentStats::default();
        let mut prev = start;
        for &op in &self.ops {
            match op {
                EditOp::Match => {
                    st.matches += 1;
                    prev = EdgeState::Diagonal;
                }
                EditOp::Mismatch => {
                    st.mismatches += 1;
                    prev = EdgeState::Diagonal;
                }
                EditOp::GapS0 => {
                    if prev == EdgeState::GapS0 {
                        st.gap_extensions += 1;
                    } else {
                        st.gap_openings += 1;
                    }
                    prev = EdgeState::GapS0;
                }
                EditOp::GapS1 => {
                    if prev == EdgeState::GapS1 {
                        st.gap_extensions += 1;
                    } else {
                        st.gap_openings += 1;
                    }
                    prev = EdgeState::GapS1;
                }
            }
        }
        st
    }

    /// Score of the transcript against the two consumed subsequences.
    ///
    /// `a` and `b` must be exactly the characters consumed from `S0` and
    /// `S1` respectively.
    ///
    /// # Panics
    /// Panics if the transcript does not consume exactly `a` and `b`.
    pub fn score(&self, a: &[u8], b: &[u8], scoring: &Scoring) -> Score {
        self.score_as_continuation(a, b, scoring, EdgeState::Diagonal)
    }

    /// Like [`Transcript::score`] but charging the leading gap run as a
    /// continuation of `start` (no second gap-open).
    pub fn score_as_continuation(
        &self,
        a: &[u8],
        b: &[u8],
        scoring: &Scoring,
        start: EdgeState,
    ) -> Score {
        assert_eq!(self.consumed_s0(), a.len(), "transcript/S0 length mismatch");
        assert_eq!(self.consumed_s1(), b.len(), "transcript/S1 length mismatch");
        let mut score = 0;
        let (mut i, mut j) = (0usize, 0usize);
        let mut prev = start;
        for &op in &self.ops {
            match op {
                EditOp::Match | EditOp::Mismatch => {
                    score += scoring.subst(a[i], b[j]);
                    i += 1;
                    j += 1;
                    prev = EdgeState::Diagonal;
                }
                EditOp::GapS0 => {
                    score -=
                        if prev == EdgeState::GapS0 { scoring.gap_ext } else { scoring.gap_first };
                    j += 1;
                    prev = EdgeState::GapS0;
                }
                EditOp::GapS1 => {
                    score -=
                        if prev == EdgeState::GapS1 { scoring.gap_ext } else { scoring.gap_first };
                    i += 1;
                    prev = EdgeState::GapS1;
                }
            }
        }
        score
    }

    /// Check structural validity against the consumed subsequences: every
    /// `Match`/`Mismatch` column must agree with the actual characters.
    /// Returns a description of the first violation, if any.
    pub fn validate(&self, a: &[u8], b: &[u8]) -> Result<(), String> {
        if self.consumed_s0() != a.len() {
            return Err(format!(
                "transcript consumes {} S0 chars but subsequence has {}",
                self.consumed_s0(),
                a.len()
            ));
        }
        if self.consumed_s1() != b.len() {
            return Err(format!(
                "transcript consumes {} S1 chars but subsequence has {}",
                self.consumed_s1(),
                b.len()
            ));
        }
        let (mut i, mut j) = (0usize, 0usize);
        for (col, &op) in self.ops.iter().enumerate() {
            match op {
                EditOp::Match => {
                    if a[i] != b[j] {
                        return Err(format!(
                            "column {col}: Match but S0[{i}]={} != S1[{j}]={}",
                            a[i] as char, b[j] as char
                        ));
                    }
                    i += 1;
                    j += 1;
                }
                EditOp::Mismatch => {
                    if a[i] == b[j] {
                        return Err(format!(
                            "column {col}: Mismatch but S0[{i}]==S1[{j}]=={}",
                            a[i] as char
                        ));
                    }
                    i += 1;
                    j += 1;
                }
                EditOp::GapS0 => j += 1,
                EditOp::GapS1 => i += 1,
            }
        }
        Ok(())
    }

    /// Render the classic three-row textual alignment (Stage 6 output).
    ///
    /// Returns `(top, middle, bottom)` rows: `S0` with gaps, the match
    /// line (`|` match, `x` mismatch, space for gaps) and `S1` with gaps.
    pub fn render(&self, a: &[u8], b: &[u8]) -> (String, String, String) {
        let mut top = String::with_capacity(self.len());
        let mut mid = String::with_capacity(self.len());
        let mut bot = String::with_capacity(self.len());
        let (mut i, mut j) = (0usize, 0usize);
        for &op in &self.ops {
            match op {
                EditOp::Match => {
                    top.push(a[i] as char);
                    mid.push('|');
                    bot.push(b[j] as char);
                    i += 1;
                    j += 1;
                }
                EditOp::Mismatch => {
                    top.push(a[i] as char);
                    mid.push('x');
                    bot.push(b[j] as char);
                    i += 1;
                    j += 1;
                }
                EditOp::GapS0 => {
                    top.push('-');
                    mid.push(' ');
                    bot.push(b[j] as char);
                    j += 1;
                }
                EditOp::GapS1 => {
                    top.push(a[i] as char);
                    mid.push(' ');
                    bot.push('-');
                    i += 1;
                }
            }
        }
        (top, mid, bot)
    }

    /// Compact CIGAR-like run-length encoding (`=` match, `X` mismatch,
    /// `I` gap in S0, `D` gap in S1), e.g. `12=1X3D7=`.
    pub fn cigar(&self) -> String {
        let mut out = String::new();
        let mut run: Option<(EditOp, usize)> = None;
        let sym = |op: EditOp| match op {
            EditOp::Match => '=',
            EditOp::Mismatch => 'X',
            EditOp::GapS0 => 'I',
            EditOp::GapS1 => 'D',
        };
        for &op in &self.ops {
            match run {
                Some((r, n)) if r == op => run = Some((r, n + 1)),
                Some((r, n)) => {
                    out.push_str(&format!("{n}{}", sym(r)));
                    run = Some((op, 1));
                    let _ = n;
                }
                None => run = Some((op, 1)),
            }
        }
        if let Some((r, n)) = run {
            out.push_str(&format!("{n}{}", sym(r)));
        }
        out
    }
}

impl fmt::Debug for Transcript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Transcript({} cols, {})", self.len(), self.cigar())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use EditOp::*;

    fn t(ops: &[EditOp]) -> Transcript {
        Transcript::from_ops(ops.to_vec())
    }

    #[test]
    fn consumed_counts() {
        let tr = t(&[Match, GapS0, GapS1, Mismatch]);
        assert_eq!(tr.consumed_s0(), 3);
        assert_eq!(tr.consumed_s1(), 3);
        assert_eq!(tr.len(), 4);
    }

    #[test]
    fn stats_count_runs() {
        // M G0 G0 M G1 G0 -> two G0 runs (one of len 2), one G1 run.
        let tr = t(&[Match, GapS0, GapS0, Match, GapS1, GapS0]);
        let st = tr.stats();
        assert_eq!(st.matches, 2);
        assert_eq!(st.mismatches, 0);
        assert_eq!(st.gap_openings, 3);
        assert_eq!(st.gap_extensions, 1);
        assert_eq!(st.total_columns(), 6);
    }

    #[test]
    fn stats_as_continuation_skips_first_open() {
        let tr = t(&[GapS0, GapS0, Match]);
        let standalone = tr.stats();
        assert_eq!(standalone.gap_openings, 1);
        assert_eq!(standalone.gap_extensions, 1);
        let cont = tr.stats_as_continuation(EdgeState::GapS0);
        assert_eq!(cont.gap_openings, 0);
        assert_eq!(cont.gap_extensions, 2);
        // Continuation of the *other* gap type does not merge runs.
        let other = tr.stats_as_continuation(EdgeState::GapS1);
        assert_eq!(other.gap_openings, 1);
    }

    #[test]
    fn score_matches_paper_figure1_shape() {
        // Paper Fig. 1 uses unit penalties; here check with paper scoring:
        // 2 matches, 1 mismatch, gap run of 2.
        let tr = t(&[Match, Mismatch, GapS1, GapS1, Match]);
        let a = b"ACGGA"; // consumed by M, X, D, D, M
        let b_ = b"ATA"; // consumed by M, X, M
        let sc = Scoring::paper();
        assert_eq!(tr.score(a, b_, &sc), 1 - 3 - 5 - 2 + 1);
    }

    #[test]
    fn score_as_continuation_refunds_open() {
        let tr = t(&[GapS1, Match]);
        let sc = Scoring::paper();
        let a = b"GA";
        let b_ = b"A";
        assert_eq!(tr.score(a, b_, &sc), -5 + 1);
        assert_eq!(tr.score_as_continuation(a, b_, &sc, EdgeState::GapS1), -2 + 1);
    }

    #[test]
    fn validate_catches_wrong_ops() {
        let tr = t(&[Match]);
        assert!(tr.validate(b"A", b"A").is_ok());
        assert!(tr.validate(b"A", b"C").unwrap_err().contains("Match but"));
        let tr2 = t(&[Mismatch]);
        assert!(tr2.validate(b"A", b"A").unwrap_err().contains("Mismatch but"));
        assert!(tr.validate(b"AA", b"A").unwrap_err().contains("consumes"));
    }

    #[test]
    fn render_rows() {
        let tr = t(&[Match, GapS0, Mismatch]);
        let (top, mid, bot) = tr.render(b"AC", b"AGT");
        assert_eq!(top, "A-C");
        assert_eq!(mid, "| x");
        assert_eq!(bot, "AGT");
    }

    #[test]
    fn cigar_run_length() {
        let tr = t(&[Match, Match, Mismatch, GapS1, GapS1, GapS1, Match]);
        assert_eq!(tr.cigar(), "2=1X3D1=");
        assert_eq!(Transcript::new().cigar(), "");
    }

    #[test]
    fn concat_and_reverse() {
        let a = t(&[Match, GapS0]);
        let b_ = t(&[Mismatch]);
        let c = Transcript::concat([&a, &b_]);
        assert_eq!(c.ops(), &[Match, GapS0, Mismatch]);
        let mut r = c.clone();
        r.reverse();
        assert_eq!(r.ops(), &[Mismatch, GapS0, Match]);
    }

    #[test]
    fn edge_state_codes_roundtrip() {
        for s in [EdgeState::Diagonal, EdgeState::GapS0, EdgeState::GapS1] {
            assert_eq!(EdgeState::from_code(s.code()), Some(s));
        }
        assert_eq!(EdgeState::from_code(3), None);
        assert_eq!(EdgeState::GapS0.transposed(), EdgeState::GapS1);
        assert_eq!(EdgeState::Diagonal.transposed(), EdgeState::Diagonal);
    }

    #[test]
    fn table_x_breakdown() {
        let st = AlignmentStats { matches: 10, mismatches: 2, gap_openings: 1, gap_extensions: 3 };
        let rows = st.score_breakdown(&Scoring::paper());
        assert_eq!(rows[0].2, 10);
        assert_eq!(rows[1].2, -6);
        assert_eq!(rows[2].2, -5);
        assert_eq!(rows[3].2, -6);
        assert_eq!(rows[4].1, 16);
        assert_eq!(rows[4].2, -7);
    }
}
