//! Microbenchmarks of the DP kernels: cell-update throughput (the MCUPS
//! that all paper-scale projections build on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::kernel::{compute_tile, global_borders, GlobalOrigin};
use gpu_sim::wavefront::{run_plain, RegionJob};
use gpu_sim::{GridSpec, Mode};
use sw_core::linear::RowDp;
use sw_core::scoring::Scoring;
use sw_core::transcript::EdgeState;

fn dna(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            b"ACGT"[(x >> 33) as usize & 3]
        })
        .collect()
}

fn bench_rowdp(c: &mut Criterion) {
    let mut g = c.benchmark_group("rowdp");
    let n = 4096usize;
    let a = dna(1, 1024);
    let b = dna(2, n);
    g.throughput(Throughput::Elements((a.len() * n) as u64));
    g.bench_function("forward_1024x4096", |bench| {
        bench.iter(|| {
            let mut dp = RowDp::new(n, Scoring::paper(), EdgeState::Diagonal);
            for &ch in &a {
                dp.step(ch, &b);
            }
            dp.h()[n]
        })
    });
    g.finish();
}

fn bench_tile(c: &mut Criterion) {
    let mut g = c.benchmark_group("tile");
    for &(h, w) in &[(256usize, 256usize), (256, 4096)] {
        let a = dna(3, h);
        let b = dna(4, w);
        g.throughput(Throughput::Elements((h * w) as u64));
        g.bench_with_input(BenchmarkId::new("global", format!("{h}x{w}")), &(h, w), |bench, _| {
            bench.iter(|| {
                let (mut top, mut left, corner) =
                    global_borders(h, w, &Scoring::paper(), GlobalOrigin::forward(EdgeState::Diagonal));
                compute_tile(&a, &b, 1, 1, &Scoring::paper(), false, None, corner, &mut top, &mut left)
                    .corner_out
            })
        });
        g.bench_with_input(BenchmarkId::new("local", format!("{h}x{w}")), &(h, w), |bench, _| {
            bench.iter(|| {
                let (mut top, mut left, corner) = gpu_sim::kernel::local_borders(h, w);
                compute_tile(&a, &b, 1, 1, &Scoring::paper(), true, None, corner, &mut top, &mut left)
                    .best
            })
        });
    }
    g.finish();
}

fn bench_wavefront(c: &mut Criterion) {
    let mut g = c.benchmark_group("wavefront");
    g.sample_size(10);
    let a = dna(5, 4096);
    let b = dna(6, 4096);
    g.throughput(Throughput::Elements((a.len() * b.len()) as u64));
    for workers in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("local_4096x4096", workers), &workers, |bench, &w| {
            let job = RegionJob {
                a: &a,
                b: &b,
                scoring: Scoring::paper(),
                mode: Mode::Local,
                grid: GridSpec { blocks: 16, threads: 16, alpha: 4 },
                workers: w,
                watch: None,
            };
            bench.iter(|| run_plain(&job).best)
        });
    }
    g.finish();
}

/// The paper's phase division keeps the hot kernel free of bookkeeping;
/// this measures the monomorphized variants' relative cost.
fn bench_kernel_phases(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_phases");
    let (h, w) = (512usize, 1024usize);
    let a = dna(21, h);
    let b = dna(22, w);
    g.throughput(Throughput::Elements((h * w) as u64));
    let sc = Scoring::paper();
    g.bench_function("global_plain", |bench| {
        bench.iter(|| {
            let (mut top, mut left, corner) =
                global_borders(h, w, &sc, GlobalOrigin::forward(EdgeState::Diagonal));
            compute_tile(&a, &b, 1, 1, &sc, false, None, corner, &mut top, &mut left).corner_out
        })
    });
    g.bench_function("global_watching", |bench| {
        bench.iter(|| {
            let (mut top, mut left, corner) =
                global_borders(h, w, &sc, GlobalOrigin::forward(EdgeState::Diagonal));
            compute_tile(&a, &b, 1, 1, &sc, false, Some(i32::MAX / 8), corner, &mut top, &mut left)
                .corner_out
        })
    });
    g.bench_function("local_tracking", |bench| {
        bench.iter(|| {
            let (mut top, mut left, corner) = gpu_sim::kernel::local_borders(h, w);
            compute_tile(&a, &b, 1, 1, &sc, true, None, corner, &mut top, &mut left).best
        })
    });
    g.finish();
}

criterion_group!(benches, bench_rowdp, bench_tile, bench_wavefront, bench_kernel_phases);
criterion_main!(benches);
