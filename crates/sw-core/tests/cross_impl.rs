//! Cross-implementation determinism: the tie-breaking rule for the best
//! endpoint is shared by the quadratic scan, the linear scan and (via
//! gpu-sim/cudalign tests) the wavefront engine. These tests pin its
//! semantics so a change breaks loudly.

use proptest::prelude::*;
use sw_core::full::{better_endpoint, sw_local_aligned, sw_local_score};
use sw_core::Scoring;

fn dna(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"ACGT".to_vec()), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// better_endpoint is a strict total order on distinct candidates.
    #[test]
    fn endpoint_order_is_total_and_antisymmetric(
        s1 in -50i32..50, i1 in 0usize..40, j1 in 0usize..40,
        s2 in -50i32..50, i2 in 0usize..40, j2 in 0usize..40,
    ) {
        let a = (s1, i1, j1);
        let b = (s2, i2, j2);
        if a == b {
            prop_assert!(!better_endpoint(a, b));
        } else {
            prop_assert_ne!(better_endpoint(a, b), better_endpoint(b, a),
                "exactly one of two distinct candidates wins");
        }
    }

    /// Transitivity over random triples.
    #[test]
    fn endpoint_order_is_transitive(
        v in proptest::collection::vec((-20i32..20, 0usize..10, 0usize..10), 3)
    ) {
        let (a, b, c) = (v[0], v[1], v[2]);
        if better_endpoint(a, b) && better_endpoint(b, c) {
            prop_assert!(better_endpoint(a, c) || a == c);
        }
    }

    /// Both full-matrix and linear scans pick the same endpoint.
    #[test]
    fn scans_agree_on_endpoint(a in dna(120), b in dna(120)) {
        let sc = Scoring::paper();
        let (score, end) = sw_local_score(&a, &b, &sc);
        match sw_local_aligned(&a, &b, &sc) {
            Some(r) => {
                prop_assert_eq!(r.score, score);
                prop_assert_eq!(r.end, end);
            }
            None => prop_assert_eq!(score, 0),
        }
    }
}
